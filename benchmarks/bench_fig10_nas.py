"""Figure 10: NAS FT and IS (class C) execution and alltoall time."""

from repro.bench import fig10_nas_performance


def test_fig10_nas(report):
    headers, rows = report(
        "fig10_nas_performance",
        "Fig 10 - NAS FT/IS class C: total and alltoall time",
        fig10_nas_performance,
    )
    by_key = {(r[0], r[1], r[2]): r for r in rows}
    for kernel in ("nas-ft.C", "nas-is.C"):
        t32 = by_key[(kernel, 32, "No-Power")][3]
        t64 = by_key[(kernel, 64, "No-Power")][3]
        assert 0.4 < t64 / t32 < 0.65  # strong scaling
        for scheme in ("Freq-Scaling", "Proposed"):
            assert by_key[(kernel, 64, scheme)][3] / t64 - 1.0 < 0.15
