"""Extension (paper §VIII future work): rack/topology-aware power-aware
broadcast on a 4-rack, 128-core cluster with oversubscribed uplinks."""

from repro.bench import extension_rack_topology


def test_extension_rack_topology(report):
    headers, rows = report(
        "ext_rack_topology",
        "Extension - rack-aware power-aware bcast (4 racks x 4 nodes)",
        extension_rack_topology,
    )
    by_scheme = {r[0]: r for r in rows}
    # Power ordering holds one hierarchy level up.
    assert (
        by_scheme["Proposed"][2]
        < by_scheme["Freq-Scaling"][2]
        < by_scheme["No-Power"][2]
    )
    # Rack-level throttling keeps latency overhead bounded.
    assert by_scheme["Proposed"][1] < by_scheme["No-Power"][1] * 1.4
