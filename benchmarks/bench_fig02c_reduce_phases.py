"""Figure 2(c): Reduce overall time vs network-phase time, 64 processes."""

from repro.bench import fig2c_reduce_phases


def test_fig02c_reduce_phases(report):
    headers, rows = report(
        "fig02c_reduce_phases",
        "Fig 2(c) - Reduce overall vs network phase (64 procs)",
        fig2c_reduce_phases,
    )
    # Network phase is a substantial share across the 4B-4K sweep.
    for row in rows:
        assert row[2] > 0  # network phase observed
        assert row[3] > 0.3
