"""Figure 8: MPI_Bcast under No-Power / Freq-Scaling / Proposed,
64 processes — (a) latency sweep, (b) sampled power timeline."""

from repro.bench import fig8a_bcast_latency, fig8b_bcast_power


def test_fig08a_latency(report):
    headers, rows = report(
        "fig08a_bcast_latency",
        "Fig 8(a) - Bcast 64 procs: latency under the three schemes",
        fig8a_bcast_latency,
        chart=dict(
            y_columns=[1, 2, 3],
            labels=["No-Power", "Freq-Scaling", "Proposed"],
            logx=True, logy=True,
            title="latency (us) vs message size",
        ),
    )
    large = rows[-1]
    # Paper: ~15% overhead at 1MB, power variants nearly identical.
    assert large[4] < 0.20
    assert abs(large[3] - large[2]) / large[2] < 0.10


def test_fig08b_power(report):
    headers, rows = report(
        "fig08b_bcast_power",
        "Fig 8(b) - Bcast 64 procs: power under the three schemes",
        fig8b_bcast_power,
    )
    mid = rows[len(rows) // 2]
    assert mid[1] > mid[2] > mid[3]
    assert 2.2 < mid[1] < 2.4
