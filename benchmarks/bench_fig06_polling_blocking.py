"""Figure 6: polling vs blocking message progression, 64-process alltoall
— (a) latency sweep, (b) sampled power timeline."""

from repro.bench import fig6a_polling_vs_blocking, fig6b_power_timeline


def test_fig06a_latency(report):
    headers, rows = report(
        "fig06a_polling_blocking_latency",
        "Fig 6(a) - Alltoall 64 procs: polling vs blocking latency",
        fig6a_polling_vs_blocking,
        chart=dict(
            y_columns=[1, 2],
            labels=["Polling", "Blocking"],
            logx=True, logy=True,
            title="latency (us) vs message size",
        ),
    )
    # Blocking is substantially slower at every size, ~2x at the largest.
    for row in rows:
        assert row[2] > row[1]
    assert rows[-1][3] > 1.5


def test_fig06b_power(report):
    headers, rows = report(
        "fig06b_polling_blocking_power",
        "Fig 6(b) - Alltoall 64 procs: polling vs blocking power",
        fig6b_power_timeline,
    )
    assert rows, "power timeline must contain samples"
    # Blocking draws less power than polling at each sample (cores sleep).
    for row in rows:
        assert row[2] < row[1]
    # Polling sits near the 2.3 kW operating point.
    assert 2.1 < rows[0][1] < 2.4
