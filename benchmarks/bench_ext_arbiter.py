"""Extension: the cluster power-budget arbiter on co-scheduled jobs.

Two surfaces, riding the same two-job scenario (``plan_ext_arbiter``):
a communication-bound alltoall job on the first half of the nodes and a
compute-bound job on the second half, run uncapped and under one global
cap with the ``uniform`` and ``redistribute`` policies.

* **Policy table** (``ext_arbiter`` report): at the same global cap the
  redistribute policy must beat the uniform split on makespan — the
  comm job's MPI slack funds a higher P-state for the compute job's
  nodes — while the uniform cap costs time against the uncapped run.
* **Attribution + determinism gate** (``results/BENCH_arbiter.json``):
  per-job attributed energy plus the residual (idle nodes + shared
  base power outside any job's window) must sum exactly to the
  accountant total, and a re-run of the same cell must be
  byte-identical.  ``check_kernel_scaling.py --arbiter-json`` enforces
  this file in CI.

Set ``REPRO_BENCH_QUICK=1`` for the reduced 8-node scenario used by the
CI smoke job — quick runs archive under ``*_quick`` names, so they
never compare against the full-sweep baselines.
"""

import json
import os

import pytest

from repro.bench import extension_power_arbiter, use_runner
from repro.bench.experiments import ARBITER_CAP_PER_NODE_W, plan_ext_arbiter
from repro.runner import SweepStats, execute_cell, resolve_jobs

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SUFFIX = "_quick" if QUICK else ""
#: Full run is the acceptance scenario (two jobs across 64 nodes);
#: quick keeps the same shape on 8 nodes for the CI smoke job.  The
#: alltoall's cost grows with the rank count, so the 64-node scenario
#: scales the compute phase up to keep job B the makespan-setter —
#: the regime where donated headroom pays (a comm-bound makespan
#: *wants* its own nodes fast; see the plan docstring).
SCENARIO = (
    {"n_nodes": 8}
    if QUICK
    else {"n_nodes": 64, "compute_s": 60e-3}
)
N_NODES = SCENARIO["n_nodes"]

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "results")


@pytest.fixture(autouse=True)
def _runner_sweep(request, capsys):
    """Every sweep rides the cell runner: ``REPRO_JOBS`` shards cells
    across the warm-worker pool (the CI smoke job sets ``REPRO_JOBS=2``)
    and the sweep accounting prints next to the benchmark numbers."""
    stats = SweepStats(experiment=request.node.name)
    with use_runner(jobs=resolve_jobs(None, default=1), stats=stats):
        yield
    with capsys.disabled():
        print(f"\n  {stats.one_line()}")


def test_ext_arbiter_policies(report):
    headers, rows = report(
        f"ext_arbiter{SUFFIX}",
        "Extension - cluster power-budget arbiter (two co-scheduled jobs)",
        extension_power_arbiter,
        **SCENARIO,
    )
    by_scheme = {r[0]: r for r in rows}
    no_cap = by_scheme["no-cap"]
    uniform = by_scheme["uniform"]
    redistribute = by_scheme["redistribute"]
    # The cap binds: the uniform split clamps the compute nodes below
    # fmax, so capping costs makespan against the uncapped run.
    assert uniform[1] > no_cap[1]
    # ISSUE acceptance: at the same global cap, redistribution beats the
    # uniform split on makespan (slack donors fund the critical job).
    assert redistribute[1] < uniform[1]
    # The win comes from actual budget movement, not a different cap.
    assert redistribute[5] > 0.0
    assert no_cap[5] == 0.0 and uniform[5] == 0.0


def _strip_wall(result) -> dict:
    d = result.to_dict()
    d.pop("wall_time_s", None)
    return d


def test_ext_arbiter_attribution_and_determinism(capsys):
    """Per-job energy attribution is exact and cells re-run
    byte-identically; writes the ``results/BENCH_arbiter.json`` gate."""
    plan = plan_ext_arbiter(**SCENARIO)
    results = [execute_cell(cell) for cell in plan.cells]
    schemes = ("no-cap", "uniform", "redistribute")

    cells_json = {}
    attribution_exact = True
    for name, r in zip(schemes, results):
        jobs = r.extra["jobs"]
        residual = r.extra["residual_energy_j"]
        attributed = sum(job["energy_j"] for job in jobs)
        # Residual is defined by subtraction, so the books must balance
        # to the last bit.
        exact = attributed + residual == r.energy_j
        attribution_exact = attribution_exact and exact
        arb = r.arbiter or {}
        cells_json[name] = {
            "makespan_s": r.duration_s,
            "energy_j": r.energy_j,
            "attributed_j": attributed,
            "residual_j": residual,
            "attribution_exact": exact,
            "job_durations_s": [job["duration_s"] for job in jobs],
            "job_energies_j": [job["energy_j"] for job in jobs],
            "donated_j": arb.get("donated_j", 0.0),
            "rebalances": arb.get("rebalances", 0),
            "freq_changes": arb.get("freq_changes", 0),
        }

    # Determinism: re-executing the redistribute cell (the one with the
    # most moving parts — timers, donations, per-node budgets) must
    # reproduce the first result byte for byte.
    rerun = execute_cell(plan.cells[2])
    identical = json.dumps(_strip_wall(results[2]), sort_keys=True) == \
        json.dumps(_strip_wall(rerun), sort_keys=True)

    report = {
        "scenario": {
            "n_nodes": N_NODES,
            "n_jobs": 2,
            "power_cap_w": ARBITER_CAP_PER_NODE_W * N_NODES,
            "cap_per_node_w": ARBITER_CAP_PER_NODE_W,
            "quick": QUICK,
        },
        "cells": cells_json,
        "uniform_makespan_s": cells_json["uniform"]["makespan_s"],
        "redistribute_makespan_s": cells_json["redistribute"]["makespan_s"],
        "makespan_speedup": (
            cells_json["uniform"]["makespan_s"]
            / max(cells_json["redistribute"]["makespan_s"], 1e-12)
        ),
        "donated_j": cells_json["redistribute"]["donated_j"],
        "attribution_exact": attribution_exact,
        "identical": identical,
    }
    path = os.path.join(
        os.path.abspath(RESULTS_DIR), "BENCH_arbiter.json"
    )
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with capsys.disabled():
        print(
            f"\n  uniform {report['uniform_makespan_s'] * 1e3:.3f} ms vs "
            f"redistribute {report['redistribute_makespan_s'] * 1e3:.3f} ms "
            f"({report['makespan_speedup']:.2f}x) at "
            f"{report['scenario']['power_cap_w']:.0f} W global cap",
            flush=True,
        )
        print(f"  wrote {os.path.relpath(path)}", flush=True)

    assert attribution_exact, cells_json
    assert identical
    assert report["makespan_speedup"] > 1.0, report
