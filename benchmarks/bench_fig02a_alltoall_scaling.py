"""Figure 2(a): Alltoall scalability, 32 processes, 4-way vs 8-way layout
plus the equation-(1) theoretical estimate."""

from repro.bench import fig2a_alltoall_scaling


def test_fig02a_alltoall_scaling(report):
    headers, rows = report(
        "fig02a_alltoall_scaling",
        "Fig 2(a) - Alltoall 32 procs: 4-way vs 8-way vs theoretical",
        fig2a_alltoall_scaling,
        chart=dict(
            y_columns=[1, 2, 3],
            labels=["4-way", "8-way", "theoretical"],
            logx=True, logy=True,
            title="latency (us) vs message size",
        ),
    )
    # Reproduction assertions: 8-way must lose at large sizes (contention).
    large = rows[-1]
    assert large[2] > large[1] * 1.3
    # The theoretical curve tracks the 4-way measurement's magnitude.
    assert 0.2 < large[3] / large[1] < 5.0
