"""Extension: the online slack-driven governor (repro.runtime) vs the
paper's static power schemes.

Three surfaces: OSU-style alltoall sweeps, the mixed workload used by the
ADAPTIVE comparison, and the CPMD/NAS application traces (the acceptance
surface of ISSUE 2).  Set ``REPRO_BENCH_QUICK=1`` for the reduced sweep
used by the CI smoke job — quick runs archive under ``*_quick`` names, so
they never compare against the full-sweep baselines.
"""

import os

import pytest

from repro.bench import (
    extension_governor_alltoall,
    extension_governor_apps,
    extension_governor_mixed,
    use_runner,
)
from repro.runner import SweepStats, resolve_jobs

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SUFFIX = "_quick" if QUICK else ""


@pytest.fixture(autouse=True)
def _runner_sweep(request, capsys):
    """Every sweep rides the cell runner: ``REPRO_JOBS`` shards cells
    across the warm-worker pool (the CI smoke job sets ``REPRO_JOBS=2``)
    and the sweep accounting prints next to the benchmark numbers."""
    stats = SweepStats(experiment=request.node.name)
    with use_runner(jobs=resolve_jobs(None, default=1), stats=stats):
        yield
    with capsys.disabled():
        print(f"\n  {stats.one_line()}")


def test_ext_governor_alltoall(report):
    sizes = (256 << 10,) if QUICK else (64 << 10, 256 << 10, 1 << 20)
    headers, rows = report(
        f"ext_governor_alltoall{SUFFIX}",
        "Extension - online governor vs static schemes (OSU alltoall)",
        extension_governor_alltoall,
        sizes=sizes,
        iterations=2 if QUICK else 3,
    )
    for size in {r[0] for r in rows}:
        by_scheme = {r[1]: r for r in rows if r[0] == size}
        no_power = by_scheme["No-Power"]
        countdown = by_scheme["Countdown"]
        # Countdown throttles T-states only: latency hugs the baseline...
        assert countdown[2] <= no_power[2] * 1.02
        # ...while actually engaging and saving wait energy.
        assert countdown[4] > 0
        assert countdown[3] < no_power[3]


def test_ext_governor_mixed(report):
    sizes = (64 << 10, 256 << 10) if QUICK else (16 << 10, 64 << 10, 256 << 10, 1 << 20)
    headers, rows = report(
        f"ext_governor_mixed{SUFFIX}",
        "Extension - governor vs ADAPTIVE (mixed-size workload)",
        extension_governor_mixed,
        sizes=sizes,
    )
    by_scheme = {r[0]: r for r in rows}
    # ISSUE acceptance: predictive matches or beats the static ADAPTIVE
    # scheme without any per-algorithm schedule.
    assert by_scheme["Predictive"][2] <= by_scheme["Adaptive"][2] * 1.01
    # Countdown saves energy over the no-power baseline at a bounded
    # slowdown on this communication-dominated loop.
    assert by_scheme["Countdown"][2] < by_scheme["No-Power"][2]
    assert by_scheme["Countdown"][1] <= by_scheme["No-Power"][1] * 1.02


def test_ext_governor_apps(report):
    headers, rows = report(
        f"ext_governor_apps{SUFFIX}",
        "Extension - governor on application traces (CPMD / NAS)",
        extension_governor_apps,
        include_nas=not QUICK,
    )
    for app in {r[0] for r in rows}:
        by_scheme = {r[1]: r for r in rows if r[0] == app}
        best_static_energy = min(
            by_scheme["No-Power"][4],
            by_scheme["Freq-Scaling"][4],
            by_scheme["Proposed"][4],
        )
        countdown = by_scheme["Countdown"]
        no_power = by_scheme["No-Power"]
        # ISSUE acceptance: countdown within 1.05x of the best static
        # energy at <= 2% added communication latency.
        assert countdown[4] <= best_static_energy * 1.05
        assert countdown[3] <= no_power[3] * 1.02
        # Predictive pre-scaling beats every static scheme outright.
        assert by_scheme["Predictive"][4] < best_static_energy
