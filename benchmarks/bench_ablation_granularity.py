"""Ablation (paper §V-B discussion): socket-granular throttling (the
Nehalem testbed) vs core-granular (future architectures)."""

from repro.bench import ablation_throttle_granularity


def test_ablation_granularity(report):
    headers, rows = report(
        "ablation_granularity",
        "Ablation - throttle granularity under the Proposed schemes",
        ablation_throttle_granularity,
    )
    by_key = {(r[0], r[1]): r for r in rows}
    for op in ("bcast", "alltoall"):
        sock = by_key[(op, "socket")]
        core = by_key[(op, "core")]
        # Core granularity saves at least as much power...
        assert core[3] <= sock[3] + 1e-6
        # ...without costing performance.
        assert core[2] <= sock[2] * 1.05
