"""Runner benchmark: warm-worker parallel sharding + content-addressed cache.

Measures the performance claims of the sweep runner on a representative
sweep (the 12-cell fig7a alltoall power sweep):

* ``--jobs N`` shards cell batches across a *persistent* warm-worker
  pool with *bit-identical* output — asserted here by comparing the
  simulated results, and asserted to reach ``0.8 * N`` speedup for
  ``N = 4`` when the host actually has the cores (the speedup gate is
  skipped on smaller machines, where the runner clamps the job count
  and executes inline rather than paying pool overhead for a guaranteed
  slowdown).
* each worker rebuilds the frozen (cluster, network, power) substrate at
  most once per unique spec signature — asserted from the substrate
  telemetry.
* a warm cache turns a re-run into pure JSON reads — asserted to cost
  under 10% of the cold run unconditionally.

The measured numbers are archived to ``results/BENCH_runner.json``
(including ``cpu_count``, so review can tell a gated run from a clamped
single-core one) so a regression shows up in review, wall-clock noise
aside.
"""

import json
import os
import tempfile
import time

from repro.bench import CELL_PLANS
from repro.runner import (
    ResultCache,
    SweepStats,
    clear_memo,
    clear_substrate_cache,
    run_cells,
    shutdown_pool,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "results")
JOBS = 4


def _sim_dicts(results):
    dicts = [r.to_dict() for r in results]
    for d in dicts:
        d.pop("wall_time_s")  # host-side timing, not simulated output
    return dicts


def _unique_signatures(cells):
    return len({
        json.dumps(
            {
                "cluster": c.params.get("cluster"),
                "network": c.params.get("network"),
                "power": c.params.get("power"),
            },
            sort_keys=True,
        )
        for c in cells
    })


def run_runner_benchmark():
    cells = CELL_PLANS["fig7a"]().cells
    shutdown_pool()  # measure pool start-up inside the cold-parallel run
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(os.path.join(tmp, "cache"))

        clear_memo()
        clear_substrate_cache()
        t0 = time.perf_counter()
        inline = run_cells(cells, jobs=1, cache=cache)
        cold_s = time.perf_counter() - t0

        clear_memo()
        t0 = time.perf_counter()
        warm = run_cells(cells, jobs=1, cache=cache)
        warm_s = time.perf_counter() - t0

        clear_memo()
        cold_stats = SweepStats()
        t0 = time.perf_counter()
        parallel = run_cells(cells, jobs=JOBS, cache=None, stats=cold_stats)
        parallel_s = time.perf_counter() - t0

        # Second parallel sweep reuses the now-warm pool (and each
        # worker's substrate cache) — the steady-state campaign cost.
        clear_memo()
        warm_pool_stats = SweepStats()
        t0 = time.perf_counter()
        parallel2 = run_cells(cells, jobs=JOBS, cache=None,
                              stats=warm_pool_stats)
        warm_pool_s = time.perf_counter() - t0
    shutdown_pool()

    return {
        "sweep": "fig7a",
        "cells": len(cells),
        "unique_spec_signatures": _unique_signatures(cells),
        "jobs": JOBS,
        "jobs_effective": cold_stats.jobs_effective,
        "jobs_clamped": cold_stats.jobs_clamped,
        "cpu_count": os.cpu_count(),
        "cold_inline_s": round(cold_s, 3),
        "parallel_s": round(parallel_s, 3),
        "warm_pool_parallel_s": round(warm_pool_s, 3),
        "warm_cache_s": round(warm_s, 3),
        "parallel_speedup": round(cold_s / max(parallel_s, 1e-9), 2),
        "warm_pool_speedup": round(cold_s / max(warm_pool_s, 1e-9), 2),
        "warm_fraction_of_cold": round(warm_s / max(cold_s, 1e-9), 4),
        "workers_used": cold_stats.workers_used,
        "worker_reuse_batches": warm_pool_stats.worker_reuse,
        "substrate_misses_cold": cold_stats.substrate_misses,
        "substrate_misses_warm_pool": warm_pool_stats.substrate_misses,
        "substrate_rebuild_s": round(
            cold_stats.substrate_rebuild_s
            + warm_pool_stats.substrate_rebuild_s, 4,
        ),
        "parallel_identical": _sim_dicts(parallel) == _sim_dicts(inline),
        "warm_pool_identical": _sim_dicts(parallel2) == _sim_dicts(inline),
        "warm_identical": _sim_dicts(warm) == _sim_dicts(inline),
    }


def _save(report):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_runner.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return path


def test_runner_parallel_and_cache(capsys):
    report = run_runner_benchmark()
    _save(report)
    with capsys.disabled():
        print("\n== Runner: warm-worker sharding + warm cache ==")
        for key, value in report.items():
            print(f"  {key:>26}: {value}")

    # Determinism is unconditional: sharding, pool reuse and caching must
    # never change a single simulated byte.
    assert report["parallel_identical"]
    assert report["warm_pool_identical"]
    assert report["warm_identical"]
    # Warm cache replaces simulation with JSON reads: unconditionally
    # under 10% of the cold run (the ISSUE acceptance threshold).
    assert report["warm_fraction_of_cold"] < 0.10
    # Substrate rebuilds: at most one per unique spec signature per
    # worker (inline counts as one worker).
    workers = max(1, report["workers_used"])
    budget = report["unique_spec_signatures"] * workers
    assert report["substrate_misses_cold"] <= budget
    assert report["substrate_misses_warm_pool"] <= budget
    # The 0.8*N speedup gate needs physical cores; a clamped run has
    # nothing to gate (the clamp is itself the fix for the old
    # jobs-4-on-1-cpu slowdown).
    if (os.cpu_count() or 1) >= JOBS and not report["jobs_clamped"]:
        assert report["parallel_speedup"] >= 0.8 * JOBS


if __name__ == "__main__":
    report = run_runner_benchmark()
    path = _save(report)
    print(json.dumps(report, indent=2))
    print(f"archived -> {path}")
