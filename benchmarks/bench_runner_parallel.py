"""Runner benchmark: parallel sharding + content-addressed cache.

Measures the two performance claims of the sweep runner on a
representative sweep (the 12-cell fig7a alltoall power sweep):

* ``--jobs N`` shards cells across worker processes with *bit-identical*
  output — asserted here by comparing the simulated results, and asserted
  to be at least 2x faster when the host actually has the cores (the
  speedup assertion is skipped on 1-3 core machines, where a process
  pool cannot beat inline execution).
* a warm cache turns a re-run into pure JSON reads — asserted to cost
  under 10% of the cold run unconditionally.

The measured numbers are archived to ``results/BENCH_runner.json`` so a
regression shows up in review, wall-clock noise aside.
"""

import json
import os
import tempfile
import time

from repro.bench import CELL_PLANS
from repro.runner import ResultCache, clear_memo, run_cells

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "results")
JOBS = 4


def _sim_dicts(results):
    dicts = [r.to_dict() for r in results]
    for d in dicts:
        d.pop("wall_time_s")  # host-side timing, not simulated output
    return dicts


def run_runner_benchmark():
    cells = CELL_PLANS["fig7a"]().cells
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(os.path.join(tmp, "cache"))

        clear_memo()
        t0 = time.perf_counter()
        inline = run_cells(cells, jobs=1, cache=cache)
        cold_s = time.perf_counter() - t0

        clear_memo()
        t0 = time.perf_counter()
        warm = run_cells(cells, jobs=1, cache=cache)
        warm_s = time.perf_counter() - t0

        clear_memo()
        t0 = time.perf_counter()
        parallel = run_cells(cells, jobs=JOBS, cache=None)
        parallel_s = time.perf_counter() - t0

    return {
        "sweep": "fig7a",
        "cells": len(cells),
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "cold_inline_s": round(cold_s, 3),
        "parallel_s": round(parallel_s, 3),
        "warm_cache_s": round(warm_s, 3),
        "parallel_speedup": round(cold_s / max(parallel_s, 1e-9), 2),
        "warm_fraction_of_cold": round(warm_s / max(cold_s, 1e-9), 4),
        "parallel_identical": _sim_dicts(parallel) == _sim_dicts(inline),
        "warm_identical": _sim_dicts(warm) == _sim_dicts(inline),
    }


def _save(report):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_runner.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return path


def test_runner_parallel_and_cache(capsys):
    report = run_runner_benchmark()
    _save(report)
    with capsys.disabled():
        print("\n== Runner: parallel sharding + warm cache ==")
        for key, value in report.items():
            print(f"  {key:>22}: {value}")

    # Determinism is unconditional: sharding and caching must never
    # change a single simulated byte.
    assert report["parallel_identical"]
    assert report["warm_identical"]
    # Warm cache replaces simulation with JSON reads: unconditionally
    # under 10% of the cold run (the ISSUE acceptance threshold).
    assert report["warm_fraction_of_cold"] < 0.10
    # The >=2x parallel speedup needs physical cores to exist.
    if (report["cpu_count"] or 1) >= JOBS:
        assert report["parallel_speedup"] >= 2.0


if __name__ == "__main__":
    report = run_runner_benchmark()
    path = _save(report)
    print(json.dumps(report, indent=2))
    print(f"archived -> {path}")
