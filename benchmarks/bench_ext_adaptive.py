"""Extension: per-call ADAPTIVE power policy vs the paper's static
schemes on a mixed-size alltoall workload."""

from repro.bench import extension_adaptive_policy


def test_extension_adaptive_policy(report):
    headers, rows = report(
        "ext_adaptive_policy",
        "Extension - adaptive per-call policy (mixed-size alltoalls)",
        extension_adaptive_policy,
    )
    by_scheme = {r[0]: r for r in rows}
    # Adaptive lands at (or below) the best static energy.
    best_static = min(
        by_scheme["No-Power"][2],
        by_scheme["Freq-Scaling"][2],
        by_scheme["Proposed"][2],
    )
    assert by_scheme["Adaptive"][2] <= best_static * 1.02
    # And it throttles only for the calls that deserve it.
    assert 0 < by_scheme["Adaptive"][3] <= by_scheme["Proposed"][3]
