"""Extension: per-call ADAPTIVE power policy vs the paper's static
schemes on a mixed-size alltoall workload.

Set ``REPRO_BENCH_QUICK=1`` for the reduced sweep used by the CI smoke
job (archived under a ``_quick`` name, so no baseline comparison).
"""

import os

from repro.bench import extension_adaptive_policy

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))


def test_extension_adaptive_policy(report):
    kwargs = {"sizes": (256 << 10, 1 << 20)} if QUICK else {}
    headers, rows = report(
        "ext_adaptive_policy" + ("_quick" if QUICK else ""),
        "Extension - adaptive per-call policy (mixed-size alltoalls)",
        extension_adaptive_policy,
        **kwargs,
    )
    by_scheme = {r[0]: r for r in rows}
    # Adaptive lands at (or below) the best static energy.
    best_static = min(
        by_scheme["No-Power"][2],
        by_scheme["Freq-Scaling"][2],
        by_scheme["Proposed"][2],
    )
    assert by_scheme["Adaptive"][2] <= best_static * 1.02
    # And it throttles only for the calls that deserve it.
    assert 0 < by_scheme["Adaptive"][3] <= by_scheme["Proposed"][3]
