"""Figure 9: CPMD execution time and alltoall time, 32/64 processes,
three datasets, under the three schemes."""

from repro.bench import fig9_cpmd_performance


def test_fig09_cpmd(report):
    headers, rows = report(
        "fig09_cpmd_performance",
        "Fig 9 - CPMD: total and alltoall time (strong scaling)",
        fig9_cpmd_performance,
    )
    by_key = {(r[0], r[1], r[2]): r for r in rows}
    for dataset in ("cpmd.wat-32-inp-1", "cpmd.wat-32-inp-2", "cpmd.ta-inp-md"):
        t32 = by_key[(dataset, 32, "No-Power")][3]
        t64 = by_key[(dataset, 64, "No-Power")][3]
        # Strong scaling: runtime drops by ~50% from 32 to 64 processes.
        assert 0.4 < t64 / t32 < 0.65
        # Power schemes cost only a few percent (paper: 2-5%).
        for scheme in ("Freq-Scaling", "Proposed"):
            overhead = by_key[(dataset, 64, scheme)][3] / t64 - 1.0
            assert overhead < 0.08
