"""§VII-D: MPI_Alltoallv under the three schemes (the paper reports it
mirrors the Alltoall results; full data in its tech report [26])."""

from repro.bench import alltoallv_power


def test_alltoallv_power(report):
    headers, rows = report(
        "alltoallv_power",
        "Alltoallv 64 procs: latency under the three schemes (§VII-D)",
        alltoallv_power,
    )
    large = rows[-1]
    # Same shape as Fig 7(a): bounded overhead, proposed ≈ freq-scaling.
    assert large[4] < 0.20
    assert abs(large[3] - large[2]) / large[2] < 0.10
    assert large[1] < large[2] < large[3]
