#!/usr/bin/env python
"""Compare the kernel-scaling speedup of a fresh run against a baseline.

Usage::

    python benchmarks/check_kernel_scaling.py BASELINE.txt FRESH.txt [--max-regression 0.20]

Both files are ``results/kernel_scaling.txt`` reports; the number under
test is the trailing ``speedup (same horizon): N.Nx`` note.  Exits
non-zero when the fresh speedup regresses by more than the allowed
fraction — the CI bench-smoke job runs this to catch perf regressions in
the incremental fabric re-rating path.
"""

import argparse
import re
import sys

SPEEDUP_RE = re.compile(r"speedup \(same horizon\):\s*([0-9.]+)x")


def read_speedup(path: str) -> float:
    with open(path) as fh:
        text = fh.read()
    match = SPEEDUP_RE.search(text)
    if match is None:
        sys.exit(f"{path}: no 'speedup (same horizon)' note found")
    return float(match.group(1))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional drop vs baseline (default 0.20)")
    args = parser.parse_args(argv)

    baseline = read_speedup(args.baseline)
    fresh = read_speedup(args.fresh)
    floor = baseline * (1.0 - args.max_regression)
    verdict = "OK" if fresh >= floor else "REGRESSION"
    print(
        f"kernel-scaling speedup: baseline {baseline:.1f}x, fresh {fresh:.1f}x, "
        f"floor {floor:.1f}x -> {verdict}"
    )
    return 0 if fresh >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
