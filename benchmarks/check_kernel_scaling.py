#!/usr/bin/env python
"""Gate the kernel-scaling benchmarks in CI.

Usage::

    python benchmarks/check_kernel_scaling.py BASELINE.txt FRESH.txt \
        [--max-regression 0.20] [--kernel-json results/BENCH_kernel.json \
         --min-speedup 5.0] [--power-json results/BENCH_power.json \
         --min-power-speedup 5.0]

Three independent gates:

* **Incremental re-rating regression** — both positional files are
  ``results/kernel_scaling.txt`` reports; the number under test is the
  trailing ``speedup (same horizon): N.Nx`` note.  Fails when the fresh
  speedup regresses by more than the allowed fraction.
* **Vectorized kernel** (``--kernel-json``) — reads the
  ``BENCH_kernel.json`` report emitted by ``bench_kernel_scaling.py``
  and fails unless the vectorized kernel is at least ``--min-speedup``
  faster than the scalar oracle on the gated (windowed) alltoall *and*
  produced byte-identical results.
* **Columnar power path** (``--power-json``) — reads the
  ``BENCH_power.json`` report emitted by ``bench_power_path.py`` and
  fails unless the columnar accountant + vectorized meter replayed the
  governed/faulted mutation stream at least ``--min-power-speedup``
  faster than the object-segment oracle with byte-identical energies
  and traces.
* **Power-budget arbiter** (``--arbiter-json``) — reads the
  ``BENCH_arbiter.json`` report emitted by ``bench_ext_arbiter.py`` and
  fails unless the redistribute policy beat the uniform split on
  makespan at the same global cap, per-job energy attribution summed
  exactly to the accountant total, and the re-run was byte-identical.
"""

import argparse
import json
import re
import sys

SPEEDUP_RE = re.compile(r"speedup \(same horizon\):\s*([0-9.]+)x")


def read_speedup(path: str) -> float:
    with open(path) as fh:
        text = fh.read()
    match = SPEEDUP_RE.search(text)
    if match is None:
        sys.exit(f"{path}: no 'speedup (same horizon)' note found")
    return float(match.group(1))


def check_kernel_json(path: str, min_speedup: float) -> bool:
    """Gate the vectorized-kernel report; returns True when it passes."""
    with open(path) as fh:
        report = json.load(fh)
    speedup = report["vector_speedup"]
    identical = report["identical"]
    ok = identical and speedup >= min_speedup
    verdict = "OK" if ok else "FAIL"
    print(
        f"vector kernel: {speedup:.1f}x vs scalar "
        f"(floor {min_speedup:.1f}x), identical={identical} -> {verdict}"
    )
    return ok


def check_power_json(path: str, min_speedup: float) -> bool:
    """Gate the columnar power-path report; returns True when it passes."""
    with open(path) as fh:
        report = json.load(fh)
    speedup = report["power_speedup"]
    identical = report["identical"]
    ok = identical and speedup >= min_speedup
    verdict = "OK" if ok else "FAIL"
    print(
        f"power path: {speedup:.1f}x vs object oracle "
        f"(floor {min_speedup:.1f}x), identical={identical} -> {verdict}"
    )
    return ok


def check_arbiter_json(path: str) -> bool:
    """Gate the power-budget arbiter report; returns True when it passes."""
    with open(path) as fh:
        report = json.load(fh)
    speedup = report["makespan_speedup"]
    exact = report["attribution_exact"]
    identical = report["identical"]
    ok = exact and identical and speedup > 1.0
    verdict = "OK" if ok else "FAIL"
    print(
        f"arbiter: redistribute vs uniform makespan {speedup:.2f}x "
        f"(floor >1.00x) on {report['scenario']['n_nodes']} nodes, "
        f"attribution_exact={exact}, identical={identical} -> {verdict}"
    )
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional drop vs baseline (default 0.20)")
    parser.add_argument("--kernel-json", default=None,
                        help="BENCH_kernel.json report to gate (optional)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="vectorized-kernel speedup floor (default 5.0)")
    parser.add_argument("--power-json", default=None,
                        help="BENCH_power.json report to gate (optional)")
    parser.add_argument("--min-power-speedup", type=float, default=5.0,
                        help="columnar power-path speedup floor (default 5.0)")
    parser.add_argument("--arbiter-json", default=None,
                        help="BENCH_arbiter.json report to gate (optional)")
    args = parser.parse_args(argv)

    baseline = read_speedup(args.baseline)
    fresh = read_speedup(args.fresh)
    floor = baseline * (1.0 - args.max_regression)
    ok = fresh >= floor
    verdict = "OK" if ok else "REGRESSION"
    print(
        f"kernel-scaling speedup: baseline {baseline:.1f}x, fresh {fresh:.1f}x, "
        f"floor {floor:.1f}x -> {verdict}"
    )
    if args.kernel_json is not None:
        ok = check_kernel_json(args.kernel_json, args.min_speedup) and ok
    if args.power_json is not None:
        ok = check_power_json(args.power_json, args.min_power_speedup) and ok
    if args.arbiter_json is not None:
        ok = check_arbiter_json(args.arbiter_json) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
