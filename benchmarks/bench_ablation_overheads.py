"""Ablation (paper §VI-A2): sensitivity of the proposed alltoall to the
DVFS / T-state transition cost (2·Odvfs + N·Othrottle overhead term)."""

from repro.bench import ablation_transition_overheads


def test_ablation_overheads(report):
    headers, rows = report(
        "ablation_overheads",
        "Ablation - proposed alltoall vs transition overhead",
        ablation_transition_overheads,
    )
    latencies = [row[1] for row in rows]
    # Latency grows monotonically with the transition cost...
    assert all(a <= b + 1e-9 for a, b in zip(latencies, latencies[1:]))
    # ...and Nehalem-class 12us transitions cost <2% vs free transitions.
    assert latencies[1] / latencies[0] < 1.02
