"""Power-path scaling: columnar timeline vs the object-segment oracle.

The fabric kernel is vectorized (PR 8), which leaves energy accounting as
the per-state-change Python cost in governed/DVFS-heavy cells: every core
mutation fires the accountant listener, evaluates the power model, and
records a constant-power segment; the meter then folds all segments into
buckets.

This benchmark isolates exactly that path.  A governed + faulted
64-node / 512-rank alltoall is simulated **once** with a recording tracer
that captures the core state-mutation stream (the 1:1 image of what the
accountant listener sees).  The stream is then replayed into two fresh
accountants:

* **columnar** — ``EnergyAccountant(columnar=True)`` (SegmentStore +
  memoized ``PowerModel(cached=True)`` + vectorized
  ``PowerMeter.from_segments``), the default production path;
* **object** — ``EnergyAccountant(columnar=False)`` with
  ``PowerModel(cached=False)`` and the scalar
  ``PowerMeter.from_segments_reference`` — the pre-optimization path,
  kept as the differential oracle.

Both replays must produce *byte-identical* per-core energies, totals and
meter traces (and match the live capture run), and the columnar path must
be at least :data:`MIN_POWER_SPEEDUP` times faster.  The report lands in
``results/BENCH_power.json`` and is gated in CI by
``check_kernel_scaling.py --power-json``.
"""

import gc
import json
import os
import time

import numpy as np

from repro.bench.report import format_table
from repro.cluster.cpu import Activity
from repro.cluster.specs import ClusterSpec
from repro.cluster.topology import Cluster
from repro.collectives.registry import CollectiveConfig, CollectiveEngine
from repro.faults.plan import parse_fault_spec
from repro.mpi.job import MpiJob
from repro.power.accounting import EnergyAccountant
from repro.power.meter import PowerMeter
from repro.power.model import PowerModel
from repro.runtime.governor import Governor, GovernorConfig, GovernorPolicy
from repro.sim.session import SimSession
from repro.sim.trace import Tracer

NODES = 64
RANKS = 512  # 64 nodes x 2 sockets x 4 cores
MSG_BYTES = 64 << 10
ITERATIONS = 1
FAULT_SPEC = "degrade:factor=0.6,frac=0.25;noise:period=500us,pulse=20us,frac=0.25"
FAULT_SEED = 7
#: Meter interval for the replayed trace: the governed alltoall's makespan
#: is a few hundred ms, so the paper's 0.5 s clamp-meter tick would yield
#: a single bucket; 0.2 ms gives a ~1000-point trace, proportional to the
#: paper's kW-vs-time plots.
METER_INTERVAL_S = 2e-4
#: Replays per mode; the reported wall is the best (the capture run is
#: expensive, the replays are not).
REPLAY_REPEATS = 3
#: Floor for the columnar-vs-object speedup (also enforced in CI by
#: check_kernel_scaling.py --power-json).
MIN_POWER_SPEEDUP = 5.0

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "results")

_FREQ, _TSTATE, _ACTIVITY = 0, 1, 2


class _RecordingTracer(Tracer):
    """Captures the core state-mutation stream as plain tuples.

    Core setters notify listeners first and trace second, both before the
    attribute flips — so ``(t, core_id, field, new)`` records, replayed as
    listener-call-then-apply, reproduce exactly what the live accountant
    observed.
    """

    enabled = True

    def __init__(self):
        self.records = []

    def emit(self, t, type, **data):  # every other event type: drop
        pass

    def power_state(self, t, core_id, node_id, kind, old, new):
        field = _FREQ if kind == "frequency" else _TSTATE
        self.records.append((t, core_id, field, new))

    def core_activity(self, t, core_id, node_id, old, new):
        self.records.append((t, core_id, _ACTIVITY, Activity(new)))


def capture_mutation_stream():
    """Run the governed + faulted alltoall once; returns the stream plus
    the live run's accounting results (the replay fidelity reference)."""
    tracer = _RecordingTracer()
    session = SimSession(
        cluster_spec=ClusterSpec.with_shape(NODES),
        tracer=tracer,
        governor=Governor(GovernorConfig(policy=GovernorPolicy.COUNTDOWN)),
        faults=parse_fault_spec(FAULT_SPEC, seed=FAULT_SEED),
    )
    job = MpiJob(RANKS, session=session, collectives=CollectiveEngine(CollectiveConfig()))

    def program(ctx):
        for _ in range(ITERATIONS):
            yield from ctx.alltoall(MSG_BYTES)

    wall_start = time.perf_counter()
    result = job.run(program)
    wall = time.perf_counter() - wall_start
    acct = session.accountant
    governor = session.governor
    live = {
        "wall_s": wall,
        "makespan_s": result.duration_s,
        "events": session.env.events_processed,
        "state_changes": len(tracer.records),
        "segments": len(acct.segments),
        "governor_drops": governor.drops,
        "timer_slots_armed": governor._timers.slots_armed,
        "timer_heap_entries": governor._timers.heap_timers,
        "per_core_energy_j": [
            acct.core_energy_j(core.core_id) for core in session.cluster.cores
        ],
        "cores_energy_j": acct.cores_energy_j(),
        "total_energy_j": acct.total_energy_j(),
    }
    return tracer.records, acct.finalized_at, live


def replay(records, end_time, columnar):
    """Feed the mutation stream into a fresh accountant of either mode,
    finalize, and meter-sample — the full power path, nothing else."""
    cluster = Cluster(ClusterSpec.with_shape(NODES))
    model = PowerModel(cached=columnar)  # oracle keeps the uncached model
    meter = PowerMeter(METER_INTERVAL_S)
    # Resolve core handles outside the timed region: the replay measures
    # the power path (listener + finalize + meter), not list indexing.
    cores = cluster.cores
    resolved = [(t, cores[cid], field, value)
                for t, cid, field, value in records]

    # timeit-style isolation: collect leftovers from the previous replay,
    # then keep the collector out of the timed region (the ~500k-tuple
    # record list makes every stray gen-2 pass a multi-ms charge billed
    # to whichever mode happens to be running).
    gc.collect()
    gc.disable()
    try:
        wall_start = time.perf_counter()
        acct = EnergyAccountant(cluster, model, columnar=columnar)
        on_change = acct._on_change
        for t, core, field, value in resolved:
            on_change(core, t)
            if field == _FREQ:
                core.frequency_ghz = value
            elif field == _TSTATE:
                core.tstate = value
            else:
                core.activity = value
        acct.finalize(end_time)
        if columnar:
            trace = meter.sample(acct)
        else:
            trace = meter.from_segments_reference(
                acct.segments, acct.start_time, end_time,
                base_w=model.params.node_base_w * cluster.n_nodes,
            )
        wall = time.perf_counter() - wall_start
    finally:
        gc.enable()

    segments = acct.segments
    n = len(segments)
    edge = [segments[i] for i in (0, 1, n // 2, n - 2, n - 1)] if n >= 2 else []
    return {
        "wall_s": wall,
        "segments": n,
        "per_core_energy_j": [
            acct.core_energy_j(core.core_id) for core in cores
        ],
        "cores_energy_j": acct.cores_energy_j(),
        "total_energy_j": acct.total_energy_j(),
        "trace": trace,
        "edge_segments": edge,
    }


def _identical(columnar, obj, live):
    """Byte-identical across the two replays, and faithful to the live run."""
    return (
        columnar["per_core_energy_j"] == obj["per_core_energy_j"]
        and columnar["cores_energy_j"] == obj["cores_energy_j"]
        and columnar["total_energy_j"] == obj["total_energy_j"]
        and columnar["segments"] == obj["segments"]
        and columnar["edge_segments"] == obj["edge_segments"]
        and np.array_equal(columnar["trace"].times_s, obj["trace"].times_s)
        and np.array_equal(columnar["trace"].power_w, obj["trace"].power_w)
        and columnar["per_core_energy_j"] == live["per_core_energy_j"]
        and columnar["total_energy_j"] == live["total_energy_j"]
        and columnar["segments"] == live["segments"]
    )


def run_power_path():
    """Capture once, replay both modes; returns (headers, rows, notes,
    report) where ``report`` is the ``results/BENCH_power.json`` payload."""
    records, end_time, live = capture_mutation_stream()

    replay(records[: len(records) // 16 or 1], end_time, columnar=True)  # warm-up
    runs = {"columnar": [], "object": []}
    for _ in range(REPLAY_REPEATS):
        runs["columnar"].append(replay(records, end_time, columnar=True))
        runs["object"].append(replay(records, end_time, columnar=False))
    col = min(runs["columnar"], key=lambda r: r["wall_s"])
    obj = min(runs["object"], key=lambda r: r["wall_s"])

    identical = _identical(col, obj, live)
    speedup = obj["wall_s"] / max(col["wall_s"], 1e-9)
    per_segment_ns = {
        mode: 1e9 * r["wall_s"] / max(r["segments"], 1)
        for mode, r in (("columnar", col), ("object", obj))
    }

    report = {
        "workload": {
            "nodes": NODES,
            "ranks": RANKS,
            "op": "alltoall",
            "msg_bytes": MSG_BYTES,
            "iterations": ITERATIONS,
            "governor": "countdown",
            "fault_spec": FAULT_SPEC,
            "fault_seed": FAULT_SEED,
        },
        "capture": {
            "wall_s": live["wall_s"],
            "makespan_s": live["makespan_s"],
            "events": live["events"],
            "state_changes": live["state_changes"],
            "segments": live["segments"],
            "governor_drops": live["governor_drops"],
            "timer_slots_armed": live["timer_slots_armed"],
            "timer_heap_entries": live["timer_heap_entries"],
        },
        "meter": {
            "interval_s": METER_INTERVAL_S,
            "buckets": len(col["trace"]),
        },
        "replays": {
            "columnar": {
                "wall_s": col["wall_s"],
                "per_segment_ns": per_segment_ns["columnar"],
            },
            "object": {
                "wall_s": obj["wall_s"],
                "per_segment_ns": per_segment_ns["object"],
            },
        },
        "total_energy_j": col["total_energy_j"],
        "power_speedup": speedup,
        "identical": identical,
        "min_speedup": MIN_POWER_SPEEDUP,
    }

    headers = ["path", "wall (s)", "ns/segment", "segments", "identical"]
    rows = [
        ("object oracle", round(obj["wall_s"], 3),
         round(per_segment_ns["object"]), obj["segments"], identical),
        ("columnar", round(col["wall_s"], 3),
         round(per_segment_ns["columnar"]), col["segments"], identical),
    ]
    notes = [
        f"{NODES} nodes x 8 ranks, countdown-governed alltoall of "
        f"{MSG_BYTES >> 10} KB under '{FAULT_SPEC}' (seed {FAULT_SEED})",
        f"captured {live['state_changes']} core state changes "
        f"({live['segments']} segments) from one "
        f"{live['makespan_s'] * 1e3:.1f} ms run; replayed into both "
        "accountant modes + meter fold "
        f"(best of {REPLAY_REPEATS})",
        "identical = exact equality of per-core energies, totals, segment "
        "log and sampled trace across modes (and vs the live run)",
        f"θ-timer coalescing: {live['timer_slots_armed']} arms -> "
        f"{live['timer_heap_entries']} heap entries",
        f"columnar power-path speedup: {speedup:.1f}x "
        f"(gate: >={MIN_POWER_SPEEDUP:.0f}x)",
    ]
    return headers, rows, notes, report


def save_power_json(report, results_dir=None):
    path = os.path.join(
        os.path.abspath(results_dir or RESULTS_DIR), "BENCH_power.json"
    )
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def test_power_path_speedup(capsys):
    headers, rows, notes, report = run_power_path()
    from repro.bench.report import render_experiment

    path = save_power_json(report)
    text = render_experiment(
        "Power path - columnar timeline vs object-segment oracle",
        headers, rows, "\n".join(f"  {n}" for n in notes),
    )
    with capsys.disabled():
        print("\n" + text, flush=True)
        print(f"  wrote {os.path.relpath(path)}", flush=True)

    # Both accountant modes are the same integrator: byte-identical.
    assert report["identical"], report
    # The columnar path carries the power-path vectorization gate.
    assert report["power_speedup"] >= MIN_POWER_SPEEDUP, report
    # Coalescing must actually batch the governor's θ churn.
    capture = report["capture"]
    assert capture["timer_heap_entries"] < capture["timer_slots_armed"] / 2


if __name__ == "__main__":  # standalone: python benchmarks/bench_power_path.py
    headers, rows, notes, report = run_power_path()
    print(format_table(headers, rows))
    for note in notes:
        print(f"  {note}")
    print(f"  wrote {save_power_json(report)}")
