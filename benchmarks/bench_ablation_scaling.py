"""Ablation: proposed-alltoall behaviour across cluster sizes (eq. 3's
linear-in-N overhead, size-independent power saving)."""

from repro.bench import ablation_cluster_scaling


def test_ablation_cluster_scaling(report):
    headers, rows = report(
        "ablation_cluster_scaling",
        "Ablation - proposed alltoall vs cluster size (256KB)",
        ablation_cluster_scaling,
    )
    savings = [row[5] for row in rows]
    # Power saving is roughly size-independent (within a few points).
    assert max(savings) - min(savings) < 0.08
    for s in savings:
        assert 0.20 < s < 0.40
    # Overhead stays bounded while the machine quadruples.
    for row in rows:
        assert row[4] < 0.30
