"""Shared machinery for the reproduction benchmarks.

Every benchmark runs one experiment from :mod:`repro.bench.experiments`
exactly once under pytest-benchmark (the interesting metric is the
*simulated* result, not the wall time of the simulation), prints the
paper-style table to the terminal, and archives it under ``results/``.
"""

import os

import pytest

from repro.bench import check_against_baseline, render_experiment, save_json, save_report
from repro.bench.plot import chart_from_rows

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "results")
EXPECTED_DIR = os.path.join(os.path.dirname(__file__), "expected")


@pytest.fixture
def report(benchmark, capsys):
    """Run an experiment once, print + archive its table, return the rows.

    ``chart`` (optional) holds kwargs for
    :func:`repro.bench.plot.chart_from_rows`; the rendered ASCII figure is
    appended to the archived report.
    """

    def _run(name: str, title: str, experiment, *args, chart=None, **kwargs):
        headers, rows, notes = benchmark.pedantic(
            experiment, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        text = render_experiment(title, headers, rows, notes)
        if chart is not None:
            text += "\n" + chart_from_rows(rows, **chart) + "\n"
        save_report(name, text, results_dir=os.path.abspath(RESULTS_DIR))
        save_json(name, headers, rows, notes, results_dir=os.path.abspath(RESULTS_DIR))
        # Guard the reproduction: deterministic results must match the
        # committed baseline (see repro.bench.regression).
        check_against_baseline(name, headers, rows, os.path.abspath(EXPECTED_DIR))
        with capsys.disabled():
            print("\n" + text, flush=True)
        return headers, rows

    return _run
