"""Ablation: DVFS target-frequency sweep — is the paper's "minimum
possible frequency" (§V) actually the energy-optimal choice?"""

from repro.bench import ablation_fmin_sweep


def test_ablation_fmin_sweep(report):
    headers, rows = report(
        "ablation_fmin_sweep",
        "Ablation - DVFS target frequency vs energy (alltoall 1MB, 64p)",
        ablation_fmin_sweep,
        chart=dict(
            y_columns=[3],
            labels=["energy (J)"],
            title="collective energy vs DVFS target (GHz)",
        ),
    )
    energies = [row[3] for row in rows]
    # Energy decreases monotonically toward fmin...
    assert all(a <= b + 1e-9 for a, b in zip(energies, energies[1:]))
    # ...while latency grows only mildly (uncore coupling, ~10%).
    assert rows[0][1] / rows[-1][1] < 1.15
