"""Validation of the analytical models (equations 1-4) against the
simulator at 64 processes."""

from repro.bench import models_validation


def test_models_validation(report):
    headers, rows = report(
        "models_validation",
        "Models - equations (1)-(4) vs simulator (64 procs, 1MB)",
        models_validation,
    )
    for name, predicted, simulated in rows:
        assert 0.4 < predicted / simulated < 2.5, name
