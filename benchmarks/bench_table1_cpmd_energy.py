"""Table I: CPMD energy consumption (kJ) under the three schemes."""

import pytest

from repro.bench import table1_cpmd_energy

#: Paper Table I values (kJ): dataset → {ranks: (default, freq, proposed)}.
PAPER_TABLE1 = {
    "cpmd.wat-32-inp-1": {32: (28.4736, 27.096, 27.20), 64: (31.79, 29.944, 29.49)},
    "cpmd.wat-32-inp-2": {32: (32.76, 31.72, 31.36), 64: (38.68, 38.84, 38.13)},
    "cpmd.ta-inp-md": {32: (265.56, 259.48, 258.96), 64: (304.5312, 289.20, 281.04)},
}


def test_table1_cpmd_energy(report):
    headers, rows = report(
        "table1_cpmd_energy",
        "Table I - CPMD power statistics (kJ)",
        table1_cpmd_energy,
    )
    for dataset, procs, default, freq, proposed in rows:
        paper = PAPER_TABLE1[dataset][procs]
        # Absolute agreement with the paper's default column within 5%.
        assert default == pytest.approx(paper[0], rel=0.05)
        # The proposed scheme always saves energy vs default.
        assert proposed < default
        # Saving magnitude tracks the paper within a few percent of total.
        measured_saving = 1 - proposed / default
        paper_saving = 1 - paper[2] / paper[0]
        assert abs(measured_saving - paper_saving) < 0.05
