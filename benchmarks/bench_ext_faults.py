"""Extension: governor policies under deterministic fault injection.

The ISSUE-3 acceptance surface: on a mildly perturbed machine (degraded
NICs on a quarter of the nodes + OS noise on a quarter of the cores,
fixed seed) the countdown policy must keep its envelope — latency within
2% of the *equally perturbed* No-Power baseline while still saving
energy — and the whole sweep must be bit-reproducible run over run.

Set ``REPRO_BENCH_QUICK=1`` for the reduced sweep used by the CI
fault-smoke step; quick runs archive under ``*_quick`` names so they
never compare against full-sweep baselines.
"""

import os

import pytest

from repro.bench import extension_faults_governor, use_runner
from repro.runner import SweepStats, resolve_jobs

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SUFFIX = "_quick" if QUICK else ""


@pytest.fixture(autouse=True)
def _runner_sweep(request, capsys):
    """Every sweep rides the cell runner: ``REPRO_JOBS`` shards cells
    across the warm-worker pool (the CI fault-smoke step sets
    ``REPRO_JOBS=2``) and the sweep accounting prints next to the
    benchmark numbers."""
    stats = SweepStats(experiment=request.node.name)
    with use_runner(jobs=resolve_jobs(None, default=1), stats=stats):
        yield
    with capsys.disabled():
        print(f"\n  {stats.one_line()}")


def test_ext_faults_governor(report):
    sizes = (256 << 10,) if QUICK else (256 << 10, 1 << 20)
    headers, rows = report(
        f"ext_faults_governor{SUFFIX}",
        "Extension - governor policies under fault injection",
        extension_faults_governor,
        sizes=sizes,
        iterations=2 if QUICK else 3,
    )
    for size in {r[0] for r in rows}:
        by = {(r[1], r[2]): r for r in rows if r[0] == size}
        for fault in ("quiet", "mild"):
            no_power = by[(fault, "No-Power")]
            countdown = by[(fault, "Countdown")]
            # The acceptance envelope survives mild perturbation: latency
            # hugs the equally-faulted baseline.  The strict 2% bound is
            # the ISSUE claim *under noise*; quiet gets 3% because at
            # these sizes the unperturbed waits are short enough that
            # transition charges are a slightly larger relative cost.
            bound = 1.02 if fault == "mild" else 1.03
            assert countdown[3] <= no_power[3] * bound
            # ...while the throttled waits still save energy.
            assert countdown[4] < no_power[4]
            assert countdown[5] > 0
            # Predictive pre-scaling keeps beating countdown on energy
            # even when the machine misbehaves.
            assert by[(fault, "Predictive")][4] < countdown[4]
        # Faults genuinely perturb: the mild baseline is measurably slower
        # and hungrier than the quiet one.
        assert by[("mild", "No-Power")][3] > by[("quiet", "No-Power")][3] * 1.1
        assert by[("mild", "No-Power")][4] > by[("quiet", "No-Power")][4]


def test_ext_faults_determinism():
    """Two identical sweeps under the same seed are byte-for-byte equal
    (every float in every row — events, energy, drops)."""
    kwargs = dict(sizes=(64 << 10,), iterations=1 if QUICK else 2, seed=11)
    _, rows_a, _ = extension_faults_governor(**kwargs)
    _, rows_b, _ = extension_faults_governor(**kwargs)
    assert rows_a == rows_b
