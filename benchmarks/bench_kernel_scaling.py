"""Kernel scaling: incremental re-rating, vectorized kernel, timer churn.

Three studies of the simulator itself (no committed wall-clock baseline —
machine-dependent; the asserted properties are orderings and exactness):

* **Incremental vs full re-rating** (scalar kernel): a 64-node / 512-rank
  XOR-schedule alltoall keeps ~512 flows in flight.  Whole-fabric
  re-rating touches every one of them on every flow arrival/completion;
  the incremental re-rater only re-solves the connected component that
  actually changed.  Both modes simulate the *same* schedule to the same
  horizon — identical bytes delivered — so the wall-clock gap is pure
  kernel overhead.
* **Vectorized vs scalar kernel**: the same alltoall run to *completion*
  under both fabric kernels (``NetworkSpec(vectorized=...)``), serialized
  (one message per rank in flight) and windowed (4 outstanding rounds per
  rank — how real MPI alltoalls post, and the contended regime the paper
  studies).  The kernels must agree byte-for-byte; the windowed speedup
  is gated at >=5x by ``check_kernel_scaling.py`` via
  ``results/BENCH_kernel.json``.
* **Timer churn**: cancelled-timer heap compaction vs pure lazy deletion.
"""

import json
import os
import time

from repro.bench.report import format_table
from repro.network import NetworkSpec
from repro.network.fabric import Fabric
from repro.sim import Environment

NODES = 64
RANKS_PER_NODE = 8
RANKS = NODES * RANKS_PER_NODE  # 512
ROUNDS = 16
MSG_BYTES = 64 << 10
NIC_BW = 3.2e9
#: Outstanding rounds per rank in the windowed alltoall (window=1 is the
#: fully serialized exchange).
WINDOW = 4
#: Floor for the windowed vectorized-vs-scalar speedup (also enforced in
#: CI by check_kernel_scaling.py --kernel-json).
MIN_VECTOR_SPEEDUP = 5.0

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "results")


def _build(incremental: bool):
    """Fresh env + fabric + the full alltoall schedule (not yet run).

    Pinned to the scalar kernel: incremental-vs-full re-rating is a
    property of the scalar object-graph re-rater (the vector kernel
    batches whole admission waves instead).
    """
    env = Environment()
    fabric = Fabric(
        env, NetworkSpec(incremental_rerate=incremental, vectorized=False)
    )
    up = [fabric.add_link(f"up:{n}", NIC_BW) for n in range(NODES)]
    dn = [fabric.add_link(f"dn:{n}", NIC_BW) for n in range(NODES)]

    def rank_proc(env, rank):
        node, slot = divmod(rank, RANKS_PER_NODE)
        for step in range(1, ROUNDS + 1):
            peer_node = node ^ step  # XOR pairwise-exchange schedule
            yield fabric.transfer(
                [up[node], dn[peer_node]], MSG_BYTES,
                label=f"r{rank}.s{step}",
            )

    for rank in range(RANKS):
        env.process(rank_proc(env, rank))
    return env, fabric


def _run_mode(incremental: bool, horizon: float):
    env, fabric = _build(incremental)
    wall_start = time.perf_counter()
    env.run(until=horizon)
    wall = time.perf_counter() - wall_start
    return {
        "wall_s": wall,
        "events": env.events_processed,
        "rerate_calls": fabric.rerate_calls,
        "flows_rerated": fabric.flows_rerated,
        "bytes": fabric.bytes_delivered,
    }


def run_kernel_scaling():
    """Run both modes; returns (headers, rows, notes) like an experiment."""
    # Pass 1: incremental to completion, to learn the schedule's makespan.
    env, fabric = _build(incremental=True)
    wall_start = time.perf_counter()
    env.run()
    wall_complete = time.perf_counter() - wall_start
    makespan = env.now
    total_bytes = fabric.bytes_delivered
    assert total_bytes == RANKS * ROUNDS * MSG_BYTES

    # Pass 2: both modes to the same fixed horizon (full recompute cannot
    # afford the whole schedule — that asymmetry is the point).
    horizon = makespan * 0.25
    inc = _run_mode(True, horizon)
    full = _run_mode(False, horizon)

    headers = [
        "mode", "wall (s)", "events", "rerate calls",
        "flows re-rated", "MB delivered",
    ]
    rows = [
        (
            name,
            round(r["wall_s"], 3),
            r["events"],
            r["rerate_calls"],
            r["flows_rerated"],
            round(r["bytes"] / 1e6, 3),
        )
        for name, r in (("incremental", inc), ("full recompute", full))
    ]
    notes = [
        f"{NODES} nodes x {RANKS_PER_NODE} ranks, {ROUNDS}-round XOR "
        f"alltoall of {MSG_BYTES >> 10} KB messages "
        f"({RANKS * ROUNDS} flows total), scalar kernel",
        f"fixed horizon = {horizon * 1e3:.3f} ms simulated "
        f"(25% of the {makespan * 1e3:.3f} ms makespan)",
        f"incremental full-schedule completion: {wall_complete:.3f} s wall, "
        f"{total_bytes / 1e6:.0f} MB",
        "speedup (same horizon): "
        f"{full['wall_s'] / max(inc['wall_s'], 1e-9):.1f}x",
    ]
    return headers, rows, notes, inc, full


# -- vectorized vs scalar kernel ---------------------------------------------

def _build_alltoall(vectorized: bool, window: int):
    """The same 64x512 XOR alltoall with ``window`` outstanding rounds
    per rank, under the chosen fabric kernel."""
    env = Environment()
    fabric = Fabric(env, NetworkSpec(vectorized=vectorized))
    up = [fabric.add_link(f"up:{n}", NIC_BW) for n in range(NODES)]
    dn = [fabric.add_link(f"dn:{n}", NIC_BW) for n in range(NODES)]

    def rank_proc(env, rank):
        node, slot = divmod(rank, RANKS_PER_NODE)
        for base in range(1, ROUNDS + 1, window):
            events = [
                fabric.transfer(
                    [up[node], dn[node ^ step]], MSG_BYTES,
                    label=f"r{rank}.s{step}",
                )
                for step in range(base, min(base + window, ROUNDS + 1))
            ]
            yield env.all_of(events)

    for rank in range(RANKS):
        env.process(rank_proc(env, rank))
    return env, fabric


def _run_alltoall(vectorized: bool, window: int):
    env, fabric = _build_alltoall(vectorized, window)
    wall_start = time.perf_counter()
    env.run()
    return {
        "wall_s": time.perf_counter() - wall_start,
        "makespan_s": env.now,
        "bytes": fabric.bytes_delivered,
        "link_bytes": fabric.link_bytes,
        "rerate_calls": fabric.rerate_calls,
        "flows_rerated": fabric.flows_rerated,
    }


def run_vector_kernel():
    """Vectorized vs scalar kernel on the full alltoall, both window
    shapes; returns (headers, rows, notes, report) where ``report`` is
    the ``results/BENCH_kernel.json`` payload."""
    _run_alltoall(True, 1)  # warm-up: numpy one-time dispatch setup

    cells = {}
    for name, window in (("serialized", 1), (f"window={WINDOW}", WINDOW)):
        scalar = _run_alltoall(False, window)
        vector = _run_alltoall(True, window)
        identical = (
            scalar["makespan_s"] == vector["makespan_s"]
            and scalar["bytes"] == vector["bytes"]
            and scalar["link_bytes"] == vector["link_bytes"]
        )
        cells[name] = {
            "window": window,
            "scalar_wall_s": scalar["wall_s"],
            "vector_wall_s": vector["wall_s"],
            "speedup": scalar["wall_s"] / max(vector["wall_s"], 1e-9),
            "identical": identical,
            "makespan_s": vector["makespan_s"],
            "bytes": vector["bytes"],
        }

    gated = cells[f"window={WINDOW}"]
    report = {
        "workload": {
            "nodes": NODES,
            "ranks": RANKS,
            "rounds": ROUNDS,
            "msg_bytes": MSG_BYTES,
            "nic_bw": NIC_BW,
            "gated_window": WINDOW,
        },
        "cells": cells,
        "vector_speedup": gated["speedup"],
        "identical": all(c["identical"] for c in cells.values()),
        "min_speedup": MIN_VECTOR_SPEEDUP,
    }

    headers = ["schedule", "scalar (s)", "vector (s)", "speedup", "identical"]
    rows = [
        (
            name,
            round(c["scalar_wall_s"], 3),
            round(c["vector_wall_s"], 3),
            f"{c['speedup']:.1f}x",
            c["identical"],
        )
        for name, c in cells.items()
    ]
    notes = [
        f"{NODES} nodes x {RANKS_PER_NODE} ranks, {ROUNDS}-round XOR "
        f"alltoall of {MSG_BYTES >> 10} KB messages, run to completion "
        "under both fabric kernels",
        f"window={WINDOW} posts {WINDOW} outstanding rounds per rank "
        "(contended components; the serialized exchange is the scalar "
        "re-rater's best case)",
        "identical = exact equality of makespan, bytes_delivered and "
        "per-link byte counters across kernels",
        f"vector kernel speedup (window={WINDOW}): {gated['speedup']:.1f}x "
        f"(gate: >={MIN_VECTOR_SPEEDUP:.0f}x)",
    ]
    return headers, rows, notes, report


def save_kernel_json(report, results_dir=None):
    path = os.path.join(
        os.path.abspath(results_dir or RESULTS_DIR), "BENCH_kernel.json"
    )
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _run_timer_churn(compact: bool, churn_iters: int = 40_000):
    """Arm a far-out timer and cancel it immediately, ``churn_iters``
    times — the governor-under-churn pattern that inflates the heap with
    garbage entries head purging can never reach."""
    env = Environment()
    if not compact:
        env.COMPACT_MIN = 10 ** 12  # threshold unreachable: lazy-only
    def driver(env):
        for i in range(churn_iters):
            timer = env.call_after(1e6, lambda t: None)
            timer.cancel()
            if i % 100 == 0:
                yield env.timeout(1e-6)
        yield env.timeout(0)

    env.process(driver(env))
    wall_start = time.perf_counter()
    env.run()
    return {
        "wall_s": time.perf_counter() - wall_start,
        "compactions": env.compactions,
    }


def run_timer_churn():
    """Compare cancelled-timer compaction against pure lazy deletion."""
    on = _run_timer_churn(compact=True)
    off = _run_timer_churn(compact=False)
    headers = ["mode", "wall (s)", "compactions"]
    rows = [
        ("fractional compaction", round(on["wall_s"], 3), on["compactions"]),
        ("lazy-only (head purge)", round(off["wall_s"], 3), off["compactions"]),
    ]
    notes = [
        "40k cancel-before-fire timers against ~400 live events",
        f"speedup: {off['wall_s'] / max(on['wall_s'], 1e-9):.1f}x",
    ]
    return headers, rows, notes, on, off


def test_incremental_rerate_beats_full_recompute(capsys):
    headers, rows, notes, inc, full = run_kernel_scaling()
    from repro.bench import save_report
    from repro.bench.report import render_experiment

    text = render_experiment(
        "Kernel scaling - incremental vs full fabric re-rating",
        headers, rows, "\n".join(f"  {n}" for n in notes),
    )
    save_report("kernel_scaling", text, results_dir=os.path.abspath(RESULTS_DIR))
    with capsys.disabled():
        print("\n" + text, flush=True)

    # Identical simulated state at the horizon: the incremental re-rater
    # is exact, not approximate.
    assert inc["bytes"] == full["bytes"]
    assert inc["events"] == full["events"]
    # Incremental touches far fewer flows per re-rating...
    assert inc["flows_rerated"] < full["flows_rerated"] / 5
    # ...and that shows up as wall-clock.
    assert inc["wall_s"] < full["wall_s"]


def test_vectorized_kernel_speedup(capsys):
    headers, rows, notes, report = run_vector_kernel()
    from repro.bench.report import render_experiment

    path = save_kernel_json(report)
    text = render_experiment(
        "Kernel scaling - vectorized vs scalar fabric kernel",
        headers, rows, "\n".join(f"  {n}" for n in notes),
    )
    with capsys.disabled():
        print("\n" + text, flush=True)
        print(f"  wrote {os.path.relpath(path)}", flush=True)

    # The two kernels are the same simulator: byte-identical end state.
    assert report["identical"], report
    # The windowed (contended) cell carries the vectorization gate.
    assert report["vector_speedup"] >= MIN_VECTOR_SPEEDUP, report


def test_timer_compaction_beats_lazy_only(capsys):
    headers, rows, notes, on, off = run_timer_churn()
    from repro.bench.report import render_experiment

    text = render_experiment(
        "Kernel scaling - cancelled-timer heap compaction",
        headers, rows, "\n".join(f"  {n}" for n in notes),
    )
    with capsys.disabled():
        print("\n" + text, flush=True)

    assert on["compactions"] > 0
    assert off["compactions"] == 0
    # Compaction keeps the heap near its live size; under heavy cancel
    # churn that is a clear wall-clock win (allow jitter headroom).
    assert on["wall_s"] < off["wall_s"] * 0.9


if __name__ == "__main__":  # standalone: python benchmarks/bench_kernel_scaling.py
    for run in (run_kernel_scaling, run_timer_churn):
        headers, rows, notes, *_ = run()
        print(format_table(headers, rows))
        for note in notes:
            print(f"  {note}")
    headers, rows, notes, report = run_vector_kernel()
    print(format_table(headers, rows))
    for note in notes:
        print(f"  {note}")
    print(f"  wrote {save_kernel_json(report)}")
