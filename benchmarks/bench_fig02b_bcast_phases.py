"""Figure 2(b): Bcast overall time vs network-phase time, 64 processes."""

from repro.bench import fig2b_bcast_phases


def test_fig02b_bcast_phases(report):
    headers, rows = report(
        "fig02b_bcast_phases",
        "Fig 2(b) - Bcast overall vs network phase (64 procs)",
        fig2b_bcast_phases,
    )
    # The network phase dominates at large sizes (the paper's observation).
    for row in rows[-2:]:
        assert row[3] > 0.5
