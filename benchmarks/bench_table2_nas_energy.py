"""Table II: NAS FT/IS energy consumption (kJ) under the three schemes."""

import pytest

from repro.bench import table2_nas_energy

#: Paper Table II values (kJ): kernel → {ranks: (default, freq, proposed)}.
PAPER_TABLE2 = {
    "nas-ft.C": {32: (16.36, 15.588, 15.472), 64: (17.056, 16.32, 16.16)},
    "nas-is.C": {32: (3.412, 3.248, 3.16), 64: (3.8456, 3.608, 3.52)},
}


def test_table2_nas_energy(report):
    headers, rows = report(
        "table2_nas_energy",
        "Table II - NAS power statistics (kJ)",
        table2_nas_energy,
    )
    for kernel, procs, default, freq, proposed in rows:
        paper = PAPER_TABLE2[kernel][procs]
        assert default == pytest.approx(paper[0], rel=0.05)
        assert proposed < freq < default  # scheme ordering
        measured_saving = 1 - proposed / default
        paper_saving = 1 - paper[2] / paper[0]
        assert abs(measured_saving - paper_saving) < 0.05
