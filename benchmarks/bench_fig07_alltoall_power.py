"""Figure 7: MPI_Alltoall under No-Power / Freq-Scaling / Proposed,
64 processes — (a) latency sweep, (b) sampled power timeline."""

from repro.bench import fig7a_alltoall_latency, fig7b_alltoall_power


def test_fig07a_latency(report):
    headers, rows = report(
        "fig07a_alltoall_latency",
        "Fig 7(a) - Alltoall 64 procs: latency under the three schemes",
        fig7a_alltoall_latency,
        chart=dict(
            y_columns=[1, 2, 3],
            labels=["No-Power", "Freq-Scaling", "Proposed"],
            logx=True, logy=True,
            title="latency (us) vs message size",
        ),
    )
    large = rows[-1]
    # Power-aware overhead stays bounded (paper: ~10%).
    assert large[4] < 0.20
    # Proposed tracks Freq-Scaling closely ("very little difference").
    assert abs(large[3] - large[2]) / large[2] < 0.10


def test_fig07b_power(report):
    headers, rows = report(
        "fig07b_alltoall_power",
        "Fig 7(b) - Alltoall 64 procs: power under the three schemes",
        fig7b_alltoall_power,
        chart=dict(
            y_columns=[1, 2, 3],
            labels=["No-Power", "Freq-Scaling", "Proposed"],
            title="system power (kW) vs time (s)",
        ),
    )
    # Steady-state samples reproduce the 2.3 / 1.8 / 1.6 kW levels.
    mid = rows[len(rows) // 2]
    assert 2.2 < mid[1] < 2.4
    assert 1.7 < mid[2] < 1.9
    assert 1.5 < mid[3] < 1.75
