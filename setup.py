"""Shim so `pip install -e . --no-use-pep517` works on offline boxes
without the `wheel` package (PEP 660 editable installs need it)."""

from setuptools import setup

setup()
