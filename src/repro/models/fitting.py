"""Fitting model constants from measurements.

The paper treats ``Cnet`` as "any positive integer" chosen to make
equation (1) match measurements; these helpers perform that calibration
explicitly — from simulator output here, from real benchmark sweeps in
the field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .params import ModelParams


@dataclass(frozen=True)
class HockneyFit:
    """Latency model t(M) = ts + M·tw fitted by least squares."""

    ts: float
    tw: float
    residual_rms: float

    def predict(self, nbytes: float) -> float:
        return self.ts + nbytes * self.tw

    @property
    def bandwidth(self) -> float:
        """Asymptotic bandwidth 1/tw (B/s)."""
        return 1.0 / self.tw if self.tw > 0 else float("inf")


def fit_hockney(sizes: Sequence[float], times: Sequence[float]) -> HockneyFit:
    """Fit (ts, tw) to a latency sweep."""
    if len(sizes) != len(times) or len(sizes) < 2:
        raise ValueError("need >= 2 matching (size, time) points")
    a = np.vstack([np.ones(len(sizes)), np.asarray(sizes, dtype=float)]).T
    y = np.asarray(times, dtype=float)
    (ts, tw), res, _, _ = np.linalg.lstsq(a, y, rcond=None)
    rms = float(np.sqrt(res[0] / len(y))) if len(res) else 0.0
    return HockneyFit(ts=float(ts), tw=float(tw), residual_rms=rms)


def fit_cnet(
    n_nodes: int,
    cores: int,
    sizes: Sequence[float],
    times: Sequence[float],
    params: ModelParams | None = None,
) -> float:
    """Least-squares ``Cnet`` for equation (1) on an alltoall sweep.

    eq (1): T = tw_inter · (P−c) · Cnet · M  ⇒  Cnet = Σ T·M / (k·Σ M²)
    with k = tw_inter · (P−c).
    """
    if len(sizes) != len(times) or not sizes:
        raise ValueError("need matching non-empty sweeps")
    params = params or ModelParams()
    p = n_nodes * cores
    k = params.tw_inter * (p - cores)
    m = np.asarray(sizes, dtype=float)
    t = np.asarray(times, dtype=float)
    cnet = float(np.dot(t, m) / (k * np.dot(m, m)))
    if cnet <= 0:
        raise ValueError("fitted Cnet must be positive")
    return cnet


def fit_cnet_from_simulation(
    n_ranks: int = 64,
    sizes: Tuple[int, ...] = (64 << 10, 256 << 10, 1 << 20),
) -> float:
    """Run the simulator's default alltoall over ``sizes`` and fit Cnet.

    For the paper testbed shape this lands near the ranks-per-HCA count
    (8 for 64 ranks) — confirming that the paper's abstract "contention
    factor" is, physically, HCA sharing.
    """
    from ..mpi.job import run_collective_once

    cores = 8
    n_nodes = n_ranks // cores
    times = [
        run_collective_once("alltoall", m, n_ranks, keep_segments=False).duration_s
        for m in sizes
    ]
    return fit_cnet(n_nodes, cores, sizes, times)
