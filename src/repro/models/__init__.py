"""Analytical performance & power models (paper §VI, equations 1–8)."""

from .fitting import HockneyFit, fit_cnet, fit_cnet_from_simulation, fit_hockney
from .params import ModelParams
from .performance import (
    dvfs_slowdown,
    t_alltoall_pairwise,
    t_alltoall_power_aware,
    t_bcast_power_aware,
    t_bcast_scatter_allgather,
)
from .power import (
    energy_alltoall_power_aware,
    energy_bcast_power_aware,
    energy_default,
    energy_dvfs,
    savings_ordering_holds,
)

__all__ = [
    "HockneyFit",
    "ModelParams",
    "dvfs_slowdown",
    "fit_cnet",
    "fit_cnet_from_simulation",
    "fit_hockney",
    "energy_alltoall_power_aware",
    "energy_bcast_power_aware",
    "energy_default",
    "energy_dvfs",
    "savings_ordering_holds",
    "t_alltoall_pairwise",
    "t_alltoall_power_aware",
    "t_bcast_power_aware",
    "t_bcast_scatter_allgather",
]
