"""Parameters of the analytical models (paper §VI).

The paper expresses its models in Hockney-style constants: per-word
transfer costs ``tw_*``, start-up costs ``ts_*``, the contention factor
``Cnet``, the throttling slowdown ``Cthrottle`` and the transition
overheads ``Odvfs`` / ``Othrottle``.  :meth:`ModelParams.from_specs`
derives them from the simulator's configuration so that model and
simulator describe the same machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.specs import CpuSpec
from ..network.params import NetworkSpec


@dataclass(frozen=True)
class ModelParams:
    """Constants for equations (1)–(8)."""

    #: Start-up cost of an intra-node exchange (s).
    ts_intra: float = 0.4e-6
    #: Per-byte cost of an intra-node exchange (s/B).
    tw_intra: float = 1.0 / 4.5e9
    #: Start-up cost of an inter-node exchange (s).
    ts_inter: float = 1.5e-6
    #: Per-byte cost of an inter-node exchange (s/B).
    tw_inter: float = 1.0 / 3.0e9
    #: Network contention factor (positive; 1 = no contention).
    cnet: float = 1.0
    #: Slowdown of the network phase when the leader socket is throttled.
    cthrottle: float = 1.05
    #: DVFS transition cost (s).
    o_dvfs: float = 12e-6
    #: T-state transition cost (s).
    o_throttle: float = 12e-6

    def __post_init__(self) -> None:
        if self.cnet < 1.0:
            raise ValueError("Cnet must be >= 1 (it multiplies transfer cost)")
        if self.cthrottle < 1.0:
            raise ValueError("Cthrottle must be >= 1")

    @classmethod
    def from_specs(
        cls,
        network: NetworkSpec | None = None,
        cpu: CpuSpec | None = None,
        cnet: float = 1.0,
        cthrottle: float = 1.05,
    ) -> "ModelParams":
        """Derive model constants from simulator specifications."""
        network = network or NetworkSpec()
        cpu = cpu or CpuSpec()
        return cls(
            ts_intra=network.shm_latency,
            tw_intra=1.0 / network.shm_bw,
            ts_inter=network.inter_node_latency,
            tw_inter=1.0 / network.nic_bw,
            cnet=cnet,
            cthrottle=cthrottle,
            o_dvfs=cpu.dvfs_latency_s,
            o_throttle=cpu.throttle_latency_s,
        )

    @classmethod
    def contended(cls, concurrent_flows: int, **kw) -> "ModelParams":
        """Convenience: Cnet for ``concurrent_flows`` ranks sharing one HCA
        (the block-mapped fully-subscribed layout of all paper runs)."""
        if concurrent_flows < 1:
            raise ValueError("need at least one flow")
        return cls.from_specs(cnet=float(concurrent_flows), **kw)
