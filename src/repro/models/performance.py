"""Analytical performance models — paper §VI-A, equations (1)–(4).

All functions return seconds for one collective of per-peer message size
``m_bytes`` on ``n_nodes`` nodes of ``cores`` cores each.
"""

from __future__ import annotations

from .params import ModelParams


def _validate(n_nodes: int, cores: int, m_bytes: float) -> None:
    if n_nodes < 1 or cores < 1:
        raise ValueError("need at least one node and one core")
    if m_bytes < 0:
        raise ValueError("message size must be >= 0")


def t_alltoall_pairwise(
    n_nodes: int, cores: int, m_bytes: float, params: ModelParams | None = None
) -> float:
    """Equation (1): ``T = tw_inter · (P − c) · Cnet · M``.

    The pairwise exchange's P−c inter-node steps dominate; intra-node steps
    are neglected as in the paper.
    """
    params = params or ModelParams()
    _validate(n_nodes, cores, m_bytes)
    p = n_nodes * cores
    return params.tw_inter * (p - cores) * params.cnet * m_bytes


def t_bcast_scatter_allgather(
    n_nodes: int, m_bytes: float, params: ModelParams | None = None
) -> float:
    """Equation (2): ``T = M(N−1) · tw_inter · (1 + 1/N)``.

    Scatter moves M(N−1)/N, the allgather ring M(N−1)/N per leader — the
    paper folds both into the closed form above.
    """
    params = params or ModelParams()
    _validate(n_nodes, 1, m_bytes)
    if n_nodes == 1:
        return 0.0
    return m_bytes * (n_nodes - 1) * params.tw_inter * (1.0 + 1.0 / n_nodes)


def t_alltoall_power_aware(
    n_nodes: int, cores: int, m_bytes: float, params: ModelParams | None = None
) -> float:
    """Equation (3): the proposed alltoall.

    Phases 2–4 each cost ``tw_inter · N·c · (Cnet/4) · M`` (half the flows
    → half the contention, half the data per phase), plus two DVFS
    transitions and N throttle transitions:

    ``T = (3/4)·tw_inter·N·c·Cnet·M + 2·Odvfs + N·Othrottle``
    """
    params = params or ModelParams()
    _validate(n_nodes, cores, m_bytes)
    transfer = 0.75 * params.tw_inter * n_nodes * cores * params.cnet * m_bytes
    return transfer + 2.0 * params.o_dvfs + n_nodes * params.o_throttle


def t_bcast_power_aware(
    n_nodes: int, m_bytes: float, params: ModelParams | None = None
) -> float:
    """Equation (4): the proposed shared-memory bcast.

    ``T = M(N−1)·tw_inter·(1+1/N)·Cthrottle + 2·Odvfs + 2·Othrottle``
    """
    params = params or ModelParams()
    base = t_bcast_scatter_allgather(n_nodes, m_bytes, params)
    return base * params.cthrottle + 2.0 * params.o_dvfs + 2.0 * params.o_throttle


def dvfs_slowdown(fmin_ghz: float, fmax_ghz: float, io_alpha: float) -> float:
    """Transfer-time multiplier when all cores sit at fmin: the uncore feed
    limit of the HCA (the simulator's ``nic_dvfs_factor`` inverted)."""
    if not 0 < fmin_ghz <= fmax_ghz:
        raise ValueError("need 0 < fmin <= fmax")
    ratio = fmin_ghz / fmax_ghz
    return 1.0 / (io_alpha + (1.0 - io_alpha) * ratio)
