"""Analytical power/energy models — paper §VI-B, equations (5)–(8).

The paper writes these as integrals of instantaneous core power over the
collective's duration.  With the piecewise-constant power model the
integrals collapse to products; each function returns Joules for one
collective lasting ``duration_s`` on ``n_nodes``·``cores`` cores.

``cj`` factors (the paper's throttle coefficients) come from the
calibrated :class:`~repro.power.model.PowerModel` gate, so the analytical
and simulated energies share constants.
"""

from __future__ import annotations

from ..cluster.cpu import Activity
from ..power.model import PowerModel


def _core_power(model: PowerModel, freq_ghz: float, tstate: int) -> float:
    return model.core_power_for(freq_ghz, tstate, Activity.POLLING)


def energy_default(
    n_nodes: int,
    cores: int,
    duration_s: float,
    fmax_ghz: float = 2.4,
    model: PowerModel | None = None,
    include_node_base: bool = True,
) -> float:
    """Equation (5): every core polls at fmax for the whole interval."""
    model = model or PowerModel()
    e = n_nodes * cores * _core_power(model, fmax_ghz, 0) * duration_s
    if include_node_base:
        e += model.params.node_base_w * n_nodes * duration_s
    return e


def energy_dvfs(
    n_nodes: int,
    cores: int,
    duration_s: float,
    fmin_ghz: float = 1.6,
    model: PowerModel | None = None,
    include_node_base: bool = True,
) -> float:
    """Equation (6): every core polls at fmin for the (longer) interval."""
    model = model or PowerModel()
    e = n_nodes * cores * _core_power(model, fmin_ghz, 0) * duration_s
    if include_node_base:
        e += model.params.node_base_w * n_nodes * duration_s
    return e


def energy_alltoall_power_aware(
    n_nodes: int,
    cores: int,
    duration_s: float,
    fmin_ghz: float = 1.6,
    t_low: int = 7,
    model: PowerModel | None = None,
    include_node_base: bool = True,
) -> float:
    """Equation (7): during phases 2–4 each core spends half the time fully
    throttled (T7) and half at T0, all at fmin."""
    model = model or PowerModel()
    p_full = _core_power(model, fmin_ghz, 0)
    p_throttled = _core_power(model, fmin_ghz, t_low)
    e = n_nodes * cores * 0.5 * (p_full + p_throttled) * duration_s
    if include_node_base:
        e += model.params.node_base_w * n_nodes * duration_s
    return e


def energy_bcast_power_aware(
    n_nodes: int,
    cores: int,
    duration_s: float,
    fmin_ghz: float = 1.6,
    t_partial: int = 4,
    t_low: int = 7,
    model: PowerModel | None = None,
    include_node_base: bool = True,
) -> float:
    """Equation (8): half the cores (socket A) at T4, half (socket B) at
    T7, all at fmin, for the duration of the network phase."""
    model = model or PowerModel()
    p_a = _core_power(model, fmin_ghz, t_partial)
    p_b = _core_power(model, fmin_ghz, t_low)
    e = n_nodes * (cores / 2) * (p_a + p_b) * duration_s
    if include_node_base:
        e += model.params.node_base_w * n_nodes * duration_s
    return e


def savings_ordering_holds(
    n_nodes: int = 8, cores: int = 8, duration_s: float = 1.0
) -> bool:
    """The paper's qualitative claim: eq (8) < eq (7) < eq (6) < eq (5)
    for equal durations (more throttling, less power)."""
    e5 = energy_default(n_nodes, cores, duration_s)
    e6 = energy_dvfs(n_nodes, cores, duration_s)
    e7 = energy_alltoall_power_aware(n_nodes, cores, duration_s)
    e8 = energy_bcast_power_aware(n_nodes, cores, duration_s)
    return e8 < e7 < e6 < e5
