"""Runtime fault injection: binds a :class:`FaultPlan` to one session.

A :class:`FaultState` is built by :class:`~repro.sim.session.SimSession`
(never shared between sessions): it resolves the plan's fractions into
concrete victim sets, precomputes the full link-event schedule, and arms
one cancellable timer per event.  The injection paths are:

* **Link events** — each event flips a multiplicative ``fault_factor``
  on the victim node's ``nic_up``/``nic_dn`` links and calls
  ``fabric.capacities_changed([links])``, so only the affected
  connected component is re-rated (the same incremental path DVFS
  transitions take).  Factors stack as an explicit list per link and the
  product is recomputed on every change, so when the last window closes
  the factor is *exactly* 1.0 again — no float drift.
* **Compute perturbation** — :meth:`perturb_compute` is consulted by
  ``RankContext.compute`` (and therefore every application kernel):
  straggler victims pay a multiplier, OS-noise victims accrue one pulse
  per noise period of compute.
* **Transition jitter** — :meth:`dvfs_latency_s` /
  :meth:`throttle_latency_s` replace the spec's constant transition
  latencies with a per-core seeded draw; both the MPI power-management
  calls and the governor's actuation paths consult them.

Determinism: victim sets and link schedules are fixed at construction
from tagged substreams of the plan's seed; per-core jitter streams are
consumed in the core's own (deterministic) actuation order.  With the
same plan, two runs perturb — and therefore simulate — identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .plan import (
    FaultPlan,
    FaultSpecError,
    LinkDegrade,
    LinkFlap,
    OsNoise,
    Straggler,
    TransitionJitter,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

    from ..cluster.cpu import Core
    from ..network.fabric import Link
    from ..sim.events import Timer
    from ..sim.session import SimSession

__all__ = ["FaultReport", "FaultState"]

#: Backstop against degenerate specs (e.g. a 1 µs flap period over a
#: 1000 s window) arming millions of timers.
_MAX_LINK_EVENTS = 100_000


@dataclass(frozen=True)
class FaultReport:
    """What a bound plan actually did to one run."""

    seed: int
    injectors: str
    link_events: int
    straggler_cores: int
    noise_cores: int
    straggled_calls: int
    noise_pulses: int
    jittered_transitions: int

    def one_line(self) -> str:
        return (
            f"faults[seed={self.seed}]: {self.link_events} link events, "
            f"{self.straggler_cores} straggler cores "
            f"({self.straggled_calls} slowed computes), "
            f"{self.noise_pulses} noise pulses on {self.noise_cores} cores, "
            f"{self.jittered_transitions} jittered transitions"
        )


def _pick(rng: "random.Random", population: List, fraction: float) -> List:
    """At least one victim, deterministically sampled, in stable order."""
    count = max(1, round(fraction * len(population)))
    count = min(count, len(population))
    picked = rng.sample(population, count)
    return sorted(picked, key=population.index)


class FaultState:
    """One session's live injection state (see the module docstring)."""

    def __init__(self, plan: FaultPlan, session: "SimSession", scope=None):
        self.plan = plan
        self.session = session
        self.scope = scope
        self.env = session.env
        # -- counters (folded into the report) -----------------------------
        self.link_events = 0
        self.straggled_calls = 0
        self.noise_pulses = 0
        self.jittered_transitions = 0
        # -- compute perturbation state ------------------------------------
        #: core_id → compute-time multiplier (> 1.0 for stragglers).
        self.compute_scale: Dict[int, float] = {}
        self._noise_period: Dict[int, float] = {}
        self._noise_pulse: Dict[int, float] = {}
        #: core_id → compute seconds accrued since the last pulse.
        self._noise_credit: Dict[int, float] = {}
        # -- transition jitter ---------------------------------------------
        jitters = plan.of_type(TransitionJitter)
        self._jitter = jitters[0] if jitters else None
        self._jitter_rng: Dict[int, "random.Random"] = {}
        # -- link events ---------------------------------------------------
        #: link → stack of active capacity factors (product = fault_factor).
        self._active_factors: Dict["Link", List[float]] = {}
        self._timers: List["Timer"] = []
        self._resolve_victims(session.cluster)
        self._schedule_link_events(session.cluster, session.net)
        if self.env.tracer.enabled:
            self.env.tracer.fault(self.env.now, "plan", spec=plan.describe())

    # -- victim resolution --------------------------------------------------
    def _resolve_victims(self, cluster) -> None:
        core_ids = [core.core_id for core in cluster.cores]
        for idx, inj in enumerate(self.plan.of_type(Straggler)):
            rng = self.plan.rng("straggler", idx)
            if inj.scope == "node":
                nodes = _pick(rng, [n.node_id for n in cluster.nodes],
                              inj.fraction)
                victims = [c.core_id for n in nodes
                           for c in cluster.nodes[n].cores]
            else:
                victims = _pick(rng, core_ids, inj.fraction)
            for core_id in victims:
                self.compute_scale[core_id] = (
                    self.compute_scale.get(core_id, 1.0) * inj.multiplier
                )
        for idx, inj in enumerate(self.plan.of_type(OsNoise)):
            rng = self.plan.rng("noise", idx)
            for core_id in _pick(rng, core_ids, inj.core_fraction):
                # Overlapping noise injectors: the denser period wins.
                if (core_id not in self._noise_period
                        or inj.period_s < self._noise_period[core_id]):
                    self._noise_period[core_id] = inj.period_s
                    self._noise_pulse[core_id] = inj.pulse_s
                self._noise_credit.setdefault(core_id, 0.0)

    # -- link-event scheduling ----------------------------------------------
    def _schedule_link_events(self, cluster, net) -> None:
        """Precompute every (time, links, factor, on/off) boundary and arm
        one timer per boundary.  The schedule is finite by construction
        (flap windows are bounded; an infinite degrade never restores)."""
        events: List[Tuple[float, int, Tuple["Link", ...], float, bool]] = []
        order = 0
        node_ids = [n.node_id for n in cluster.nodes]

        def links_of(node_id: int) -> Tuple["Link", ...]:
            return (net.nic_up(node_id), net.nic_dn(node_id))

        for idx, inj in enumerate(self.plan.of_type(LinkDegrade)):
            rng = self.plan.rng("degrade", idx)
            for node_id in _pick(rng, node_ids, inj.node_fraction):
                links = links_of(node_id)
                events.append((inj.start_s, order, links, inj.factor, True))
                order += 1
                end = inj.start_s + inj.duration_s
                if end != float("inf"):
                    events.append((end, order, links, inj.factor, False))
                    order += 1
        for idx, inj in enumerate(self.plan.of_type(LinkFlap)):
            rng = self.plan.rng("flap", idx)
            for node_id in _pick(rng, node_ids, inj.node_fraction):
                links = links_of(node_id)
                horizon = inj.start_s + inj.duration_s
                t = inj.start_s + rng.uniform(0.5, 1.5) * inj.period_s
                while t < horizon:
                    t_up = min(t + inj.down_s, horizon)
                    events.append((t, order, links, inj.factor, True))
                    order += 1
                    events.append((t_up, order, links, inj.factor, False))
                    order += 1
                    t += rng.uniform(0.5, 1.5) * inj.period_s
        if len(events) > _MAX_LINK_EVENTS:
            raise FaultSpecError(
                f"fault plan schedules {len(events)} link events "
                f"(max {_MAX_LINK_EVENTS}); raise the flap period or "
                "shorten the window"
            )
        for when, _, links, factor, begin in sorted(events):
            self._timers.append(self.env.call_at(
                when,
                lambda _timer, links=links, factor=factor, begin=begin:
                    self._link_event(links, factor, begin),
            ))

    def _link_event(self, links: Tuple["Link", ...], factor: float,
                    begin: bool) -> None:
        """Apply/remove one capacity factor and re-rate the component."""
        for link in links:
            stack = self._active_factors.setdefault(link, [])
            if begin:
                stack.append(factor)
            else:
                stack.remove(factor)
            product = 1.0
            for f in stack:
                product *= f
            link.fault_factor = product
        self.link_events += 1
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.fault(
                self.env.now, "link",
                links=[lk.name for lk in links],
                factor=links[0].fault_factor,
            )
        self.session.net.fabric.capacities_changed(links)

    # -- compute perturbation ------------------------------------------------
    def perturb_compute(self, core: "Core", seconds: float) -> float:
        """Fault-adjusted cost (at fmax) of ``seconds`` of work on ``core``."""
        scale = self.compute_scale.get(core.core_id)
        if scale is not None:
            seconds *= scale
            self.straggled_calls += 1
        period = self._noise_period.get(core.core_id)
        if period is not None:
            credit = self._noise_credit[core.core_id] + seconds
            pulses = int(credit / period)
            if pulses:
                credit -= pulses * period
                seconds += pulses * self._noise_pulse[core.core_id]
                self.noise_pulses += pulses
                tracer = self.env.tracer
                if tracer.enabled:
                    tracer.fault(self.env.now, "noise",
                                 core=core.core_id, pulses=pulses)
            self._noise_credit[core.core_id] = credit
        return seconds

    # -- transition-latency jitter -------------------------------------------
    def dvfs_latency_s(self, core: "Core") -> float:
        """This transition's Odvfs for ``core`` (jittered if planned)."""
        return self._jittered(core, core.spec.dvfs_latency_s)

    def throttle_latency_s(self, core: "Core") -> float:
        """This transition's Othrottle for ``core`` (jittered if planned)."""
        return self._jittered(core, core.spec.throttle_latency_s)

    def _jittered(self, core: "Core", base: float) -> float:
        if self._jitter is None:
            return base
        rng = self._jitter_rng.get(core.core_id)
        if rng is None:
            rng = self.plan.rng("jitter", core.core_id)
            self._jitter_rng[core.core_id] = rng
        self.jittered_transitions += 1
        return base * rng.uniform(self._jitter.lo, self._jitter.hi)

    # -- lifecycle -----------------------------------------------------------
    def finish_run(self) -> FaultReport:
        """Cancel pending link timers and seal the report (collected by
        the ambient scope when one owns this plan)."""
        for timer in self._timers:
            if not timer.cancelled and not timer.fired:
                timer.cancel()
        self._timers.clear()
        report = self.report()
        if self.scope is not None:
            self.scope.collect(report)
        return report

    def report(self) -> FaultReport:
        return FaultReport(
            seed=self.plan.seed,
            injectors=self.plan.describe(),
            link_events=self.link_events,
            straggler_cores=len(self.compute_scale),
            noise_cores=len(self._noise_period),
            straggled_calls=self.straggled_calls,
            noise_pulses=self.noise_pulses,
            jittered_transitions=self.jittered_transitions,
        )
