"""Deterministic fault/perturbation injection (ISSUE 3).

The paper's schedules — and the PR-2 governor — were built and validated
on a quiet machine: constant 12 µs transition latencies, loss-free QDR
links, no OS noise.  This package perturbs that machine *reproducibly*:
a :class:`FaultPlan` (one seed, a tuple of injectors) binds to a
:class:`~repro.sim.session.SimSession` as a :class:`FaultState` that
degrades/flaps NIC links through the fabric's incremental re-rating,
slows straggler cores, inserts OS-noise pulses into compute, and jitters
DVFS/T-state transition latencies.  Same plan ⇒ bit-identical run.

Quick start::

    from repro import FaultPlan, LinkDegrade, MpiJob, OsNoise

    plan = FaultPlan(seed=7, injectors=(
        LinkDegrade(factor=0.5, node_fraction=0.25),
        OsNoise(period_s=1e-3, pulse_s=25e-6),
    ))
    job = MpiJob(64, faults=plan)

or ambiently (how the CLI's ``--faults`` flag works)::

    with use_faults(parse_fault_spec("degrade:factor=0.5;noise", seed=7)):
        run_any_experiment()
"""

from .plan import (
    FaultPlan,
    FaultSpecError,
    LinkDegrade,
    LinkFlap,
    OsNoise,
    Straggler,
    TransitionJitter,
    parse_fault_spec,
)
from .scope import FaultScope, ambient_fault_scope, use_faults
from .state import FaultReport, FaultState

__all__ = [
    "FaultPlan",
    "FaultReport",
    "FaultScope",
    "FaultSpecError",
    "FaultState",
    "LinkDegrade",
    "LinkFlap",
    "OsNoise",
    "Straggler",
    "TransitionJitter",
    "ambient_fault_scope",
    "parse_fault_spec",
    "use_faults",
]
