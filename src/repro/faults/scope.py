"""Ambient fault scope: ``use_faults`` mirrors ``use_tracer``/``use_governor``.

While a scope is active, every :class:`~repro.sim.session.SimSession`
built without an explicit ``faults`` plan binds the scope's plan, and the
per-run :class:`~repro.faults.state.FaultReport` s accumulate on the
scope — the CLI uses this to perturb whole experiments without threading
a parameter through every benchmark function.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterator, List, Optional

from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .state import FaultReport

__all__ = ["FaultScope", "ambient_fault_scope", "use_faults"]


class FaultScope:
    """Ambient fault configuration plus the reports of every run under it."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.reports: List["FaultReport"] = []

    def collect(self, report: "FaultReport") -> None:
        self.reports.append(report)


_AMBIENT: List[Optional[FaultScope]] = []


def ambient_fault_scope() -> Optional[FaultScope]:
    """The innermost active :func:`use_faults` scope, if any.

    A ``use_faults(None)`` shadow entry hides any outer scope: the
    hermetic cell executor installs one so a cell sees no ambient fault
    plan no matter what the calling process has active."""
    return _AMBIENT[-1] if _AMBIENT else None


@contextlib.contextmanager
def use_faults(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultScope]]:
    """Install ``plan`` as the ambient fault plan for the ``with`` body.

    ``plan=None`` installs a *shadow* instead (mirroring
    ``use_tracer(None)`` / ``use_metrics(None)``): inside the body,
    :func:`ambient_fault_scope` returns None even when an outer scope is
    active.

    Yields the :class:`FaultScope` (None for a shadow); after the body
    ran, ``scope.reports`` holds one
    :class:`~repro.faults.state.FaultReport` per perturbed job.
    """
    scope = FaultScope(plan) if plan is not None else None
    _AMBIENT.append(scope)
    try:
        yield scope
    finally:
        _AMBIENT.pop()
