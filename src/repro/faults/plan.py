"""Fault/perturbation plans: *what* to inject, fully determined by a seed.

A :class:`FaultPlan` is a frozen description of the perturbations one run
should suffer: which injectors are active, with which parameters, and the
single integer ``seed`` every random choice derives from.  Nothing here
touches a simulation — binding a plan to a live session (victim
selection, timer scheduling, the actual capacity/latency perturbations)
happens in :class:`repro.faults.state.FaultState`.

Determinism contract
--------------------
All randomness flows from ``FaultPlan.rng(*tags)``: a fresh
``random.Random`` seeded with the string ``"<seed>:<tag>:..."``.  String
seeding hashes through SHA-512 inside CPython, so substreams are stable
across platforms and interpreter runs, and tagging keeps every consumer
(victim selection, flap schedules, per-core jitter) on its own stream —
adding an injector never shifts the draws of another.  Two sessions built
from equal plans therefore perturb identically, bit for bit.

The CLI's ``--faults`` flag uses :func:`parse_fault_spec`, a tiny grammar
of ``;``-separated clauses::

    degrade:factor=0.5,frac=0.25;noise:period=500us;jitter:lo=0.5,hi=2

Times accept ``us``/``ms``/``s`` suffixes (bare numbers are seconds).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, fields
from typing import Tuple, Union

__all__ = [
    "FaultPlan",
    "FaultSpecError",
    "LinkDegrade",
    "LinkFlap",
    "OsNoise",
    "Straggler",
    "TransitionJitter",
    "parse_fault_spec",
]


class FaultSpecError(ValueError):
    """A fault plan (or its ``--faults`` spec string) is invalid."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise FaultSpecError(message)


@dataclass(frozen=True)
class LinkDegrade:
    """Scale victim nodes' HCA link capacity for one contiguous window.

    Models a persistently degraded cable/port (signal-integrity retrain,
    a mis-negotiated width): every flow crossing a victim NIC sees
    ``factor`` of the nominal bandwidth from ``start_s`` for
    ``duration_s`` seconds.
    """

    factor: float = 0.5
    start_s: float = 0.0
    duration_s: float = math.inf
    node_fraction: float = 0.25

    def __post_init__(self) -> None:
        _require(0.0 < self.factor <= 1.0,
                 f"degrade: factor must be in (0, 1], got {self.factor}")
        _require(self.start_s >= 0.0,
                 f"degrade: start must be >= 0, got {self.start_s}")
        _require(self.duration_s > 0.0,
                 f"degrade: duration must be > 0, got {self.duration_s}")
        _require(0.0 < self.node_fraction <= 1.0,
                 f"degrade: frac must be in (0, 1], got {self.node_fraction}")


@dataclass(frozen=True)
class LinkFlap:
    """Transient link flaps: short deep capacity dips on victim nodes.

    Within ``[start_s, start_s + duration_s)`` each victim node's HCA
    drops to ``factor`` of nominal for ``down_s`` seconds, roughly every
    ``period_s`` (the gap between flaps is drawn uniformly from
    ``[0.5, 1.5] × period_s`` per victim, from the plan's seed).
    """

    factor: float = 0.10
    period_s: float = 10e-3
    down_s: float = 500e-6
    start_s: float = 0.0
    duration_s: float = 1.0
    node_fraction: float = 0.125

    def __post_init__(self) -> None:
        _require(0.0 < self.factor <= 1.0,
                 f"flap: factor must be in (0, 1], got {self.factor}")
        _require(self.period_s > 0.0,
                 f"flap: period must be > 0, got {self.period_s}")
        _require(self.down_s > 0.0,
                 f"flap: down must be > 0, got {self.down_s}")
        _require(self.start_s >= 0.0,
                 f"flap: start must be >= 0, got {self.start_s}")
        _require(0.0 < self.duration_s < math.inf,
                 f"flap: duration must be finite and > 0, got {self.duration_s}")
        _require(0.0 < self.node_fraction <= 1.0,
                 f"flap: frac must be in (0, 1], got {self.node_fraction}")


@dataclass(frozen=True)
class Straggler:
    """Persistently slow cores (or whole nodes): computation costs more.

    Every ``ctx.compute(s)`` on a victim core takes ``multiplier × s``
    (before DVFS/T-state scaling) — the heterogeneity Medhat et al.
    report as the common case on production clusters.
    """

    multiplier: float = 1.5
    fraction: float = 0.125
    scope: str = "core"  # "core" or "node"

    def __post_init__(self) -> None:
        _require(self.multiplier >= 1.0,
                 f"straggler: mult must be >= 1, got {self.multiplier}")
        _require(0.0 < self.fraction <= 1.0,
                 f"straggler: frac must be in (0, 1], got {self.fraction}")
        _require(self.scope in ("core", "node"),
                 f"straggler: scope must be 'core' or 'node', got {self.scope!r}")


@dataclass(frozen=True)
class OsNoise:
    """Periodic OS-noise pulses: short compute insertions on victim cores.

    Per ``period_s`` of application compute on a victim core, one extra
    ``pulse_s`` of work is inserted (daemon wake-ups, timer ticks).  The
    insertion is accrual-based — ``k`` periods of compute accumulate
    ``k`` pulses — so it composes with arbitrarily fragmented compute.
    """

    period_s: float = 1e-3
    pulse_s: float = 25e-6
    core_fraction: float = 0.25

    def __post_init__(self) -> None:
        _require(self.period_s > 0.0,
                 f"noise: period must be > 0, got {self.period_s}")
        _require(self.pulse_s > 0.0,
                 f"noise: pulse must be > 0, got {self.pulse_s}")
        _require(0.0 < self.core_fraction <= 1.0,
                 f"noise: frac must be in (0, 1], got {self.core_fraction}")


@dataclass(frozen=True)
class TransitionJitter:
    """Jitter DVFS/T-state transition latencies around the spec constant.

    The paper measures Odvfs = Othrottle = 12 µs on an unloaded machine;
    under load, transitions straggle.  Each charged transition draws a
    factor uniformly from ``[lo, hi]`` (per-core substream of the plan's
    seed) and pays ``factor ×`` the spec latency.
    """

    lo: float = 0.5
    hi: float = 2.0

    def __post_init__(self) -> None:
        _require(self.lo >= 0.0, f"jitter: lo must be >= 0, got {self.lo}")
        _require(self.hi >= self.lo,
                 f"jitter: hi must be >= lo, got lo={self.lo} hi={self.hi}")


#: Any injector a plan can carry.
Injector = Union[LinkDegrade, LinkFlap, Straggler, OsNoise, TransitionJitter]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable description of one run's perturbations."""

    seed: int = 0
    injectors: Tuple[Injector, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        _require(self.seed >= 0, f"fault seed must be >= 0, got {self.seed}")
        object.__setattr__(self, "injectors", tuple(self.injectors))
        jitters = [i for i in self.injectors if isinstance(i, TransitionJitter)]
        _require(len(jitters) <= 1, "at most one jitter injector per plan")

    def rng(self, *tags) -> random.Random:
        """A substream keyed by (seed, *tags) — see the module docstring."""
        return random.Random(":".join(str(t) for t in (self.seed, *tags)))

    def of_type(self, kind) -> Tuple[Injector, ...]:
        return tuple(i for i in self.injectors if isinstance(i, kind))

    def describe(self) -> str:
        """Human-readable one-liner (CLI summaries, trace marks)."""
        names = ",".join(type(i).__name__ for i in self.injectors) or "none"
        return f"seed={self.seed} injectors=[{names}]"

    def to_dict(self) -> dict:
        """Plain-data form (JSON-able): clause name + field values per
        injector.  Two equal plans serialize identically, so the dict is
        safe to hash into a sweep-cache key."""
        return {
            "seed": self.seed,
            "injectors": [
                {"kind": _clause_name(type(i)), **_injector_fields(i)}
                for i in self.injectors
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict` — reconstructs an equal plan (the
        determinism contract then guarantees identical perturbations)."""
        injectors = []
        for entry in data.get("injectors", ()):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            if kind not in _CLAUSES:
                raise FaultSpecError(f"unknown injector kind {kind!r}")
            injectors.append(_CLAUSES[kind][0](**entry))
        return cls(seed=data.get("seed", 0), injectors=tuple(injectors))


# -- the --faults spec grammar ---------------------------------------------

_TIME_SUFFIXES = (("us", 1e-6), ("ms", 1e-3), ("s", 1.0))


def _parse_time(clause: str, key: str, text: str) -> float:
    """``"500us"`` → 5e-4; bare numbers are seconds."""
    text = text.strip().lower()
    scale = 1.0
    for suffix, factor in _TIME_SUFFIXES:
        if text.endswith(suffix):
            scale, text = factor, text[: -len(suffix)]
            break
    try:
        value = float(text) * scale
    except ValueError:
        raise FaultSpecError(
            f"{clause}: cannot parse {key}={text!r} as a time "
            "(use e.g. 500us, 2ms, 0.1s)"
        ) from None
    _require(value >= 0.0 and not math.isnan(value),
             f"{clause}: {key} must be non-negative, got {text!r}")
    return value


def _parse_float(clause: str, key: str, text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise FaultSpecError(
            f"{clause}: cannot parse {key}={text!r} as a number"
        ) from None
    _require(value >= 0.0 and not math.isnan(value),
             f"{clause}: {key} must be non-negative, got {text!r}")
    return value


#: clause name → (injector class, {spec key → (field, parser)}).
_CLAUSES = {
    "degrade": (LinkDegrade, {
        "factor": ("factor", _parse_float),
        "start": ("start_s", _parse_time),
        "duration": ("duration_s", _parse_time),
        "frac": ("node_fraction", _parse_float),
    }),
    "flap": (LinkFlap, {
        "factor": ("factor", _parse_float),
        "period": ("period_s", _parse_time),
        "down": ("down_s", _parse_time),
        "start": ("start_s", _parse_time),
        "duration": ("duration_s", _parse_time),
        "frac": ("node_fraction", _parse_float),
    }),
    "straggler": (Straggler, {
        "mult": ("multiplier", _parse_float),
        "frac": ("fraction", _parse_float),
        "scope": ("scope", None),
    }),
    "noise": (OsNoise, {
        "period": ("period_s", _parse_time),
        "pulse": ("pulse_s", _parse_time),
        "frac": ("core_fraction", _parse_float),
    }),
    "jitter": (TransitionJitter, {
        "lo": ("lo", _parse_float),
        "hi": ("hi", _parse_float),
    }),
}


def parse_fault_spec(spec: str, seed: int = 0) -> FaultPlan:
    """Parse a ``--faults`` spec string into a :class:`FaultPlan`.

    Grammar: ``clause[;clause...]`` where each clause is
    ``name[:key=value[,key=value...]]`` and ``name`` is one of
    ``degrade``, ``flap``, ``straggler``, ``noise``, ``jitter``.
    Omitted keys take the injector's defaults.  Raises
    :class:`FaultSpecError` with the offending clause/key named.
    """
    injectors = []
    for raw in spec.split(";"):
        raw = raw.strip()
        if not raw:
            continue
        name, _, arg_text = raw.partition(":")
        name = name.strip().lower()
        if name not in _CLAUSES:
            raise FaultSpecError(
                f"unknown fault injector {name!r} "
                f"(choose from {', '.join(sorted(_CLAUSES))})"
            )
        cls, keys = _CLAUSES[name]
        kwargs = {}
        for pair in arg_text.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, eq, value = pair.partition("=")
            key = key.strip().lower()
            if not eq or key not in keys:
                raise FaultSpecError(
                    f"{name}: unknown or malformed parameter {pair!r} "
                    f"(keys: {', '.join(sorted(keys))})"
                )
            dest, parser = keys[key]
            kwargs[dest] = value.strip() if parser is None else parser(
                name, key, value
            )
        injectors.append(cls(**kwargs))
    if not injectors:
        raise FaultSpecError(f"fault spec {spec!r} names no injectors")
    return FaultPlan(seed=seed, injectors=tuple(injectors))


def _injector_fields(injector: Injector) -> dict:
    return {f.name: getattr(injector, f.name) for f in fields(injector)}


def _clause_name(cls) -> str:
    """Injector class → its spec-grammar clause name ("degrade", ...)."""
    for name, (klass, _keys) in _CLAUSES.items():
        if klass is cls:
            return name
    raise FaultSpecError(f"no clause name for {cls!r}")  # pragma: no cover
