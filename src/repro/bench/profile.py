"""Wall-clock self-profile of the simulator.

The ROADMAP's bar is "as fast as the hardware allows", so the bench layer
needs to see how fast the *simulator itself* runs, not just the simulated
timings it reports.  :class:`SelfProfile` hooks
:data:`repro.mpi.job.JOB_OBSERVERS` and aggregates, per completed job:

* host wall-clock seconds spent inside ``MpiJob.run``,
* kernel events processed (and the derived events/second rate),
* fabric re-rating effort (water-filling calls × flows covered — the
  number the incremental re-rater shrinks).

Use as a context manager::

    with SelfProfile() as prof:
        run_experiment(...)
    print(prof.report())

The CLI exposes it as ``python -m repro experiment <name> --profile``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..mpi.job import JOB_OBSERVERS


@dataclass
class JobSample:
    """Self-profile of one completed job."""

    n_ranks: int
    sim_time_s: float
    wall_time_s: float
    events_processed: int
    rerate_calls: int
    flows_rerated: int

    @property
    def events_per_s(self) -> float:
        return self.events_processed / self.wall_time_s if self.wall_time_s > 0 else 0.0


@dataclass
class SelfProfile:
    """Collects :class:`JobSample` s for every job run while active."""

    samples: List[JobSample] = field(default_factory=list)

    def _observe(self, job, result) -> None:
        self.samples.append(
            JobSample(
                n_ranks=job.n_ranks,
                sim_time_s=result.duration_s,
                wall_time_s=result.stats.wall_time_s,
                events_processed=result.stats.events_processed,
                rerate_calls=result.stats.rerate_calls,
                flows_rerated=result.stats.flows_rerated,
            )
        )

    def __enter__(self) -> "SelfProfile":
        JOB_OBSERVERS.append(self._observe)
        return self

    def __exit__(self, *exc) -> None:
        JOB_OBSERVERS.remove(self._observe)

    # -- aggregates --------------------------------------------------------
    @property
    def total_wall_s(self) -> float:
        return sum(s.wall_time_s for s in self.samples)

    @property
    def total_events(self) -> int:
        return sum(s.events_processed for s in self.samples)

    @property
    def total_flows_rerated(self) -> int:
        return sum(s.flows_rerated for s in self.samples)

    def report(self) -> str:
        """Human-readable summary block."""
        if not self.samples:
            return "self-profile: no jobs ran"
        wall = self.total_wall_s
        events = self.total_events
        rate = events / wall if wall > 0 else 0.0
        lines = [
            "self-profile:",
            f"  jobs run            : {len(self.samples)}",
            f"  simulator wall time : {wall:.3f} s",
            f"  kernel events       : {events:,} ({rate:,.0f} events/s)",
            f"  rerate calls        : {sum(s.rerate_calls for s in self.samples):,}",
            f"  flows re-rated      : {self.total_flows_rerated:,}",
        ]
        slowest = max(self.samples, key=lambda s: s.wall_time_s)
        lines.append(
            f"  slowest job         : {slowest.n_ranks} ranks, "
            f"{slowest.wall_time_s:.3f} s wall for {slowest.sim_time_s:.4f} s "
            "simulated"
        )
        return "\n".join(lines)
