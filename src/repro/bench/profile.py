"""Wall-clock self-profile of the simulator.

The ROADMAP's bar is "as fast as the hardware allows", so the bench layer
needs to see how fast the *simulator itself* runs, not just the simulated
timings it reports.  :class:`SelfProfile` hooks
:data:`repro.mpi.job.JOB_OBSERVERS` and aggregates, per completed job:

* host wall-clock seconds spent inside ``MpiJob.run``,
* kernel events processed (and the derived events/second rate),
* fabric re-rating effort (water-filling calls × flows covered — the
  number the incremental re-rater shrinks).

Use as a context manager::

    with SelfProfile() as prof:
        run_experiment(...)
    print(prof.report())

The CLI exposes it as ``python -m repro experiment <name> --profile``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from ..mpi.job import JOB_OBSERVERS

#: Profiles currently inside their ``with`` block.  The sweep runner
#: replays worker-captured samples into these (pool workers never fire
#: the parent's :data:`JOB_OBSERVERS`), and
#: :meth:`repro.obs.capture.CaptureConfig.from_ambient` keys off it.
ACTIVE_PROFILES: List["SelfProfile"] = []


def _remove_identity(seq: List, item) -> None:
    """Drop the last entry that *is* ``item`` (no-op when absent).

    ``list.remove`` compares by equality — bound methods of different
    instances are unequal, but re-entering the *same* profile creates
    equal-yet-distinct method objects and equality removal can then pull
    out the wrong registration.  Identity + last-occurrence gives strict
    LIFO unwinding and tolerates an entry someone else already removed.
    """
    for i in range(len(seq) - 1, -1, -1):
        if seq[i] is item:
            del seq[i]
            return


@dataclass
class JobSample:
    """Self-profile of one completed job."""

    n_ranks: int
    sim_time_s: float
    wall_time_s: float
    events_processed: int
    rerate_calls: int
    flows_rerated: int

    @property
    def events_per_s(self) -> float:
        return self.events_processed / self.wall_time_s if self.wall_time_s > 0 else 0.0


@dataclass
class SelfProfile:
    """Collects :class:`JobSample` s for every job run while active."""

    samples: List[JobSample] = field(default_factory=list)
    #: Observer tokens pushed by __enter__, popped by __exit__ (a stack,
    #: so re-entrant use of one instance unwinds correctly).
    _tokens: List[Callable] = field(default_factory=list, init=False, repr=False)

    def _observe(self, job, result) -> None:
        self.add_sample(
            JobSample(
                n_ranks=job.n_ranks,
                sim_time_s=result.duration_s,
                wall_time_s=result.stats.wall_time_s,
                events_processed=result.stats.events_processed,
                rerate_calls=result.stats.rerate_calls,
                flows_rerated=result.stats.flows_rerated,
            )
        )

    def add_sample(self, sample: JobSample) -> None:
        """Record one job sample (direct observation or runner replay)."""
        self.samples.append(sample)

    def __enter__(self) -> "SelfProfile":
        # Bind the method ONCE and remember the exact object appended:
        # each `self._observe` access builds a fresh (equal but distinct)
        # bound method, so exit-time removal must go by identity.
        token = self._observe
        self._tokens.append(token)
        JOB_OBSERVERS.append(token)
        ACTIVE_PROFILES.append(self)
        return self

    def __exit__(self, *exc) -> None:
        token = self._tokens.pop() if self._tokens else None
        try:
            if token is not None:
                _remove_identity(JOB_OBSERVERS, token)
        finally:
            # Deregister from the replay list even if the observer list
            # was concurrently mutated/raised — a leaked entry here would
            # keep feeding a dead profile forever.
            _remove_identity(ACTIVE_PROFILES, self)

    # -- aggregates --------------------------------------------------------
    @property
    def total_wall_s(self) -> float:
        return sum(s.wall_time_s for s in self.samples)

    @property
    def total_events(self) -> int:
        return sum(s.events_processed for s in self.samples)

    @property
    def total_flows_rerated(self) -> int:
        return sum(s.flows_rerated for s in self.samples)

    def report(self) -> str:
        """Human-readable summary block."""
        if not self.samples:
            return "self-profile: no jobs ran"
        wall = self.total_wall_s
        events = self.total_events
        rate = events / wall if wall > 0 else 0.0
        lines = [
            "self-profile:",
            f"  jobs run            : {len(self.samples)}",
            f"  simulator wall time : {wall:.3f} s",
            f"  kernel events       : {events:,} ({rate:,.0f} events/s)",
            f"  rerate calls        : {sum(s.rerate_calls for s in self.samples):,}",
            f"  flows re-rated      : {self.total_flows_rerated:,}",
        ]
        slowest = max(self.samples, key=lambda s: s.wall_time_s)
        lines.append(
            f"  slowest job         : {slowest.n_ranks} ranks, "
            f"{slowest.wall_time_s:.3f} s wall for {slowest.sim_time_s:.4f} s "
            "simulated"
        )
        return "\n".join(lines)
