"""Experiment implementations for every table and figure in the paper.

Each ``fig*``/``table*`` function runs the relevant simulations and
returns ``(headers, rows, notes)`` ready for
:func:`repro.bench.report.render_experiment`.  The ``benchmarks/``
directory wraps each one in a pytest-benchmark target; EXPERIMENTS.md
records the outcomes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..apps import CPMD_DATASETS, NAS_FT, NAS_IS, run_app
from ..cluster.specs import ClusterSpec, CpuSpec, NodeSpec, ThrottleGranularity
from ..collectives.registry import CollectiveConfig, CollectiveEngine, PowerMode
from ..models import (
    ModelParams,
    t_alltoall_pairwise,
    t_alltoall_power_aware,
    t_bcast_power_aware,
    t_bcast_scatter_allgather,
)
from ..mpi.job import JobResult, MpiJob
from ..mpi.p2p import ProgressMode
from ..power.meter import PowerMeter, PowerTrace
from .report import bytes_label

#: Message sweep of the power figures (7a, 8a; paper x-axis 16K–1M).
POWER_FIG_SIZES: Tuple[int, ...] = (16 << 10, 64 << 10, 256 << 10, 1 << 20)
#: Fig 2(a) sweep (1K–1M).
FIG2A_SIZES: Tuple[int, ...] = (1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20)
#: Fig 2(b) sweep (4K–1M).
FIG2B_SIZES: Tuple[int, ...] = (4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20)
#: Fig 2(c) sweep (4B–4K).
FIG2C_SIZES: Tuple[int, ...] = (4, 64, 256, 1 << 10, 4 << 10)

MODES = (PowerMode.NONE, PowerMode.DVFS, PowerMode.PROPOSED)
MODE_LABELS = {
    PowerMode.NONE: "No-Power",
    PowerMode.DVFS: "Freq-Scaling",
    PowerMode.PROPOSED: "Proposed",
}


def _engine(mode: PowerMode) -> CollectiveEngine:
    return CollectiveEngine(CollectiveConfig(power_mode=mode))


def run_collective_loop(
    op: str,
    nbytes: int,
    n_ranks: int,
    mode: PowerMode = PowerMode.NONE,
    iterations: int = 1,
    progress: ProgressMode = ProgressMode.POLLING,
    cluster_spec: Optional[ClusterSpec] = None,
    keep_segments: bool = True,
) -> JobResult:
    """Run ``iterations`` back-to-back collectives (the OSU benchmark
    loop of §VII-B) and return the job result."""
    job = MpiJob(
        n_ranks,
        cluster_spec=cluster_spec,
        collectives=_engine(mode),
        progress=progress,
        keep_segments=keep_segments,
    )

    def program(ctx):
        for _ in range(iterations):
            yield from getattr(ctx, op)(nbytes)

    return job.run(program)


def _mean_latency_us(result: JobResult, iterations: int) -> float:
    return result.duration_s / iterations * 1e6


# =====================================================================
# Figure 2
# =====================================================================
def fig2a_alltoall_scaling(sizes: Sequence[int] = FIG2A_SIZES, iterations: int = 1):
    """Fig 2(a): 32-process alltoall, 4-way vs 8-way vs eq-(1) estimate."""
    spec_4way = ClusterSpec.with_shape(nodes=8, sockets=2, cores_per_socket=2)
    spec_8way = ClusterSpec.with_shape(nodes=4, sockets=2, cores_per_socket=4)
    rows: List[Tuple] = []
    for nbytes in sizes:
        t4 = run_collective_loop(
            "alltoall", nbytes, 32, iterations=iterations,
            cluster_spec=spec_4way, keep_segments=False,
        )
        t8 = run_collective_loop(
            "alltoall", nbytes, 32, iterations=iterations,
            cluster_spec=spec_8way, keep_segments=False,
        )
        theory = t_alltoall_pairwise(
            8, 4, nbytes, ModelParams.contended(4)
        )
        rows.append(
            (
                bytes_label(nbytes),
                _mean_latency_us(t4, iterations),
                _mean_latency_us(t8, iterations),
                theory * 1e6,
            )
        )
    headers = ["Size", "Alltoall-4way (us)", "Alltoall-8way (us)", "Theoretical (us)"]
    notes = (
        "Paper: same 32-process job is ~54% slower in the 8-way layout due\n"
        "to HCA contention; the theoretical line is equation (1) with Cnet=4."
    )
    return headers, rows, notes


def _phase_experiment(op: str, phase_key: str, sizes: Sequence[int], n_ranks: int = 64):
    rows = []
    for nbytes in sizes:
        r = run_collective_loop(op, nbytes, n_ranks, keep_segments=False)
        net = r.stats.phase_times.get(phase_key, 0.0)
        rows.append(
            (bytes_label(nbytes), r.duration_s * 1e6, net * 1e6, net / r.duration_s)
        )
    headers = ["Size", "Overall (us)", "Network phase (us)", "Net fraction"]
    return headers, rows


def fig2b_bcast_phases(sizes: Sequence[int] = FIG2B_SIZES):
    """Fig 2(b): bcast total time vs its inter-leader network phase."""
    headers, rows = _phase_experiment("bcast", "bcast.network", sizes)
    notes = (
        "Paper: the network phase accounts for most of the bcast time while\n"
        "only one rank per node communicates — the rest poll (waste power)."
    )
    return headers, rows, notes


def fig2c_reduce_phases(sizes: Sequence[int] = FIG2C_SIZES):
    """Fig 2(c): reduce total time vs its network phase."""
    headers, rows = _phase_experiment("reduce", "reduce.network", sizes)
    notes = "Same observation as Fig 2(b) for MPI_Reduce."
    return headers, rows, notes


# =====================================================================
# Figure 6: polling vs blocking
# =====================================================================
def fig6a_polling_vs_blocking(sizes: Sequence[int] = POWER_FIG_SIZES, iterations: int = 1):
    """Fig 6(a): 64-process alltoall latency, polling vs blocking."""
    rows = []
    for nbytes in sizes:
        t_poll = run_collective_loop(
            "alltoall", nbytes, 64, iterations=iterations, keep_segments=False
        )
        t_block = run_collective_loop(
            "alltoall", nbytes, 64, iterations=iterations,
            progress=ProgressMode.BLOCKING, keep_segments=False,
        )
        rows.append(
            (
                bytes_label(nbytes),
                _mean_latency_us(t_poll, iterations),
                _mean_latency_us(t_block, iterations),
                t_block.duration_s / t_poll.duration_s,
            )
        )
    headers = ["Size", "Polling (us)", "Blocking (us)", "Blocking/Polling"]
    notes = "Paper: blocking is ~2x slower at large sizes (Fig 6a)."
    return headers, rows, notes


def fig6b_power_timeline(
    nbytes: int = 256 << 10, iterations: int = 10, interval_s: float = 0.1
):
    """Fig 6(b): sampled system power while the alltoall loop runs."""
    rows = []
    traces: Dict[str, PowerTrace] = {}
    for label, progress in (
        ("Polling", ProgressMode.POLLING),
        ("Blocking", ProgressMode.BLOCKING),
    ):
        r = run_collective_loop(
            "alltoall", nbytes, 64, iterations=iterations, progress=progress
        )
        traces[label] = PowerMeter(interval_s).sample(r.accountant)
    n = min(len(traces["Polling"]), len(traces["Blocking"]))
    for i in range(n):
        rows.append(
            (
                f"{traces['Polling'].times_s[i]:.2f}",
                traces["Polling"].power_kw[i],
                traces["Blocking"].power_kw[i],
            )
        )
    headers = ["t (s)", "Polling (kW)", "Blocking (kW)"]
    notes = "Paper: polling draws ~2.3 kW, blocking dips to ~1.8-2.0 kW."
    return headers, rows, notes


# =====================================================================
# Figures 7 & 8: the three schemes
# =====================================================================
def _three_scheme_latency(op: str, sizes: Sequence[int], iterations: int = 1):
    rows = []
    for nbytes in sizes:
        latencies = []
        for mode in MODES:
            r = run_collective_loop(
                op, nbytes, 64, mode=mode, iterations=iterations, keep_segments=False
            )
            latencies.append(_mean_latency_us(r, iterations))
        overhead = latencies[2] / latencies[0] - 1.0
        rows.append((bytes_label(nbytes), *latencies, overhead))
    headers = [
        "Size",
        "No-Power (us)",
        "Freq-Scaling (us)",
        "Proposed (us)",
        "Proposed overhead",
    ]
    return headers, rows


def _three_scheme_power(op: str, nbytes: int, iterations: int, interval_s: float):
    rows = []
    means = []
    traces = []
    for mode in MODES:
        r = run_collective_loop(op, nbytes, 64, mode=mode, iterations=iterations)
        trace = PowerMeter(interval_s).sample(r.accountant)
        traces.append(trace)
        means.append(trace.mean_power_w())
    n = min(len(t) for t in traces)
    for i in range(n):
        rows.append(
            (
                f"{traces[0].times_s[i]:.2f}",
                traces[0].power_kw[i],
                traces[1].power_kw[i],
                traces[2].power_kw[i],
            )
        )
    headers = ["t (s)", "No-Power (kW)", "Freq-Scaling (kW)", "Proposed (kW)"]
    return headers, rows, means


def fig7a_alltoall_latency(sizes: Sequence[int] = POWER_FIG_SIZES):
    """Fig 7(a): alltoall latency under the three schemes, 64 processes."""
    headers, rows = _three_scheme_latency("alltoall", sizes)
    notes = (
        "Paper: ~10% gap between default and power-aware; very little\n"
        "difference between Freq-Scaling and Proposed."
    )
    return headers, rows, notes


def fig7b_alltoall_power(nbytes: int = 1 << 20, iterations: int = 8, interval_s: float = 0.25):
    """Fig 7(b): sampled power during the alltoall loop."""
    headers, rows, means = _three_scheme_power("alltoall", nbytes, iterations, interval_s)
    notes = (
        f"Mean power: No-Power {means[0]/1e3:.2f} kW, Freq-Scaling "
        f"{means[1]/1e3:.2f} kW, Proposed {means[2]/1e3:.2f} kW "
        "(paper: ~2.3 / ~1.8 / ~1.6 kW)."
    )
    return headers, rows, notes


def alltoallv_power(sizes: Sequence[int] = POWER_FIG_SIZES):
    """§VII-D: MPI_Alltoallv mirrors the Alltoall results ([26]).

    Uses deterministically skewed per-peer counts (±15 % around the mean)
    so the vector path is genuinely exercised."""
    rows = []
    for nbytes in sizes:
        latencies = []
        for mode in MODES:
            job = MpiJob(64, collectives=_engine(mode), keep_segments=False)

            def program(ctx, nbytes=nbytes):
                counts = [
                    max(0, int(nbytes * (1 + 0.15 * (((ctx.rank + d) % 7 - 3) / 3))))
                    for d in range(ctx.size)
                ]
                yield from ctx.alltoallv(counts)

            latencies.append(job.run(program).duration_s * 1e6)
        rows.append(
            (bytes_label(nbytes), *latencies, latencies[2] / latencies[0] - 1.0)
        )
    headers = [
        "Mean size",
        "No-Power (us)",
        "Freq-Scaling (us)",
        "Proposed (us)",
        "Proposed overhead",
    ]
    notes = "Paper §VII-D: Alltoallv behaves like Alltoall under all schemes."
    return headers, rows, notes


def fig8a_bcast_latency(sizes: Sequence[int] = POWER_FIG_SIZES):
    """Fig 8(a): bcast latency under the three schemes, 64 processes."""
    headers, rows = _three_scheme_latency("bcast", sizes, iterations=4)
    notes = "Paper: ~15% overhead at 1MB; power variants nearly identical."
    return headers, rows, notes


def fig8b_bcast_power(nbytes: int = 1 << 20, iterations: int = 600, interval_s: float = 0.25):
    """Fig 8(b): sampled power during the bcast loop."""
    headers, rows, means = _three_scheme_power("bcast", nbytes, iterations, interval_s)
    notes = (
        f"Mean power: No-Power {means[0]/1e3:.2f} kW, Freq-Scaling "
        f"{means[1]/1e3:.2f} kW, Proposed {means[2]/1e3:.2f} kW "
        "(paper: ~2.3 / ~1.8 / ~1.6 kW)."
    )
    return headers, rows, notes


# =====================================================================
# Figures 9 & 10 and Tables I & II: applications
# =====================================================================
#: Memo for app runs: the figure and table of the same section share the
#: same 18 simulations (runs are deterministic, so caching is exact).
_APP_RUN_CACHE: Dict[Tuple[str, int, PowerMode], object] = {}


def _run_app_cached(app, n_ranks: int, mode: PowerMode):
    key = (app.name, n_ranks, mode)
    if key not in _APP_RUN_CACHE:
        _APP_RUN_CACHE[key] = run_app(app, n_ranks, mode)
    return _APP_RUN_CACHE[key]


def _app_rows(apps: Iterable, ranks=(32, 64)):
    perf_rows = []
    energy_rows = []
    for app in apps:
        for n in ranks:
            latencies = []
            energies = []
            for mode in MODES:
                r = _run_app_cached(app, n, mode)
                latencies.append(r)
                energies.append(r.energy_kj)
            perf_rows.append(
                (
                    app.name,
                    n,
                    MODE_LABELS[PowerMode.NONE],
                    latencies[0].total_time_s,
                    latencies[0].alltoall_time_s,
                )
            )
            perf_rows.append(
                (app.name, n, MODE_LABELS[PowerMode.DVFS],
                 latencies[1].total_time_s, latencies[1].alltoall_time_s)
            )
            perf_rows.append(
                (app.name, n, MODE_LABELS[PowerMode.PROPOSED],
                 latencies[2].total_time_s, latencies[2].alltoall_time_s)
            )
            energy_rows.append((app.name, n, *energies))
    return perf_rows, energy_rows


def fig9_cpmd_performance():
    """Fig 9: CPMD total and alltoall time, 32/64 processes, 3 datasets."""
    perf_rows, _ = _app_rows(CPMD_DATASETS)
    headers = ["Dataset", "Procs", "Scheme", "Total (s)", "Alltoall (s)"]
    notes = (
        "Paper: runtime halves from 32 to 64 processes while alltoall time\n"
        "changes little; power schemes cost ~2-5%."
    )
    return headers, perf_rows, notes


def table1_cpmd_energy():
    """Table I: CPMD energy (kJ) under the three schemes."""
    _, energy_rows = _app_rows(CPMD_DATASETS)
    headers = ["Dataset", "Procs", "Default (kJ)", "Freq-Scaling (kJ)", "Proposed (kJ)"]
    notes = "Paper Table I; ~8% saving on ta-inp-md at 64 processes."
    return headers, energy_rows, notes


def fig10_nas_performance():
    """Fig 10: NAS FT and IS total + alltoall time."""
    perf_rows, _ = _app_rows((NAS_FT, NAS_IS))
    headers = ["Kernel", "Procs", "Scheme", "Total (s)", "Alltoall (s)"]
    notes = "Paper: same behaviour as CPMD; IS is the most alltoall-bound."
    return headers, perf_rows, notes


def table2_nas_energy():
    """Table II: NAS energy (kJ) under the three schemes."""
    _, energy_rows = _app_rows((NAS_FT, NAS_IS))
    headers = ["Kernel", "Procs", "Default (kJ)", "Freq-Scaling (kJ)", "Proposed (kJ)"]
    notes = "Paper Table II; ~8% saving on IS."
    return headers, energy_rows, notes


# =====================================================================
# Model validation & ablations
# =====================================================================
def models_validation(nbytes: int = 1 << 20):
    """Equations (1)-(4) against the simulator at 64 processes."""
    rows = []
    params = ModelParams.contended(8)
    r = run_collective_loop("alltoall", nbytes, 64, keep_segments=False)
    rows.append(
        ("eq(1) alltoall", t_alltoall_pairwise(8, 8, nbytes, params) * 1e6,
         r.duration_s * 1e6)
    )
    rb = run_collective_loop("bcast", nbytes, 64, keep_segments=False)
    rows.append(
        ("eq(2) bcast net x N/2",
         t_bcast_scatter_allgather(8, nbytes, params) / 4 * 1e6,
         rb.stats.phase_times["bcast.network"] * 1e6)
    )
    rp = run_collective_loop(
        "alltoall", nbytes, 64, mode=PowerMode.PROPOSED, keep_segments=False
    )
    rows.append(
        ("eq(3) power alltoall", t_alltoall_power_aware(8, 8, nbytes, params) * 1e6,
         rp.duration_s * 1e6)
    )
    rpb = run_collective_loop(
        "bcast", nbytes, 64, mode=PowerMode.PROPOSED, keep_segments=False
    )
    rows.append(
        ("eq(4) power bcast x N/2",
         t_bcast_power_aware(8, nbytes, params) / 4 * 1e6,
         rpb.duration_s * 1e6)
    )
    headers = ["Model", "Predicted (us)", "Simulated (us)"]
    notes = (
        "Closed forms use Cnet=8 (ranks/HCA). The bcast forms are divided\n"
        "by N/2: the paper's eq counts ring bytes without the 1/N block size\n"
        "(see tests/models). Agreement within ~2x validates the shapes."
    )
    return headers, rows, notes


def ablation_throttle_granularity(nbytes: int = 1 << 20):
    """§V-B discussion: socket- vs core-granular throttling."""
    rows = []
    for gran in (ThrottleGranularity.SOCKET, ThrottleGranularity.CORE):
        spec = ClusterSpec.with_shape(nodes=8, granularity=gran)
        for op in ("bcast", "alltoall"):
            r = run_collective_loop(
                op, nbytes, 64, mode=PowerMode.PROPOSED,
                cluster_spec=spec, iterations=2,
            )
            rows.append(
                (op, gran.value, r.duration_s / 2 * 1e6, r.average_power_w / 1e3)
            )
    headers = ["Op", "Granularity", "Latency (us)", "Avg power (kW)"]
    notes = (
        "Paper §V-B: core-granular throttling (future architectures) gives\n"
        "more savings without slowing the leader."
    )
    return headers, rows, notes


def extension_rack_topology(nbytes: int = 1 << 20):
    """Paper §VIII future work: rack-aware power-aware broadcast on a
    4-rack / 16-node / 128-core cluster with 2:1 oversubscribed uplinks."""
    spec = ClusterSpec(nodes=16, racks=4)
    rows = []
    for mode in MODES:
        r = run_collective_loop(
            "bcast", nbytes, 128, mode=mode, cluster_spec=spec, iterations=4
        )
        uplink_flows = sum(
            n for name, n in r.job.net.fabric.link_flows.items()
            if name.startswith("rack_up")
        )
        rows.append(
            (
                MODE_LABELS[mode],
                r.duration_s / 4 * 1e6,
                r.average_power_w / 1e3,
                uplink_flows,
            )
        )
    headers = ["Scheme", "Latency (us)", "Avg power (kW)", "Uplink flows"]
    notes = (
        "Whole racks are throttled while only the 4 rack leaders cross the\n"
        "spine — the §VIII vision, one hierarchy level above Fig 4."
    )
    return headers, rows, notes


def extension_adaptive_policy(
    sizes: Sequence[int] = (16 << 10, 64 << 10, 256 << 10, 1 << 20)
):
    """Extension: the ADAPTIVE per-call policy vs the paper's static
    schemes on a mixed-size alltoall workload (one call per size)."""
    all_modes = (*MODES, PowerMode.ADAPTIVE)
    rows = []
    for mode in all_modes:
        job = MpiJob(64, collectives=_engine(mode), keep_segments=False)

        def program(ctx):
            for nbytes in sizes:
                yield from ctx.alltoall(nbytes)
                # Short broadcasts: engaging power here costs more than it
                # saves — the case that separates ADAPTIVE from PROPOSED.
                yield from ctx.bcast(nbytes // 16)

        r = job.run(program)
        rows.append(
            (
                MODE_LABELS.get(mode, "Adaptive"),
                r.duration_s * 1e3,
                r.energy_j,
                r.stats.throttle_transitions,
            )
        )
    headers = ["Scheme", "Total (ms)", "Energy (J)", "Throttle ops"]
    notes = (
        "Adaptive engages the proposed schedule only when eq (1) predicts\n"
        "the call amortises the transitions: near-best energy at every mix."
    )
    return headers, rows, notes


# ---------------------------------------------------------------------
# Extension: the online governor runtime (repro.runtime)
# ---------------------------------------------------------------------
#: Governor policies compared against the paper's static schemes.
GOVERNOR_POLICIES = ("countdown", "predictive")
GOVERNOR_LABELS = {"countdown": "Countdown", "predictive": "Predictive"}


def _governed_job(n_ranks: int, policy: str, **job_kwargs):
    """An MpiJob with an online governor and the NONE static scheme (the
    governor replaces the baked-in schedules, it does not stack on them)."""
    from ..runtime import Governor, GovernorConfig, GovernorPolicy

    gov = Governor(GovernorConfig(policy=GovernorPolicy(policy)))
    job = MpiJob(
        n_ranks,
        collectives=_engine(PowerMode.NONE),
        keep_segments=False,
        governor=gov,
        **job_kwargs,
    )
    return job, gov


def extension_governor_alltoall(
    sizes: Sequence[int] = (64 << 10, 256 << 10, 1 << 20),
    iterations: int = 3,
    n_ranks: int = 64,
):
    """Extension: online governor policies vs the paper's static schemes
    on OSU-style alltoall loops (countdown should track No-Power latency
    while shaving wait energy; predictive should track Proposed energy)."""
    rows: List[Tuple] = []
    for nbytes in sizes:
        for mode in MODES:
            r = run_collective_loop(
                "alltoall", nbytes, n_ranks, mode=mode,
                iterations=iterations, keep_segments=False,
            )
            rows.append(
                (
                    bytes_label(nbytes),
                    MODE_LABELS[mode],
                    _mean_latency_us(r, iterations),
                    r.energy_j,
                    0,
                )
            )
        for policy in GOVERNOR_POLICIES:
            job, gov = _governed_job(n_ranks, policy)

            def program(ctx):
                for _ in range(iterations):
                    yield from ctx.alltoall(nbytes)

            r = job.run(program)
            report = gov.report()
            rows.append(
                (
                    bytes_label(nbytes),
                    GOVERNOR_LABELS[policy],
                    _mean_latency_us(r, iterations),
                    r.energy_j,
                    report.drops,
                )
            )
    headers = ["Size", "Scheme", "Latency (us)", "Energy (J)", "Drops"]
    notes = (
        "Countdown throttles T-states only (the NIC rating follows core\n"
        "frequency, not duty), so its latency hugs No-Power; predictive\n"
        "pre-scales to fmin and lands near the Proposed energy point."
    )
    return headers, rows, notes


def extension_governor_mixed(
    sizes: Sequence[int] = (16 << 10, 64 << 10, 256 << 10, 1 << 20)
):
    """Extension: the governor vs the per-call ADAPTIVE scheme on the
    mixed-size workload of :func:`extension_adaptive_policy`."""

    def program(ctx):
        for nbytes in sizes:
            yield from ctx.alltoall(nbytes)
            yield from ctx.bcast(nbytes // 16)

    rows: List[Tuple] = []
    for mode in (*MODES, PowerMode.ADAPTIVE):
        job = MpiJob(64, collectives=_engine(mode), keep_segments=False)
        r = job.run(program)
        rows.append(
            (
                MODE_LABELS.get(mode, "Adaptive"),
                r.duration_s * 1e3,
                r.energy_j,
                r.stats.dvfs_transitions + r.stats.throttle_transitions,
            )
        )
    for policy in GOVERNOR_POLICIES:
        job, gov = _governed_job(64, policy)
        r = job.run(program)
        report = gov.report()
        rows.append(
            (
                GOVERNOR_LABELS[policy],
                r.duration_s * 1e3,
                r.energy_j,
                report.drops + report.prescales,
            )
        )
    headers = ["Scheme", "Total (ms)", "Energy (J)", "Power ops"]
    notes = (
        "Power ops counts DVFS+throttle transitions for static schemes and\n"
        "governor drops+pre-scales for the online policies.  The online\n"
        "policies need no per-algorithm schedule yet beat ADAPTIVE's energy."
    )
    return headers, rows, notes


def extension_governor_apps(include_nas: bool = True):
    """Extension: governor policies on the application traces (CPMD water
    + NAS FT) against the paper's static schemes — the ISSUE acceptance
    surface: countdown ≤ 1.05x best static energy at ≤ 2% added
    communication latency."""
    from ..apps import CPMD_WAT32_INP1
    from ..runtime import Governor, GovernorConfig, GovernorPolicy

    apps = [(CPMD_WAT32_INP1, 64)]
    if include_nas:
        apps.append((NAS_FT, 64))
    rows: List[Tuple] = []
    for app, ranks in apps:
        for mode in MODES:
            r = run_app(app, ranks, mode)
            rows.append(
                (
                    app.name,
                    MODE_LABELS[mode],
                    r.total_time_s,
                    r.alltoall_time_s,
                    r.energy_kj,
                )
            )
        for policy in GOVERNOR_POLICIES:
            gov = Governor(GovernorConfig(policy=GovernorPolicy(policy)))
            r = run_app(app, ranks, PowerMode.NONE, governor=gov)
            rows.append(
                (
                    app.name,
                    GOVERNOR_LABELS[policy],
                    r.total_time_s,
                    r.alltoall_time_s,
                    r.energy_kj,
                )
            )
    headers = ["App", "Scheme", "Total (s)", "Alltoall (s)", "Energy (kJ)"]
    notes = (
        "Countdown's T-state-only drops keep the alltoall phase within 2%\n"
        "of No-Power while recovering most of the wait energy; predictive\n"
        "pre-scaling beats every static scheme on total energy."
    )
    return headers, rows, notes


# ---------------------------------------------------------------------
# Extension: fault injection (repro.faults) — robustness of the governor
# ---------------------------------------------------------------------
#: The "mild noise" perturbation the ISSUE-3 acceptance check runs under:
#: a quarter of the nodes at 60% NIC bandwidth plus OS noise on a quarter
#: of the cores.
DEFAULT_FAULT_SPEC = (
    "degrade:factor=0.6,frac=0.25;noise:period=500us,pulse=20us,frac=0.25"
)


def extension_faults_governor(
    sizes: Sequence[int] = (64 << 10, 256 << 10),
    iterations: int = 3,
    n_ranks: int = 64,
    fault_spec: str = DEFAULT_FAULT_SPEC,
    seed: int = 7,
):
    """Extension: governor policies on a quiet vs a perturbed machine.

    Each loop iteration computes briefly and then alltoalls, so every
    injector class matters: stragglers/noise stretch the compute,
    degraded NICs stretch the collective.  The acceptance claim is that
    countdown's envelope survives mild perturbation — latency hugging
    the (equally perturbed) No-Power baseline while still saving energy.
    """
    from ..faults import parse_fault_spec
    from ..runtime import Governor, GovernorConfig, GovernorPolicy

    schemes = ("No-Power", *GOVERNOR_LABELS.values())
    rows: List[Tuple] = []
    for nbytes in sizes:
        for fault_label, active in (("quiet", False), ("mild", True)):
            for scheme in schemes:
                # A FaultState binds to exactly one session: re-parse per
                # run so every job gets its own (identically seeded) plan.
                plan = parse_fault_spec(fault_spec, seed=seed) if active else None
                gov = None
                if scheme != "No-Power":
                    policy = next(
                        p for p, label in GOVERNOR_LABELS.items()
                        if label == scheme
                    )
                    gov = Governor(GovernorConfig(policy=GovernorPolicy(policy)))
                job = MpiJob(
                    n_ranks,
                    collectives=_engine(PowerMode.NONE),
                    keep_segments=False,
                    governor=gov,
                    faults=plan,
                )

                def program(ctx):
                    for _ in range(iterations):
                        yield from ctx.compute(200e-6)
                        yield from ctx.alltoall(nbytes)

                r = job.run(program)
                rows.append(
                    (
                        bytes_label(nbytes),
                        fault_label,
                        scheme,
                        r.duration_s * 1e3,
                        r.energy_j,
                        gov.report().drops if gov is not None else 0,
                    )
                )
    headers = ["Size", "Faults", "Scheme", "Total (ms)", "Energy (J)", "Drops"]
    notes = (
        "'mild' = " + fault_spec + f" (seed {seed}).\n"
        "Countdown must keep its envelope under perturbation: latency\n"
        "within 2% of the equally-faulted No-Power run, energy below it."
    )
    return headers, rows, notes


def ablation_cluster_scaling(nbytes: int = 256 << 10, node_counts=(2, 4, 8, 16)):
    """Scaling study: the proposed alltoall across cluster sizes.

    Equation (3) predicts overhead 2·Odvfs + N·Othrottle — linear in the
    node count — while the power saving fraction stays constant.  This
    sweep exercises both claims beyond the paper's 8-node testbed.
    """
    rows = []
    for n_nodes in node_counts:
        spec = ClusterSpec(nodes=n_nodes)
        n_ranks = n_nodes * 8
        r_def = run_collective_loop(
            "alltoall", nbytes, n_ranks, cluster_spec=spec, keep_segments=False
        )
        r_prop = run_collective_loop(
            "alltoall", nbytes, n_ranks, mode=PowerMode.PROPOSED,
            cluster_spec=spec, keep_segments=False,
        )
        rows.append(
            (
                n_nodes,
                n_ranks,
                r_def.duration_s * 1e6,
                r_prop.duration_s * 1e6,
                r_prop.duration_s / r_def.duration_s - 1.0,
                1.0 - r_prop.average_power_w / r_def.average_power_w,
            )
        )
    headers = [
        "Nodes",
        "Ranks",
        "Default (us)",
        "Proposed (us)",
        "Overhead",
        "Power saving",
    ]
    notes = (
        "Eq (3): the throttle-transition overhead grows with N, but the\n"
        "relative power saving (~30%) is size-independent."
    )
    return headers, rows, notes


def ablation_fmin_sweep(nbytes: int = 1 << 20):
    """Which DVFS target frequency minimises collective energy?

    The paper always drops to the floor (1.6 GHz); this sweep justifies
    that choice: communication is not CPU-bound, so energy decreases
    monotonically down the P-state ladder while latency grows only via the
    uncore/NIC coupling.
    """
    from ..cluster.specs import DEFAULT_PSTATES

    rows = []
    for f_target in DEFAULT_PSTATES:
        cpu = CpuSpec(pstates_ghz=tuple(f for f in DEFAULT_PSTATES if f >= f_target))
        spec = ClusterSpec(nodes=8, node=NodeSpec(cpu=cpu))
        r = run_collective_loop(
            "alltoall", nbytes, 64, mode=PowerMode.DVFS, cluster_spec=spec,
            keep_segments=False,
        )
        rows.append(
            (f_target, r.duration_s * 1e6, r.average_power_w / 1e3, r.energy_j)
        )
    headers = ["DVFS target (GHz)", "Latency (us)", "Avg power (kW)", "Energy (J)"]
    notes = (
        "Energy falls monotonically toward fmin — the paper's choice of\n"
        "'the minimum possible frequency' (§V) is energy-optimal for\n"
        "communication phases."
    )
    return headers, rows, notes


def ablation_transition_overheads(
    nbytes: int = 256 << 10, overheads_us: Sequence[float] = (0.0, 12.0, 50.0, 200.0)
):
    """§VI-A2: sensitivity of the proposed alltoall to Odvfs/Othrottle."""
    rows = []
    for ov in overheads_us:
        cpu = CpuSpec(dvfs_latency_s=ov * 1e-6, throttle_latency_s=ov * 1e-6)
        spec = ClusterSpec(nodes=8, node=NodeSpec(cpu=cpu))
        r = run_collective_loop(
            "alltoall", nbytes, 64, mode=PowerMode.PROPOSED, cluster_spec=spec,
            keep_segments=False,
        )
        rows.append((ov, r.duration_s * 1e6))
    headers = ["Odvfs=Othrottle (us)", "Proposed alltoall (us)"]
    notes = (
        "Paper §VI-A2: the overhead term 2·Odvfs + N·Othrottle grows\n"
        "linearly with the transition cost; Nehalem's ~12us keeps it small."
    )
    return headers, rows, notes
