"""Experiment implementations for every table and figure in the paper.

Each ``fig*``/``table*`` function runs the relevant simulations and
returns ``(headers, rows, notes)`` ready for
:func:`repro.bench.report.render_experiment`.  The ``benchmarks/``
directory wraps each one in a pytest-benchmark target; EXPERIMENTS.md
records the outcomes.

Cell decomposition
------------------
Every experiment is expressed as a :class:`SweepPlan`: a ``plan_*``
function produces the list of independent
:class:`~repro.runner.cells.SweepCell` simulation points plus an
``assemble`` closure that folds their results back into the table rows.
The public experiment functions keep their exact signatures and run the
plan through :func:`repro.runner.run_cells`, so they inherit parallel
execution and result caching whenever the caller configures them (see
:func:`use_runner`; the CLI's ``--jobs`` / ``--cache-dir`` flags do).
:data:`CELL_PLANS` maps CLI experiment names to default plan producers.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..apps import (
    CPMD_DATASETS,
    CPMD_TA_INP_MD,
    CPMD_WAT32_INP1,
    CPMD_WAT32_INP2,
    NAS_FT,
    NAS_IS,
)
from ..cluster.specs import ClusterSpec, CpuSpec, NodeSpec, ThrottleGranularity
from ..collectives.registry import CollectiveConfig, CollectiveEngine, PowerMode
from ..models import (
    ModelParams,
    t_alltoall_pairwise,
    t_alltoall_power_aware,
    t_bcast_power_aware,
    t_bcast_scatter_allgather,
)
from ..mpi.job import JobResult, MpiJob
from ..mpi.p2p import ProgressMode
from ..runner import CellResult, SweepCell, run_cells
from .report import bytes_label

#: Message sweep of the power figures (7a, 8a; paper x-axis 16K–1M).
POWER_FIG_SIZES: Tuple[int, ...] = (16 << 10, 64 << 10, 256 << 10, 1 << 20)
#: Fig 2(a) sweep (1K–1M).
FIG2A_SIZES: Tuple[int, ...] = (1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20)
#: Fig 2(b) sweep (4K–1M).
FIG2B_SIZES: Tuple[int, ...] = (4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20)
#: Fig 2(c) sweep (4B–4K).
FIG2C_SIZES: Tuple[int, ...] = (4, 64, 256, 1 << 10, 4 << 10)

MODES = (PowerMode.NONE, PowerMode.DVFS, PowerMode.PROPOSED)
MODE_LABELS = {
    PowerMode.NONE: "No-Power",
    PowerMode.DVFS: "Freq-Scaling",
    PowerMode.PROPOSED: "Proposed",
}


def _engine(mode: PowerMode) -> CollectiveEngine:
    return CollectiveEngine(CollectiveConfig(power_mode=mode))


def run_collective_loop(
    op: str,
    nbytes: int,
    n_ranks: int,
    mode: PowerMode = PowerMode.NONE,
    iterations: int = 1,
    progress: ProgressMode = ProgressMode.POLLING,
    cluster_spec: Optional[ClusterSpec] = None,
    keep_segments: bool = True,
) -> JobResult:
    """Run ``iterations`` back-to-back collectives (the OSU benchmark
    loop of §VII-B) and return the job result."""
    job = MpiJob(
        n_ranks,
        cluster_spec=cluster_spec,
        collectives=_engine(mode),
        progress=progress,
        keep_segments=keep_segments,
    )

    def program(ctx):
        for _ in range(iterations):
            yield from getattr(ctx, op)(nbytes)

    return job.run(program)


def _mean_latency_us(result, iterations: int) -> float:
    return result.duration_s / iterations * 1e6


# =====================================================================
# Sweep plans: cells + assembly
# =====================================================================
@dataclass
class SweepPlan:
    """An experiment as data: independent cells + a fold to table rows."""

    cells: List[SweepCell]
    assemble: Callable[[List[CellResult]], Tuple[List, List, str]]


@dataclass
class RunnerScope:
    """Ambient runner configuration installed by :func:`use_runner`.

    ``governor``/``faults`` are plain-data configs (``to_dict()`` form)
    overlaid onto every plan cell that does not already pin its own —
    the CLI's ``--governor``/``--faults`` flags become *plan parameters*
    this way, so instrumented sweeps flow through the exact same cached
    parallel path as everything else.  The per-run report dicts harvested
    from the overlaid cells accumulate on ``governor_reports`` /
    ``fault_reports`` (they round-trip the result cache, so a warm-cache
    rerun reports identically to a cold one).
    """

    jobs: Optional[int] = None
    cache: Any = None
    refresh: bool = False
    stats: Any = None
    governor: Optional[Dict[str, Any]] = None
    faults: Optional[Dict[str, Any]] = None
    arbiter: Optional[Dict[str, Any]] = None
    #: True while a use_runner scope is live; report collection only
    #: happens then (library callers never accumulate unbounded lists).
    collect: bool = False
    governor_reports: List[Dict[str, Any]] = None  # type: ignore[assignment]
    fault_reports: List[Dict[str, Any]] = None  # type: ignore[assignment]
    arbiter_reports: List[Dict[str, Any]] = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.governor_reports is None:
            self.governor_reports = []
        if self.fault_reports is None:
            self.fault_reports = []
        if self.arbiter_reports is None:
            self.arbiter_reports = []


_RUNNER_SCOPE = RunnerScope()


@contextlib.contextmanager
def use_runner(jobs=None, cache=None, refresh: bool = False, stats=None,
               governor: Optional[Dict[str, Any]] = None,
               faults: Optional[Dict[str, Any]] = None,
               arbiter: Optional[Dict[str, Any]] = None):
    """Route every experiment run inside the scope through the parallel
    executor / result cache with these settings.

    Yields the :class:`RunnerScope`; after the body ran, its
    ``governor_reports``/``fault_reports``/``arbiter_reports`` hold the
    per-run report dicts of every cell the ``governor``/``faults``/
    ``arbiter`` overlays touched.
    """
    global _RUNNER_SCOPE
    prev = _RUNNER_SCOPE
    scope = RunnerScope(jobs=jobs, cache=cache, refresh=refresh, stats=stats,
                        governor=governor, faults=faults, arbiter=arbiter,
                        collect=True)
    _RUNNER_SCOPE = scope
    try:
        yield scope
    finally:
        _RUNNER_SCOPE = prev


def instrument_cells(
    cells: List[SweepCell],
    governor: Optional[Dict[str, Any]] = None,
    faults: Optional[Dict[str, Any]] = None,
    arbiter: Optional[Dict[str, Any]] = None,
) -> Tuple[List[SweepCell], Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]:
    """Overlay governor/fault/arbiter configs onto cells without their own.

    A cell whose params already carry a ``governor``/``faults``/
    ``arbiter`` key keeps it — plan-declared instrumentation
    (ext-governor's policy grid, ext-faults' mild column, ext-arbiter's
    policy columns) always wins over the CLI flags, matching the old
    ambient-scope precedence where an explicit config bypassed the
    scope.  Returns the (possibly rebuilt) cells plus the index tuples
    of cells that received each overlay, so the caller can harvest
    exactly those reports.
    """
    if governor is None and faults is None and arbiter is None:
        return cells, (), (), ()
    out: List[SweepCell] = []
    gov_idx: List[int] = []
    fault_idx: List[int] = []
    arb_idx: List[int] = []
    for i, cell in enumerate(cells):
        params = dict(cell.params)
        touched = False
        if governor is not None and "governor" not in params:
            params["governor"] = governor
            gov_idx.append(i)
            touched = True
        if faults is not None and "faults" not in params:
            params["faults"] = faults
            fault_idx.append(i)
            touched = True
        if arbiter is not None and "arbiter" not in params:
            params["arbiter"] = arbiter
            arb_idx.append(i)
            touched = True
        if touched:
            cell = SweepCell(experiment=cell.experiment, kind=cell.kind,
                             params=params, label=cell.label)
        out.append(cell)
    return out, tuple(gov_idx), tuple(fault_idx), tuple(arb_idx)


def _run_plan(plan: SweepPlan):
    """Execute a plan through the one cell runner — no other path exists.

    Instrumented or not, every cell goes through :func:`run_cells`
    (memo > disk cache > warm-worker pool/inline), with any ambient
    ``--governor``/``--faults`` configs overlaid as cell parameters and
    reconstructed inside the worker by ``execute_cell``.
    """
    scope = _RUNNER_SCOPE
    cells, gov_idx, fault_idx, arb_idx = instrument_cells(
        plan.cells, scope.governor, scope.faults, scope.arbiter
    )
    results = run_cells(cells, jobs=scope.jobs, cache=scope.cache,
                        refresh=scope.refresh, stats=scope.stats)
    if scope.collect:
        scope.governor_reports.extend(
            results[i].governor for i in gov_idx
            if results[i].governor is not None
        )
        scope.fault_reports.extend(
            results[i].faults for i in fault_idx
            if results[i].faults is not None
        )
        scope.arbiter_reports.extend(
            results[i].arbiter for i in arb_idx
            if results[i].arbiter is not None
        )
    return plan.assemble(results)


def _collective_cell(
    experiment: str,
    op: str,
    nbytes: int,
    n_ranks: int,
    mode: PowerMode = PowerMode.NONE,
    iterations: int = 1,
    progress: ProgressMode = ProgressMode.POLLING,
    cluster_spec: Optional[ClusterSpec] = None,
    keep_segments: bool = False,
    label: str = "",
    **extra,
) -> SweepCell:
    params: Dict[str, Any] = {
        "op": op,
        "nbytes": nbytes,
        "n_ranks": n_ranks,
        "mode": mode.value,
        "iterations": iterations,
        "progress": progress.value,
        "keep_segments": keep_segments,
    }
    if cluster_spec is not None:
        params["cluster"] = cluster_spec.to_dict()
    params.update({k: v for k, v in extra.items() if v is not None})
    return SweepCell(
        experiment=experiment,
        kind="collective",
        params=params,
        label=label or f"{op}/{bytes_label(nbytes)}/{mode.value}",
    )


# =====================================================================
# Figure 2
# =====================================================================
def plan_fig2a(sizes: Sequence[int] = FIG2A_SIZES, iterations: int = 1) -> SweepPlan:
    spec_4way = ClusterSpec.with_shape(nodes=8, sockets=2, cores_per_socket=2)
    spec_8way = ClusterSpec.with_shape(nodes=4, sockets=2, cores_per_socket=4)
    cells = []
    for nbytes in sizes:
        for way, spec in (("4way", spec_4way), ("8way", spec_8way)):
            cells.append(
                _collective_cell(
                    "fig2a", "alltoall", nbytes, 32, iterations=iterations,
                    cluster_spec=spec,
                    label=f"alltoall/{bytes_label(nbytes)}/{way}",
                )
            )

    def assemble(results):
        rows: List[Tuple] = []
        for i, nbytes in enumerate(sizes):
            t4, t8 = results[2 * i], results[2 * i + 1]
            theory = t_alltoall_pairwise(8, 4, nbytes, ModelParams.contended(4))
            rows.append(
                (
                    bytes_label(nbytes),
                    _mean_latency_us(t4, iterations),
                    _mean_latency_us(t8, iterations),
                    theory * 1e6,
                )
            )
        headers = [
            "Size", "Alltoall-4way (us)", "Alltoall-8way (us)", "Theoretical (us)",
        ]
        notes = (
            "Paper: same 32-process job is ~54% slower in the 8-way layout due\n"
            "to HCA contention; the theoretical line is equation (1) with Cnet=4."
        )
        return headers, rows, notes

    return SweepPlan(cells, assemble)


def fig2a_alltoall_scaling(sizes: Sequence[int] = FIG2A_SIZES, iterations: int = 1):
    """Fig 2(a): 32-process alltoall, 4-way vs 8-way vs eq-(1) estimate."""
    return _run_plan(plan_fig2a(sizes, iterations))


def _plan_phases(experiment: str, op: str, phase_key: str,
                 sizes: Sequence[int], n_ranks: int = 64) -> SweepPlan:
    cells = [
        _collective_cell(experiment, op, nbytes, n_ranks) for nbytes in sizes
    ]

    def assemble(results):
        rows = []
        for nbytes, r in zip(sizes, results):
            net = r.phase_times.get(phase_key, 0.0)
            rows.append(
                (bytes_label(nbytes), r.duration_s * 1e6, net * 1e6,
                 net / r.duration_s)
            )
        headers = ["Size", "Overall (us)", "Network phase (us)", "Net fraction"]
        return headers, rows, ""

    return SweepPlan(cells, assemble)


def plan_fig2b(sizes: Sequence[int] = FIG2B_SIZES) -> SweepPlan:
    return _plan_phases("fig2b", "bcast", "bcast.network", sizes)


def fig2b_bcast_phases(sizes: Sequence[int] = FIG2B_SIZES):
    """Fig 2(b): bcast total time vs its inter-leader network phase."""
    headers, rows, _ = _run_plan(plan_fig2b(sizes))
    notes = (
        "Paper: the network phase accounts for most of the bcast time while\n"
        "only one rank per node communicates — the rest poll (waste power)."
    )
    return headers, rows, notes


def plan_fig2c(sizes: Sequence[int] = FIG2C_SIZES) -> SweepPlan:
    return _plan_phases("fig2c", "reduce", "reduce.network", sizes)


def fig2c_reduce_phases(sizes: Sequence[int] = FIG2C_SIZES):
    """Fig 2(c): reduce total time vs its network phase."""
    headers, rows, _ = _run_plan(plan_fig2c(sizes))
    notes = "Same observation as Fig 2(b) for MPI_Reduce."
    return headers, rows, notes


# =====================================================================
# Figure 6: polling vs blocking
# =====================================================================
def plan_fig6a(sizes: Sequence[int] = POWER_FIG_SIZES, iterations: int = 1) -> SweepPlan:
    cells = []
    for nbytes in sizes:
        for progress in (ProgressMode.POLLING, ProgressMode.BLOCKING):
            cells.append(
                _collective_cell(
                    "fig6a", "alltoall", nbytes, 64, iterations=iterations,
                    progress=progress,
                    label=f"alltoall/{bytes_label(nbytes)}/{progress.value}",
                )
            )

    def assemble(results):
        rows = []
        for i, nbytes in enumerate(sizes):
            t_poll, t_block = results[2 * i], results[2 * i + 1]
            rows.append(
                (
                    bytes_label(nbytes),
                    _mean_latency_us(t_poll, iterations),
                    _mean_latency_us(t_block, iterations),
                    t_block.duration_s / t_poll.duration_s,
                )
            )
        headers = ["Size", "Polling (us)", "Blocking (us)", "Blocking/Polling"]
        notes = "Paper: blocking is ~2x slower at large sizes (Fig 6a)."
        return headers, rows, notes

    return SweepPlan(cells, assemble)


def fig6a_polling_vs_blocking(sizes: Sequence[int] = POWER_FIG_SIZES, iterations: int = 1):
    """Fig 6(a): 64-process alltoall latency, polling vs blocking."""
    return _run_plan(plan_fig6a(sizes, iterations))


def plan_fig6b(
    nbytes: int = 256 << 10, iterations: int = 10, interval_s: float = 0.1
) -> SweepPlan:
    cells = [
        _collective_cell(
            "fig6b", "alltoall", nbytes, 64, iterations=iterations,
            progress=progress, keep_segments=True,
            power_trace_interval_s=interval_s,
            label=f"alltoall/{bytes_label(nbytes)}/{progress.value}/trace",
        )
        for progress in (ProgressMode.POLLING, ProgressMode.BLOCKING)
    ]

    def assemble(results):
        traces = [r.extra["power_trace"] for r in results]
        n = min(len(t["times_s"]) for t in traces)
        rows = [
            (
                f"{traces[0]['times_s'][i]:.2f}",
                traces[0]["power_kw"][i],
                traces[1]["power_kw"][i],
            )
            for i in range(n)
        ]
        headers = ["t (s)", "Polling (kW)", "Blocking (kW)"]
        notes = "Paper: polling draws ~2.3 kW, blocking dips to ~1.8-2.0 kW."
        return headers, rows, notes

    return SweepPlan(cells, assemble)


def fig6b_power_timeline(
    nbytes: int = 256 << 10, iterations: int = 10, interval_s: float = 0.1
):
    """Fig 6(b): sampled system power while the alltoall loop runs."""
    return _run_plan(plan_fig6b(nbytes, iterations, interval_s))


# =====================================================================
# Figures 7 & 8: the three schemes
# =====================================================================
def _plan_three_scheme_latency(
    experiment: str, op: str, sizes: Sequence[int], iterations: int = 1
) -> SweepPlan:
    cells = [
        _collective_cell(experiment, op, nbytes, 64, mode=mode,
                         iterations=iterations)
        for nbytes in sizes
        for mode in MODES
    ]

    def assemble(results):
        rows = []
        for i, nbytes in enumerate(sizes):
            latencies = [
                _mean_latency_us(results[3 * i + j], iterations) for j in range(3)
            ]
            overhead = latencies[2] / latencies[0] - 1.0
            rows.append((bytes_label(nbytes), *latencies, overhead))
        headers = [
            "Size",
            "No-Power (us)",
            "Freq-Scaling (us)",
            "Proposed (us)",
            "Proposed overhead",
        ]
        return headers, rows, ""

    return SweepPlan(cells, assemble)


def _plan_three_scheme_power(
    experiment: str, op: str, nbytes: int, iterations: int, interval_s: float
) -> SweepPlan:
    cells = [
        _collective_cell(
            experiment, op, nbytes, 64, mode=mode, iterations=iterations,
            keep_segments=True, power_trace_interval_s=interval_s,
            label=f"{op}/{bytes_label(nbytes)}/{mode.value}/trace",
        )
        for mode in MODES
    ]

    def assemble(results):
        traces = [r.extra["power_trace"] for r in results]
        means = [t["mean_power_w"] for t in traces]
        n = min(len(t["times_s"]) for t in traces)
        rows = [
            (
                f"{traces[0]['times_s'][i]:.2f}",
                traces[0]["power_kw"][i],
                traces[1]["power_kw"][i],
                traces[2]["power_kw"][i],
            )
            for i in range(n)
        ]
        headers = ["t (s)", "No-Power (kW)", "Freq-Scaling (kW)", "Proposed (kW)"]
        notes = (
            f"Mean power: No-Power {means[0]/1e3:.2f} kW, Freq-Scaling "
            f"{means[1]/1e3:.2f} kW, Proposed {means[2]/1e3:.2f} kW "
            "(paper: ~2.3 / ~1.8 / ~1.6 kW)."
        )
        return headers, rows, notes

    return SweepPlan(cells, assemble)


def plan_fig7a(sizes: Sequence[int] = POWER_FIG_SIZES) -> SweepPlan:
    return _plan_three_scheme_latency("fig7a", "alltoall", sizes)


def fig7a_alltoall_latency(sizes: Sequence[int] = POWER_FIG_SIZES):
    """Fig 7(a): alltoall latency under the three schemes, 64 processes."""
    headers, rows, _ = _run_plan(plan_fig7a(sizes))
    notes = (
        "Paper: ~10% gap between default and power-aware; very little\n"
        "difference between Freq-Scaling and Proposed."
    )
    return headers, rows, notes


def plan_fig7b(
    nbytes: int = 1 << 20, iterations: int = 8, interval_s: float = 0.25
) -> SweepPlan:
    return _plan_three_scheme_power("fig7b", "alltoall", nbytes, iterations, interval_s)


def fig7b_alltoall_power(nbytes: int = 1 << 20, iterations: int = 8, interval_s: float = 0.25):
    """Fig 7(b): sampled power during the alltoall loop."""
    return _run_plan(plan_fig7b(nbytes, iterations, interval_s))


def plan_alltoallv(sizes: Sequence[int] = POWER_FIG_SIZES) -> SweepPlan:
    cells = [
        SweepCell(
            experiment="alltoallv",
            kind="alltoallv",
            params={
                "nbytes": nbytes,
                "n_ranks": 64,
                "mode": mode.value,
                "keep_segments": False,
            },
            label=f"alltoallv/{bytes_label(nbytes)}/{mode.value}",
        )
        for nbytes in sizes
        for mode in MODES
    ]

    def assemble(results):
        rows = []
        for i, nbytes in enumerate(sizes):
            latencies = [results[3 * i + j].duration_s * 1e6 for j in range(3)]
            rows.append(
                (bytes_label(nbytes), *latencies, latencies[2] / latencies[0] - 1.0)
            )
        headers = [
            "Mean size",
            "No-Power (us)",
            "Freq-Scaling (us)",
            "Proposed (us)",
            "Proposed overhead",
        ]
        notes = "Paper §VII-D: Alltoallv behaves like Alltoall under all schemes."
        return headers, rows, notes

    return SweepPlan(cells, assemble)


def alltoallv_power(sizes: Sequence[int] = POWER_FIG_SIZES):
    """§VII-D: MPI_Alltoallv mirrors the Alltoall results ([26]).

    Uses deterministically skewed per-peer counts (±15 % around the mean)
    so the vector path is genuinely exercised."""
    return _run_plan(plan_alltoallv(sizes))


def plan_fig8a(sizes: Sequence[int] = POWER_FIG_SIZES) -> SweepPlan:
    return _plan_three_scheme_latency("fig8a", "bcast", sizes, iterations=4)


def fig8a_bcast_latency(sizes: Sequence[int] = POWER_FIG_SIZES):
    """Fig 8(a): bcast latency under the three schemes, 64 processes."""
    headers, rows, _ = _run_plan(plan_fig8a(sizes))
    notes = "Paper: ~15% overhead at 1MB; power variants nearly identical."
    return headers, rows, notes


def plan_fig8b(
    nbytes: int = 1 << 20, iterations: int = 600, interval_s: float = 0.25
) -> SweepPlan:
    return _plan_three_scheme_power("fig8b", "bcast", nbytes, iterations, interval_s)


def fig8b_bcast_power(nbytes: int = 1 << 20, iterations: int = 600, interval_s: float = 0.25):
    """Fig 8(b): sampled power during the bcast loop."""
    return _run_plan(plan_fig8b(nbytes, iterations, interval_s))


# =====================================================================
# Figures 9 & 10 and Tables I & II: applications
# =====================================================================
#: Registry keys of :data:`repro.runner.APP_SPECS` by app name — cells
#: carry the key, never the AppSpec object.
_APP_KEYS = {
    NAS_FT.name: "nas-ft",
    NAS_IS.name: "nas-is",
    CPMD_WAT32_INP1.name: "cpmd-wat1",
    CPMD_WAT32_INP2.name: "cpmd-wat2",
    CPMD_TA_INP_MD.name: "cpmd-ta",
}


def _app_cell(experiment: str, app, ranks: int, mode: PowerMode,
              governor=None, scheme: str = "") -> SweepCell:
    params: Dict[str, Any] = {
        "app": _APP_KEYS[app.name],
        "ranks": ranks,
        "mode": mode.value,
    }
    if governor is not None:
        params["governor"] = governor
    return SweepCell(
        experiment=experiment,
        kind="app",
        params=params,
        label=f"{app.name}/{ranks}r/{scheme or mode.value}",
    )


def _plan_apps(experiment: str, apps: Iterable, ranks=(32, 64)) -> SweepPlan:
    """The shared fig9/10 + table I/II sweep: apps × ranks × schemes.

    The figure and table of the same section share the same 18 cells —
    identical content hashes, so the runner executes each once."""
    apps = tuple(apps)
    cells = [
        _app_cell(experiment, app, n, mode)
        for app in apps
        for n in ranks
        for mode in MODES
    ]

    def assemble(results):
        perf_rows = []
        energy_rows = []
        i = 0
        for app in apps:
            for n in ranks:
                group = results[i:i + 3]
                i += 3
                for mode, r in zip(MODES, group):
                    perf_rows.append(
                        (
                            app.name,
                            n,
                            MODE_LABELS[mode],
                            r.app["total_time_s"],
                            r.app["alltoall_time_s"],
                        )
                    )
                energy_rows.append(
                    (app.name, n, *[r.app["energy_kj"] for r in group])
                )
        return perf_rows, energy_rows, ""

    return SweepPlan(cells, assemble)


def fig9_cpmd_performance():
    """Fig 9: CPMD total and alltoall time, 32/64 processes, 3 datasets."""
    perf_rows, _, _ = _run_plan(_plan_apps("fig9", CPMD_DATASETS))
    headers = ["Dataset", "Procs", "Scheme", "Total (s)", "Alltoall (s)"]
    notes = (
        "Paper: runtime halves from 32 to 64 processes while alltoall time\n"
        "changes little; power schemes cost ~2-5%."
    )
    return headers, perf_rows, notes


def table1_cpmd_energy():
    """Table I: CPMD energy (kJ) under the three schemes."""
    _, energy_rows, _ = _run_plan(_plan_apps("table1", CPMD_DATASETS))
    headers = ["Dataset", "Procs", "Default (kJ)", "Freq-Scaling (kJ)", "Proposed (kJ)"]
    notes = "Paper Table I; ~8% saving on ta-inp-md at 64 processes."
    return headers, energy_rows, notes


def fig10_nas_performance():
    """Fig 10: NAS FT and IS total + alltoall time."""
    perf_rows, _, _ = _run_plan(_plan_apps("fig10", (NAS_FT, NAS_IS)))
    headers = ["Kernel", "Procs", "Scheme", "Total (s)", "Alltoall (s)"]
    notes = "Paper: same behaviour as CPMD; IS is the most alltoall-bound."
    return headers, perf_rows, notes


def table2_nas_energy():
    """Table II: NAS energy (kJ) under the three schemes."""
    _, energy_rows, _ = _run_plan(_plan_apps("table2", (NAS_FT, NAS_IS)))
    headers = ["Kernel", "Procs", "Default (kJ)", "Freq-Scaling (kJ)", "Proposed (kJ)"]
    notes = "Paper Table II; ~8% saving on IS."
    return headers, energy_rows, notes


# =====================================================================
# Model validation & ablations
# =====================================================================
def plan_models_validation(nbytes: int = 1 << 20) -> SweepPlan:
    cells = [
        _collective_cell("models", "alltoall", nbytes, 64),
        _collective_cell("models", "bcast", nbytes, 64),
        _collective_cell("models", "alltoall", nbytes, 64, mode=PowerMode.PROPOSED),
        _collective_cell("models", "bcast", nbytes, 64, mode=PowerMode.PROPOSED),
    ]

    def assemble(results):
        params = ModelParams.contended(8)
        r, rb, rp, rpb = results
        rows = [
            ("eq(1) alltoall", t_alltoall_pairwise(8, 8, nbytes, params) * 1e6,
             r.duration_s * 1e6),
            ("eq(2) bcast net x N/2",
             t_bcast_scatter_allgather(8, nbytes, params) / 4 * 1e6,
             rb.phase_times["bcast.network"] * 1e6),
            ("eq(3) power alltoall",
             t_alltoall_power_aware(8, 8, nbytes, params) * 1e6,
             rp.duration_s * 1e6),
            ("eq(4) power bcast x N/2",
             t_bcast_power_aware(8, nbytes, params) / 4 * 1e6,
             rpb.duration_s * 1e6),
        ]
        headers = ["Model", "Predicted (us)", "Simulated (us)"]
        notes = (
            "Closed forms use Cnet=8 (ranks/HCA). The bcast forms are divided\n"
            "by N/2: the paper's eq counts ring bytes without the 1/N block size\n"
            "(see tests/models). Agreement within ~2x validates the shapes."
        )
        return headers, rows, notes

    return SweepPlan(cells, assemble)


def models_validation(nbytes: int = 1 << 20):
    """Equations (1)-(4) against the simulator at 64 processes."""
    return _run_plan(plan_models_validation(nbytes))


def plan_ablation_granularity(nbytes: int = 1 << 20) -> SweepPlan:
    grans = (ThrottleGranularity.SOCKET, ThrottleGranularity.CORE)
    ops = ("bcast", "alltoall")
    cells = [
        _collective_cell(
            "ablation-granularity", op, nbytes, 64, mode=PowerMode.PROPOSED,
            cluster_spec=ClusterSpec.with_shape(nodes=8, granularity=gran),
            iterations=2, keep_segments=True,
            label=f"{op}/{bytes_label(nbytes)}/{gran.value}",
        )
        for gran in grans
        for op in ops
    ]

    def assemble(results):
        rows = []
        i = 0
        for gran in grans:
            for op in ops:
                r = results[i]
                i += 1
                rows.append(
                    (op, gran.value, r.duration_s / 2 * 1e6, r.average_power_w / 1e3)
                )
        headers = ["Op", "Granularity", "Latency (us)", "Avg power (kW)"]
        notes = (
            "Paper §V-B: core-granular throttling (future architectures) gives\n"
            "more savings without slowing the leader."
        )
        return headers, rows, notes

    return SweepPlan(cells, assemble)


def ablation_throttle_granularity(nbytes: int = 1 << 20):
    """§V-B discussion: socket- vs core-granular throttling."""
    return _run_plan(plan_ablation_granularity(nbytes))


def plan_ext_racks(nbytes: int = 1 << 20) -> SweepPlan:
    spec = ClusterSpec(nodes=16, racks=4)
    cells = [
        _collective_cell(
            "ext-racks", "bcast", nbytes, 128, mode=mode, iterations=4,
            cluster_spec=spec, keep_segments=True, link_flow_prefix="rack_up",
            label=f"bcast/{bytes_label(nbytes)}/racks/{mode.value}",
        )
        for mode in MODES
    ]

    def assemble(results):
        rows = [
            (
                MODE_LABELS[mode],
                r.duration_s / 4 * 1e6,
                r.average_power_w / 1e3,
                r.extra["link_flows"],
            )
            for mode, r in zip(MODES, results)
        ]
        headers = ["Scheme", "Latency (us)", "Avg power (kW)", "Uplink flows"]
        notes = (
            "Whole racks are throttled while only the 4 rack leaders cross the\n"
            "spine — the §VIII vision, one hierarchy level above Fig 4."
        )
        return headers, rows, notes

    return SweepPlan(cells, assemble)


def extension_rack_topology(nbytes: int = 1 << 20):
    """Paper §VIII future work: rack-aware power-aware broadcast on a
    4-rack / 16-node / 128-core cluster with 2:1 oversubscribed uplinks."""
    return _run_plan(plan_ext_racks(nbytes))


def _mixed_cell(experiment: str, sizes: Sequence[int], mode: PowerMode,
                governor=None, scheme: str = "") -> SweepCell:
    params: Dict[str, Any] = {
        "sizes": list(sizes),
        "n_ranks": 64,
        "mode": mode.value,
        "keep_segments": False,
    }
    if governor is not None:
        params["governor"] = governor
    return SweepCell(
        experiment=experiment,
        kind="mixed",
        params=params,
        label=f"mixed/{scheme or mode.value}",
    )


def plan_ext_adaptive(
    sizes: Sequence[int] = (16 << 10, 64 << 10, 256 << 10, 1 << 20)
) -> SweepPlan:
    all_modes = (*MODES, PowerMode.ADAPTIVE)
    cells = [_mixed_cell("ext-adaptive", sizes, mode) for mode in all_modes]

    def assemble(results):
        rows = [
            (
                MODE_LABELS.get(mode, "Adaptive"),
                r.duration_s * 1e3,
                r.energy_j,
                r.throttle_transitions,
            )
            for mode, r in zip(all_modes, results)
        ]
        headers = ["Scheme", "Total (ms)", "Energy (J)", "Throttle ops"]
        notes = (
            "Adaptive engages the proposed schedule only when eq (1) predicts\n"
            "the call amortises the transitions: near-best energy at every mix."
        )
        return headers, rows, notes

    return SweepPlan(cells, assemble)


def extension_adaptive_policy(
    sizes: Sequence[int] = (16 << 10, 64 << 10, 256 << 10, 1 << 20)
):
    """Extension: the ADAPTIVE per-call policy vs the paper's static
    schemes on a mixed-size alltoall workload (one call per size)."""
    return _run_plan(plan_ext_adaptive(sizes))


# ---------------------------------------------------------------------
# Extension: the online governor runtime (repro.runtime)
# ---------------------------------------------------------------------
#: Governor policies compared against the paper's static schemes.
GOVERNOR_POLICIES = ("countdown", "predictive")
GOVERNOR_LABELS = {"countdown": "Countdown", "predictive": "Predictive"}


def _governor_params(policy: str) -> Dict[str, Any]:
    """The plain-data GovernorConfig a governed cell carries."""
    from ..runtime import GovernorConfig, GovernorPolicy

    return GovernorConfig(policy=GovernorPolicy(policy)).to_dict()


def _governed_job(n_ranks: int, policy: str, **job_kwargs):
    """An MpiJob with an online governor and the NONE static scheme (the
    governor replaces the baked-in schedules, it does not stack on them)."""
    from ..runtime import Governor, GovernorConfig, GovernorPolicy

    gov = Governor(GovernorConfig(policy=GovernorPolicy(policy)))
    job = MpiJob(
        n_ranks,
        collectives=_engine(PowerMode.NONE),
        keep_segments=False,
        governor=gov,
        **job_kwargs,
    )
    return job, gov


def plan_ext_governor_alltoall(
    sizes: Sequence[int] = (64 << 10, 256 << 10, 1 << 20),
    iterations: int = 3,
    n_ranks: int = 64,
) -> SweepPlan:
    cells = []
    for nbytes in sizes:
        for mode in MODES:
            cells.append(
                _collective_cell(
                    "ext-governor-alltoall", "alltoall", nbytes, n_ranks,
                    mode=mode, iterations=iterations,
                )
            )
        for policy in GOVERNOR_POLICIES:
            cells.append(
                _collective_cell(
                    "ext-governor-alltoall", "alltoall", nbytes, n_ranks,
                    iterations=iterations, governor=_governor_params(policy),
                    label=f"alltoall/{bytes_label(nbytes)}/{policy}",
                )
            )

    def assemble(results):
        schemes = [MODE_LABELS[m] for m in MODES] + [
            GOVERNOR_LABELS[p] for p in GOVERNOR_POLICIES
        ]
        rows: List[Tuple] = []
        per_size = len(schemes)
        for i, nbytes in enumerate(sizes):
            for j, scheme in enumerate(schemes):
                r = results[per_size * i + j]
                drops = r.governor["drops"] if r.governor is not None else 0
                rows.append(
                    (
                        bytes_label(nbytes),
                        scheme,
                        _mean_latency_us(r, iterations),
                        r.energy_j,
                        drops,
                    )
                )
        headers = ["Size", "Scheme", "Latency (us)", "Energy (J)", "Drops"]
        notes = (
            "Countdown throttles T-states only (the NIC rating follows core\n"
            "frequency, not duty), so its latency hugs No-Power; predictive\n"
            "pre-scales to fmin and lands near the Proposed energy point."
        )
        return headers, rows, notes

    return SweepPlan(cells, assemble)


def extension_governor_alltoall(
    sizes: Sequence[int] = (64 << 10, 256 << 10, 1 << 20),
    iterations: int = 3,
    n_ranks: int = 64,
):
    """Extension: online governor policies vs the paper's static schemes
    on OSU-style alltoall loops (countdown should track No-Power latency
    while shaving wait energy; predictive should track Proposed energy)."""
    return _run_plan(plan_ext_governor_alltoall(sizes, iterations, n_ranks))


def plan_ext_governor_mixed(
    sizes: Sequence[int] = (16 << 10, 64 << 10, 256 << 10, 1 << 20)
) -> SweepPlan:
    static_modes = (*MODES, PowerMode.ADAPTIVE)
    cells = [
        _mixed_cell("ext-governor-mixed", sizes, mode) for mode in static_modes
    ] + [
        _mixed_cell(
            "ext-governor-mixed", sizes, PowerMode.NONE,
            governor=_governor_params(policy), scheme=policy,
        )
        for policy in GOVERNOR_POLICIES
    ]

    def assemble(results):
        rows: List[Tuple] = []
        for mode, r in zip(static_modes, results):
            rows.append(
                (
                    MODE_LABELS.get(mode, "Adaptive"),
                    r.duration_s * 1e3,
                    r.energy_j,
                    r.dvfs_transitions + r.throttle_transitions,
                )
            )
        for policy, r in zip(GOVERNOR_POLICIES, results[len(static_modes):]):
            rows.append(
                (
                    GOVERNOR_LABELS[policy],
                    r.duration_s * 1e3,
                    r.energy_j,
                    r.governor["drops"] + r.governor["prescales"],
                )
            )
        headers = ["Scheme", "Total (ms)", "Energy (J)", "Power ops"]
        notes = (
            "Power ops counts DVFS+throttle transitions for static schemes and\n"
            "governor drops+pre-scales for the online policies.  The online\n"
            "policies need no per-algorithm schedule yet beat ADAPTIVE's energy."
        )
        return headers, rows, notes

    return SweepPlan(cells, assemble)


def extension_governor_mixed(
    sizes: Sequence[int] = (16 << 10, 64 << 10, 256 << 10, 1 << 20)
):
    """Extension: the governor vs the per-call ADAPTIVE scheme on the
    mixed-size workload of :func:`extension_adaptive_policy`."""
    return _run_plan(plan_ext_governor_mixed(sizes))


def plan_ext_governor_apps(include_nas: bool = True) -> SweepPlan:
    apps = [(CPMD_WAT32_INP1, 64)]
    if include_nas:
        apps.append((NAS_FT, 64))
    cells = []
    for app, ranks in apps:
        for mode in MODES:
            cells.append(_app_cell("ext-governor-apps", app, ranks, mode))
        for policy in GOVERNOR_POLICIES:
            cells.append(
                _app_cell(
                    "ext-governor-apps", app, ranks, PowerMode.NONE,
                    governor=_governor_params(policy), scheme=policy,
                )
            )

    def assemble(results):
        schemes = [MODE_LABELS[m] for m in MODES] + [
            GOVERNOR_LABELS[p] for p in GOVERNOR_POLICIES
        ]
        rows: List[Tuple] = []
        per_app = len(schemes)
        for i, (app, _ranks) in enumerate(apps):
            for j, scheme in enumerate(schemes):
                r = results[per_app * i + j]
                rows.append(
                    (
                        app.name,
                        scheme,
                        r.app["total_time_s"],
                        r.app["alltoall_time_s"],
                        r.app["energy_kj"],
                    )
                )
        headers = ["App", "Scheme", "Total (s)", "Alltoall (s)", "Energy (kJ)"]
        notes = (
            "Countdown's T-state-only drops keep the alltoall phase within 2%\n"
            "of No-Power while recovering most of the wait energy; predictive\n"
            "pre-scaling beats every static scheme on total energy."
        )
        return headers, rows, notes

    return SweepPlan(cells, assemble)


def extension_governor_apps(include_nas: bool = True):
    """Extension: governor policies on the application traces (CPMD water
    + NAS FT) against the paper's static schemes — the ISSUE acceptance
    surface: countdown ≤ 1.05x best static energy at ≤ 2% added
    communication latency."""
    return _run_plan(plan_ext_governor_apps(include_nas))


# ---------------------------------------------------------------------
# Extension: fault injection (repro.faults) — robustness of the governor
# ---------------------------------------------------------------------
#: The "mild noise" perturbation the ISSUE-3 acceptance check runs under:
#: a quarter of the nodes at 60% NIC bandwidth plus OS noise on a quarter
#: of the cores.
DEFAULT_FAULT_SPEC = (
    "degrade:factor=0.6,frac=0.25;noise:period=500us,pulse=20us,frac=0.25"
)


def plan_ext_faults(
    sizes: Sequence[int] = (64 << 10, 256 << 10),
    iterations: int = 3,
    n_ranks: int = 64,
    fault_spec: str = DEFAULT_FAULT_SPEC,
    seed: int = 7,
) -> SweepPlan:
    from ..faults import parse_fault_spec

    fault_params = parse_fault_spec(fault_spec, seed=seed).to_dict()
    schemes = ("No-Power", *GOVERNOR_LABELS.values())
    fault_labels = ("quiet", "mild")
    cells = []
    for nbytes in sizes:
        for fault_label in fault_labels:
            for scheme in schemes:
                governor = None
                if scheme != "No-Power":
                    policy = next(
                        p for p, label in GOVERNOR_LABELS.items()
                        if label == scheme
                    )
                    governor = _governor_params(policy)
                cells.append(
                    _collective_cell(
                        "ext-faults", "alltoall", nbytes, n_ranks,
                        iterations=iterations, compute_s=200e-6,
                        governor=governor,
                        faults=fault_params if fault_label == "mild" else None,
                        label=(
                            f"alltoall/{bytes_label(nbytes)}"
                            f"/{fault_label}/{scheme}"
                        ),
                    )
                )

    def assemble(results):
        rows: List[Tuple] = []
        i = 0
        for nbytes in sizes:
            for fault_label in fault_labels:
                for scheme in schemes:
                    r = results[i]
                    i += 1
                    drops = r.governor["drops"] if r.governor is not None else 0
                    rows.append(
                        (
                            bytes_label(nbytes),
                            fault_label,
                            scheme,
                            r.duration_s * 1e3,
                            r.energy_j,
                            drops,
                        )
                    )
        headers = ["Size", "Faults", "Scheme", "Total (ms)", "Energy (J)", "Drops"]
        notes = (
            "'mild' = " + fault_spec + f" (seed {seed}).\n"
            "Countdown must keep its envelope under perturbation: latency\n"
            "within 2% of the equally-faulted No-Power run, energy below it."
        )
        return headers, rows, notes

    return SweepPlan(cells, assemble)


def extension_faults_governor(
    sizes: Sequence[int] = (64 << 10, 256 << 10),
    iterations: int = 3,
    n_ranks: int = 64,
    fault_spec: str = DEFAULT_FAULT_SPEC,
    seed: int = 7,
):
    """Extension: governor policies on a quiet vs a perturbed machine.

    Each loop iteration computes briefly and then alltoalls, so every
    injector class matters: stragglers/noise stretch the compute,
    degraded NICs stretch the collective.  The acceptance claim is that
    countdown's envelope survives mild perturbation — latency hugging
    the (equally perturbed) No-Power baseline while still saving energy.
    """
    return _run_plan(plan_ext_faults(sizes, iterations, n_ranks, fault_spec, seed))


def plan_ablation_scaling(
    nbytes: int = 256 << 10, node_counts=(2, 4, 8, 16)
) -> SweepPlan:
    cells = []
    for n_nodes in node_counts:
        spec = ClusterSpec(nodes=n_nodes)
        n_ranks = n_nodes * 8
        for mode in (PowerMode.NONE, PowerMode.PROPOSED):
            cells.append(
                _collective_cell(
                    "ablation-scaling", "alltoall", nbytes, n_ranks, mode=mode,
                    cluster_spec=spec,
                    label=f"alltoall/{n_nodes}n/{mode.value}",
                )
            )

    def assemble(results):
        rows = []
        for i, n_nodes in enumerate(node_counts):
            r_def, r_prop = results[2 * i], results[2 * i + 1]
            rows.append(
                (
                    n_nodes,
                    n_nodes * 8,
                    r_def.duration_s * 1e6,
                    r_prop.duration_s * 1e6,
                    r_prop.duration_s / r_def.duration_s - 1.0,
                    1.0 - r_prop.average_power_w / r_def.average_power_w,
                )
            )
        headers = [
            "Nodes",
            "Ranks",
            "Default (us)",
            "Proposed (us)",
            "Overhead",
            "Power saving",
        ]
        notes = (
            "Eq (3): the throttle-transition overhead grows with N, but the\n"
            "relative power saving (~30%) is size-independent."
        )
        return headers, rows, notes

    return SweepPlan(cells, assemble)


def ablation_cluster_scaling(nbytes: int = 256 << 10, node_counts=(2, 4, 8, 16)):
    """Scaling study: the proposed alltoall across cluster sizes.

    Equation (3) predicts overhead 2·Odvfs + N·Othrottle — linear in the
    node count — while the power saving fraction stays constant.  This
    sweep exercises both claims beyond the paper's 8-node testbed.
    """
    return _run_plan(plan_ablation_scaling(nbytes, node_counts))


def plan_ablation_fmin(nbytes: int = 1 << 20) -> SweepPlan:
    from ..cluster.specs import DEFAULT_PSTATES

    cells = []
    for f_target in DEFAULT_PSTATES:
        cpu = CpuSpec(pstates_ghz=tuple(f for f in DEFAULT_PSTATES if f >= f_target))
        spec = ClusterSpec(nodes=8, node=NodeSpec(cpu=cpu))
        cells.append(
            _collective_cell(
                "ablation-fmin", "alltoall", nbytes, 64, mode=PowerMode.DVFS,
                cluster_spec=spec,
                label=f"alltoall/{bytes_label(nbytes)}/fmin={f_target}",
            )
        )

    def assemble(results):
        rows = [
            (f_target, r.duration_s * 1e6, r.average_power_w / 1e3, r.energy_j)
            for f_target, r in zip(DEFAULT_PSTATES, results)
        ]
        headers = ["DVFS target (GHz)", "Latency (us)", "Avg power (kW)", "Energy (J)"]
        notes = (
            "Energy falls monotonically toward fmin — the paper's choice of\n"
            "'the minimum possible frequency' (§V) is energy-optimal for\n"
            "communication phases."
        )
        return headers, rows, notes

    return SweepPlan(cells, assemble)


def ablation_fmin_sweep(nbytes: int = 1 << 20):
    """Which DVFS target frequency minimises collective energy?

    The paper always drops to the floor (1.6 GHz); this sweep justifies
    that choice: communication is not CPU-bound, so energy decreases
    monotonically down the P-state ladder while latency grows only via the
    uncore/NIC coupling.
    """
    return _run_plan(plan_ablation_fmin(nbytes))


def plan_ablation_overheads(
    nbytes: int = 256 << 10, overheads_us: Sequence[float] = (0.0, 12.0, 50.0, 200.0)
) -> SweepPlan:
    cells = []
    for ov in overheads_us:
        cpu = CpuSpec(dvfs_latency_s=ov * 1e-6, throttle_latency_s=ov * 1e-6)
        spec = ClusterSpec(nodes=8, node=NodeSpec(cpu=cpu))
        cells.append(
            _collective_cell(
                "ablation-overheads", "alltoall", nbytes, 64,
                mode=PowerMode.PROPOSED, cluster_spec=spec,
                label=f"alltoall/{bytes_label(nbytes)}/ov={ov}us",
            )
        )

    def assemble(results):
        rows = [(ov, r.duration_s * 1e6) for ov, r in zip(overheads_us, results)]
        headers = ["Odvfs=Othrottle (us)", "Proposed alltoall (us)"]
        notes = (
            "Paper §VI-A2: the overhead term 2·Odvfs + N·Othrottle grows\n"
            "linearly with the transition cost; Nehalem's ~12us keeps it small."
        )
        return headers, rows, notes

    return SweepPlan(cells, assemble)


def ablation_transition_overheads(
    nbytes: int = 256 << 10, overheads_us: Sequence[float] = (0.0, 12.0, 50.0, 200.0)
):
    """§VI-A2: sensitivity of the proposed alltoall to Odvfs/Othrottle."""
    return _run_plan(plan_ablation_overheads(nbytes, overheads_us))


# ---------------------------------------------------------------------
# Extension: cluster power-budget arbiter (repro.runtime.arbiter)
# ---------------------------------------------------------------------
#: Per-node cap (W) of the default capped scenario: between the node's
#: fmin demand (~225 W all-polling) and its fmax demand (~287.5 W), so
#: the uniform split clamps every node below fmax while redistribution
#: can push critical nodes back up with donated headroom.
ARBITER_CAP_PER_NODE_W = 250.0


def _arbiter_params(policy: str, power_cap_w: float) -> Dict[str, Any]:
    from ..runtime.arbiter import ArbiterConfig, ArbiterPolicy

    return ArbiterConfig(
        policy=ArbiterPolicy(policy), power_cap_w=power_cap_w
    ).to_dict()


def _multijob_cell(
    experiment: str,
    jobs: Sequence[Dict[str, Any]],
    cluster_spec: ClusterSpec,
    policy: Optional[str] = None,
    power_cap_w: float = 0.0,
    label: str = "",
) -> SweepCell:
    params: Dict[str, Any] = {
        "jobs": [dict(j) for j in jobs],
        "cluster": cluster_spec.to_dict(),
        "progress": ProgressMode.POLLING.value,
    }
    if policy is not None:
        params["arbiter"] = _arbiter_params(policy, power_cap_w)
    return SweepCell(
        experiment=experiment, kind="multijob", params=params,
        label=label or f"multijob/{policy or 'no-cap'}",
    )


def plan_ext_arbiter(
    n_nodes: int = 16,
    cap_per_node_w: float = ARBITER_CAP_PER_NODE_W,
    comm_nbytes: int = 64 << 10,
    comm_iterations: int = 2,
    compute_s: float = 10e-3,
    compute_iterations: int = 3,
) -> SweepPlan:
    """Two co-scheduled jobs under a cluster power cap (multi-job study).

    Job A (first half of the nodes) is communication-bound — alltoall
    loops whose ranks spend most time in MPI waits, so under the
    ``redistribute`` policy its nodes become budget donors.  Job B
    (second half) is compute-bound and sets the makespan; the donated
    headroom lets its nodes run a higher P-state than the uniform split
    allows at the same global cap.
    """
    spec = ClusterSpec.with_shape(nodes=n_nodes, sockets=2, cores_per_socket=4)
    cores = 8
    half = n_nodes // 2
    jobs = [
        {
            "n_ranks": half * cores, "node_offset": 0,
            "op": "alltoall", "nbytes": comm_nbytes,
            "iterations": comm_iterations,
        },
        {
            "n_ranks": half * cores, "node_offset": half,
            "op": "allreduce", "nbytes": 1 << 10,
            "iterations": compute_iterations, "compute_s": compute_s,
        },
    ]
    cap = cap_per_node_w * n_nodes
    schemes = (("no-cap", None), ("uniform", "uniform"),
               ("redistribute", "redistribute"))
    cells = [
        _multijob_cell(
            "ext-arbiter", jobs, spec, policy=policy, power_cap_w=cap,
            label=f"multijob/{name}",
        )
        for name, policy in schemes
    ]

    def assemble(results):
        rows: List[Tuple] = []
        for (name, _policy), r in zip(schemes, results):
            job_a, job_b = r.extra["jobs"]
            arb = r.arbiter or {}
            rows.append(
                (
                    name,
                    r.duration_s * 1e3,
                    job_a["duration_s"] * 1e3,
                    job_b["duration_s"] * 1e3,
                    r.energy_j,
                    arb.get("donated_j", 0.0),
                )
            )
        headers = [
            "Scheme", "Makespan (ms)", "Job A (ms)", "Job B (ms)",
            "Energy (J)", "Donated (J)",
        ]
        notes = (
            "Equal global cap for uniform and redistribute; job A's alltoall\n"
            "slack funds job B's higher P-state under redistribution, so the\n"
            "compute-bound makespan drops without exceeding the cap."
        )
        return headers, rows, notes

    return SweepPlan(cells, assemble)


def extension_power_arbiter(
    n_nodes: int = 16,
    cap_per_node_w: float = ARBITER_CAP_PER_NODE_W,
    comm_nbytes: int = 64 << 10,
    comm_iterations: int = 2,
    compute_s: float = 10e-3,
    compute_iterations: int = 3,
):
    """Extension: the cluster power-budget arbiter on a two-job scenario
    (no-cap / uniform / redistribute at one global cap) — redistribute
    should beat uniform on makespan at the same cap."""
    return _run_plan(plan_ext_arbiter(
        n_nodes, cap_per_node_w, comm_nbytes, comm_iterations,
        compute_s, compute_iterations,
    ))


#: CLI experiment name → zero-argument cell-plan producer (the default
#: parameterisation of each experiment, decomposed but not yet run).
CELL_PLANS: Dict[str, Callable[[], SweepPlan]] = {
    "fig2a": plan_fig2a,
    "fig2b": plan_fig2b,
    "fig2c": plan_fig2c,
    "fig6a": plan_fig6a,
    "fig6b": plan_fig6b,
    "fig7a": plan_fig7a,
    "fig7b": plan_fig7b,
    "fig8a": plan_fig8a,
    "fig8b": plan_fig8b,
    "fig9": lambda: _plan_apps("fig9", CPMD_DATASETS),
    "fig10": lambda: _plan_apps("fig10", (NAS_FT, NAS_IS)),
    "table1": lambda: _plan_apps("table1", CPMD_DATASETS),
    "table2": lambda: _plan_apps("table2", (NAS_FT, NAS_IS)),
    "models": plan_models_validation,
    "alltoallv": plan_alltoallv,
    "ablation-granularity": plan_ablation_granularity,
    "ablation-overheads": plan_ablation_overheads,
    "ablation-fmin": plan_ablation_fmin,
    "ablation-scaling": plan_ablation_scaling,
    "ext-racks": plan_ext_racks,
    "ext-rack-topology": plan_ext_racks,
    "ext-adaptive": plan_ext_adaptive,
    "ext-governor": plan_ext_governor_alltoall,
    "ext-governor-alltoall": plan_ext_governor_alltoall,
    "ext-governor-mixed": plan_ext_governor_mixed,
    "ext-governor-apps": plan_ext_governor_apps,
    "ext-faults": plan_ext_faults,
    "ext-arbiter": plan_ext_arbiter,
}
