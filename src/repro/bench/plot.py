"""Terminal plotting: ASCII line charts for the figure reproductions.

No matplotlib on the cluster — these render each figure's series as a
monospace chart (log-x for message-size sweeps, linear for power
timelines), good enough to eyeball the crossovers the paper's figures
show.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

#: Glyphs assigned to successive series.
SERIES_GLYPHS = "*o+x#@"


def _scale(value: float, lo: float, hi: float, n: int) -> int:
    """Map value in [lo, hi] to a cell index in [0, n-1]."""
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(n - 1, max(0, int(round(frac * (n - 1)))))


def ascii_chart(
    x: Sequence[float],
    series: Sequence[Sequence[float]],
    labels: Optional[Sequence[str]] = None,
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
) -> str:
    """Render one or more series over a shared x axis.

    Points are plotted with one glyph per series; collisions show the
    later series' glyph.  Returns a multi-line string.
    """
    if not x:
        raise ValueError("need at least one x value")
    for ys in series:
        if len(ys) != len(x):
            raise ValueError("series length must match x")
    if logx and any(v <= 0 for v in x):
        raise ValueError("logx requires positive x values")
    flat = [v for ys in series for v in ys]
    if logy and any(v <= 0 for v in flat):
        raise ValueError("logy requires positive y values")

    fx = [math.log10(v) for v in x] if logx else list(x)
    fy = [[math.log10(v) for v in ys] if logy else list(ys) for ys in series]
    x_lo, x_hi = min(fx), max(fx)
    y_flat = [v for ys in fy for v in ys]
    y_lo, y_hi = min(y_flat), max(y_flat)

    grid = [[" "] * width for _ in range(height)]
    for si, ys in enumerate(fy):
        glyph = SERIES_GLYPHS[si % len(SERIES_GLYPHS)]
        for xi, yi in zip(fx, ys):
            col = _scale(xi, x_lo, x_hi, width)
            row = height - 1 - _scale(yi, y_lo, y_hi, height)
            grid[row][col] = glyph

    y_max_label = f"{max(flat):.3g}"
    y_min_label = f"{min(flat):.3g}"
    margin = max(len(y_max_label), len(y_min_label))
    lines: List[str] = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            label = y_max_label.rjust(margin)
        elif r == height - 1:
            label = y_min_label.rjust(margin)
        else:
            label = " " * margin
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * margin + " +" + "-" * width)
    x_min_label = f"{min(x):.3g}"
    x_max_label = f"{max(x):.3g}"
    gap = width - len(x_min_label) - len(x_max_label)
    lines.append(" " * (margin + 2) + x_min_label + " " * max(1, gap) + x_max_label)
    if labels:
        legend = "   ".join(
            f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {name}"
            for i, name in enumerate(labels)
        )
        lines.append(" " * (margin + 2) + legend)
    return "\n".join(lines)


def chart_from_rows(
    rows: Sequence[Sequence],
    y_columns: Sequence[int],
    labels: Optional[Sequence[str]] = None,
    x_column: int = 0,
    x_parser=None,
    **kwargs,
) -> str:
    """Chart directly from experiment rows (as produced by repro.bench).

    ``x_parser`` converts the x column (e.g. "64K" labels) to numbers;
    defaults to float() with a K/M suffix parser fallback.
    """

    def default_parser(v):
        if isinstance(v, (int, float)):
            return float(v)
        text = str(v).strip().upper()
        if text.endswith("K"):
            return float(text[:-1]) * 1024
        if text.endswith("M"):
            return float(text[:-1]) * 1024 * 1024
        return float(text)

    parser = x_parser or default_parser
    x = [parser(row[x_column]) for row in rows]
    series = [[float(row[c]) for row in rows] for c in y_columns]
    return ascii_chart(x, series, labels=labels, **kwargs)
