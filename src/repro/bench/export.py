"""Machine-readable export of experiment results (JSON).

Every experiment returns ``(headers, rows, notes)``; these helpers wrap
that in a stable JSON schema so downstream analysis (or a CI regression
dashboard) can consume the reproduction data without scraping tables.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Sequence

SCHEMA_VERSION = 1


def experiment_to_dict(
    name: str, headers: Sequence[str], rows: Sequence[Sequence], notes: str = ""
) -> Dict:
    """Build the canonical JSON-able record for one experiment."""
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    return {
        "schema": SCHEMA_VERSION,
        "experiment": name,
        "headers": list(headers),
        "rows": [list(row) for row in rows],
        "records": [dict(zip(headers, row)) for row in rows],
        "notes": notes,
    }


def save_json(
    name: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    notes: str = "",
    results_dir: str = "results",
) -> str:
    """Write the experiment record to ``results/<name>.json``."""
    record = experiment_to_dict(name, headers, rows, notes)
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    return path


def save_governor_json(
    reports: Sequence,
    results_dir: str = "results",
    filename: str = "governor.json",
) -> str:
    """Write the per-run governor telemetry next to the profile output.

    ``reports`` are :class:`repro.runtime.telemetry.GovernorReport`
    instances (one per governed job); the file carries both the merged
    totals and the individual runs.  Registered here so ``--profile``
    CLI runs emit ``results/governor.json`` through the same export
    layer as the experiment records.
    """
    from ..runtime.telemetry import merge_reports

    merged = merge_reports(list(reports))
    record = {
        "schema": SCHEMA_VERSION,
        "kind": "governor",
        "merged": merged.to_dict() if merged is not None else None,
        "runs": [report.to_dict() for report in reports],
    }
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, filename)
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    return path


def load_json(path: str) -> Dict:
    """Load a record written by :func:`save_json` (validates the schema)."""
    with open(path) as fh:
        record = json.load(fh)
    if record.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema {record.get('schema')!r} in {path}"
        )
    for key in ("experiment", "headers", "rows"):
        if key not in record:
            raise ValueError(f"missing key {key!r} in {path}")
    return record
