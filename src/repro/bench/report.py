"""Plain-text table/series formatting for experiment output.

No plotting dependencies: every figure is reproduced as the series of
points the paper plots, every table as rows, in monospace text.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence


def format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_experiment(title: str, headers: Sequence[str], rows, notes: str = "") -> str:
    """Full experiment block: banner, table, optional notes."""
    out = [f"== {title} ==", format_table(headers, rows)]
    if notes:
        out.append(notes)
    return "\n".join(out) + "\n"


def save_report(name: str, text: str, results_dir: str = "results") -> str:
    """Write an experiment report under ``results/`` (created on demand)."""
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text)
    return path


def bytes_label(n: int) -> str:
    """1024 → "1K", 1048576 → "1M" (the paper's axis labels)."""
    if n >= 1 << 20 and n % (1 << 20) == 0:
        return f"{n >> 20}M"
    if n >= 1 << 10 and n % (1 << 10) == 0:
        return f"{n >> 10}K"
    return str(n)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def render_sweep_report(stats: dict) -> str:
    """Render the last sweep's runner accounting (``repro bench-report``).

    ``stats`` is the dict persisted by
    :func:`repro.runner.save_sweep_stats`: cache hit/miss counters plus
    per-cell ``(label, wall_seconds)`` timings.
    """
    lines = [f"== sweep report: {stats.get('experiment') or '(unnamed)'} =="]
    total = stats.get("cells_total", 0)
    hits = stats.get("memo_hits", 0) + stats.get("cache_hits", 0)
    rate = hits / total if total else 0.0
    summary_rows = [
        ("cells", total),
        ("memo hits", stats.get("memo_hits", 0)),
        ("cache hits", stats.get("cache_hits", 0)),
        ("executed", stats.get("unique_executed", 0)),
        ("hit rate", f"{rate:.0%}"),
        ("jobs", stats.get("jobs", 1)),
        ("elapsed (s)", stats.get("elapsed_s", 0.0)),
    ]
    jobs_eff = stats.get("jobs_effective", stats.get("jobs", 1))
    if jobs_eff != stats.get("jobs", 1):
        summary_rows.append(("jobs effective", jobs_eff))
    cache = stats.get("cache")
    if cache:
        summary_rows.append(
            ("disk cache h/m/w",
             f"{cache.get('hits', 0)}/{cache.get('misses', 0)}"
             f"/{cache.get('writes', 0)}")
        )
        if cache.get("write_errors"):
            summary_rows.append(
                ("disk cache write errors", cache["write_errors"])
            )
    if stats.get("cache_dir"):
        summary_rows.append(("cache dir", stats["cache_dir"]))
    if stats.get("substrate_hits", 0) or stats.get("substrate_misses", 0):
        summary_rows.append(
            ("substrate cache h/m",
             f"{stats.get('substrate_hits', 0)}"
             f"/{stats.get('substrate_misses', 0)}")
        )
        summary_rows.append(
            ("substrate rebuild (s)", stats.get("substrate_rebuild_s", 0.0))
        )
    if stats.get("batches"):
        summary_rows.append(("worker batches", stats["batches"]))
        summary_rows.append(("warm-worker batches", stats.get("worker_reuse", 0)))
        summary_rows.append(("workers used", stats.get("workers_used", 0)))
    if stats.get("jobs_clamped"):
        summary_rows.append(
            ("note", "jobs clamped to the usable CPU count")
        )
    if stats.get("fell_back_inline"):
        summary_rows.append(("note", "pool unavailable; ran inline"))
    lines.append(format_table(["metric", "value"], summary_rows))
    timings = [(label, float(t)) for label, t in stats.get("timings", [])]
    if timings:
        walls = sorted(t for _label, t in timings)
        lines.append("")
        lines.append(
            format_table(
                ["cell timings", "value (s)"],
                [
                    ("p50", _percentile(walls, 0.50)),
                    ("p95", _percentile(walls, 0.95)),
                    ("max", walls[-1]),
                    ("total", sum(walls)),
                ],
            )
        )
        slowest = sorted(timings, key=lambda lt: lt[1], reverse=True)[:5]
        lines.append("")
        lines.append(format_table(["slowest cells", "wall (s)"], slowest))
    return "\n".join(lines) + "\n"


def render_metrics_report(snapshot: dict) -> str:
    """Render a metrics snapshot (``repro bench-report --metrics``).

    ``snapshot`` is :meth:`repro.obs.metrics.MetricsRegistry.snapshot`
    output: counters, gauges, and folded time-series stats.
    """
    lines = ["== metrics =="]
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    scalar_rows = [(name, counters[name]) for name in sorted(counters)]
    scalar_rows += [(name, gauges[name]) for name in sorted(gauges)]
    if scalar_rows:
        lines.append(format_table(["counter / gauge", "value"], scalar_rows))
    series = snapshot.get("series") or {}
    if series:
        rows = [
            (
                name,
                int(series[name].get("n", 0)),
                series[name].get("mean", 0.0),
                series[name].get("twa", 0.0),
                series[name].get("min", 0.0),
                series[name].get("max", 0.0),
            )
            for name in sorted(series)
        ]
        lines.append("")
        lines.append(
            format_table(["series", "n", "mean", "twa", "min", "max"], rows)
        )
    if not scalar_rows and not series:
        lines.append("(empty snapshot)")
    return "\n".join(lines) + "\n"
