"""Plain-text table/series formatting for experiment output.

No plotting dependencies: every figure is reproduced as the series of
points the paper plots, every table as rows, in monospace text.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence


def format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_experiment(title: str, headers: Sequence[str], rows, notes: str = "") -> str:
    """Full experiment block: banner, table, optional notes."""
    out = [f"== {title} ==", format_table(headers, rows)]
    if notes:
        out.append(notes)
    return "\n".join(out) + "\n"


def save_report(name: str, text: str, results_dir: str = "results") -> str:
    """Write an experiment report under ``results/`` (created on demand)."""
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text)
    return path


def bytes_label(n: int) -> str:
    """1024 → "1K", 1048576 → "1M" (the paper's axis labels)."""
    if n >= 1 << 20 and n % (1 << 20) == 0:
        return f"{n >> 20}M"
    if n >= 1 << 10 and n % (1 << 10) == 0:
        return f"{n >> 10}K"
    return str(n)
