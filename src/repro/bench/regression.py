"""Regression guard: compare fresh experiment results against committed
baselines.

The simulator is deterministic, so results only change when the model
changes.  Baselines (``benchmarks/expected/*.json``, written by
:func:`repro.bench.export.save_json`) pin the reproduction down: a model
tweak that silently moves a figure off the paper's shape fails the
benchmark suite instead of shipping.

Numeric cells must match the baseline within ``rel_tol`` (default 25 % —
wide enough for intentional re-calibrations to be updated deliberately,
tight enough to catch broken physics); non-numeric cells must match
exactly.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Sequence

from .export import load_json

DEFAULT_REL_TOL = 0.25


class RegressionError(AssertionError):
    """A fresh result diverged from its committed baseline."""


def compare_rows(
    expected_rows: Sequence[Sequence],
    actual_rows: Sequence[Sequence],
    rel_tol: float = DEFAULT_REL_TOL,
) -> List[str]:
    """Return a list of human-readable mismatches (empty = pass)."""
    problems: List[str] = []
    if len(expected_rows) != len(actual_rows):
        return [
            f"row count changed: {len(expected_rows)} -> {len(actual_rows)}"
        ]
    for i, (exp, act) in enumerate(zip(expected_rows, actual_rows)):
        if len(exp) != len(act):
            problems.append(f"row {i}: width {len(exp)} -> {len(act)}")
            continue
        for j, (e, a) in enumerate(zip(exp, act)):
            if isinstance(e, (int, float)) and isinstance(a, (int, float)) \
                    and not isinstance(e, bool):
                if e == 0:
                    ok = abs(a) < 1e-9 or abs(a) <= rel_tol
                else:
                    ok = math.isclose(float(e), float(a), rel_tol=rel_tol)
                if not ok:
                    problems.append(
                        f"row {i} col {j}: expected ~{e}, got {a}"
                    )
            elif str(e) != str(a):
                problems.append(f"row {i} col {j}: {e!r} -> {a!r}")
    return problems


def check_against_baseline(
    name: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    expected_dir: str,
    rel_tol: float = DEFAULT_REL_TOL,
) -> bool:
    """Compare a fresh result with ``expected_dir/<name>.json``.

    Returns False when no baseline exists (nothing to compare); raises
    :class:`RegressionError` on divergence.
    """
    path = os.path.join(expected_dir, f"{name}.json")
    if not os.path.exists(path):
        return False
    baseline = load_json(path)
    if list(baseline["headers"]) != list(headers):
        raise RegressionError(
            f"{name}: headers changed {baseline['headers']} -> {list(headers)}"
            " (refresh the baseline deliberately if intended)"
        )
    problems = compare_rows(baseline["rows"], rows, rel_tol=rel_tol)
    if problems:
        raise RegressionError(
            f"{name}: diverged from baseline {path}:\n  " + "\n  ".join(problems)
        )
    return True


def refresh_baselines(results_dir: str, expected_dir: str) -> Dict[str, str]:
    """Copy every ``results/*.json`` into the baseline directory.

    Run this deliberately after an intended model change; returns the
    mapping of experiment name → baseline path.
    """
    os.makedirs(expected_dir, exist_ok=True)
    written = {}
    for fname in sorted(os.listdir(results_dir)):
        if not fname.endswith(".json"):
            continue
        record = load_json(os.path.join(results_dir, fname))
        dst = os.path.join(expected_dir, fname)
        with open(os.path.join(results_dir, fname)) as src, open(dst, "w") as out:
            out.write(src.read())
        written[record["experiment"]] = dst
    return written
