"""Instantaneous power model for cores and the system.

The per-core model (documented in DESIGN.md §5) is::

    p_core(f, T, act) = act_factor(act) · gate(T) · (p_idle + b · f³)

* ``f`` in GHz; the cubic term reflects P ∝ C·V²·f with V ∝ f on the DVFS
  ladder (the standard assumption of the paper's references [8], [9]).
* ``gate(T) = 1 − γ + γ·duty(T)`` — throttling duty-cycles the clock, but
  only a fraction γ of core power is clock-gated (uncore, caches and
  leakage keep drawing); this is why the measured saving from T7
  (12 % active) is far less than 88 % (paper Fig 7b: 1.8 → 1.6 kW).
* ``act_factor`` distinguishes a core that is polling/computing (1.0) from
  one sleeping in the kernel (blocking mode) or idle.

System power adds a constant per-node overhead (PSU, DRAM, HCA, fans),
which is what a clamp meter on the node's feed sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from ..cluster.cpu import Activity, Core
from ..cluster.specs import tstate_duty
from ..cluster.topology import Cluster


def _default_activity_factors() -> Dict[Activity, float]:
    return {
        Activity.POLLING: 1.0,
        Activity.COMPUTE: 1.0,
        Activity.BLOCKED: 0.50,
        Activity.IDLE: 0.30,
    }


@dataclass(frozen=True)
class PowerModelParams:
    """Constants of the power model; defaults come from
    :mod:`repro.power.calibration` (fitted to the paper's kW readings)."""

    #: Per-core power floor at any frequency when fully active (W).
    core_idle_w: float = 9.835
    #: Dynamic coefficient b in W/GHz³.
    core_dyn_w_per_ghz3: float = 0.803
    #: Non-CPU node power: PSU losses, DRAM, HCA, fans (W).
    node_base_w: float = 120.0
    #: γ — fraction of core power that T-state duty-cycling actually gates.
    throttle_gating: float = 0.541
    activity_factors: Mapping[Activity, float] = field(
        default_factory=_default_activity_factors
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.throttle_gating <= 1.0:
            raise ValueError("throttle_gating must be in [0, 1]")
        if self.core_idle_w < 0 or self.core_dyn_w_per_ghz3 < 0:
            raise ValueError("power coefficients must be non-negative")
        for activity in Activity:
            if activity not in self.activity_factors:
                raise ValueError(f"missing activity factor for {activity}")

    def to_dict(self) -> dict:
        """Plain-data form for sweep cells and cache keys."""
        return {
            "core_idle_w": self.core_idle_w,
            "core_dyn_w_per_ghz3": self.core_dyn_w_per_ghz3,
            "node_base_w": self.node_base_w,
            "throttle_gating": self.throttle_gating,
            "activity_factors": {
                activity.value: self.activity_factors[activity]
                for activity in Activity
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PowerModelParams":
        """Inverse of :meth:`to_dict` (omitted keys take defaults)."""
        kwargs = dict(data)
        if "activity_factors" in kwargs:
            kwargs["activity_factors"] = {
                Activity(k): v for k, v in kwargs["activity_factors"].items()
            }
        return cls(**kwargs)


class PowerModel:
    """Evaluates instantaneous power draw from core state.

    ``cached=True`` (default) memoizes :meth:`core_power` on the
    ``(frequency_ghz, tstate, activity)`` state key — governed runs cycle
    through a handful of distinct states, so unchanged states skip the
    gate/cubic re-evaluation entirely.  The memo evaluates the *same*
    floating-point expression as the uncached path, so results are
    bit-identical either way; ``cached=False`` keeps the original
    evaluate-every-call behavior for differential benchmarking.
    """

    def __init__(self, params: PowerModelParams | None = None,
                 cached: bool = True):
        self.params = params or PowerModelParams()
        self.cached = cached
        self._cache: Dict[tuple, float] | None = {} if cached else None

    def full_core_power(self, freq_ghz: float) -> float:
        """Power of a fully-active, unthrottled core at ``freq_ghz`` (W)."""
        p = self.params
        return p.core_idle_w + p.core_dyn_w_per_ghz3 * freq_ghz**3

    def gate(self, tstate: int) -> float:
        """Throttle gating multiplier, 1.0 at T0 down to 1−γ·0.88 at T7."""
        p = self.params
        return 1.0 - p.throttle_gating + p.throttle_gating * tstate_duty(tstate)

    def core_power(self, core: Core) -> float:
        """Instantaneous power of ``core`` in its current state (W)."""
        cache = self._cache
        if cache is None:
            act = self.params.activity_factors[core.activity]
            return (act * self.gate(core.tstate)
                    * self.full_core_power(core.frequency_ghz))
        key = (core.frequency_ghz, core.tstate, core.activity)
        power = cache.get(key)
        if power is None:
            act = self.params.activity_factors[core.activity]
            power = (act * self.gate(core.tstate)
                     * self.full_core_power(core.frequency_ghz))
            cache[key] = power
        return power

    def core_power_for(
        self, freq_ghz: float, tstate: int, activity: Activity
    ) -> float:
        """Power for an explicit (f, T, activity) triple — used by the
        analytical models of :mod:`repro.models.power`."""
        act = self.params.activity_factors[activity]
        return act * self.gate(tstate) * self.full_core_power(freq_ghz)

    def system_power(self, cluster: Cluster) -> float:
        """Instantaneous whole-system draw: node overheads + all cores (W)."""
        total = self.params.node_base_w * cluster.n_nodes
        for core in cluster.cores:
            total += self.core_power(core)
        return total
