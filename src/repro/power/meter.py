"""Sampled power meter, emulating the paper's MASTECH MS2205 clamp meter.

The physical meter reports one reading every 0.5 s; each reading is
(approximately) the average power over the sampling window.  We reproduce
that by distributing the energy of every recorded
:class:`~repro.power.accounting.PowerSegment` into fixed-width buckets and
dividing by the bucket width, then adding the constant node overhead.

:meth:`PowerMeter.from_segments` is vectorized (DESIGN.md §13): segment
intervals are clipped against the bucket grid and the overlap-weighted
energy lands via one unbuffered ``np.add.at`` in segment-major,
bucket-minor order — the exact accumulation order of the original
segments×buckets Python loop, which is preserved as
:meth:`from_segments_reference` (the differential oracle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .accounting import EnergyAccountant
from .timeline import PowerSegment, SegmentStore, SegmentView

#: Relative width below which a trailing fp-sliver bucket is merged into
#: its predecessor instead of minted as a near-zero-width bucket (whose
#: ``energy/width`` would spike toward inf).
_SLIVER_REL = 1e-9


@dataclass(frozen=True)
class PowerTrace:
    """A sampled power timeline."""

    times_s: np.ndarray  # bucket end times (like the meter's display ticks)
    power_w: np.ndarray  # average power over each bucket

    def __len__(self) -> int:
        return len(self.times_s)

    @property
    def power_kw(self) -> np.ndarray:
        return self.power_w / 1e3

    def mean_power_w(self) -> float:
        return float(np.mean(self.power_w)) if len(self.power_w) else 0.0

    def peak_power_w(self) -> float:
        return float(np.max(self.power_w)) if len(self.power_w) else 0.0

    def rows(self) -> List[tuple]:
        """(time, kW) pairs for report printing."""
        return list(zip(self.times_s.tolist(), self.power_kw.tolist()))


class PowerMeter:
    """Turns an accountant's segment log into a sampled power trace."""

    #: The paper's meter interval (§VII-A: "intervals of 0.5 s").
    DEFAULT_INTERVAL_S = 0.5

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S):
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.interval_s = interval_s

    def sample(
        self,
        accountant: EnergyAccountant,
        start: float | None = None,
        end: float | None = None,
    ) -> PowerTrace:
        """Sample the system power between ``start`` and ``end``.

        Requires the accountant to have been finalized (so all segments are
        closed) unless an explicit ``end`` within the recorded span is given.
        """
        if not accountant.keep_segments:
            raise ValueError(
                "accountant was created with keep_segments=False, so no "
                "power timeline was recorded and a sampled trace would "
                "show only node base power; re-run with keep_segments=True "
                "to sample a power trace"
            )
        if start is None:
            start = accountant.start_time
        if end is None:
            end = accountant.finalized_at
            if end is None:
                raise ValueError("accountant not finalized; pass end explicitly")
        if end <= start:
            return PowerTrace(np.empty(0), np.empty(0))
        return self.from_segments(
            accountant.segments,
            start,
            end,
            base_w=accountant.model.params.node_base_w * accountant.cluster.n_nodes,
        )

    # -- bucket grid -------------------------------------------------------
    def _grid(self, start: float, end: float
              ) -> Tuple[int, np.ndarray, np.ndarray]:
        """``(n_buckets, widths, times)`` for the span ``[start, end)``.

        When ``(end - start)`` is a near-exact multiple of the interval,
        floating-point ``ceil`` can mint a trailing bucket whose width is
        ~0 (or even negative); such a sliver is merged into the previous
        bucket instead of letting ``energy/width`` blow up.
        """
        interval = self.interval_s
        n_buckets = int(np.ceil((end - start) / interval))
        if n_buckets <= 0:
            return 0, np.empty(0), np.empty(0)
        last_width = end - (start + (n_buckets - 1) * interval)
        if n_buckets > 1 and last_width <= interval * _SLIVER_REL:
            n_buckets -= 1
            last_width = end - (start + (n_buckets - 1) * interval)
        widths = np.full(n_buckets, interval)
        widths[-1] = last_width
        times = start + interval * (np.arange(n_buckets) + 1)
        times[-1] = end
        return n_buckets, widths, times

    # -- vectorized fold ---------------------------------------------------
    def from_segments(
        self,
        segments: "Sequence[PowerSegment] | SegmentStore | SegmentView",
        start: float,
        end: float,
        base_w: float = 0.0,
    ) -> PowerTrace:
        """Bucket segment energy into meter intervals; add ``base_w``.

        Whole-array implementation; byte-identical to
        :meth:`from_segments_reference`.
        """
        if isinstance(segments, (SegmentStore, SegmentView)):
            _, seg_start, seg_end, seg_power = segments.columns()
        else:
            count = len(segments)
            seg_start = np.fromiter(
                (seg.start for seg in segments), dtype=np.float64, count=count)
            seg_end = np.fromiter(
                (seg.end for seg in segments), dtype=np.float64, count=count)
            seg_power = np.fromiter(
                (seg.power_w for seg in segments), dtype=np.float64, count=count)
        return self._from_columns(seg_start, seg_end, seg_power,
                                  start, end, base_w)

    def _from_columns(
        self,
        seg_start: np.ndarray,
        seg_end: np.ndarray,
        seg_power: np.ndarray,
        start: float,
        end: float,
        base_w: float,
    ) -> PowerTrace:
        n_buckets, widths, times = self._grid(start, end)
        if n_buckets == 0:
            return PowerTrace(np.empty(0), np.empty(0))
        interval = self.interval_s
        energy = np.zeros(n_buckets)
        if len(seg_start):
            lo = np.maximum(seg_start, start)
            hi = np.minimum(seg_end, end)
            valid = hi > lo
            if valid.any():
                lo = lo[valid]
                hi = hi[valid]
                power = seg_power[valid]
                first = ((lo - start) / interval).astype(np.int64)
                np.minimum(first, n_buckets - 1, out=first)
                last = np.minimum(
                    np.ceil((hi - start) / interval).astype(np.int64),
                    n_buckets,
                )
                counts = np.maximum(last - first, 0)
                total = int(counts.sum())
                if total:
                    # Expand every segment into its (segment, bucket) pairs,
                    # segment-major / bucket-minor — the reference loop's
                    # accumulation order, which np.add.at replays exactly
                    # (unbuffered, in index order).
                    reps = np.repeat(np.arange(len(lo)), counts)
                    offsets = (np.arange(total)
                               - np.repeat(np.cumsum(counts) - counts, counts))
                    buckets = first[reps] + offsets
                    b_lo = start + buckets * interval
                    b_hi = b_lo + widths[buckets]
                    overlap = (np.minimum(hi[reps], b_hi)
                               - np.maximum(lo[reps], b_lo))
                    positive = overlap > 0
                    # bincount's C loop adds pair i into its bucket in
                    # index order — the same unbuffered sequence np.add.at
                    # performs, at a fraction of the cost.
                    energy += np.bincount(
                        buckets[positive],
                        weights=(power[reps] * overlap)[positive],
                        minlength=n_buckets,
                    )
        power_w = energy / widths + base_w
        return PowerTrace(times_s=times, power_w=power_w)

    # -- scalar reference (differential oracle) ----------------------------
    def from_segments_reference(
        self,
        segments: Sequence[PowerSegment],
        start: float,
        end: float,
        base_w: float = 0.0,
    ) -> PowerTrace:
        """Original per-segment Python loop, kept as the differential
        oracle for :meth:`from_segments` (same grid, same fold order)."""
        n_buckets, widths, times = self._grid(start, end)
        if n_buckets == 0:
            return PowerTrace(np.empty(0), np.empty(0))
        energy = np.zeros(n_buckets)
        for seg in segments:
            lo = max(seg.start, start)
            hi = min(seg.end, end)
            if hi <= lo:
                continue
            first = min(int((lo - start) / self.interval_s), n_buckets - 1)
            last = min(int(np.ceil((hi - start) / self.interval_s)), n_buckets)
            for b in range(first, last):
                b_lo = start + b * self.interval_s
                b_hi = b_lo + widths[b]
                overlap = min(hi, b_hi) - max(lo, b_lo)
                if overlap > 0:
                    energy[b] += seg.power_w * overlap
        power = energy / widths + base_w
        return PowerTrace(times_s=times, power_w=power)
