"""Sampled power meter, emulating the paper's MASTECH MS2205 clamp meter.

The physical meter reports one reading every 0.5 s; each reading is
(approximately) the average power over the sampling window.  We reproduce
that by distributing the energy of every recorded
:class:`~repro.power.accounting.PowerSegment` into fixed-width buckets and
dividing by the bucket width, then adding the constant node overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .accounting import EnergyAccountant, PowerSegment


@dataclass(frozen=True)
class PowerTrace:
    """A sampled power timeline."""

    times_s: np.ndarray  # bucket end times (like the meter's display ticks)
    power_w: np.ndarray  # average power over each bucket

    def __len__(self) -> int:
        return len(self.times_s)

    @property
    def power_kw(self) -> np.ndarray:
        return self.power_w / 1e3

    def mean_power_w(self) -> float:
        return float(np.mean(self.power_w)) if len(self.power_w) else 0.0

    def peak_power_w(self) -> float:
        return float(np.max(self.power_w)) if len(self.power_w) else 0.0

    def rows(self) -> List[tuple]:
        """(time, kW) pairs for report printing."""
        return list(zip(self.times_s.tolist(), self.power_kw.tolist()))


class PowerMeter:
    """Turns an accountant's segment log into a sampled power trace."""

    #: The paper's meter interval (§VII-A: "intervals of 0.5 s").
    DEFAULT_INTERVAL_S = 0.5

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S):
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.interval_s = interval_s

    def sample(
        self,
        accountant: EnergyAccountant,
        start: float | None = None,
        end: float | None = None,
    ) -> PowerTrace:
        """Sample the system power between ``start`` and ``end``.

        Requires the accountant to have been finalized (so all segments are
        closed) unless an explicit ``end`` within the recorded span is given.
        """
        if start is None:
            start = accountant.start_time
        if end is None:
            end = accountant.finalized_at
            if end is None:
                raise ValueError("accountant not finalized; pass end explicitly")
        if end <= start:
            return PowerTrace(np.empty(0), np.empty(0))
        return self.from_segments(
            accountant.segments,
            start,
            end,
            base_w=accountant.model.params.node_base_w * accountant.cluster.n_nodes,
        )

    def from_segments(
        self,
        segments: Sequence[PowerSegment],
        start: float,
        end: float,
        base_w: float = 0.0,
    ) -> PowerTrace:
        """Bucket segment energy into meter intervals; add ``base_w``."""
        n_buckets = int(np.ceil((end - start) / self.interval_s))
        energy = np.zeros(n_buckets)
        widths = np.full(n_buckets, self.interval_s)
        # Last bucket may be partial.
        widths[-1] = end - (start + (n_buckets - 1) * self.interval_s)
        for seg in segments:
            lo = max(seg.start, start)
            hi = min(seg.end, end)
            if hi <= lo:
                continue
            first = int((lo - start) / self.interval_s)
            last = min(int(np.ceil((hi - start) / self.interval_s)), n_buckets)
            for b in range(first, last):
                b_lo = start + b * self.interval_s
                b_hi = b_lo + widths[b]
                overlap = min(hi, b_hi) - max(lo, b_lo)
                if overlap > 0:
                    energy[b] += seg.power_w * overlap
        times = start + self.interval_s * (np.arange(n_buckets) + 1)
        times[-1] = end
        power = energy / widths + base_w
        return PowerTrace(times_s=times, power_w=power)
