"""Columnar power timeline: structure-of-arrays segment storage.

The energy-accounting hot path fires on *every* core state change.  With
COUNTDOWN-style governors and fault injection a 512-rank run produces
hundreds of thousands of constant-power segments; allocating a frozen
:class:`PowerSegment` per change and re-walking the resulting object list
in Python dominates governed/DVFS-heavy cells now that the fabric kernel
is vectorized (DESIGN.md §12).

:class:`SegmentStore` keeps the timeline as four parallel numpy columns
(``core_id``/``start``/``end``/``power``) grown by amortized doubling.
Appends stage in a small Python list (tuple appends are ~4x cheaper than
four numpy scalar stores) and fold into the columns in batches; the fold
preserves append order exactly, so every array consumer sees segments in
the same order the object path would have yielded them — that ordering is
what makes the vectorized meter byte-identical to the scalar reference
(DESIGN.md §13).

:class:`SegmentView` is the lazy compatibility facade: existing callers
that iterate ``accountant.segments`` still receive ``PowerSegment``
instances, materialized one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["PowerSegment", "SegmentStore", "SegmentView"]


@dataclass(frozen=True)
class PowerSegment:
    """A span of constant power on one core."""

    core_id: int
    start: float
    end: float
    power_w: float

    @property
    def energy_j(self) -> float:
        return self.power_w * (self.end - self.start)


class SegmentStore:
    """Growable structure-of-arrays segment log.

    Columns double in capacity when full (amortized O(1) append) and are
    exposed trimmed-to-length via :meth:`columns`.  ``len()`` and
    iteration account for both folded rows and the staging buffer, so the
    store is always observationally complete.
    """

    #: Staging-buffer size before folding into the numpy columns.
    FLUSH_BATCH = 1024
    #: Initial column capacity (rows).
    INITIAL_CAPACITY = 1024

    __slots__ = ("_n", "_cap", "_core_id", "_start", "_end", "_power",
                 "_buf", "_buf_append")

    def __init__(self) -> None:
        cap = self.INITIAL_CAPACITY
        self._cap = cap
        self._n = 0
        self._core_id = np.empty(cap, dtype=np.int64)
        self._start = np.empty(cap, dtype=np.float64)
        self._end = np.empty(cap, dtype=np.float64)
        self._power = np.empty(cap, dtype=np.float64)
        self._buf: List[Tuple[int, float, float, float]] = []
        # Pre-bound method: the accountant listener calls this per segment.
        self._buf_append = self._buf.append

    # -- writing -----------------------------------------------------------
    def append(self, core_id: int, start: float, end: float,
               power_w: float) -> None:
        """Record one constant-power segment (hot path)."""
        self._buf_append((core_id, start, end, power_w))
        if len(self._buf) >= self.FLUSH_BATCH:
            self._fold()

    def staging(self) -> Tuple[list, "callable", int]:
        """``(buffer, fold, threshold)`` — the raw append contract.

        The accountant listener stages ``(core_id, start, end, power_w)``
        tuples straight into ``buffer`` (stable object; :meth:`_fold`
        drains it with ``clear``) and calls ``fold()`` once it holds
        ``threshold`` rows, skipping the :meth:`append` frame on the
        hottest call site in governed runs.
        """
        return self._buf, self._fold, self.FLUSH_BATCH

    def _fold(self) -> None:
        """Fold the staging buffer into the columns, preserving order."""
        buf = self._buf
        if not buf:
            return
        k = len(buf)
        n = self._n
        need = n + k
        if need > self._cap:
            self._grow(need)
        cid, start, end, power = zip(*buf)
        self._core_id[n:need] = cid
        self._start[n:need] = start
        self._end[n:need] = end
        self._power[n:need] = power
        self._n = need
        buf.clear()

    def _grow(self, need: int) -> None:
        cap = self._cap
        while cap < need:
            cap *= 2
        n = self._n
        for name in ("_core_id", "_start", "_end", "_power"):
            old = getattr(self, name)
            fresh = np.empty(cap, dtype=old.dtype)
            fresh[:n] = old[:n]
            setattr(self, name, fresh)
        self._cap = cap

    # -- reading -----------------------------------------------------------
    def __len__(self) -> int:
        return self._n + len(self._buf)

    @property
    def capacity(self) -> int:
        return self._cap

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(core_id, start, end, power)`` trimmed array views.

        Folds any staged rows first.  The views alias the backing storage;
        treat them as read-only (they are invalidated by the next growth).
        """
        self._fold()
        n = self._n
        return (self._core_id[:n], self._start[:n],
                self._end[:n], self._power[:n])

    def __getitem__(self, index: int) -> PowerSegment:
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("segment index out of range")
        if index >= self._n:  # still in the staging buffer
            cid, start, end, power = self._buf[index - self._n]
            return PowerSegment(cid, start, end, power)
        return PowerSegment(
            int(self._core_id[index]),
            float(self._start[index]),
            float(self._end[index]),
            float(self._power[index]),
        )

    def __iter__(self) -> Iterator[PowerSegment]:
        cid, start, end, power = self.columns()
        for row in zip(cid.tolist(), start.tolist(),
                       end.tolist(), power.tolist()):
            yield PowerSegment(*row)


class SegmentView(Sequence):
    """Lazy compatibility view over a :class:`SegmentStore`.

    Behaves like the list of :class:`PowerSegment` objects the object-based
    accountant would have built — iteration, indexing, ``len`` and equality
    against real lists all work — without materializing anything until
    asked.  Vector consumers (the meter) bypass it via :meth:`columns`.
    """

    __slots__ = ("_store",)

    def __init__(self, store: SegmentStore) -> None:
        self._store = store

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        return self._store.columns()

    def __len__(self) -> int:
        return len(self._store)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._store[i] for i in range(*index.indices(len(self)))]
        return self._store[index]

    def __iter__(self) -> Iterator[PowerSegment]:
        return iter(self._store)

    def __eq__(self, other) -> bool:
        if isinstance(other, SegmentView):
            other = list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SegmentView({len(self)} segments)"
