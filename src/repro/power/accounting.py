"""Energy accounting: integrates per-core power over the state timeline.

The accountant registers itself as a state listener on every core.  Core
state is piecewise-constant between mutations, so each notification closes
one constant-power segment:

    E += p(core state during segment) · (now − segment start)

Segments are also recorded so the sampled :class:`repro.power.meter.
PowerMeter` can reconstruct the kW-vs-time series the paper plots.

Two storage backends share one accounting discipline (DESIGN.md §13):

* **columnar** (default) — segments append into a structure-of-arrays
  :class:`~repro.power.timeline.SegmentStore`; ``segments`` is a lazy
  :class:`~repro.power.timeline.SegmentView` that still yields
  :class:`PowerSegment` objects for existing callers.
* **object** (``columnar=False``) — the original per-segment
  ``PowerSegment`` list, kept verbatim as the differential-testing oracle
  (mirroring ``NetworkSpec(vectorized=False)`` for the fabric kernel).

Both paths evaluate power, accumulate energy and order segments
identically, so their results are byte-identical — a property the
``benchmarks/bench_power_path.py`` gate and the hypothesis differential
suite both enforce.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from ..cluster.cpu import Core
from ..cluster.topology import Cluster
from .model import PowerModel
from .timeline import PowerSegment, SegmentStore, SegmentView

__all__ = ["EnergyAccountant", "PowerSegment"]


class EnergyAccountant:
    """Tracks per-core and whole-system energy for one simulation run."""

    def __init__(
        self,
        cluster: Cluster,
        model: Optional[PowerModel] = None,
        start_time: float = 0.0,
        keep_segments: bool = True,
        columnar: bool = True,
    ):
        self.cluster = cluster
        self.model = model or PowerModel()
        self.start_time = start_time
        self.keep_segments = keep_segments
        self.columnar = columnar
        self._last_time: Dict[int, float] = {
            core.core_id: start_time for core in cluster.cores
        }
        self._core_energy: Dict[int, float] = {
            core.core_id: 0.0 for core in cluster.cores
        }
        self._finalized_at: Optional[float] = None
        self._detached = False
        if columnar:
            self._store: Optional[SegmentStore] = (
                SegmentStore() if keep_segments else None
            )
            if keep_segments:
                (self._stage_buf, self._stage_fold,
                 self._stage_limit) = self._store.staging()
            else:
                self._stage_buf = None
                self._stage_fold = None
                self._stage_limit = 0
            self._segment_list: List[PowerSegment] = []
            self._on_change = self._on_change_columnar
            # List-indexed last-change times (core ids are small ints);
            # two list ops per event beat two dict probes.
            self._last_list = [start_time] * (
                max((c.core_id for c in cluster.cores), default=-1) + 1
            )
        else:
            self._store = None
            self._stage_buf = None
            self._stage_fold = None
            self._stage_limit = 0
            self._segment_list = []
            self._on_change = self._on_change_object
            self._last_list = []
        # Hot-path bindings: the model's memo dict (None when the model is
        # uncached) lets the listener resolve a repeated state's power with
        # one dict probe instead of a method call; ``_core_power`` is the
        # slow path that also fills that memo.
        self._model_cache = self.model._cache
        self._core_power = self.model.core_power
        # With a store, per-core energy is derived from the columns on
        # demand (see _sync_core_energy); this watermark is the row count
        # the ``_core_energy`` dict currently reflects.
        self._energy_rows = 0
        cluster.add_listener(self._on_change)

    @property
    def segments(self) -> Union[List[PowerSegment], SegmentView]:
        """The recorded timeline, as ``PowerSegment``-yielding sequence."""
        if self._store is not None:
            return SegmentView(self._store)
        return self._segment_list

    @property
    def segment_store(self) -> Optional[SegmentStore]:
        """The raw columnar store (``None`` on the object/oracle path)."""
        return self._store

    # -- listener ----------------------------------------------------------
    def detach(self) -> None:
        """Stop observing the cluster (removes the core listeners).

        Idempotent.  Call this before reusing a cluster with a fresh
        accountant — a finalized-but-attached accountant raises on the
        next state change instead of silently extending its segments.
        """
        if self._detached:
            return
        self.cluster.remove_listener(self._on_change)
        self._detached = True

    @property
    def detached(self) -> bool:
        return self._detached

    def _on_change_columnar(self, core: Core, now: float) -> None:
        """Columnar hot path: close the segment ending at ``now`` (core
        state is still the *old* state when this is invoked)."""
        cid = core.core_id
        last_list = self._last_list
        last = last_list[cid]
        if now > last:
            if self._finalized_at is not None:
                raise RuntimeError(
                    f"EnergyAccountant was finalized at "
                    f"t={self._finalized_at} but core {cid} changed state "
                    f"at t={now}; call detach() before reusing the cluster "
                    "(a finalized accountant must not silently extend its "
                    "segments)"
                )
            cache = self._model_cache
            if cache is not None:
                power = cache.get(
                    (core.frequency_ghz, core.tstate, core.activity)
                )
                if power is None:
                    power = self._core_power(core)
            else:
                power = self._core_power(core)
            buf = self._stage_buf
            if buf is not None:
                # Stage straight into the store's buffer (energy is folded
                # out of the columns lazily; no per-event arithmetic).
                buf.append((cid, last, now, power))
                if len(buf) >= self._stage_limit:
                    self._stage_fold()
            else:
                self._core_energy[cid] += power * (now - last)
        elif now < last:  # pragma: no cover - defensive
            raise ValueError(f"time went backwards for core {cid}")
        last_list[cid] = now

    def _on_change_object(self, core: Core, now: float) -> None:
        """Original object-based path, preserved as differential oracle."""
        last = self._last_time[core.core_id]
        if now < last:  # pragma: no cover - defensive
            raise ValueError(f"time went backwards for core {core.core_id}")
        if self._finalized_at is not None and now > last:
            raise RuntimeError(
                f"EnergyAccountant was finalized at t={self._finalized_at} "
                f"but core {core.core_id} changed state at t={now}; call "
                "detach() before reusing the cluster (a finalized "
                "accountant must not silently extend its segments)"
            )
        if now > last:
            power = self.model.core_power(core)
            self._core_energy[core.core_id] += power * (now - last)
            if self.keep_segments:
                self._segment_list.append(
                    PowerSegment(core.core_id, last, now, power)
                )
        self._last_time[core.core_id] = now

    # -- finalisation & queries ---------------------------------------------
    def finalize(self, now: float) -> None:
        """Close all open segments at ``now`` (end of the run)."""
        on_change = self._on_change
        for core in self.cluster.cores:
            on_change(core, now)
        self._finalized_at = now

    @property
    def finalized_at(self) -> Optional[float]:
        return self._finalized_at

    def _sync_core_energy(self) -> None:
        """Fold the segment columns into the per-core energy dict.

        Always recomputed from row 0: ``np.bincount`` accumulates
        ``power·width`` into each core's slot in row (= time) order, the
        exact addition sequence the object oracle performs eagerly — an
        *incremental* fold from a watermark would regroup the additions
        ``(a+b)+(c+d)`` vs ``((a+b)+c)+d`` and break byte-identity.
        """
        store = self._store
        if store is None:
            return
        n = len(store)
        if n == self._energy_rows:
            return
        core_id, start, end, power = store.columns()
        energy = np.bincount(
            core_id, weights=power * (end - start),
            minlength=max(self._core_energy, default=-1) + 1,
        )
        for cid in self._core_energy:
            self._core_energy[cid] = float(energy[cid])
        self._energy_rows = n

    def core_energy_j(self, core_id: int) -> float:
        """Energy consumed by one core so far (J)."""
        self._sync_core_energy()
        return self._core_energy[core_id]

    def cores_energy_j(self) -> float:
        """Energy of all cores (J), excluding node base overhead."""
        self._sync_core_energy()
        return sum(self._core_energy.values())

    def node_base_energy_j(self, now: Optional[float] = None) -> float:
        """Node-overhead energy from the accounting start to ``now``."""
        end = now if now is not None else self._finalized_at
        if end is None:
            raise ValueError("pass `now` or call finalize() first")
        return (
            self.model.params.node_base_w
            * self.cluster.n_nodes
            * (end - self.start_time)
        )

    def total_energy_j(self, now: Optional[float] = None) -> float:
        """Whole-system energy (J): cores + node overheads.

        With ``now`` given, open segments are *not* included — call
        :meth:`finalize` first for exact totals at end of run.
        """
        return self.cores_energy_j() + self.node_base_energy_j(now)

    def total_energy_kj(self, now: Optional[float] = None) -> float:
        """Convenience: total energy in kJ (the unit of Tables I and II)."""
        return self.total_energy_j(now) / 1e3

    def attribute_energy_j(
        self, core_ids, n_nodes: int, now: Optional[float] = None
    ) -> float:
        """Energy attributable to one job: its cores + its nodes' base draw.

        ``core_ids`` are the cores the job's ranks were bound to and
        ``n_nodes`` the node count those cores span.  The node base
        overhead is charged for the whole accounting window (a
        co-scheduled job holds its nodes from t=0 even if its ranks
        finish early).  The sum over jobs of this quantity is *less*
        than :meth:`total_energy_j` whenever nodes sit unused — the
        difference is the cluster's idle residual, which
        :meth:`repro.sim.session.SimSession.run_jobs` reports
        explicitly so the parts always sum to the total.
        """
        self._sync_core_energy()
        core_j = sum(self._core_energy[c] for c in core_ids)
        end = now if now is not None else self._finalized_at
        if end is None:
            raise ValueError("pass `now` or call finalize() first")
        return core_j + (
            self.model.params.node_base_w * n_nodes * (end - self.start_time)
        )

    def average_power_w(self) -> float:
        """Mean system power over the finalized window (W)."""
        if self._finalized_at is None:
            raise ValueError("call finalize() first")
        duration = self._finalized_at - self.start_time
        if duration <= 0:
            return 0.0
        return self.total_energy_j() / duration
