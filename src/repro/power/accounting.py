"""Energy accounting: integrates per-core power over the state timeline.

The accountant registers itself as a state listener on every core.  Core
state is piecewise-constant between mutations, so each notification closes
one constant-power segment:

    E += p(core state during segment) · (now − segment start)

Segments are also recorded so the sampled :class:`repro.power.meter.
PowerMeter` can reconstruct the kW-vs-time series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cluster.cpu import Core
from ..cluster.topology import Cluster
from .model import PowerModel


@dataclass(frozen=True)
class PowerSegment:
    """A span of constant power on one core."""

    core_id: int
    start: float
    end: float
    power_w: float

    @property
    def energy_j(self) -> float:
        return self.power_w * (self.end - self.start)


class EnergyAccountant:
    """Tracks per-core and whole-system energy for one simulation run."""

    def __init__(
        self,
        cluster: Cluster,
        model: Optional[PowerModel] = None,
        start_time: float = 0.0,
        keep_segments: bool = True,
    ):
        self.cluster = cluster
        self.model = model or PowerModel()
        self.start_time = start_time
        self.keep_segments = keep_segments
        self.segments: List[PowerSegment] = []
        self._last_time: Dict[int, float] = {
            core.core_id: start_time for core in cluster.cores
        }
        self._core_energy: Dict[int, float] = {
            core.core_id: 0.0 for core in cluster.cores
        }
        self._finalized_at: Optional[float] = None
        self._detached = False
        cluster.add_listener(self._on_change)

    # -- listener ----------------------------------------------------------
    def detach(self) -> None:
        """Stop observing the cluster (removes the core listeners).

        Idempotent.  Call this before reusing a cluster with a fresh
        accountant — a finalized-but-attached accountant raises on the
        next state change instead of silently extending its segments.
        """
        if self._detached:
            return
        self.cluster.remove_listener(self._on_change)
        self._detached = True

    @property
    def detached(self) -> bool:
        return self._detached

    def _on_change(self, core: Core, now: float) -> None:
        """Close the segment that ends at ``now`` (core state is still the
        *old* state when this is invoked)."""
        last = self._last_time[core.core_id]
        if now < last:  # pragma: no cover - defensive
            raise ValueError(f"time went backwards for core {core.core_id}")
        if self._finalized_at is not None and now > last:
            raise RuntimeError(
                f"EnergyAccountant was finalized at t={self._finalized_at} "
                f"but core {core.core_id} changed state at t={now}; call "
                "detach() before reusing the cluster (a finalized "
                "accountant must not silently extend its segments)"
            )
        if now > last:
            power = self.model.core_power(core)
            self._core_energy[core.core_id] += power * (now - last)
            if self.keep_segments:
                self.segments.append(
                    PowerSegment(core.core_id, last, now, power)
                )
        self._last_time[core.core_id] = now

    # -- finalisation & queries ---------------------------------------------
    def finalize(self, now: float) -> None:
        """Close all open segments at ``now`` (end of the run)."""
        for core in self.cluster.cores:
            self._on_change(core, now)
        self._finalized_at = now

    @property
    def finalized_at(self) -> Optional[float]:
        return self._finalized_at

    def core_energy_j(self, core_id: int) -> float:
        """Energy consumed by one core so far (J)."""
        return self._core_energy[core_id]

    def cores_energy_j(self) -> float:
        """Energy of all cores (J), excluding node base overhead."""
        return sum(self._core_energy.values())

    def node_base_energy_j(self, now: Optional[float] = None) -> float:
        """Node-overhead energy from the accounting start to ``now``."""
        end = now if now is not None else self._finalized_at
        if end is None:
            raise ValueError("pass `now` or call finalize() first")
        return (
            self.model.params.node_base_w
            * self.cluster.n_nodes
            * (end - self.start_time)
        )

    def total_energy_j(self, now: Optional[float] = None) -> float:
        """Whole-system energy (J): cores + node overheads.

        With ``now`` given, open segments are *not* included — call
        :meth:`finalize` first for exact totals at end of run.
        """
        return self.cores_energy_j() + self.node_base_energy_j(now)

    def total_energy_kj(self, now: Optional[float] = None) -> float:
        """Convenience: total energy in kJ (the unit of Tables I and II)."""
        return self.total_energy_j(now) / 1e3

    def average_power_w(self) -> float:
        """Mean system power over the finalized window (W)."""
        if self._finalized_at is None:
            raise ValueError("call finalize() first")
        duration = self._finalized_at - self.start_time
        if duration <= 0:
            return 0.0
        return self.total_energy_j() / duration
