"""Calibration of the power model against the paper's measurements.

The paper reports (Figs 6b, 7b, 8b) whole-system clamp-meter readings for
the 8-node / 64-core testbed during a 64-process MPI_Alltoall:

* ≈ 2.3 kW — default algorithm, all cores polling at fmax (2.4 GHz), T0;
* ≈ 1.8 kW — per-call DVFS ("Freq-Scaling"), all cores polling at fmin
  (1.6 GHz), T0;
* ≈ 1.6 kW — proposed algorithm, fmin with half the cores at T7 at any
  instant (phases 2–4 of §V-A).

Given the cubic form ``p_core = p_idle + b·f³`` and a node overhead
``W_node``, the first two observations fix ``b`` (the node count and core
count are known); picking the conventional Nehalem package overhead
``W_node = 120 W`` then fixes ``p_idle``; the third observation fixes the
throttle-gating fraction γ.  :func:`fit` reproduces this derivation so the
test-suite can verify the shipped defaults really are the fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.specs import T7_ACTIVITY

#: The paper's observed system powers (W) for the 64-core alltoall.
PAPER_SYSTEM_W_DEFAULT = 2300.0
PAPER_SYSTEM_W_DVFS = 1800.0
PAPER_SYSTEM_W_PROPOSED = 1600.0

#: Testbed shape those observations come from.
PAPER_NODES = 8
PAPER_CORES = 64
PAPER_FMAX_GHZ = 2.40
PAPER_FMIN_GHZ = 1.60

#: Assumed (not fitted) non-CPU node overhead.
DEFAULT_NODE_BASE_W = 120.0


@dataclass(frozen=True)
class CalibrationResult:
    core_idle_w: float
    core_dyn_w_per_ghz3: float
    node_base_w: float
    throttle_gating: float

    def core_power(self, freq_ghz: float) -> float:
        return self.core_idle_w + self.core_dyn_w_per_ghz3 * freq_ghz**3

    def system_power_all_polling(self, freq_ghz: float) -> float:
        return PAPER_NODES * self.node_base_w + PAPER_CORES * self.core_power(freq_ghz)


def fit(
    node_base_w: float = DEFAULT_NODE_BASE_W,
    w_default: float = PAPER_SYSTEM_W_DEFAULT,
    w_dvfs: float = PAPER_SYSTEM_W_DVFS,
    w_proposed: float = PAPER_SYSTEM_W_PROPOSED,
) -> CalibrationResult:
    """Solve the three-observation system described in the module docstring.

    Returns the constants that :class:`repro.power.model.PowerModelParams`
    ships as defaults (rounded there to 3 significant decimals).
    """
    f3max = PAPER_FMAX_GHZ**3
    f3min = PAPER_FMIN_GHZ**3
    # (1)-(2):  64·b·(fmax³ − fmin³) = w_default − w_dvfs
    b = (w_default - w_dvfs) / (PAPER_CORES * (f3max - f3min))
    # (2):      8·W_node + 64·(p_idle + b·fmin³) = w_dvfs
    p_idle = (w_dvfs - PAPER_NODES * node_base_w) / PAPER_CORES - b * f3min
    # (3): half the cores at T7: saving = 32·γ·(1−duty(T7))·p_core(fmin)
    p_fmin = p_idle + b * f3min
    saving = w_dvfs - w_proposed
    gamma = saving / ((PAPER_CORES / 2) * (1.0 - T7_ACTIVITY) * p_fmin)
    return CalibrationResult(
        core_idle_w=p_idle,
        core_dyn_w_per_ghz3=b,
        node_base_w=node_base_w,
        throttle_gating=gamma,
    )
