"""Power modelling: P/T-state power function, energy accounting, metering."""

from .accounting import EnergyAccountant, PowerSegment
from .calibration import CalibrationResult, fit
from .meter import PowerMeter, PowerTrace
from .metrics import SchemeComparison, energy_delay_product, energy_delay_squared
from .model import PowerModel, PowerModelParams
from .timeline import SegmentStore, SegmentView

__all__ = [
    "CalibrationResult",
    "EnergyAccountant",
    "PowerMeter",
    "PowerModel",
    "PowerModelParams",
    "PowerSegment",
    "PowerTrace",
    "SegmentStore",
    "SegmentView",
    "SchemeComparison",
    "energy_delay_product",
    "energy_delay_squared",
    "fit",
]
