"""Derived power-efficiency metrics.

The paper reports raw energy (kJ) and runtime; the surrounding literature
(its refs [8], [9]) evaluates the same trade-off through energy-delay
products.  These helpers compute both views from any pair of runs.
"""

from __future__ import annotations

from dataclasses import dataclass


def energy_delay_product(energy_j: float, duration_s: float) -> float:
    """EDP = E · t  (J·s): penalises saving energy by running longer."""
    _check(energy_j, duration_s)
    return energy_j * duration_s


def energy_delay_squared(energy_j: float, duration_s: float) -> float:
    """ED²P = E · t² (J·s²): the performance-weighted variant."""
    _check(energy_j, duration_s)
    return energy_j * duration_s**2


def _check(energy_j: float, duration_s: float) -> None:
    if energy_j < 0 or duration_s < 0:
        raise ValueError("energy and duration must be >= 0")


@dataclass(frozen=True)
class SchemeComparison:
    """Baseline-vs-scheme summary (e.g. Default vs Proposed)."""

    baseline_energy_j: float
    baseline_duration_s: float
    scheme_energy_j: float
    scheme_duration_s: float

    @property
    def energy_saving(self) -> float:
        """Fractional energy saved (positive = scheme is better)."""
        return 1.0 - self.scheme_energy_j / self.baseline_energy_j

    @property
    def slowdown(self) -> float:
        """Fractional runtime increase (positive = scheme is slower)."""
        return self.scheme_duration_s / self.baseline_duration_s - 1.0

    @property
    def edp_ratio(self) -> float:
        """Scheme EDP / baseline EDP (<1 = net win under EDP)."""
        return energy_delay_product(
            self.scheme_energy_j, self.scheme_duration_s
        ) / energy_delay_product(self.baseline_energy_j, self.baseline_duration_s)

    @property
    def ed2p_ratio(self) -> float:
        """Scheme ED²P / baseline ED²P (<1 = win even performance-weighted)."""
        return energy_delay_squared(
            self.scheme_energy_j, self.scheme_duration_s
        ) / energy_delay_squared(self.baseline_energy_j, self.baseline_duration_s)

    def worthwhile(self, max_slowdown: float = 0.05) -> bool:
        """The paper's acceptance criterion: saves energy within an
        acceptable performance overhead."""
        return self.energy_saving > 0 and self.slowdown <= max_slowdown + 1e-12

    @classmethod
    def from_results(cls, baseline, scheme) -> "SchemeComparison":
        """Build from two objects exposing ``energy_j``/``duration_s``
        (:class:`~repro.mpi.job.JobResult`) or ``energy_kj``/``total_time_s``
        (:class:`~repro.apps.base.AppResult`)."""

        def extract(r):
            if hasattr(r, "energy_j"):
                return r.energy_j, r.duration_s
            return r.energy_kj * 1e3, r.total_time_s

        be, bd = extract(baseline)
        se, sd = extract(scheme)
        return cls(be, bd, se, sd)
