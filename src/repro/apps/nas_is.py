"""NAS IS (class C) skeleton — parallel integer bucket sort (paper §VII-G,
Fig 10b, Table II).

Structure per iteration: small MPI_Alltoall of bucket counts, the large
skewed MPI_Alltoallv of keys, and an MPI_Allreduce for verification.
IS is the most communication-bound of the paper's applications — Table II
implies ≈26–31 % of runtime in alltoall(v), which is why it shows the
paper's headline ≈8 % energy saving.

Operating points implied by Table II (3.41 / 3.85 kJ): ≈ 3.0 s at 32
ranks, ≈ 1.7 s at 64.
"""

from __future__ import annotations

from .base import AppSpec, CollectiveCall, RankProfile

#: Class C runs 10 ranking iterations.
_ITERATIONS = 10
_SIM_ITERATIONS = 5

NAS_IS = AppSpec(
    name="nas-is.C",
    variants={
        32: RankProfile(
            ranks=32,
            iterations=_ITERATIONS,
            sim_iterations=_SIM_ITERATIONS,
            compute_per_iter_s=0.219,
            calls_per_iter=(
                CollectiveCall("alltoall", 1024),                 # bucket sizes
                CollectiveCall("alltoallv", 906_240, skew=0.15),  # keys
                CollectiveCall("allreduce", 2048),                # verification
            ),
        ),
        64: RankProfile(
            ranks=64,
            iterations=_ITERATIONS,
            sim_iterations=_SIM_ITERATIONS,
            compute_per_iter_s=0.112,
            calls_per_iter=(
                CollectiveCall("alltoall", 1024),
                CollectiveCall("alltoallv", 261_120, skew=0.15),
                CollectiveCall("allreduce", 2048),
            ),
        ),
    },
)
