"""Generic trace replay: run an arbitrary (compute, collective) event list.

Lets users profile their own application (e.g. with mpiP or IPM), express
the per-iteration structure as a list of events, and evaluate the paper's
power-aware collectives on it without writing a rank program by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple, Union

from .base import AppSpec, CollectiveCall, RankProfile


@dataclass(frozen=True)
class ComputeEvent:
    """``seconds`` of per-rank computation at fmax."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("compute time must be >= 0")


TraceEvent = Union[ComputeEvent, CollectiveCall]


def app_from_trace(
    name: str,
    n_ranks: int,
    events: Sequence[TraceEvent],
    iterations: int = 1,
    sim_iterations: int | None = None,
) -> AppSpec:
    """Build an :class:`AppSpec` from one iteration's event trace.

    Consecutive compute events are merged; collective calls keep their
    order (order does not change simulated cost within an iteration, since
    every iteration is a barrier-free sequence of the same operations).
    """
    compute_total = sum(e.seconds for e in events if isinstance(e, ComputeEvent))
    calls: Tuple[CollectiveCall, ...] = tuple(
        e for e in events if isinstance(e, CollectiveCall)
    )
    if not calls and compute_total == 0:
        raise ValueError("trace contains no work")
    profile = RankProfile(
        ranks=n_ranks,
        iterations=iterations,
        sim_iterations=sim_iterations or min(iterations, 4),
        compute_per_iter_s=compute_total,
        calls_per_iter=calls,
    )
    return AppSpec(name=name, variants={n_ranks: profile})
