"""NAS FT (class C) skeleton — 3-D FFT benchmark (paper §VII-G, Fig 10a,
Table II).

Structure: each iteration performs the distributed FFT's transpose
(MPI_Alltoall of the local grid partition) plus local FFT computation and
a tiny checksum allreduce.  Per-rank-count alltoall sizes and compute
times are profile values chosen so the *default-mode* simulation lands on
the paper's measured operating points:

* total runtime ≈ 14.2 s at 32 ranks, ≈ 7.4 s at 64 (strong scaling; the
  times are those implied by Table II's 16.36 / 17.06 kJ at the calibrated
  1.15 / 2.30 kW system draw),
* ≈ 19 % of runtime inside MPI_Alltoall (the fraction implied by the
  Freq-Scaling / Proposed rows of Table II).
"""

from __future__ import annotations

from .base import AppSpec, CollectiveCall, RankProfile

#: Class C runs 20 iterations.
_ITERATIONS = 20
_SIM_ITERATIONS = 4

NAS_FT = AppSpec(
    name="nas-ft.C",
    variants={
        32: RankProfile(
            ranks=32,
            iterations=_ITERATIONS,
            sim_iterations=_SIM_ITERATIONS,
            compute_per_iter_s=0.575,
            calls_per_iter=(
                CollectiveCall("alltoall", 1_577_984),  # transpose
                CollectiveCall("allreduce", 64),        # checksum
            ),
        ),
        64: RankProfile(
            ranks=64,
            iterations=_ITERATIONS,
            sim_iterations=_SIM_ITERATIONS,
            compute_per_iter_s=0.299,
            calls_per_iter=(
                CollectiveCall("alltoall", 357_376),
                CollectiveCall("allreduce", 64),
            ),
        ),
    },
)
