"""Application workloads: NAS FT/IS and CPMD skeletons, trace replay."""

from .base import (
    AppResult,
    AppSpec,
    CollectiveCall,
    RankProfile,
    build_program,
    run_app,
)
from .cpmd import (
    CPMD_DATASETS,
    CPMD_TA_INP_MD,
    CPMD_WAT32_INP1,
    CPMD_WAT32_INP2,
)
from .kernels import (
    CG_CLASSES,
    FT_CLASSES,
    IS_CLASSES,
    KernelShape,
    ft_shape,
    is_shape,
    synthesize_cg,
    synthesize_ft,
    synthesize_is,
)
from .nas_ft import NAS_FT
from .nas_is import NAS_IS
from .trace import ComputeEvent, app_from_trace

__all__ = [
    "AppResult",
    "AppSpec",
    "CPMD_DATASETS",
    "CPMD_TA_INP_MD",
    "CPMD_WAT32_INP1",
    "CPMD_WAT32_INP2",
    "CollectiveCall",
    "ComputeEvent",
    "CG_CLASSES",
    "FT_CLASSES",
    "IS_CLASSES",
    "KernelShape",
    "NAS_FT",
    "NAS_IS",
    "RankProfile",
    "app_from_trace",
    "build_program",
    "ft_shape",
    "is_shape",
    "synthesize_cg",
    "synthesize_ft",
    "synthesize_is",
    "run_app",
]
