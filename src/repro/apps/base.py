"""Profile-driven application skeletons.

The paper estimates application energy by *profiling* how long each code
spends in collective operations and combining that with microbenchmark
power measurements (§VII-A: "we have profiled the applications to learn
about how much time processes spend in various collective operations").
We take the same approach in executable form: an :class:`AppSpec` captures
the per-rank-count communication profile (iteration count, compute per
iteration, collective calls with sizes), and :func:`run_app` plays it
through the full simulator under any power mode.

To keep simulations fast, only ``sim_iterations`` of the ``iterations``
identical iterations are executed; times and energies are extrapolated
linearly (steady-state iteration structure makes this exact up to start-up
effects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..cluster.specs import ClusterSpec
from ..collectives.registry import CollectiveConfig, CollectiveEngine, PowerMode
from ..mpi.job import JobResult, MpiJob

#: Collective operations an app profile may invoke.
_COMM_OPS = ("alltoall", "alltoallv", "allreduce", "bcast", "reduce", "allgather")


@dataclass(frozen=True)
class CollectiveCall:
    """One collective invocation inside an iteration."""

    op: str
    nbytes: int
    count: int = 1
    #: Skew factor for alltoallv: peer d receives nbytes·(1 ± skew·w(d)).
    skew: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in _COMM_OPS:
            raise ValueError(f"unknown collective {self.op!r}")
        if self.nbytes < 0 or self.count < 1:
            raise ValueError("invalid call shape")
        if not 0.0 <= self.skew < 1.0:
            raise ValueError("skew must be in [0, 1)")


@dataclass(frozen=True)
class RankProfile:
    """Profile of one application at one rank count."""

    ranks: int
    #: Real iteration count of the full run.
    iterations: int
    #: Iterations actually simulated (results extrapolated).
    sim_iterations: int
    #: Per-rank computation per iteration at fmax (s).
    compute_per_iter_s: float
    calls_per_iter: Tuple[CollectiveCall, ...]

    def __post_init__(self) -> None:
        if not 1 <= self.sim_iterations <= self.iterations:
            raise ValueError("need 1 <= sim_iterations <= iterations")
        if self.compute_per_iter_s < 0:
            raise ValueError("compute time must be >= 0")

    @property
    def scale(self) -> float:
        return self.iterations / self.sim_iterations


@dataclass(frozen=True)
class AppSpec:
    """An application with profiles for the rank counts it was run at."""

    name: str
    variants: Dict[int, RankProfile]

    def profile(self, n_ranks: int) -> RankProfile:
        try:
            return self.variants[n_ranks]
        except KeyError:
            raise ValueError(
                f"{self.name} has no profile for {n_ranks} ranks "
                f"(available: {sorted(self.variants)})"
            ) from None


@dataclass
class AppResult:
    """Extrapolated full-run results (the quantities in Figs 9/10 and
    Tables I/II)."""

    app: str
    ranks: int
    power_mode: PowerMode
    total_time_s: float
    alltoall_time_s: float
    energy_kj: float
    sim: JobResult

    @property
    def alltoall_fraction(self) -> float:
        return self.alltoall_time_s / self.total_time_s if self.total_time_s else 0.0


def _skewed_counts(nbytes: int, size: int, rank: int, skew: float):
    """Deterministic per-peer byte counts with mean ``nbytes``."""
    if skew == 0.0:
        return [nbytes] * size
    counts = []
    for d in range(size):
        w = ((rank * 31 + d * 17) % 7 - 3) / 3.0  # in [-1, 1]
        counts.append(max(0, int(nbytes * (1.0 + skew * w))))
    return counts


def build_program(profile: RankProfile, alltoall_seconds: Dict[int, float]):
    """Generator-factory for the rank program of ``profile``.

    Records per-rank time spent inside alltoall(v) calls into
    ``alltoall_seconds`` (the quantity Figs 9/10 plot next to the total).
    """

    def program(ctx):
        spent = 0.0
        for _ in range(profile.sim_iterations):
            yield from ctx.compute(profile.compute_per_iter_s)
            for call in profile.calls_per_iter:
                for _rep in range(call.count):
                    t0 = ctx.env.now
                    if call.op == "alltoall":
                        yield from ctx.alltoall(call.nbytes)
                    elif call.op == "alltoallv":
                        counts = _skewed_counts(
                            call.nbytes, ctx.size, ctx.rank, call.skew
                        )
                        yield from ctx.alltoallv(counts)
                    elif call.op == "allreduce":
                        yield from ctx.allreduce(call.nbytes)
                    elif call.op == "bcast":
                        yield from ctx.bcast(call.nbytes)
                    elif call.op == "reduce":
                        yield from ctx.reduce(call.nbytes)
                    elif call.op == "allgather":
                        yield from ctx.allgather(call.nbytes)
                    if call.op.startswith("alltoall"):
                        spent += ctx.env.now - t0
        alltoall_seconds[ctx.rank] = spent

    return program


def run_app(
    app: AppSpec,
    n_ranks: int,
    power_mode: PowerMode = PowerMode.NONE,
    cluster_spec: Optional[ClusterSpec] = None,
    keep_segments: bool = False,
    faults: Optional["FaultPlan"] = None,  # noqa: F821
    **job_kwargs,
) -> AppResult:
    """Run ``app`` at ``n_ranks`` under ``power_mode``; extrapolate to the
    full iteration count.

    ``faults`` (a :class:`repro.faults.FaultPlan`) perturbs the run — the
    app's compute phases pay straggler/OS-noise costs through
    ``ctx.compute`` and its alltoalls see any injected link degradation.
    """
    profile = app.profile(n_ranks)
    if cluster_spec is None:
        # Fully-subscribed nodes, exactly as many as the run needs (the
        # paper's 32-rank runs occupy 4 of the 8 nodes; powering the idle
        # half would distort the energy comparison).
        node = ClusterSpec().node
        n_nodes = -(-n_ranks // node.cores_per_node)
        cluster_spec = ClusterSpec(nodes=n_nodes, node=node)
    engine = CollectiveEngine(CollectiveConfig(power_mode=power_mode))
    job = MpiJob(
        n_ranks,
        cluster_spec=cluster_spec,
        collectives=engine,
        keep_segments=keep_segments,
        faults=faults,
        **job_kwargs,
    )
    tracer = job.session.tracer
    if tracer.enabled:
        tracer.mark(
            job.env.now, "app.start",
            app=app.name, ranks=n_ranks, mode=power_mode.value,
        )
    alltoall_seconds: Dict[int, float] = {}
    result = job.run(build_program(profile, alltoall_seconds))
    scale = profile.scale
    return AppResult(
        app=app.name,
        ranks=n_ranks,
        power_mode=power_mode,
        total_time_s=result.duration_s * scale,
        alltoall_time_s=max(alltoall_seconds.values(), default=0.0) * scale,
        energy_kj=result.energy_j * scale / 1e3,
        sim=result,
    )
