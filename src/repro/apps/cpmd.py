"""CPMD skeletons — plane-wave DFT ab-initio molecular dynamics (paper
§VII-F, Fig 9, Table I).

CPMD's communication is dominated by the MPI_Alltoall transposes of its
3-D FFTs (several per MD step), with small allreduces (energies) and
broadcasts (wavefunction metadata) alongside.  Three datasets from the
paper, with per-rank-count profiles whose *default-mode* runs land on the
operating points implied by Table I at the calibrated system draw
(1.15 kW for 32 ranks / 4 nodes, 2.30 kW for 64 ranks / 8 nodes):

================  ======= 32 ranks =======  ======= 64 ranks =======
dataset           runtime   alltoall share   runtime   alltoall share
wat-32-inp-1      ≈24.8 s   ≈16 %            ≈13.8 s   ≈27 %
wat-32-inp-2      ≈28.5 s   ≈15 %            ≈16.8 s   ≈5 %
ta-inp-md         ≈231 s    ≈9 %             ≈132 s    ≈29 %
================  =========================  =========================

Note the paper's own observation (§VII-F): runtime halves from 32→64
processes but alltoall time changes little — the smaller per-pair
messages are increasingly step/latency bound.
"""

from __future__ import annotations

from .base import AppSpec, CollectiveCall, RankProfile


def _variant(ranks, iterations, sim_iterations, compute_s, a2a_bytes, a2a_calls=4):
    return RankProfile(
        ranks=ranks,
        iterations=iterations,
        sim_iterations=sim_iterations,
        compute_per_iter_s=compute_s,
        calls_per_iter=(
            CollectiveCall("alltoall", a2a_bytes, count=a2a_calls),  # FFT transposes
            CollectiveCall("allreduce", 8192),                       # energies
            CollectiveCall("bcast", 4096),                           # MD metadata
        ),
    )


#: 32-water-molecule box, input set 1 (10 MD steps).
CPMD_WAT32_INP1 = AppSpec(
    name="cpmd.wat-32-inp-1",
    variants={
        32: _variant(32, 10, 4, compute_s=2.075, a2a_bytes=1_129_472),
        64: _variant(64, 10, 4, compute_s=1.014, a2a_bytes=456_704),
    },
)

#: 32-water-molecule box, input set 2 (10 MD steps, more orbitals).
CPMD_WAT32_INP2 = AppSpec(
    name="cpmd.wat-32-inp-2",
    variants={
        32: _variant(32, 10, 4, compute_s=2.410, a2a_bytes=1_242_112),
        64: _variant(64, 10, 4, compute_s=1.590, a2a_bytes=108_544),
    },
)

#: Tantalum MD dataset (50 MD steps — the paper's largest run).
CPMD_TA_INP_MD = AppSpec(
    name="cpmd.ta-inp-md",
    variants={
        32: _variant(32, 50, 4, compute_s=4.20, a2a_bytes=1_174_528),
        64: _variant(64, 50, 4, compute_s=1.89, a2a_bytes=934_912),
    },
)

CPMD_DATASETS = (CPMD_WAT32_INP1, CPMD_WAT32_INP2, CPMD_TA_INP_MD)
