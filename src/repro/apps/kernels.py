"""First-principles NAS kernel generators.

The shipped :data:`~repro.apps.nas_ft.NAS_FT` / :data:`~repro.apps.nas_is.
NAS_IS` profiles are *calibrated* to land exactly on the paper's Table II
operating points.  These generators instead derive profiles from the NAS
problem-class definitions (grid sizes, key counts, iteration counts), so
any class at any rank count can be synthesised — the "workload generator"
path for studies beyond the paper's class C runs.

Communication volumes are exact (the transpose and key-exchange volumes
follow from the algorithm); computation time uses an effective per-core
throughput that folds in memory stalls (calibrated so class C at 64 ranks
lands near the paper's runtime).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from .base import AppSpec, CollectiveCall, RankProfile

#: NAS FT grids (nx, ny, nz) and iteration counts per class.
FT_CLASSES: Dict[str, Tuple[Tuple[int, int, int], int]] = {
    "S": ((64, 64, 64), 6),
    "W": ((128, 128, 32), 6),
    "A": ((256, 256, 128), 6),
    "B": ((512, 256, 256), 20),
    "C": ((512, 512, 512), 20),
    "D": ((2048, 1024, 1024), 25),
}

#: NAS IS total keys and iteration counts per class.
IS_CLASSES: Dict[str, Tuple[int, int]] = {
    "S": (1 << 16, 10),
    "W": (1 << 20, 10),
    "A": (1 << 23, 10),
    "B": (1 << 25, 10),
    "C": (1 << 27, 10),
    "D": (1 << 31, 10),
}

#: Bytes per FT grid point (complex double).
_COMPLEX_BYTES = 16
#: Bytes per IS key.
_KEY_BYTES = 4

#: Effective per-core FFT throughput at fmax (flop/s), memory stalls
#: included; calibrated so FT class C at 64 ranks runs ≈7.5 s (Table II).
DEFAULT_FLOP_RATE = 1.0e9
#: Effective per-core key-processing rate (keys/s) for IS.
DEFAULT_KEY_RATE = 6.0e7


@dataclass(frozen=True)
class KernelShape:
    """Summary of a generated kernel (exposed for tests/inspection)."""

    name: str
    total_bytes: int
    iterations: int
    alltoall_per_pair: int
    compute_per_iter_s: float


def synthesize_ft(
    klass: str,
    n_ranks: int,
    sim_iterations: int = 4,
    flop_rate: float = DEFAULT_FLOP_RATE,
) -> AppSpec:
    """Synthesise an FT benchmark of problem class ``klass``.

    Per iteration: the distributed 3-D FFT's transpose is one
    MPI_Alltoall moving the whole grid — per-pair size V/P² — plus
    5·N·log₂N flops of FFT work split across ranks, plus the checksum
    allreduce.
    """
    shape = ft_shape(klass, n_ranks, flop_rate)
    (nx, ny, nz), iterations = FT_CLASSES[klass.upper()]
    profile = RankProfile(
        ranks=n_ranks,
        iterations=iterations,
        sim_iterations=min(sim_iterations, iterations),
        compute_per_iter_s=shape.compute_per_iter_s,
        calls_per_iter=(
            CollectiveCall("alltoall", shape.alltoall_per_pair),
            CollectiveCall("allreduce", 64),
        ),
    )
    return AppSpec(name=shape.name, variants={n_ranks: profile})


def ft_shape(klass: str, n_ranks: int, flop_rate: float = DEFAULT_FLOP_RATE) -> KernelShape:
    """Derived FT sizes for ``klass`` at ``n_ranks`` (see synthesize_ft)."""
    try:
        (nx, ny, nz), iterations = FT_CLASSES[klass.upper()]
    except KeyError:
        raise ValueError(f"unknown FT class {klass!r} (know {sorted(FT_CLASSES)})") from None
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    points = nx * ny * nz
    volume = points * _COMPLEX_BYTES
    per_pair = max(1, volume // (n_ranks * n_ranks))
    flops_per_iter = 5.0 * points * math.log2(points)
    compute = flops_per_iter / (n_ranks * flop_rate)
    return KernelShape(
        name=f"nas-ft.{klass.upper()}x{n_ranks}",
        total_bytes=volume,
        iterations=iterations,
        alltoall_per_pair=per_pair,
        compute_per_iter_s=compute,
    )


def synthesize_is(
    klass: str,
    n_ranks: int,
    sim_iterations: int = 5,
    key_rate: float = DEFAULT_KEY_RATE,
) -> AppSpec:
    """Synthesise an IS benchmark of problem class ``klass``.

    Per ranking iteration: a small alltoall of bucket counts, the big
    skewed alltoallv redistributing the keys (per-pair ≈ keys·4/P²), and
    the verification allreduce; counting/permutation work ≈ a few ops per
    key, split across ranks.
    """
    shape = is_shape(klass, n_ranks, key_rate)
    _, iterations = IS_CLASSES[klass.upper()]
    profile = RankProfile(
        ranks=n_ranks,
        iterations=iterations,
        sim_iterations=min(sim_iterations, iterations),
        compute_per_iter_s=shape.compute_per_iter_s,
        calls_per_iter=(
            CollectiveCall("alltoall", 1024),
            CollectiveCall("alltoallv", shape.alltoall_per_pair, skew=0.15),
            CollectiveCall("allreduce", 2048),
        ),
    )
    return AppSpec(name=shape.name, variants={n_ranks: profile})


#: NAS CG matrix sizes (rows) and iteration counts per class.
CG_CLASSES: Dict[str, Tuple[int, int]] = {
    "S": (1400, 15),
    "A": (14000, 15),
    "B": (75000, 75),
    "C": (150000, 75),
    "D": (1500000, 100),
}


def synthesize_cg(
    klass: str,
    n_ranks: int,
    sim_iterations: int = 4,
    flop_rate: float = DEFAULT_FLOP_RATE,
) -> AppSpec:
    """Synthesise a CG benchmark — the *negative control* for the paper's
    approach: CG's communication is many small allreduces (dot products)
    and modest halo exchanges, not large alltoalls, so the power-aware
    collectives find little to throttle (the schemes should be ≈neutral).
    """
    try:
        rows, iterations = CG_CLASSES[klass.upper()]
    except KeyError:
        raise ValueError(f"unknown CG class {klass!r} (know {sorted(CG_CLASSES)})") from None
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    # ~25 inner CG steps per outer iteration; each has two 8-byte-per-row
    # partial-vector allreduces across sqrt(P) groups — modelled as small
    # allreduces — plus the sparse matvec compute (~2·nnz, nnz ≈ 11·rows).
    # Sparse matvec is memory-latency bound: ~5% of dense throughput.
    nnz = 11 * rows
    compute = 25 * 2.0 * nnz / (n_ranks * flop_rate * 0.05)
    vector_block = max(1, rows * 8 // max(1, int(math.sqrt(n_ranks))))
    profile = RankProfile(
        ranks=n_ranks,
        iterations=iterations,
        sim_iterations=min(sim_iterations, iterations),
        compute_per_iter_s=compute,
        calls_per_iter=(
            CollectiveCall("allreduce", 8, count=50),     # dot products
            CollectiveCall("allgather", vector_block),    # vector assembly
        ),
    )
    return AppSpec(name=f"nas-cg.{klass.upper()}x{n_ranks}", variants={n_ranks: profile})


def is_shape(klass: str, n_ranks: int, key_rate: float = DEFAULT_KEY_RATE) -> KernelShape:
    """Derived IS sizes for ``klass`` at ``n_ranks`` (see synthesize_is)."""
    try:
        keys, iterations = IS_CLASSES[klass.upper()]
    except KeyError:
        raise ValueError(f"unknown IS class {klass!r} (know {sorted(IS_CLASSES)})") from None
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    volume = keys * _KEY_BYTES
    per_pair = max(1, volume // (n_ranks * n_ranks))
    compute = keys / (n_ranks * key_rate)
    return KernelShape(
        name=f"nas-is.{klass.upper()}x{n_ranks}",
        total_bytes=volume,
        iterations=iterations,
        alltoall_per_pair=per_pair,
        compute_per_iter_s=compute,
    )
