"""Declarative sweep campaigns: specs, resume, sharded drivers, artifacts.

The paper's results are grids, not runs — Table I/II and Figs 2/6–10
are products over {collective, message size, node count, power policy}.
This package turns the cell runner (:mod:`repro.runner`) into a
campaign engine for exactly that shape:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec`, loadable from
  YAML/JSON/dict, deterministically expanded to a deduplicated cell set.
* :mod:`repro.campaign.executor` — :func:`run_campaign`: cache probe
  first, execute only misses, ``campaign.json`` manifest for status and
  restartability.
* :mod:`repro.campaign.drivers` — pluggable execution backends:
  :class:`LocalPoolDriver` (warm worker pool) and
  :class:`SubprocessShardDriver` (N independent processes coordinating
  through the shared content-addressed store).
* :mod:`repro.campaign.artifacts` — completed campaigns render the
  paper's named outputs (JSON + txt) through the existing bench
  export/report paths.

CLI: ``python -m repro campaign run|status|report SPEC``.
"""

from .artifacts import render_artifacts
from .drivers import CampaignDriver, LocalPoolDriver, SubprocessShardDriver
from .executor import CampaignResult, default_campaign_dir, run_campaign
from .manifest import MANIFEST_SCHEMA, CampaignManifest, CellEntry
from .spec import (
    CampaignGrid,
    CampaignPlan,
    CampaignSpec,
    CampaignSpecError,
    expand,
    load_campaign,
    spec_digest,
)

__all__ = [
    "CampaignDriver",
    "CampaignGrid",
    "CampaignManifest",
    "CampaignPlan",
    "CampaignResult",
    "CampaignSpec",
    "CampaignSpecError",
    "CellEntry",
    "LocalPoolDriver",
    "MANIFEST_SCHEMA",
    "SubprocessShardDriver",
    "default_campaign_dir",
    "expand",
    "load_campaign",
    "render_artifacts",
    "run_campaign",
    "spec_digest",
]
