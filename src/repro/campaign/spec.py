"""Declarative campaign specs and their deterministic expansion.

A :class:`CampaignSpec` names *what* a campaign covers — a set of paper
experiments (by :data:`repro.bench.CELL_PLANS` name) plus any number of
explicit parameter grids — and :func:`expand` turns it into the
deduplicated, deterministically-ordered list of
:class:`~repro.runner.cells.SweepCell` the executor runs.

Specs are plain data: a python dict, a JSON file, or (when PyYAML is
available) a YAML file.  :func:`load_campaign` dispatches on suffix.

Grid expansion rules
--------------------
Each grid in ``sweeps`` is a product over its ``matrix`` axes merged
onto its fixed ``params``:

* Axes iterate in **sorted key order**; each axis's values iterate in
  spec order.  The expansion of a given spec is therefore byte-stable
  across reruns, machines, and dict-ordering accidents.
* A scalar axis value assigns ``params[axis] = value``; a *dict* value
  merges all its keys (the way to co-vary parameters, e.g. node count
  with rank count).  ``null`` deletes the key — an axis like
  ``faults: [null, "degrade:factor=0.6"]`` sweeps quiet vs perturbed.
* Convenience conversions run after the merge: a string ``governor``
  becomes a full :class:`~repro.runtime.GovernorConfig` dict, a string
  ``faults`` is parsed through the CLI grammar with the cell's
  ``fault_seed`` (consumed; default 0), and an integer ``nodes`` becomes
  a cluster-spec override (times ``ranks_per_node`` when given).  Seeds
  are explicit spec values, so per-cell fault substreams are stable by
  construction.

Deduplication is by content-addressed cache key: the first occurrence
of a cell content wins, so overlapping experiments (table1 and fig9
share their 18 application runs) expand to one execution each.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..runner import SweepCell, cache_key

__all__ = [
    "CampaignGrid",
    "CampaignPlan",
    "CampaignSpec",
    "CampaignSpecError",
    "expand",
    "load_campaign",
    "spec_digest",
]


class CampaignSpecError(ValueError):
    """A campaign spec that cannot be understood."""


_GRID_KEYS = {"name", "kind", "matrix", "params"}
_SPEC_KEYS = {
    "name", "experiments", "sweeps", "governor", "faults",
    "artifacts", "jobs", "cache_dir",
}


@dataclass(frozen=True)
class CampaignGrid:
    """One explicit parameter product (a ``sweeps`` entry)."""

    name: str
    kind: str = "collective"
    #: axis name -> list of values (scalar, dict-merge, or None-delete).
    matrix: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    #: fixed parameters every cell of the grid shares.
    params: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignGrid":
        unknown = set(data) - _GRID_KEYS
        if unknown:
            raise CampaignSpecError(
                f"unknown sweep keys {sorted(unknown)} "
                f"(choose from {sorted(_GRID_KEYS)})"
            )
        if "name" not in data:
            raise CampaignSpecError("every sweep needs a name")
        matrix = data.get("matrix") or {}
        for axis, values in matrix.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise CampaignSpecError(
                    f"sweep {data['name']!r}: axis {axis!r} must be a "
                    f"non-empty list, got {values!r}"
                )
        return cls(
            name=str(data["name"]),
            kind=str(data.get("kind", "collective")),
            matrix={str(k): list(v) for k, v in matrix.items()},
            params=dict(data.get("params") or {}),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "matrix": {k: list(v) for k, v in self.matrix.items()},
            "params": dict(self.params),
        }


@dataclass(frozen=True)
class CampaignSpec:
    """A whole campaign as data (see the module docstring)."""

    name: str
    #: Paper experiments to cover (keys of :data:`repro.bench.CELL_PLANS`).
    experiments: Tuple[str, ...] = ()
    #: Explicit parameter grids.
    grids: Tuple[CampaignGrid, ...] = ()
    #: Governor/fault overlays applied to every cell that does not pin
    #: its own (string forms accepted, same as the CLI flags).
    governor: Optional[Dict[str, Any]] = None
    faults: Optional[Dict[str, Any]] = None
    #: Experiments whose paper artifacts to render after the run
    #: (defaults to ``experiments``; must be a subset of it).
    artifacts: Tuple[str, ...] = ()
    #: Execution defaults the CLI flags can override.
    jobs: Optional[int] = None
    cache_dir: Optional[str] = None

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        if not isinstance(data, Mapping):
            raise CampaignSpecError(
                f"campaign spec must be a mapping, got {type(data).__name__}"
            )
        unknown = set(data) - _SPEC_KEYS
        if unknown:
            raise CampaignSpecError(
                f"unknown campaign keys {sorted(unknown)} "
                f"(choose from {sorted(_SPEC_KEYS)})"
            )
        name = data.get("name")
        if not name or not isinstance(name, str):
            raise CampaignSpecError("campaign spec needs a 'name' string")
        experiments = tuple(str(e) for e in (data.get("experiments") or ()))
        _check_experiments(experiments)
        artifacts = data.get("artifacts")
        if artifacts is None:
            artifacts = experiments
        else:
            artifacts = tuple(str(a) for a in artifacts)
            extra = set(artifacts) - set(experiments)
            if extra:
                raise CampaignSpecError(
                    f"artifacts {sorted(extra)} are not in the campaign's "
                    "experiments list — a campaign must expand every cell "
                    "its artifact stage will need"
                )
        grids = tuple(
            CampaignGrid.from_dict(g) for g in (data.get("sweeps") or ())
        )
        seen: set = set()
        for grid in grids:
            if grid.name in seen:
                raise CampaignSpecError(f"duplicate sweep name {grid.name!r}")
            seen.add(grid.name)
        jobs = data.get("jobs")
        if jobs is not None and (not isinstance(jobs, int) or jobs < 1):
            raise CampaignSpecError(f"jobs must be a positive int, got {jobs!r}")
        spec = cls(
            name=name,
            experiments=experiments,
            grids=grids,
            governor=_governor_dict(data.get("governor")),
            faults=_faults_dict(data.get("faults")),
            artifacts=artifacts,
            jobs=jobs,
            cache_dir=data.get("cache_dir"),
        )
        if not spec.experiments and not spec.grids:
            raise CampaignSpecError(
                "campaign expands to nothing: give 'experiments' or 'sweeps'"
            )
        return spec

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "experiments": list(self.experiments),
            "sweeps": [g.to_dict() for g in self.grids],
            "governor": self.governor,
            "faults": self.faults,
            "artifacts": list(self.artifacts),
            "jobs": self.jobs,
            "cache_dir": self.cache_dir,
        }


def _check_experiments(names: Sequence[str]) -> None:
    from ..bench import CELL_PLANS

    unknown = [n for n in names if n not in CELL_PLANS]
    if unknown:
        raise CampaignSpecError(
            f"unknown experiments {unknown}; every campaign experiment "
            "needs a plan producer in repro.bench.CELL_PLANS "
            f"(available: {', '.join(sorted(CELL_PLANS))})"
        )


def _governor_dict(value: Any) -> Optional[Dict[str, Any]]:
    """Normalise a spec's governor field: policy string or config dict."""
    if value is None:
        return None
    from ..runtime import GovernorConfig, GovernorPolicy

    if isinstance(value, str):
        try:
            return GovernorConfig(policy=GovernorPolicy(value)).to_dict()
        except ValueError as exc:
            raise CampaignSpecError(f"bad governor policy {value!r}") from exc
    if isinstance(value, Mapping):
        try:
            return GovernorConfig.from_dict(dict(value)).to_dict()
        except (TypeError, ValueError, KeyError) as exc:
            raise CampaignSpecError(f"bad governor config: {exc}") from exc
    raise CampaignSpecError(f"governor must be a policy name or dict, got {value!r}")


def _faults_dict(value: Any, seed: int = 0) -> Optional[Dict[str, Any]]:
    """Normalise a spec's faults field: CLI grammar string or plan dict."""
    if value is None:
        return None
    from ..faults import FaultSpecError, parse_fault_spec

    if isinstance(value, str):
        try:
            return parse_fault_spec(value, seed=seed).to_dict()
        except FaultSpecError as exc:
            raise CampaignSpecError(f"bad fault spec {value!r}: {exc}") from exc
    if isinstance(value, Mapping):
        return dict(value)
    raise CampaignSpecError(f"faults must be a spec string or dict, got {value!r}")


# ---------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------
def load_campaign(path) -> CampaignSpec:
    """Load a spec file: ``.yaml``/``.yml`` via PyYAML, ``.json`` stdlib.

    A YAML file on a machine without PyYAML raises a clear
    :class:`CampaignSpecError` instead of an ImportError.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CampaignSpecError(f"cannot read campaign spec {path}: {exc}") from exc
    if path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:
            raise CampaignSpecError(
                f"{path} is YAML but PyYAML is not installed; "
                "convert the spec to JSON or install pyyaml"
            ) from None
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise CampaignSpecError(f"bad YAML in {path}: {exc}") from exc
    else:
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise CampaignSpecError(f"bad JSON in {path}: {exc}") from exc
    return CampaignSpec.from_dict(data or {})


def spec_digest(spec: CampaignSpec) -> str:
    """Stable content address of a spec (pins manifests to their spec)."""
    payload = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------
# Expansion
# ---------------------------------------------------------------------
@dataclass
class CampaignPlan:
    """A spec expanded to its deduplicated, ordered cell set."""

    spec: CampaignSpec
    cells: List[SweepCell]
    #: Content-addressed key per cell, aligned with ``cells``.
    keys: List[str]
    #: Cells dropped because an earlier cell had identical content.
    duplicates: int = 0

    def __len__(self) -> int:
        return len(self.cells)


def _scalar_label(value: Any) -> str:
    if isinstance(value, Mapping):
        return ",".join(f"{k}={_scalar_label(v)}" for k, v in sorted(value.items()))
    if isinstance(value, (list, tuple)):
        return "x".join(_scalar_label(v) for v in value)
    return str(value)


def _grid_cells(grid: CampaignGrid, experiment: str) -> List[SweepCell]:
    """Sorted-product expansion of one grid (see module docstring)."""
    import itertools

    axes = sorted(grid.matrix)
    value_lists = [grid.matrix[axis] for axis in axes]
    cells = []
    for combo in itertools.product(*value_lists):
        params: Dict[str, Any] = dict(grid.params)
        parts = []
        for axis, value in zip(axes, combo):
            parts.append(f"{axis}={_scalar_label(value)}")
            if isinstance(value, Mapping):
                params.update(value)
            elif value is None:
                params.pop(axis, None)
            else:
                params[axis] = value
        _apply_conversions(grid, params)
        label = grid.name + ("/" + "/".join(parts) if parts else "")
        try:
            cells.append(
                SweepCell(
                    experiment=experiment, kind=grid.kind,
                    params=params, label=label,
                )
            )
        except (TypeError, ValueError) as exc:
            raise CampaignSpecError(f"sweep {grid.name!r}: {exc}") from exc
    return cells


def _apply_conversions(grid: CampaignGrid, params: Dict[str, Any]) -> None:
    """In-place sugar: nodes/ranks_per_node, governor/faults strings."""
    if "nodes" in params:
        nodes = params.pop("nodes")
        cluster = dict(params.get("cluster") or {})
        cluster["nodes"] = int(nodes)
        params["cluster"] = cluster
        if "ranks_per_node" in params:
            params["n_ranks"] = int(nodes) * int(params.pop("ranks_per_node"))
    if isinstance(params.get("governor"), str):
        params["governor"] = _governor_dict(params["governor"])
    if params.get("governor") is None:
        params.pop("governor", None)
    seed = int(params.pop("fault_seed", 0))
    if isinstance(params.get("faults"), str):
        params["faults"] = _faults_dict(params["faults"], seed=seed)
    if params.get("faults") is None:
        params.pop("faults", None)


def expand(spec: CampaignSpec) -> CampaignPlan:
    """Deterministic spec -> cell set: experiments (sorted by name, plan
    order within), then grids (spec order, sorted-product within),
    deduplicated by cache key with first occurrence winning."""
    from ..bench import CELL_PLANS, instrument_cells

    raw: List[SweepCell] = []
    for name in sorted(set(spec.experiments)):
        plan = CELL_PLANS[name]()
        cells, _gov, _fault, _arb = instrument_cells(
            plan.cells, spec.governor, spec.faults
        )
        raw.extend(cells)
    for grid in spec.grids:
        cells, _gov, _fault, _arb = instrument_cells(
            _grid_cells(grid, experiment=f"{spec.name}:{grid.name}"),
            spec.governor, spec.faults,
        )
        raw.extend(cells)

    seen: set = set()
    cells = []
    keys = []
    duplicates = 0
    for cell in raw:
        key = cache_key(cell)
        if key in seen:
            duplicates += 1
            continue
        seen.add(key)
        cells.append(cell)
        keys.append(key)
    return CampaignPlan(spec=spec, cells=cells, keys=keys, duplicates=duplicates)
