"""The ``campaign.json`` manifest: durable per-cell status.

The manifest is the campaign's restart point *record*: one entry per
deduplicated cell, in expansion order, carrying status
(``pending`` / ``done`` / ``failed``) and provenance.  Correctness of
resume never depends on it — the content-addressed cache is the source
of truth (the executor re-probes it on every start) — but the manifest
is what ``repro campaign status`` reads, and what tells an operator how
far an interrupted campaign got without touching the cache.

Determinism contract
--------------------
A manifest is a pure function of (spec, per-cell status): no
timestamps, no wall-clock timings, no hostnames.  Two complete runs of
the same spec — on different machines, days apart — produce
byte-identical ``campaign.json`` files.  Volatile accounting (cell wall
times, shard stats) lives in the separate ``telemetry.json``.

Writes go through a temp file + :func:`os.replace`, so an interrupted
campaign can never leave a torn manifest; a corrupt manifest loads as
``None`` and the executor rebuilds it from the spec.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["CellEntry", "CampaignManifest", "MANIFEST_SCHEMA", "STATUSES"]

MANIFEST_SCHEMA = 1

#: Legal per-cell states, in lifecycle order.
STATUSES = ("pending", "done", "failed")


@dataclass
class CellEntry:
    """Status + provenance of one deduplicated campaign cell."""

    key: str
    experiment: str
    kind: str
    label: str
    status: str = "pending"
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "key": self.key,
            "experiment": self.experiment,
            "kind": self.kind,
            "label": self.label,
            "status": self.status,
        }
        if self.error is not None:
            data["error"] = self.error
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellEntry":
        return cls(
            key=data["key"],
            experiment=data["experiment"],
            kind=data["kind"],
            label=data.get("label", ""),
            status=data.get("status", "pending"),
            error=data.get("error"),
        )


@dataclass
class CampaignManifest:
    """Ordered cell statuses for one (spec, expansion)."""

    name: str
    spec_digest: str
    cells: List[CellEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_key = {entry.key: entry for entry in self.cells}

    @classmethod
    def from_plan(cls, plan) -> "CampaignManifest":
        """Fresh all-pending manifest for an expanded campaign."""
        from .spec import spec_digest

        return cls(
            name=plan.spec.name,
            spec_digest=spec_digest(plan.spec),
            cells=[
                CellEntry(
                    key=key, experiment=cell.experiment,
                    kind=cell.kind, label=cell.label,
                )
                for key, cell in zip(plan.keys, plan.cells)
            ],
        )

    def entry(self, key: str) -> CellEntry:
        return self._by_key[key]

    def mark(self, key: str, status: str, error: Optional[str] = None) -> None:
        if status not in STATUSES:
            raise ValueError(f"unknown status {status!r}")
        entry = self._by_key[key]
        entry.status = status
        entry.error = error

    def counts(self) -> Dict[str, int]:
        out = {status: 0 for status in STATUSES}
        for entry in self.cells:
            out[entry.status] = out.get(entry.status, 0) + 1
        return out

    @property
    def complete(self) -> bool:
        return all(entry.status == "done" for entry in self.cells)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "name": self.name,
            "spec_digest": self.spec_digest,
            "counts": self.counts(),
            "cells": [entry.to_dict() for entry in self.cells],
        }

    def save(self, path) -> None:
        """Atomic write (temp file + rename); failures degrade silently
        — a read-only results dir must not kill a running campaign."""
        path = Path(path)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-manifest-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
                    fh.write("\n")
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return

    @classmethod
    def load(cls, path) -> Optional["CampaignManifest"]:
        """Read a manifest; missing, torn, or wrong-schema files → None."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            if data.get("schema") != MANIFEST_SCHEMA:
                return None
            return cls(
                name=data["name"],
                spec_digest=data["spec_digest"],
                cells=[CellEntry.from_dict(c) for c in data["cells"]],
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None
