"""The artifact stage: completed campaign -> the paper's named outputs.

A campaign that covers ``table1`` does not just fill a cache — it ends
with ``table1.json`` + ``table1.txt`` under the campaign directory,
rendered through the *same* experiment functions, JSON schema
(:mod:`repro.bench.export`) and table formatter
(:mod:`repro.bench.report`) the ``repro experiment`` command uses.  By
the time this stage runs every needed cell is in the store, so the
experiment functions execute as pure cache reads: rendering artifacts
for a finished campaign costs no simulation at all, and the output is
byte-identical to a cold single-process run — the acceptance property
CI pins with ``cmp``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["render_artifacts"]


def render_artifacts(
    spec,
    cache,
    campaign_dir: Path,
    jobs: Optional[int] = None,
    names: Optional[Sequence[str]] = None,
    stats=None,
) -> List[Dict[str, Any]]:
    """Render ``names`` (default: the spec's artifact list) under
    ``<campaign_dir>/artifacts/``; returns one record per artifact."""
    from ..bench import use_runner
    from ..bench.export import save_json
    from ..bench.report import render_experiment, save_report
    from ..cli import EXPERIMENTS

    names = list(spec.artifacts if names is None else names)
    art_dir = Path(campaign_dir) / "artifacts"
    records: List[Dict[str, Any]] = []
    for name in sorted(set(names)):
        with use_runner(
            jobs=jobs, cache=cache, stats=stats,
            governor=spec.governor, faults=spec.faults,
        ):
            headers, rows, notes = EXPERIMENTS[name]()
        json_path = save_json(
            name, headers, rows, notes, results_dir=str(art_dir)
        )
        txt_path = save_report(
            name, render_experiment(name, headers, rows, notes),
            results_dir=str(art_dir),
        )
        records.append({
            "experiment": name,
            "json": str(json_path),
            "txt": str(txt_path),
            "rows": len(rows),
        })
    return records
