"""Shard worker: ``python -m repro.campaign.shard CELLS.json ...``.

The subprocess half of
:class:`~repro.campaign.drivers.SubprocessShardDriver`.  It reads a
JSON list of serialized :class:`~repro.runner.cells.SweepCell`, runs
them through the ordinary runner against the *shared* content-addressed
cache, and writes a small telemetry record.  Results never travel back
over a pipe — the cache directory is the rendezvous, which is exactly
the contract a future SSH/batch-queue driver inherits.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.campaign.shard",
        description="execute one campaign shard against a shared result cache",
    )
    parser.add_argument("cells", metavar="CELLS.json",
                        help="JSON list of serialized sweep cells")
    parser.add_argument("--cache-dir", required=True, metavar="DIR",
                        help="shared content-addressed result cache")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes inside this shard (default 1)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write a JSON telemetry record here")
    args = parser.parse_args(argv)

    from ..runner import ResultCache, SweepCell, SweepStats, run_cells

    try:
        with open(args.cells, "r", encoding="utf-8") as fh:
            cells = [SweepCell.from_dict(d) for d in json.load(fh)]
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"bad cells file {args.cells!r}: {exc}", file=sys.stderr)
        return 2

    cache = ResultCache(Path(args.cache_dir))
    stats = SweepStats(experiment="campaign-shard", jobs=args.jobs)
    run_cells(cells, jobs=args.jobs, cache=cache, stats=stats)

    record = {
        "pid": os.getpid(),
        "cells_run": len(cells),
        "executed": stats.unique_executed,
        "cache_hits": stats.cache_hits + stats.memo_hits,
        "elapsed_s": stats.elapsed_s,
    }
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(record, fh)
        except OSError as exc:
            print(f"cannot write {args.out!r}: {exc}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    raise SystemExit(main())
