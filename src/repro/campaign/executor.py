"""Campaign executor: probe → execute misses → manifest → artifacts.

:func:`run_campaign` is the one entry point.  Its loop is built around
resume-from-anywhere semantics:

1. **Expand** the spec deterministically (see :mod:`.spec`).
2. **Probe** the content-addressed cache for every cell.  Hits are
   marked ``done`` without executing anything — this is the whole
   resume mechanism: an interrupted campaign restarts by re-running the
   same command, and only the missing cells execute.  The manifest is a
   *record* of this decision, never its input, so a manifest that
   disagrees with the store (entries evicted by ``repro cache gc``,
   a manifest copied from another machine) merely re-pends those cells.
3. **Execute** the misses in waves through the configured driver
   (:mod:`.drivers`), flushing the manifest after every wave so an
   interrupt loses at most one wave of bookkeeping (the results
   themselves are already in the store).
4. **Render artifacts** (:mod:`.artifacts`) once every needed cell is
   done.

Campaign-level accounting (probe hits, executions, failures, p50/p95
cell wall time, per-shard stats) lands in ``telemetry.json`` next to
the manifest, in the runner metrics registry
(:data:`repro.runner.RUNNER_METRICS`, ``campaign.*`` counters), and in
``results/last_sweep.json`` so ``repro bench-report`` covers campaigns
with zero new plumbing.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ..runner import RUNNER_METRICS, ResultCache, SweepStats, resolve_jobs
from .artifacts import render_artifacts
from .drivers import CampaignDriver, LocalPoolDriver
from .manifest import CampaignManifest
from .spec import CampaignPlan, CampaignSpec, expand, spec_digest

__all__ = ["CampaignResult", "default_campaign_dir", "run_campaign"]


def default_campaign_dir(spec: CampaignSpec) -> Path:
    return Path("results") / "campaigns" / spec.name


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1,
              max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


@dataclass
class CampaignResult:
    """Everything one :func:`run_campaign` call produced."""

    spec: CampaignSpec
    plan: CampaignPlan
    manifest: CampaignManifest
    campaign_dir: Path
    #: Campaign-level accounting (also persisted as ``telemetry.json``).
    telemetry: Dict[str, Any] = field(default_factory=dict)
    #: Artifact records from the artifact stage ([] when skipped).
    artifacts: List[Dict[str, Any]] = field(default_factory=list)
    #: Runner accounting for the execution waves.
    stats: Optional[SweepStats] = None

    @property
    def ok(self) -> bool:
        return self.manifest.complete


def run_campaign(
    spec: CampaignSpec,
    campaign_dir: Optional[Path] = None,
    cache: Optional[ResultCache] = None,
    jobs: Optional[int] = None,
    driver: Optional[CampaignDriver] = None,
    refresh: bool = False,
    artifacts: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Run (or resume) ``spec`` to completion; see the module docstring.

    ``cache=None`` builds one from the spec's ``cache_dir`` (or the
    default location) — campaigns are cache-centric by design, so there
    is deliberately no way to run one uncached.  ``refresh=True`` skips
    the probe and re-executes everything, overwriting store entries.
    ``progress`` receives human one-liners (the CLI points it at
    stderr, keeping stdout byte-comparable across runs).
    """
    say = progress or (lambda _msg: None)
    t0 = time.perf_counter()
    driver = driver or LocalPoolDriver()
    jobs = resolve_jobs(jobs if jobs is not None else spec.jobs)
    if cache is None:
        cache = ResultCache(Path(spec.cache_dir) if spec.cache_dir else None)

    plan = expand(spec)
    campaign_dir = Path(campaign_dir) if campaign_dir is not None \
        else default_campaign_dir(spec)
    manifest_path = campaign_dir / "campaign.json"
    digest = spec_digest(spec)
    previous = CampaignManifest.load(manifest_path)
    resumed = previous is not None and previous.spec_digest == digest
    if previous is not None and not resumed:
        say(f"spec changed (digest {digest[:12]}); starting a fresh manifest")
    manifest = CampaignManifest.from_plan(plan)
    if resumed:
        # Carry over terminal statuses for the status report; the probe
        # below re-derives 'done' from the store anyway.
        for entry in manifest.cells:
            try:
                old = previous.entry(entry.key)
            except KeyError:
                continue
            entry.status, entry.error = old.status, old.error

    # -- probe: the cache decides what still needs to run -------------
    pending: List[int] = []
    probe_hits = 0
    for idx, key in enumerate(plan.keys):
        if not refresh and cache.get(key) is not None:
            manifest.mark(key, "done")
            probe_hits += 1
        else:
            manifest.mark(key, "pending")
            pending.append(idx)
    manifest.save(manifest_path)
    say(
        f"campaign[{spec.name}]: {len(plan)} cells "
        f"({plan.duplicates} duplicates folded), {probe_hits} already in "
        f"the store, {len(pending)} to execute via {driver.name} driver"
    )

    # -- execute misses in waves --------------------------------------
    stats = SweepStats(experiment=f"campaign:{spec.name}", jobs=jobs)
    telemetry: Dict[str, Any] = {
        "campaign": spec.name,
        "spec_digest": digest,
        "driver": driver.name,
        "jobs": jobs,
        "resumed": resumed,
        "cells_total": len(plan),
        "duplicates": plan.duplicates,
        "probe_hits": probe_hits,
        "executed": 0,
        "failed": 0,
    }
    failed = 0
    wave_size = max(driver.min_wave, jobs * 8)
    for start in range(0, len(pending), wave_size):
        wave = pending[start:start + wave_size]
        cells = [plan.cells[i] for i in wave]
        keys = [plan.keys[i] for i in wave]
        outcomes = driver.execute(cells, keys, cache, jobs, stats, telemetry)
        for key, result, error in outcomes:
            if result is not None:
                manifest.mark(key, "done")
            else:
                manifest.mark(key, "failed", error=error)
                failed += 1
        manifest.save(manifest_path)
        done = min(start + wave_size, len(pending))
        if len(pending) > wave_size:
            say(f"campaign[{spec.name}]: {done}/{len(pending)} pending cells done")

    telemetry["executed"] = len(pending) - failed
    telemetry["failed"] = failed
    walls = sorted(t for _label, t in stats.timings)
    telemetry["cell_wall_s"] = {
        "p50": _percentile(walls, 0.50),
        "p95": _percentile(walls, 0.95),
        "max": walls[-1] if walls else 0.0,
        "total": sum(walls),
    }
    hits_all = probe_hits + stats.cache_hits + stats.memo_hits
    telemetry["hit_rate"] = hits_all / len(plan) if len(plan) else 0.0

    RUNNER_METRICS.inc("campaign.runs")
    RUNNER_METRICS.inc("campaign.cells.total", len(plan))
    RUNNER_METRICS.inc("campaign.cells.probe_hits", probe_hits)
    RUNNER_METRICS.inc("campaign.cells.executed", telemetry["executed"])
    RUNNER_METRICS.inc("campaign.cells.failed", failed)

    # -- artifact stage ------------------------------------------------
    result = CampaignResult(
        spec=spec, plan=plan, manifest=manifest,
        campaign_dir=campaign_dir, telemetry=telemetry, stats=stats,
    )
    if artifacts and spec.artifacts:
        if manifest.complete:
            result.artifacts = render_artifacts(
                spec, cache, campaign_dir, jobs=jobs
            )
            say(
                f"campaign[{spec.name}]: rendered "
                f"{len(result.artifacts)} artifact(s) under "
                f"{campaign_dir / 'artifacts'}"
            )
        else:
            say(
                f"campaign[{spec.name}]: {failed} cell(s) failed; "
                "artifact stage skipped"
            )
    telemetry["artifacts"] = result.artifacts
    telemetry["elapsed_s"] = time.perf_counter() - t0

    # Fold the probe into the sweep accounting so `repro bench-report`
    # tells the whole campaign story, then persist both views.
    stats.cells_total = len(plan)
    stats.cache_hits += probe_hits
    stats.elapsed_s = telemetry["elapsed_s"]
    try:
        campaign_dir.mkdir(parents=True, exist_ok=True)
        with open(campaign_dir / "telemetry.json", "w", encoding="utf-8") as fh:
            json.dump(telemetry, fh, indent=2, sort_keys=True)
            fh.write("\n")
    except OSError:
        pass
    return result
