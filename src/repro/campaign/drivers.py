"""Pluggable campaign execution drivers.

A driver answers one question: *given these cache-missing cells, get
their results into the shared content-addressed store*.  Everything
else — expansion, probing, manifests, artifacts — is driver-independent,
which is what makes the store the coordination point: any number of
drivers (and machines, eventually) can serve one campaign as long as
they write the same content-addressed entries.

Two drivers ship today:

* :class:`LocalPoolDriver` — the default; routes cells through
  :func:`repro.runner.run_cells` (warm-worker pool, memo, disk cache).
* :class:`SubprocessShardDriver` — partitions cells across N
  *independent* OS processes by cache-key hash.  Each shard runs
  ``python -m repro.campaign.shard`` with its own slice of the cell
  set and writes results into the shared cache; the parent collects by
  re-probing.  This is the stepping stone to SSH/batch-queue drivers:
  the whole protocol is "ship cell specs, results come back through
  the store", so replacing ``subprocess`` with ``ssh`` changes nothing
  above this layer.

Cells are pure functions of their specs, so *which* driver ran a cell
cannot change its result — the property the byte-identical acceptance
checks pin down.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..runner import CellResult, ResultCache, SweepCell, execute_cell, run_cells

__all__ = ["CampaignDriver", "LocalPoolDriver", "SubprocessShardDriver"]

#: One executed cell as the executor sees it: (key, result-or-None,
#: error-or-None).  Exactly one of result/error is set.
CellOutcome = Tuple[str, Optional[CellResult], Optional[str]]


class CampaignDriver:
    """Base driver: execute cache-missing cells, results land in the cache."""

    #: Short name recorded in telemetry / selected by the CLI.
    name = "base"
    #: Preferred minimum wave size (the executor chunks pending cells
    #: into waves so manifests flush and interrupts lose little work;
    #: high-startup-cost drivers want bigger waves).
    min_wave = 32

    def execute(
        self,
        cells: Sequence[SweepCell],
        keys: Sequence[str],
        cache: Optional[ResultCache],
        jobs: int,
        stats,
        telemetry: Dict[str, Any],
    ) -> List[CellOutcome]:
        raise NotImplementedError

    @staticmethod
    def _salvage(
        cells: Sequence[SweepCell],
        keys: Sequence[str],
        cache: Optional[ResultCache],
    ) -> List[CellOutcome]:
        """Per-cell inline execution with per-cell error capture — the
        slow path that turns one poisoned cell into one ``failed``
        manifest entry instead of a dead campaign."""
        out: List[CellOutcome] = []
        for key, cell in zip(keys, cells):
            try:
                result = execute_cell(cell)
            except Exception as exc:  # noqa: BLE001 - recorded, not hidden
                out.append((key, None, f"{type(exc).__name__}: {exc}"))
                continue
            if cache is not None:
                cache.put(key, cell, result)
            out.append((key, result, None))
        return out


class LocalPoolDriver(CampaignDriver):
    """Run cells through the in-process runner (warm pool / inline)."""

    name = "local"
    min_wave = 32

    def execute(self, cells, keys, cache, jobs, stats, telemetry):
        try:
            results = run_cells(cells, jobs=jobs, cache=cache, stats=stats)
        except Exception as exc:  # noqa: BLE001 - fall back to per-cell
            telemetry.setdefault("salvage_errors", []).append(
                f"{type(exc).__name__}: {exc}"
            )
            return self._salvage(cells, keys, cache)
        return [(key, result, None) for key, result in zip(keys, results)]


class SubprocessShardDriver(CampaignDriver):
    """Partition cells across N independent worker processes.

    Sharding is by cache-key hash — content-stable, so a re-run (or a
    second machine running the same spec) partitions identically — and
    results travel exclusively through the shared cache directory: the
    parent re-probes after the shards exit and inline-salvages anything
    a crashed shard left behind.
    """

    name = "shards"
    min_wave = 1024

    def __init__(self, shards: int = 2, jobs_per_shard: int = 1):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.jobs_per_shard = max(1, jobs_per_shard)

    @staticmethod
    def shard_of(key: str, shards: int) -> int:
        """Stable key -> shard assignment (first 8 hex digits mod N)."""
        return int(key[:8], 16) % shards

    def execute(self, cells, keys, cache, jobs, stats, telemetry):
        if cache is None:
            raise ValueError(
                "SubprocessShardDriver needs a shared result cache; "
                "run the campaign with caching enabled"
            )
        parts: List[List[Tuple[str, SweepCell]]] = [[] for _ in range(self.shards)]
        for key, cell in zip(keys, cells):
            parts[self.shard_of(key, self.shards)].append((key, cell))

        shard_stats: List[Dict[str, Any]] = []
        with tempfile.TemporaryDirectory(prefix="repro-campaign-") as td:
            procs: List[Tuple[int, Path, subprocess.Popen]] = []
            for i, part in enumerate(parts):
                if not part:
                    continue
                cells_file = Path(td) / f"shard-{i}.json"
                out_file = Path(td) / f"shard-{i}.out.json"
                with open(cells_file, "w", encoding="utf-8") as fh:
                    json.dump([cell.to_dict() for _key, cell in part], fh)
                procs.append(
                    (i, out_file, self._spawn(cells_file, out_file, cache))
                )
            for i, out_file, proc in procs:
                _stdout, stderr = proc.communicate()
                record: Dict[str, Any] = {
                    "shard": i,
                    "cells": len(parts[i]),
                    "returncode": proc.returncode,
                }
                if proc.returncode != 0:
                    record["error"] = (stderr or b"")[-2000:].decode(
                        "utf-8", "replace"
                    )
                try:
                    with open(out_file, "r", encoding="utf-8") as fh:
                        record.update(json.load(fh))
                except (OSError, ValueError):
                    pass
                shard_stats.append(record)
        telemetry.setdefault("shards", []).extend(shard_stats)

        # Collect through the store; salvage whatever a dead shard lost.
        out: List[CellOutcome] = []
        recovered = 0
        for key, cell in zip(keys, cells):
            result = cache.get(key)
            if result is None:
                recovered += 1
                (outcome,) = self._salvage([cell], [key], cache)
                out.append(outcome)
            else:
                out.append((key, result, None))
        if recovered:
            telemetry["shard_recovered"] = (
                telemetry.get("shard_recovered", 0) + recovered
            )
        if stats is not None:
            stats.executed += len(cells)
            stats.unique_executed += len(cells)
            for key, result, _err in out:
                if result is not None:
                    stats.timings.append((key[:12], result.wall_time_s))
        return out

    def _spawn(
        self, cells_file: Path, out_file: Path, cache: ResultCache
    ) -> subprocess.Popen:
        # Children must resolve the same `repro` package as the parent,
        # however the parent found it (PYTHONPATH=src, editable install).
        pkg_root = str(Path(__file__).resolve().parent.parent.parent)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            pkg_root if not existing else pkg_root + os.pathsep + existing
        )
        cmd = [
            sys.executable, "-m", "repro.campaign.shard",
            str(cells_file),
            "--cache-dir", str(cache.root),
            "--jobs", str(self.jobs_per_shard),
            "--out", str(out_file),
        ]
        return subprocess.Popen(
            cmd, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
