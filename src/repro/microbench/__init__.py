"""Simulated OSU MPI microbenchmarks (the paper's §VII-B toolkit)."""

from .osu import (
    DEFAULT_ITERATIONS,
    DEFAULT_SIZES,
    DEFAULT_WARMUP,
    DEFAULT_WINDOW,
    osu_bibw,
    osu_bw,
    osu_collective_latency,
    osu_latency,
    sweep,
)

__all__ = [
    "DEFAULT_ITERATIONS",
    "DEFAULT_SIZES",
    "DEFAULT_WARMUP",
    "DEFAULT_WINDOW",
    "osu_bibw",
    "osu_bw",
    "osu_collective_latency",
    "osu_latency",
    "sweep",
]
