"""OSU-style microbenchmarks (paper §VII-B uses the OSU MPI benchmarks).

Simulated equivalents of the classic suite: ping-pong latency, windowed
streaming bandwidth, bidirectional bandwidth, and the collective latency
loops.  Each returns ``(size, metric)`` rows like the original tools
print.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..cluster.specs import ClusterSpec
from ..collectives.registry import CollectiveConfig, CollectiveEngine, PowerMode
from ..mpi.job import MpiJob
from ..mpi.p2p import ProgressMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.session import SimSession

#: Default OSU size ladder (powers of two, 1 B .. 4 MB).
DEFAULT_SIZES: Tuple[int, ...] = tuple(1 << k for k in range(0, 23, 2))

#: OSU defaults: skip a few warm-up iterations, then time the rest.
DEFAULT_WARMUP = 2
DEFAULT_ITERATIONS = 10
#: osu_bw window size.
DEFAULT_WINDOW = 64


def _job(n_ranks: int, mode: PowerMode, progress: ProgressMode,
         cluster_spec: Optional[ClusterSpec],
         session: Optional["SimSession"] = None) -> MpiJob:
    engine = CollectiveEngine(CollectiveConfig(power_mode=mode))
    if session is not None:
        # An externally owned session (the sweep runner builds one per
        # cell, with the cell's governor/faults already bound).
        return MpiJob(
            n_ranks, session=session, collectives=engine, progress=progress,
        )
    return MpiJob(
        n_ranks,
        cluster_spec=cluster_spec,
        collectives=engine,
        progress=progress,
        keep_segments=False,
    )


def osu_latency(
    nbytes: int,
    inter_node: bool = True,
    iterations: int = DEFAULT_ITERATIONS,
    warmup: int = DEFAULT_WARMUP,
    progress: ProgressMode = ProgressMode.POLLING,
    session: Optional["SimSession"] = None,
) -> float:
    """One-way point-to-point latency in seconds (ping-pong / 2).

    ``inter_node`` picks a cross-node pair (ranks 0 and 8); otherwise the
    two ranks share a node (shared-memory path).
    """
    peer = 8 if inter_node else 1
    job = _job(16, PowerMode.NONE, progress, None, session=session)
    out = {}

    def program(ctx):
        if ctx.rank == 0:
            for i in range(warmup + iterations):
                if i == warmup:
                    t0 = ctx.env.now
                yield from ctx.send(dst=peer, nbytes=nbytes, tag=1)
                yield from ctx.recv(src=peer, tag=2)
            out["elapsed"] = ctx.env.now - t0
        elif ctx.rank == peer:
            for _ in range(warmup + iterations):
                yield from ctx.recv(src=0, tag=1)
                yield from ctx.send(dst=0, nbytes=nbytes, tag=2)

    job.run(program)
    return out["elapsed"] / iterations / 2.0


def osu_bw(
    nbytes: int,
    inter_node: bool = True,
    iterations: int = DEFAULT_ITERATIONS,
    warmup: int = DEFAULT_WARMUP,
    window: int = DEFAULT_WINDOW,
    session: Optional["SimSession"] = None,
) -> float:
    """Unidirectional streaming bandwidth in B/s (windowed isends + ack)."""
    peer = 8 if inter_node else 1
    job = _job(16, PowerMode.NONE, ProgressMode.POLLING, None, session=session)
    out = {}

    def program(ctx):
        if ctx.rank == 0:
            for i in range(warmup + iterations):
                if i == warmup:
                    t0 = ctx.env.now
                requests = []
                for _ in range(window):
                    req = yield from ctx.isend(dst=peer, nbytes=nbytes, tag=1)
                    requests.append(req)
                yield from ctx._wait(ctx.env.all_of(requests))
                yield from ctx.recv(src=peer, tag=2)  # ack
            out["elapsed"] = ctx.env.now - t0
        elif ctx.rank == peer:
            for _ in range(warmup + iterations):
                for _ in range(window):
                    yield from ctx.recv(src=0, tag=1)
                yield from ctx.send(dst=0, nbytes=0, tag=2)

    job.run(program)
    return nbytes * window * iterations / out["elapsed"]


def osu_bibw(
    nbytes: int,
    inter_node: bool = True,
    iterations: int = DEFAULT_ITERATIONS,
    warmup: int = DEFAULT_WARMUP,
    window: int = DEFAULT_WINDOW,
    session: Optional["SimSession"] = None,
) -> float:
    """Bidirectional bandwidth in B/s (both sides stream simultaneously)."""
    peer = 8 if inter_node else 1
    job = _job(16, PowerMode.NONE, ProgressMode.POLLING, None, session=session)
    out = {}

    def program(ctx):
        if ctx.rank in (0, peer):
            other = peer if ctx.rank == 0 else 0
            for i in range(warmup + iterations):
                if i == warmup and ctx.rank == 0:
                    out["t0"] = ctx.env.now
                requests = []
                for _ in range(window):
                    sreq = yield from ctx.isend(dst=other, nbytes=nbytes, tag=1)
                    rreq = yield from ctx.irecv(src=other, tag=1)
                    requests.extend((sreq, rreq))
                yield from ctx._wait(ctx.env.all_of(requests))
            if ctx.rank == 0:
                out["elapsed"] = ctx.env.now - out["t0"]

    job.run(program)
    return 2.0 * nbytes * window * iterations / out["elapsed"]


def osu_collective_latency(
    op: str,
    nbytes: int,
    n_ranks: int = 64,
    mode: PowerMode = PowerMode.NONE,
    iterations: int = DEFAULT_ITERATIONS,
    warmup: int = DEFAULT_WARMUP,
    progress: ProgressMode = ProgressMode.POLLING,
    cluster_spec: Optional[ClusterSpec] = None,
    session: Optional["SimSession"] = None,
) -> float:
    """Average collective latency in seconds (barrier-separated timed loop,
    like osu_alltoall / osu_bcast / ...)."""
    job = _job(n_ranks, mode, progress, cluster_spec, session=session)
    out = {}

    def program(ctx):
        for _ in range(warmup):
            yield from getattr(ctx, op)(nbytes)
        yield from ctx.barrier()
        t0 = ctx.env.now
        for _ in range(iterations):
            yield from getattr(ctx, op)(nbytes)
        if ctx.rank == 0:
            out["elapsed"] = ctx.env.now - t0

    job.run(program)
    return out["elapsed"] / iterations


def sweep(
    benchfn,
    sizes: Sequence[int] = DEFAULT_SIZES,
    **kwargs,
) -> List[Tuple[int, float]]:
    """Run ``benchfn`` over a size ladder, returning (size, value) rows."""
    return [(nbytes, benchfn(nbytes, **kwargs)) for nbytes in sizes]
