"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``info``
    Print the simulated testbed and calibration summary.
``osu``
    Run a simulated OSU microbenchmark (latency / bw / bibw / collectives).
``app``
    Run one of the paper's application workloads under a power scheme.
``experiment``
    Run any paper figure/table experiment and print its series.
``experiments``
    List the available experiments.
``bench-report``
    Print cache statistics and per-cell timings from the last sweep run.
``campaign run|status|report``
    Run, resume, or inspect a declarative sweep campaign
    (:mod:`repro.campaign`): a YAML/JSON spec expands to a deduplicated
    cell grid, the executor probes the result cache first and executes
    only the misses (so rerunning a finished campaign executes nothing
    and resuming an interrupted one picks up where it stopped), and a
    completed campaign renders its paper artifacts (JSON + txt).
``cache stats|gc``
    Inspect or garbage-collect the content-addressed result cache.
``trace-export``
    Convert a ``--trace`` JSONL file to a viewer format (Chrome trace
    JSON for chrome://tracing or https://ui.perfetto.dev).

The ``experiment`` / ``osu`` / ``app`` commands accept ``--jobs N`` to
shard their independent simulation cells across worker processes and
``--cache-dir`` / ``--no-cache`` / ``--refresh`` to control the
content-addressed result cache (see :mod:`repro.runner`).  Parallel
output is bit-identical to serial output.  The observability flags
(``--trace`` / ``--metrics`` / ``--profile``) ride through the runner:
each cell captures its payload wherever it runs and the parent replays
payloads in submit order (see :mod:`repro.obs`), so ``--jobs 4`` records
exactly what ``--jobs 1`` does.  ``--governor`` / ``--faults`` /
``--power-cap`` are plan parameters: the configs serialize into each
cell's spec (and its cache key), workers reconstruct them, and the
per-run report dicts ride back on the results — there is exactly one
execution path.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import re
import sys
from pathlib import Path
from typing import Callable, List, Optional

from . import bench
from .apps import CPMD_TA_INP_MD, CPMD_WAT32_INP1, CPMD_WAT32_INP2, NAS_FT, NAS_IS
from .bench.report import bytes_label, format_table, render_experiment
from .cluster.specs import ClusterSpec
from .collectives.registry import PowerMode
from .microbench import osu
from .mpi.p2p import ProgressMode
from .power.model import PowerModel

APPS = {
    "nas-ft": NAS_FT,
    "nas-is": NAS_IS,
    "cpmd-wat1": CPMD_WAT32_INP1,
    "cpmd-wat2": CPMD_WAT32_INP2,
    "cpmd-ta": CPMD_TA_INP_MD,
}

EXPERIMENTS = {
    "fig2a": bench.fig2a_alltoall_scaling,
    "fig2b": bench.fig2b_bcast_phases,
    "fig2c": bench.fig2c_reduce_phases,
    "fig6a": bench.fig6a_polling_vs_blocking,
    "fig6b": bench.fig6b_power_timeline,
    "fig7a": bench.fig7a_alltoall_latency,
    "fig7b": bench.fig7b_alltoall_power,
    "fig8a": bench.fig8a_bcast_latency,
    "fig8b": bench.fig8b_bcast_power,
    "fig9": bench.fig9_cpmd_performance,
    "fig10": bench.fig10_nas_performance,
    "table1": bench.table1_cpmd_energy,
    "table2": bench.table2_nas_energy,
    "models": bench.models_validation,
    "alltoallv": bench.alltoallv_power,
    "ablation-granularity": bench.ablation_throttle_granularity,
    "ablation-overheads": bench.ablation_transition_overheads,
    "ablation-fmin": bench.ablation_fmin_sweep,
    "ablation-scaling": bench.ablation_cluster_scaling,
    "ext-racks": bench.extension_rack_topology,
    "ext-rack-topology": bench.extension_rack_topology,
    "ext-adaptive": bench.extension_adaptive_policy,
    "ext-governor": bench.extension_governor_alltoall,
    "ext-governor-alltoall": bench.extension_governor_alltoall,
    "ext-governor-mixed": bench.extension_governor_mixed,
    "ext-governor-apps": bench.extension_governor_apps,
    "ext-faults": bench.extension_faults_governor,
    "ext-arbiter": bench.extension_power_arbiter,
}


def _parse_size(text: str) -> int:
    """'4', '16K', '1M' → bytes."""
    text = text.strip().upper()
    factor = 1
    if text.endswith("K"):
        factor, text = 1 << 10, text[:-1]
    elif text.endswith("M"):
        factor, text = 1 << 20, text[:-1]
    return int(text) * factor


def _canonical_experiment(name: str) -> Optional[str]:
    """Resolve an experiment name, tolerating zero-padding ('fig07a')."""
    key = name.lower()
    if key in EXPERIMENTS:
        return key
    m = re.fullmatch(r"(fig|table)0*(\d+)([a-z]?)", key)
    if m:
        key = f"{m.group(1)}{int(m.group(2))}{m.group(3)}"
        if key in EXPERIMENTS:
            return key
    return None


def _add_instrumentation_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a JSONL event trace of every simulation to FILE "
             "(schema: repro.sim.trace)",
    )
    subparser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write a JSON metrics snapshot (counters / gauges / "
             "sim-clock series; schema: repro.obs.metrics) to FILE",
    )
    subparser.add_argument(
        "--profile", action="store_true",
        help="print a wall-clock self-profile of the simulator afterwards",
    )
    subparser.add_argument(
        "--governor", choices=["none", "countdown", "predictive"], default=None,
        help="install the online power governor (repro.runtime) on every "
             "simulation this command runs",
    )
    subparser.add_argument(
        "--governor-theta", type=float, default=None, metavar="US",
        help="countdown threshold theta in microseconds "
             "(default 200; needs --governor)",
    )
    subparser.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="perturb every simulation with a deterministic fault plan, "
             "e.g. 'degrade:factor=0.5;noise:period=500us;jitter' "
             "(grammar: repro.faults.parse_fault_spec)",
    )
    subparser.add_argument(
        "--fault-seed", type=int, default=None, metavar="N",
        help="seed for the fault plan's randomness (default 0; "
             "needs --faults)",
    )
    subparser.add_argument(
        "--power-cap", type=float, default=None, metavar="WATTS",
        help="enforce a cluster-wide power cap through the budget "
             "arbiter (repro.runtime.arbiter) on every simulation this "
             "command runs",
    )
    subparser.add_argument(
        "--arbiter", choices=["uniform", "redistribute"], default=None,
        help="cap-splitting policy (default uniform; needs --power-cap)",
    )


def _add_runner_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="run independent simulation cells across N worker processes "
             "(default: all cores, or $REPRO_JOBS; 1 = inline)",
    )
    subparser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache location "
             "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    subparser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache for this run",
    )
    subparser.add_argument(
        "--refresh", action="store_true",
        help="recompute every cell, overwriting any cached results",
    )


class _Instrumentation:
    """Resolved --governor/--faults flags plus the reports they produced.

    The configs become *cell parameters*: commands serialize them into
    every cell they build (or hand them to :func:`bench.use_runner` to
    overlay onto plan cells), workers reconstruct them, and the per-run
    report dicts come back on the :class:`CellResult` — through the
    memo, the disk cache, or fresh execution alike — so the summary
    lines below are byte-identical however a cell was satisfied.
    """

    def __init__(self, args):
        self.governor_config = _governor_config(args)
        self.fault_plan = _fault_plan(args)
        self.arbiter_config = _arbiter_config(args)
        self.governor_reports: List[dict] = []
        self.fault_reports: List[dict] = []
        self.arbiter_reports: List[dict] = []

    @property
    def governor_params(self):
        return (
            self.governor_config.to_dict()
            if self.governor_config is not None else None
        )

    @property
    def fault_params(self):
        return (
            self.fault_plan.to_dict()
            if self.fault_plan is not None else None
        )

    @property
    def arbiter_params(self):
        return (
            self.arbiter_config.to_dict()
            if self.arbiter_config is not None else None
        )

    def cell_params(self, params: dict) -> dict:
        """Fold the instrumentation configs into one cell's params.

        Leaves ``params`` untouched when no flag was given, so
        uninstrumented runs keep their exact historical cache keys.
        """
        if self.governor_params is not None:
            params["governor"] = self.governor_params
        if self.fault_params is not None:
            params["faults"] = self.fault_params
        if self.arbiter_params is not None:
            params["arbiter"] = self.arbiter_params
        return params

    def collect(self, results) -> None:
        """Harvest report dicts from results of cells this built."""
        if self.governor_config is not None:
            self.governor_reports.extend(
                r.governor for r in results if r.governor is not None
            )
        if self.fault_plan is not None:
            self.fault_reports.extend(
                r.faults for r in results if r.faults is not None
            )
        if self.arbiter_config is not None:
            self.arbiter_reports.extend(
                r.arbiter for r in results if r.arbiter is not None
            )


class _RunnerSetup:
    """Resolved --jobs/--cache-dir/--no-cache/--refresh for one command."""

    def __init__(self, args, experiment: str = ""):
        from .runner import ResultCache, SweepStats, resolve_jobs

        self.jobs = resolve_jobs(args.jobs, default=os.cpu_count() or 1)
        self.cache = (
            None if args.no_cache
            else ResultCache(Path(args.cache_dir) if args.cache_dir else None)
        )
        self.refresh = bool(args.refresh)
        self.stats = SweepStats(experiment=experiment, jobs=self.jobs)

    def run(self, cells):
        from .runner import run_cells

        return run_cells(
            cells, jobs=self.jobs, cache=self.cache,
            refresh=self.refresh, stats=self.stats,
        )

    def finish(self) -> None:
        """Print the run summary (stderr keeps stdout byte-comparable
        across warm/cold runs) and persist it for ``bench-report``."""
        from .obs.metrics import ambient_metrics_registry
        from .runner import save_sweep_stats

        line = self.stats.one_line()
        if self.cache is not None:
            cs = self.cache.stats()
            line += (
                f" | disk cache {cs['hits']} hits / {cs['misses']} misses"
                f" / {cs['writes']} writes ({self.cache.root})"
            )
            if cs.get("write_errors"):
                line += f" | {cs['write_errors']} WRITE ERRORS (store degraded)"
        print(line, file=sys.stderr)
        registry = ambient_metrics_registry()
        save_sweep_stats(
            self.stats, cache=self.cache,
            metrics=registry.snapshot() if registry is not None else None,
        )


def _fault_plan(args):
    """Build a FaultPlan from the CLI flags (None = not requested)."""
    spec = getattr(args, "faults", None)
    seed = getattr(args, "fault_seed", None)
    if spec is None:
        if seed is not None:
            raise SystemExit("--fault-seed requires --faults")
        return None
    if seed is not None and seed < 0:
        raise SystemExit(f"--fault-seed must be non-negative, got {seed}")
    from .faults import FaultSpecError, parse_fault_spec

    try:
        return parse_fault_spec(spec, seed=seed or 0)
    except FaultSpecError as exc:
        raise SystemExit(f"bad --faults spec: {exc}") from None


def _governor_config(args):
    """Build a GovernorConfig from the CLI flags (None = not requested)."""
    policy_name = getattr(args, "governor", None)
    theta_us = getattr(args, "governor_theta", None)
    if policy_name is None:
        if theta_us is not None:
            raise SystemExit("--governor-theta requires --governor")
        return None
    if theta_us is not None and theta_us <= 0:
        raise SystemExit(
            f"--governor-theta must be a positive duration in "
            f"microseconds, got {theta_us}"
        )
    from .runtime import GovernorConfig, GovernorPolicy

    kwargs = {"policy": GovernorPolicy(policy_name)}
    if theta_us is not None:
        kwargs["theta_s"] = theta_us * 1e-6
    return GovernorConfig(**kwargs)


def _arbiter_config(args):
    """Build an ArbiterConfig from the CLI flags (None = not requested)."""
    cap_w = getattr(args, "power_cap", None)
    policy_name = getattr(args, "arbiter", None)
    if cap_w is None:
        if policy_name is not None:
            raise SystemExit("--arbiter requires --power-cap")
        return None
    if cap_w <= 0:
        raise SystemExit(
            f"--power-cap must be a positive wattage, got {cap_w}"
        )
    from .runtime import ArbiterConfig, ArbiterPolicy

    return ArbiterConfig(
        policy=ArbiterPolicy(policy_name or "uniform"), power_cap_w=cap_w
    )


def _instrumented(args, out, fn: Callable[["_Instrumentation"], int]) -> int:
    """Run ``fn`` under the --trace / --metrics / --profile scopes, with
    the --governor / --faults configs resolved into an
    :class:`_Instrumentation` the command threads into its cells."""
    from .bench.profile import SelfProfile
    from .sim.trace import JsonlTracer, use_tracer

    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    profile = SelfProfile() if getattr(args, "profile", False) else None
    instr = _Instrumentation(args)
    with contextlib.ExitStack() as stack:
        tracer = None
        registry = None
        if trace_path is not None:
            try:
                tracer = stack.enter_context(JsonlTracer(trace_path))
            except OSError as exc:
                print(f"cannot open trace file {trace_path!r}: {exc}", file=out)
                return 2
            stack.enter_context(use_tracer(tracer))
        if metrics_path is not None:
            from .obs.metrics import MetricsRegistry, use_metrics

            registry = MetricsRegistry()
            stack.enter_context(use_metrics(registry))
        if profile is not None:
            stack.enter_context(profile)
        rc = fn(instr)
    if tracer is not None:
        print(
            f"wrote {tracer.records_written} trace records to {trace_path}",
            file=out,
        )
    if registry is not None:
        import json

        snapshot = registry.snapshot()
        try:
            with open(metrics_path, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        except OSError as exc:
            print(f"cannot write metrics file {metrics_path!r}: {exc}", file=out)
            return 2
        n = len(snapshot["counters"]) + len(snapshot["gauges"]) + len(snapshot["series"])
        print(f"wrote {n} metrics to {metrics_path}", file=out)
    if instr.governor_config is not None and instr.governor_reports:
        from .runtime import merge_reports
        from .runtime.telemetry import GovernorReport

        reports = [GovernorReport(**d) for d in instr.governor_reports]
        merged = merge_reports(reports)
        print(merged.one_line(), file=out)
        if profile is not None:
            from .bench import save_governor_json

            path = save_governor_json(reports)
            print(f"wrote governor telemetry to {path}", file=out)
    if instr.fault_plan is not None:
        reports = instr.fault_reports
        if reports:
            print(
                f"faults[seed={instr.fault_plan.seed}] over {len(reports)} runs: "
                f"{sum(r['link_events'] for r in reports)} link events, "
                f"{sum(r['straggled_calls'] for r in reports)} slowed computes, "
                f"{sum(r['noise_pulses'] for r in reports)} noise pulses, "
                f"{sum(r['jittered_transitions'] for r in reports)} "
                "jittered transitions",
                file=out,
            )
        else:
            print("faults: no simulation ran under the plan", file=out)
    if instr.arbiter_config is not None:
        reports = instr.arbiter_reports
        if reports:
            cfg = instr.arbiter_config
            print(
                f"arbiter[{cfg.policy.value} @ {cfg.power_cap_w:g} W] over "
                f"{len(reports)} runs: "
                f"{sum(r['ticks'] for r in reports)} ticks, "
                f"{sum(r['rebalances'] for r in reports)} rebalances, "
                f"{sum(r['freq_changes'] for r in reports)} node freq "
                f"changes, {sum(r['donated_j'] for r in reports):.3g} J "
                "donated",
                file=out,
            )
        else:
            print("arbiter: no simulation ran under the cap", file=out)
    if profile is not None:
        print(profile.report(), file=out)
    return rc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Power-aware collective communication (ICPP 2010) simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print testbed + calibration summary")
    sub.add_parser("experiments", help="list available experiments")
    sub.add_parser("validate", help="sanity-check the default configuration")

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("name", metavar="NAME",
                       help="experiment name (see `experiments`); zero-padded "
                            "forms like fig07a are accepted")
    p_exp.add_argument("--json", metavar="DIR", default=None,
                       help="also write results/<name>.json under DIR")
    _add_instrumentation_flags(p_exp)
    _add_runner_flags(p_exp)

    p_osu = sub.add_parser("osu", help="run a simulated OSU microbenchmark")
    p_osu.add_argument(
        "bench",
        choices=["latency", "bw", "bibw", "alltoall", "bcast", "reduce",
                 "allreduce", "allgather"],
    )
    p_osu.add_argument("--size", type=_parse_size, default=None,
                       help="single message size (e.g. 64K); default: ladder")
    p_osu.add_argument("--ranks", type=int, default=64)
    p_osu.add_argument("--mode", choices=[m.value for m in PowerMode],
                       default="none")
    p_osu.add_argument("--blocking", action="store_true",
                       help="use blocking progression (default: polling)")
    p_osu.add_argument("--intra-node", action="store_true",
                       help="p2p benchmarks: use a same-node pair")
    _add_instrumentation_flags(p_osu)
    _add_runner_flags(p_osu)

    p_app = sub.add_parser("app", help="run an application workload")
    p_app.add_argument("name", choices=sorted(APPS))
    p_app.add_argument("--ranks", type=int, default=64, choices=[32, 64])
    p_app.add_argument("--mode", choices=[m.value for m in PowerMode],
                       default="none")
    _add_instrumentation_flags(p_app)
    _add_runner_flags(p_app)

    p_report = sub.add_parser(
        "bench-report",
        help="print cache statistics and per-cell timings of the last sweep",
    )
    p_report.add_argument(
        "--results-dir", default="results", metavar="DIR",
        help="directory holding last_sweep.json (default: results)",
    )
    p_report.add_argument(
        "--metrics", action="store_true",
        help="also print the metrics snapshot captured by the last sweep "
             "(requires the sweep to have run under --metrics)",
    )

    p_camp = sub.add_parser(
        "campaign",
        help="run, resume, or inspect a declarative sweep campaign",
    )
    camp_sub = p_camp.add_subparsers(dest="campaign_cmd", required=True)
    p_camp_run = camp_sub.add_parser(
        "run", help="run a campaign spec (resumes automatically: cells "
                    "already in the result cache are never re-executed)",
    )
    p_camp_run.add_argument("spec", metavar="SPEC",
                            help="campaign spec file (.yaml/.yml/.json)")
    p_camp_run.add_argument(
        "--dir", default=None, metavar="DIR",
        help="campaign directory for manifest/telemetry/artifacts "
             "(default: results/campaigns/<name>)",
    )
    p_camp_run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: spec's jobs, $REPRO_JOBS, or "
             "all cores)",
    )
    p_camp_run.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared result cache (default: spec's cache_dir, "
             "$REPRO_CACHE_DIR, or ~/.cache/repro)",
    )
    p_camp_run.add_argument(
        "--driver", choices=["local", "shards"], default="local",
        help="execution driver: local warm-worker pool, or N independent "
             "shard processes coordinating through the shared cache",
    )
    p_camp_run.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="shard process count for --driver shards (default 2)",
    )
    p_camp_run.add_argument(
        "--refresh", action="store_true",
        help="re-execute every cell, overwriting cached results",
    )
    p_camp_run.add_argument(
        "--no-artifacts", action="store_true",
        help="skip the artifact-rendering stage",
    )
    for sub_name, sub_help in (
        ("status", "per-cell status of a campaign's manifest"),
        ("report", "telemetry + artifact summary of a campaign"),
    ):
        p_c = camp_sub.add_parser(sub_name, help=sub_help)
        p_c.add_argument("spec", metavar="SPEC", help="campaign spec file")
        p_c.add_argument("--dir", default=None, metavar="DIR",
                         help="campaign directory (default: "
                              "results/campaigns/<name>)")

    p_cache = sub.add_parser(
        "cache", help="inspect or garbage-collect the result cache",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_cmd", required=True)
    p_cache_stats = cache_sub.add_parser(
        "stats", help="entry count, size, and per-experiment breakdown",
    )
    p_cache_gc = cache_sub.add_parser(
        "gc", help="evict corrupt, expired, and over-budget entries "
                   "(oldest first)",
    )
    for p_c in (p_cache_stats, p_cache_gc):
        p_c.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="cache location (default: $REPRO_CACHE_DIR or "
                 "~/.cache/repro)",
        )
    p_cache_gc.add_argument(
        "--max-age", type=float, default=None, metavar="DAYS",
        help="evict entries older than DAYS (fractions allowed)",
    )
    p_cache_gc.add_argument(
        "--max-size", type=float, default=None, metavar="MB",
        help="evict oldest entries until the store fits MB megabytes",
    )
    p_cache_gc.add_argument(
        "--dry-run", action="store_true",
        help="report what would be evicted without deleting anything",
    )

    p_trace = sub.add_parser(
        "trace-export",
        help="convert a --trace JSONL file to a trace-viewer format",
    )
    p_trace.add_argument(
        "trace", metavar="TRACE.jsonl",
        help="JSONL trace written by --trace (schema: repro.sim.trace)",
    )
    p_trace.add_argument(
        "--format", choices=["chrome"], default="chrome",
        help="output format (chrome: Trace Event JSON for "
             "chrome://tracing / https://ui.perfetto.dev)",
    )
    p_trace.add_argument(
        "--out", metavar="FILE", default=None,
        help="output path (default: alongside the input, "
             ".jsonl -> .chrome.json)",
    )
    return parser


def cmd_info(out) -> int:
    spec = ClusterSpec.paper_testbed()
    model = PowerModel()
    rows = [
        ("nodes", spec.nodes),
        ("sockets/node", spec.node.sockets),
        ("cores/socket", spec.node.cpu.cores_per_socket),
        ("total cores", spec.total_cores),
        ("fmin..fmax (GHz)", f"{spec.node.cpu.fmin}..{spec.node.cpu.fmax}"),
        ("T-states", "T0..T7 (12% active at T7)"),
        ("Odvfs/Othrottle (us)", spec.node.cpu.dvfs_latency_s * 1e6),
        ("core power @fmax (W)", model.full_core_power(spec.node.cpu.fmax)),
        ("core power @fmin (W)", model.full_core_power(spec.node.cpu.fmin)),
        ("node base power (W)", model.params.node_base_w),
        ("system @fmax polling (kW)", 2.3),
    ]
    print(format_table(["property", "value"], rows), file=out)
    return 0


def cmd_experiment(name: str, out, json_dir=None, args=None, instr=None) -> int:
    if args is None:
        headers, rows, notes = EXPERIMENTS[name]()
    else:
        setup = _RunnerSetup(args, experiment=name)
        with bench.use_runner(
            jobs=setup.jobs, cache=setup.cache,
            refresh=setup.refresh, stats=setup.stats,
            governor=instr.governor_params if instr is not None else None,
            faults=instr.fault_params if instr is not None else None,
            arbiter=instr.arbiter_params if instr is not None else None,
        ) as scope:
            headers, rows, notes = EXPERIMENTS[name]()
        if instr is not None:
            instr.governor_reports.extend(scope.governor_reports)
            instr.fault_reports.extend(scope.fault_reports)
            instr.arbiter_reports.extend(scope.arbiter_reports)
        setup.finish()
    print(render_experiment(name, headers, rows, notes), file=out)
    if json_dir is not None:
        from .bench import save_json

        path = save_json(name, headers, rows, notes, results_dir=json_dir)
        print(f"wrote {path}", file=out)
    return 0


def cmd_osu(args, out, instr=None) -> int:
    progress = ProgressMode.BLOCKING if args.blocking else ProgressMode.POLLING
    sizes = [args.size] if args.size is not None else list(osu.DEFAULT_SIZES[2:9])
    metrics: List[float]
    from .runner import SweepCell

    if instr is None:
        instr = _Instrumentation(args)
    setup = _RunnerSetup(args, experiment=f"osu-{args.bench}")
    cells = [
        SweepCell(
            experiment=f"osu-{args.bench}",
            kind="osu",
            params=instr.cell_params({
                "bench": args.bench,
                "nbytes": nbytes,
                "n_ranks": args.ranks,
                "mode": args.mode,
                "blocking": args.blocking,
                "intra_node": args.intra_node,
            }),
            label=f"osu_{args.bench}/{bytes_label(nbytes)}",
        )
        for nbytes in sizes
    ]
    results = setup.run(cells)
    instr.collect(results)
    metrics = [r.extra["metric"] for r in results]
    setup.finish()
    if args.bench in ("bw", "bibw"):
        rows = [(bytes_label(n), m / 1e9) for n, m in zip(sizes, metrics)]
        headers = ["Size", "Bandwidth (GB/s)"]
    elif args.bench == "latency":
        rows = [(bytes_label(n), m * 1e6) for n, m in zip(sizes, metrics)]
        headers = ["Size", "Latency (us)"]
    else:
        rows = [(bytes_label(n), m * 1e6) for n, m in zip(sizes, metrics)]
        headers = ["Size", "Avg latency (us)"]
    title = f"osu_{args.bench} ({args.ranks} ranks, {args.mode}, {progress.value})"
    print(render_experiment(title, headers, rows), file=out)
    return 0


def cmd_app(args, out, instr=None) -> int:
    from .runner import SweepCell

    if instr is None:
        instr = _Instrumentation(args)
    setup = _RunnerSetup(args, experiment=f"app-{args.name}")
    cell = SweepCell(
        experiment=f"app-{args.name}",
        kind="app",
        params=instr.cell_params(
            {"app": args.name, "ranks": args.ranks, "mode": args.mode}
        ),
        label=f"{args.name}/{args.ranks}r/{args.mode}",
    )
    results = setup.run([cell])
    instr.collect(results)
    (r,) = results
    setup.finish()
    app_name = r.app["name"]
    rows = [
        ("total time (s)", r.app["total_time_s"]),
        ("alltoall time (s)", r.app["alltoall_time_s"]),
        ("alltoall fraction", r.app["alltoall_fraction"]),
        ("energy (kJ)", r.app["energy_kj"]),
        ("avg power (kW)", r.average_power_w / 1e3),
    ]
    title = f"{app_name} @ {args.ranks} ranks, scheme={args.mode}"
    print(render_experiment(title, ["metric", "value"], rows), file=out)
    return 0


def cmd_bench_report(args, out) -> int:
    from .bench.report import render_sweep_report
    from .runner import load_sweep_stats

    stats = load_sweep_stats(Path(args.results_dir))
    if stats is None:
        print(
            f"no sweep recorded under {args.results_dir!r}; run an "
            "experiment first (e.g. `python -m repro experiment fig7a`)",
            file=out,
        )
        return 1
    print(render_sweep_report(stats), file=out, end="")
    if getattr(args, "metrics", False):
        from .bench.report import render_metrics_report

        snapshot = stats.get("metrics")
        if snapshot:
            print(render_metrics_report(snapshot), file=out, end="")
        else:
            print(
                "no metrics in the last sweep; rerun it with "
                "--metrics FILE to capture them",
                file=out,
            )
    return 0


def cmd_trace_export(args, out) -> int:
    from .obs.chrome import export_chrome_trace

    src = Path(args.trace)
    dst = Path(args.out) if args.out else src.with_suffix(".chrome.json")
    try:
        info = export_chrome_trace(str(src), str(dst))
    except OSError as exc:
        print(f"cannot export trace {str(src)!r}: {exc}", file=out)
        return 2
    except ValueError as exc:
        print(f"bad trace file {str(src)!r}: {exc}", file=out)
        return 2
    print(
        f"exported {info['records']} records as {info['events']} Chrome "
        f"trace events to {dst}",
        file=out,
    )
    return 0


def cmd_campaign(args, out) -> int:
    from .campaign import (
        CampaignManifest,
        CampaignSpecError,
        LocalPoolDriver,
        SubprocessShardDriver,
        default_campaign_dir,
        load_campaign,
        run_campaign,
        spec_digest,
    )

    try:
        spec = load_campaign(args.spec)
    except CampaignSpecError as exc:
        print(f"bad campaign spec: {exc}", file=out)
        return 2
    campaign_dir = Path(args.dir) if args.dir else default_campaign_dir(spec)

    if args.campaign_cmd == "run":
        from .runner import ResultCache, resolve_jobs, save_sweep_stats

        cache_dir = args.cache_dir or spec.cache_dir
        cache = ResultCache(Path(cache_dir) if cache_dir else None)
        jobs = resolve_jobs(
            args.jobs if args.jobs is not None else spec.jobs,
            default=os.cpu_count() or 1,
        )
        driver = (
            SubprocessShardDriver(shards=args.shards, jobs_per_shard=jobs)
            if args.driver == "shards" else LocalPoolDriver()
        )
        result = run_campaign(
            spec, campaign_dir=campaign_dir, cache=cache, jobs=jobs,
            driver=driver, refresh=args.refresh,
            artifacts=not args.no_artifacts,
            progress=lambda msg: print(msg, file=sys.stderr),
        )
        save_sweep_stats(result.stats, cache=cache)
        tele = result.telemetry
        rows = [
            ("cells", len(result.plan)),
            ("duplicates folded", result.plan.duplicates),
            ("probe hits", tele["probe_hits"]),
            ("executed", tele["executed"]),
            ("failed", tele["failed"]),
            ("hit rate", f"{tele['hit_rate']:.3f}"),
            ("cell p50/p95 (s)",
             f"{tele['cell_wall_s']['p50']:.3f}/{tele['cell_wall_s']['p95']:.3f}"),
            ("artifacts", len(result.artifacts)),
            ("elapsed (s)", f"{tele['elapsed_s']:.2f}"),
        ]
        print(
            format_table([f"campaign {spec.name} [{driver.name}]", "value"], rows),
            file=out,
        )
        for record in result.artifacts:
            print(f"wrote {record['json']}", file=out)
            print(f"wrote {record['txt']}", file=out)
        if not result.ok:
            for entry in result.manifest.cells:
                if entry.status == "failed":
                    print(f"FAILED {entry.label}: {entry.error}", file=out)
            return 1
        return 0

    if args.campaign_cmd == "status":
        manifest = CampaignManifest.load(campaign_dir / "campaign.json")
        if manifest is None:
            print(
                f"no manifest under {campaign_dir} — campaign has not "
                "started (or the manifest is unreadable)",
                file=out,
            )
            return 1
        digest = spec_digest(spec)
        counts = manifest.counts()
        rows = [("spec digest", digest[:12])]
        if manifest.spec_digest != digest:
            rows.append(("NOTE", "spec changed since this manifest was written"))
        rows += [(status, counts[status]) for status in ("done", "pending", "failed")]
        print(format_table([f"campaign {spec.name}", "value"], rows), file=out)
        for entry in manifest.cells:
            if entry.status != "done":
                line = f"{entry.status:8s} {entry.experiment}  {entry.label}"
                if entry.error:
                    line += f"  ({entry.error})"
                print(line, file=out)
        return 0 if manifest.complete else 1

    # report: telemetry + artifacts of the last run
    tele_path = campaign_dir / "telemetry.json"
    try:
        import json as _json

        with open(tele_path, "r", encoding="utf-8") as fh:
            tele = _json.load(fh)
    except (OSError, ValueError):
        print(
            f"no telemetry under {campaign_dir} — run the campaign first",
            file=out,
        )
        return 1
    rows = [
        ("driver", tele.get("driver", "?")),
        ("jobs", tele.get("jobs", "?")),
        ("resumed", tele.get("resumed", False)),
        ("cells", tele.get("cells_total", 0)),
        ("probe hits", tele.get("probe_hits", 0)),
        ("executed", tele.get("executed", 0)),
        ("failed", tele.get("failed", 0)),
        ("hit rate", f"{tele.get('hit_rate', 0.0):.3f}"),
        ("elapsed (s)", f"{tele.get('elapsed_s', 0.0):.2f}"),
    ]
    wall = tele.get("cell_wall_s") or {}
    if wall:
        rows.append(
            ("cell p50/p95/max (s)",
             f"{wall.get('p50', 0):.3f}/{wall.get('p95', 0):.3f}"
             f"/{wall.get('max', 0):.3f}")
        )
    for shard in tele.get("shards", ()):
        rows.append(
            (f"shard {shard.get('shard')}",
             f"{shard.get('cells', 0)} cells, rc={shard.get('returncode')}")
        )
    print(format_table([f"campaign {tele.get('campaign', spec.name)}", "value"],
                       rows), file=out)
    for record in tele.get("artifacts", ()):
        print(f"artifact {record['experiment']}: {record['json']}", file=out)
    return 0


def cmd_cache(args, out) -> int:
    from .runner import ResultCache

    cache = ResultCache(Path(args.cache_dir) if args.cache_dir else None)
    if args.cache_cmd == "stats":
        stats = cache.disk_stats()
        rows = [
            ("entries", stats["entries"]),
            ("total size (MB)", f"{stats['total_bytes'] / 1e6:.2f}"),
            ("corrupt", stats["corrupt"]),
            ("writable", "yes" if stats["writable"] else "NO (degraded)"),
        ]
        for experiment, count in sorted(stats["by_experiment"].items()):
            rows.append((f"  {experiment}", count))
        print(format_table([f"cache {cache.root}", "value"], rows), file=out)
        return 0

    # gc
    report = cache.gc(
        max_age_s=args.max_age * 86400.0 if args.max_age is not None else None,
        max_size_bytes=int(args.max_size * 1e6) if args.max_size is not None else None,
        dry_run=args.dry_run,
    )
    verb = "would remove" if report["dry_run"] else "removed"
    removed = report["removed"]
    print(
        f"{verb} {report['removed_total']} entries "
        f"({removed['corrupt']} corrupt, {removed['expired']} expired, "
        f"{removed['evicted']} evicted, {removed['tmp']} tmp), "
        f"freeing {report['freed_bytes'] / 1e6:.2f} MB; "
        f"{report['kept']} entries kept ({cache.root})",
        file=out,
    )
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return cmd_info(out)
    if args.command == "experiments":
        for name in sorted(EXPERIMENTS):
            print(f"{name:22s} {EXPERIMENTS[name].__doc__.splitlines()[0]}", file=out)
        return 0
    if args.command == "validate":
        from .validate import is_valid, validate_configuration

        findings = validate_configuration()
        for finding in findings:
            print(finding, file=out)
        ok = is_valid(findings)
        print("configuration OK" if ok else "configuration INVALID", file=out)
        return 0 if ok else 1
    if args.command == "experiment":
        name = _canonical_experiment(args.name)
        if name is None:
            print(
                f"unknown experiment {args.name!r}; run "
                "`python -m repro experiments` for the list",
                file=out,
            )
            return 2
        return _instrumented(
            args, out,
            lambda instr: cmd_experiment(
                name, out, json_dir=args.json, args=args, instr=instr
            ),
        )
    if args.command == "osu":
        return _instrumented(args, out, lambda instr: cmd_osu(args, out, instr))
    if args.command == "app":
        return _instrumented(args, out, lambda instr: cmd_app(args, out, instr))
    if args.command == "bench-report":
        return cmd_bench_report(args, out)
    if args.command == "campaign":
        return cmd_campaign(args, out)
    if args.command == "cache":
        return cmd_cache(args, out)
    if args.command == "trace-export":
        return cmd_trace_export(args, out)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
