"""repro — reproduction of "Designing Power-Aware Collective Communication
Algorithms for InfiniBand Clusters" (Kandalla et al., ICPP 2010).

The package simulates an InfiniBand multi-core cluster (discrete-event),
implements the paper's default and power-aware collective algorithms, its
analytical performance/power models, and the NAS/CPMD application workloads
used in the evaluation.

Quick start::

    from repro import (CollectiveConfig, CollectiveEngine, MpiJob,
                       PowerMode, SimSession)

    session = SimSession()          # env + cluster + fabric + power + tracer
    job = MpiJob(64, session=session, collectives=CollectiveEngine(
        CollectiveConfig(power_mode=PowerMode.PROPOSED)))

    def program(ctx):
        yield from ctx.alltoall(1 << 20)

    result = job.run(program)
    print(result.duration_s, result.energy_kj)
"""

from .cluster import (
    AffinityPolicy,
    Cluster,
    ClusterSpec,
    CpuSpec,
    NodeSpec,
    ThrottleGranularity,
)
from .collectives import CollectiveConfig, CollectiveEngine, PowerMode
from .faults import (
    FaultPlan,
    FaultSpecError,
    LinkDegrade,
    LinkFlap,
    OsNoise,
    Straggler,
    TransitionJitter,
    parse_fault_spec,
    use_faults,
)
from .mpi import JobResult, MpiJob, ProgressMode, RankContext, run_collective_once
from .network import NetworkSpec
from .power import EnergyAccountant, PowerMeter, PowerModel, PowerModelParams
from .runtime import (
    ArbiterConfig,
    ArbiterPolicy,
    ArbiterReport,
    Governor,
    GovernorConfig,
    GovernorPolicy,
    GovernorReport,
    PowerArbiter,
    use_arbiter,
    use_governor,
)
from .sim import (
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    SessionConfigError,
    SimSession,
    Tracer,
    use_tracer,
)

__version__ = "0.1.0"

__all__ = [
    "AffinityPolicy",
    "ArbiterConfig",
    "ArbiterPolicy",
    "ArbiterReport",
    "Cluster",
    "ClusterSpec",
    "CollectiveConfig",
    "CollectiveEngine",
    "CpuSpec",
    "EnergyAccountant",
    "FaultPlan",
    "FaultSpecError",
    "Governor",
    "GovernorConfig",
    "GovernorPolicy",
    "GovernorReport",
    "JobResult",
    "JsonlTracer",
    "LinkDegrade",
    "LinkFlap",
    "MpiJob",
    "NetworkSpec",
    "NodeSpec",
    "NullTracer",
    "OsNoise",
    "PowerMeter",
    "PowerMode",
    "PowerArbiter",
    "PowerModel",
    "PowerModelParams",
    "ProgressMode",
    "RankContext",
    "RecordingTracer",
    "SessionConfigError",
    "SimSession",
    "Straggler",
    "ThrottleGranularity",
    "Tracer",
    "TransitionJitter",
    "parse_fault_spec",
    "run_collective_once",
    "use_arbiter",
    "use_faults",
    "use_governor",
    "use_tracer",
    "__version__",
]
