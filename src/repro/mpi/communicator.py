"""Communicators: ordered process groups with private matching space.

Mirrors the MVAPICH2 multi-core-aware layout the paper builds on (§II-D,
Fig 1): ``COMM_WORLD`` plus, per node, a *shared-memory communicator* of the
node's ranks, and one *leader communicator* containing every node's lowest
rank.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


class Communicator:
    """An ordered group of world ranks with its own message-matching space."""

    def __init__(self, comm_id: int, world_ranks: Sequence[int], name: str = ""):
        if len(set(world_ranks)) != len(world_ranks):
            raise ValueError("duplicate ranks in communicator group")
        if not world_ranks:
            raise ValueError("empty communicator")
        self.comm_id = comm_id
        self.group: Tuple[int, ...] = tuple(world_ranks)
        self.name = name or f"comm{comm_id}"
        self._rank_of: Dict[int, int] = {w: i for i, w in enumerate(self.group)}

    @property
    def size(self) -> int:
        return len(self.group)

    def rank_of(self, world_rank: int) -> int:
        """Translate a world rank to this communicator's local rank."""
        try:
            return self._rank_of[world_rank]
        except KeyError:
            raise ValueError(
                f"world rank {world_rank} not in {self.name}"
            ) from None

    def world_rank(self, local_rank: int) -> int:
        """Translate a local rank back to the world rank."""
        if not 0 <= local_rank < self.size:
            raise ValueError(f"local rank {local_rank} out of range for {self.name}")
        return self.group[local_rank]

    def contains(self, world_rank: int) -> bool:
        return world_rank in self._rank_of

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator {self.name} size={self.size}>"


class CommunicatorFactory:
    """Allocates communicators with unique ids for one job."""

    def __init__(self) -> None:
        self._next_id = 0

    def create(self, world_ranks: Sequence[int], name: str = "") -> Communicator:
        comm = Communicator(self._next_id, world_ranks, name)
        self._next_id += 1
        return comm


class CommLayout:
    """The standard three-level layout of multi-core-aware collectives."""

    def __init__(
        self,
        world: Communicator,
        shared: Dict[int, Communicator],
        leaders: Communicator,
        rack_leaders: Communicator,
        rack_node_leaders: Dict[int, Communicator],
    ):
        #: All ranks.
        self.world = world
        #: node_id → communicator of that node's ranks.
        self.shared = shared
        #: One rank (the node leader) per node.
        self.leaders = leaders
        #: One rank (the rack leader) per rack (trivial for single-rack).
        self.rack_leaders = rack_leaders
        #: rack → communicator of the node leaders within that rack.
        self.rack_node_leaders = rack_node_leaders

    @classmethod
    def build(cls, factory: CommunicatorFactory, affinity) -> "CommLayout":
        """Derive the layout from an :class:`~repro.cluster.affinity.AffinityMap`."""
        world = factory.create(range(affinity.n_ranks), name="world")
        shared: Dict[int, Communicator] = {}
        leader_ranks: List[int] = []
        for node_id in range(affinity.n_nodes_used):
            ranks = affinity.ranks_on_node(node_id)
            shared[node_id] = factory.create(ranks, name=f"shm{node_id}")
            leader_ranks.append(affinity.node_leader(node_id))
        leaders = factory.create(leader_ranks, name="leaders")
        rack_leader_ranks: List[int] = []
        rack_node_leaders: Dict[int, Communicator] = {}
        for rack in range(affinity.n_racks_used):
            rack_leader_ranks.append(affinity.rack_leader(rack))
            node_leader_ranks = [
                affinity.node_leader(n) for n in affinity.nodes_in_rack(rack)
            ]
            rack_node_leaders[rack] = factory.create(
                node_leader_ranks, name=f"racknl{rack}"
            )
        rack_leaders = factory.create(rack_leader_ranks, name="rackleaders")
        return cls(world, shared, leaders, rack_leaders, rack_node_leaders)
