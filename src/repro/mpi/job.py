"""Job runner: executes one rank-program across all ranks on a
:class:`~repro.sim.session.SimSession` substrate.

Typical use::

    job = MpiJob(n_ranks=64)
    result = job.run(my_program, arg1, arg2)
    print(result.duration_s, result.energy_kj)

A job either adopts the session passed in or builds a private one from the
spec arguments (the historical signature).  Either way the session owns
env + cluster + fabric + power model + tracer; the job adds the MPI-side
machinery (affinity, message engine, communicators, rank contexts).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..cluster.affinity import AffinityMap, AffinityPolicy
from ..cluster.cpu import Activity
from ..cluster.specs import ClusterSpec
from ..network.params import NetworkSpec
from ..power.accounting import EnergyAccountant
from ..power.meter import PowerMeter, PowerTrace
from ..power.model import PowerModelParams
from ..sim import Event
from ..sim.session import SimSession
from .communicator import CommLayout, CommunicatorFactory
from .context import RankContext
from .p2p import MessageEngine, ProgressMode

#: A rank program: generator function taking (ctx, *args, **kwargs).
RankProgram = Callable[..., Any]

#: Hooks invoked as ``observer(job, result)`` after every completed run —
#: the bench self-profile registers here to collect wall-clock numbers
#: without the job layer knowing about benchmarking.
JOB_OBSERVERS: List[Callable[["MpiJob", "JobResult"], None]] = []


@dataclass
class JobStats:
    """Counters accumulated over a run."""

    dvfs_transitions: int = 0
    throttle_transitions: int = 0
    #: Accumulated wall time per instrumented collective phase, e.g.
    #: "bcast.network" (used for Fig 2b/2c reproduction).
    phase_times: Dict[str, float] = field(default_factory=dict)
    #: Self-profile of the run itself: host wall-clock seconds spent inside
    #: ``MpiJob.run`` and the kernel events it took (simulator *speed*, as
    #: opposed to the simulated time/energy above).
    wall_time_s: float = 0.0
    events_processed: int = 0
    #: Fabric re-rating effort: water-filling invocations and the total
    #: flows they covered (small per call under incremental re-rating).
    rerate_calls: int = 0
    flows_rerated: int = 0

    def add_phase(self, name: str, dt: float) -> None:
        self.phase_times[name] = self.phase_times.get(name, 0.0) + dt


@dataclass
class JobResult:
    """Outcome of :meth:`MpiJob.run`."""

    duration_s: float
    rank_finish_times: List[float]
    returns: List[Any]
    energy_j: float
    accountant: EnergyAccountant
    stats: JobStats
    job: "MpiJob"

    @property
    def energy_kj(self) -> float:
        return self.energy_j / 1e3

    @property
    def average_power_w(self) -> float:
        return self.energy_j / self.duration_s if self.duration_s > 0 else 0.0

    def power_trace(self, interval_s: float = PowerMeter.DEFAULT_INTERVAL_S) -> PowerTrace:
        """Sampled system power over the run (the paper's meter view)."""
        return PowerMeter(interval_s).sample(self.accountant)


class MpiJob:
    """One simulated MPI execution on a freshly built cluster."""

    def __init__(
        self,
        n_ranks: int,
        cluster_spec: Optional[ClusterSpec] = None,
        network_spec: Optional[NetworkSpec] = None,
        power_params: Optional[PowerModelParams] = None,
        affinity: AffinityPolicy = AffinityPolicy.BUNCH,
        progress: ProgressMode = ProgressMode.POLLING,
        collectives: Optional["CollectiveEngine"] = None,  # noqa: F821
        keep_segments: bool = True,
        columnar: bool = True,
        session: Optional[SimSession] = None,
        governor: Optional["Governor"] = None,  # noqa: F821
        faults: Optional["FaultPlan"] = None,  # noqa: F821
        arbiter: Optional["PowerArbiter"] = None,  # noqa: F821
        node_offset: int = 0,
    ):
        from ..collectives.registry import CollectiveEngine  # local: avoid cycle

        self.n_ranks = n_ranks
        if session is None:
            session = SimSession(
                cluster_spec=cluster_spec,
                network_spec=network_spec,
                power_params=power_params,
                keep_segments=keep_segments,
                columnar=columnar,
                governor=governor,
                faults=faults,
                arbiter=arbiter,
            )
        elif governor is not None:
            raise ValueError(
                "pass the governor to the SimSession (the session owns it), "
                "not to a job adopting an existing session"
            )
        elif faults is not None:
            raise ValueError(
                "pass the fault plan to the SimSession (the session owns "
                "it), not to a job adopting an existing session"
            )
        elif arbiter is not None:
            raise ValueError(
                "pass the arbiter to the SimSession (the session owns it), "
                "not to a job adopting an existing session"
            )
        self.session = session
        #: Optional online power governor (None = zero-overhead path).
        self.governor = session.governor
        #: Live fault-injection state (None = unperturbed, zero overhead).
        self.faults = session.faults
        #: Optional cluster power-budget arbiter (owned by the session).
        self.arbiter = session.arbiter
        self.env = session.env
        self.cluster = session.cluster
        self.affinity = AffinityMap(
            self.cluster, n_ranks, policy=affinity, node_offset=node_offset
        )
        self.net = session.net
        self.progress = progress
        if progress is ProgressMode.BLOCKING:
            factor = self.net.spec.blocking_nic_factor
            for node_id in self.net.progress_factor:
                self.net.progress_factor[node_id] = factor
        self.power_model = session.power_model
        self.accountant = session.accountant
        self.engine = MessageEngine(
            self.env, self.net, self.affinity, progress, governor=self.governor
        )
        self._comm_factory = CommunicatorFactory()
        self.layout = CommLayout.build(self._comm_factory, self.affinity)
        self.collectives = collectives or CollectiveEngine()
        self.stats = JobStats()
        self.contexts = [RankContext(self, r) for r in range(n_ranks)]
        self._flags: Dict[Tuple[int, str], Event] = {}
        self._flag_counts: Dict[Tuple[int, str], int] = {}
        self._splits: Dict[Tuple[int, int], Dict] = {}
        self._ran = False

    # -- node-local flags (shared-memory words used for phase coordination) ----
    def node_flag(self, node_id: int, name: str) -> Event:
        key = (node_id, name)
        if key not in self._flags:
            self._flags[key] = self.env.event()
        return self._flags[key]

    def register_split(self, comm, seq: int, world_rank: int, color, key):
        """Collect one rank's (color, key) for an MPI_Comm_split; once all
        members have arrived, build the sub-communicators and fire the
        completion event.  Returns the shared split record."""
        split_key = (comm.comm_id, seq)
        record = self._splits.setdefault(
            split_key, {"event": self.env.event(), "members": {}, "comms": {}}
        )
        if world_rank in record["members"]:  # pragma: no cover - defensive
            raise RuntimeError("rank arrived twice at the same comm_split")
        record["members"][world_rank] = (color, key)
        if len(record["members"]) == comm.size:
            by_color: Dict = {}
            for rank, (col, k) in record["members"].items():
                if col is None:
                    continue
                by_color.setdefault(col, []).append((k, rank))
            for col, entries in sorted(by_color.items(), key=lambda kv: str(kv[0])):
                ranks = [rank for _, rank in sorted(entries)]
                new_comm = self._comm_factory.create(
                    ranks, name=f"{comm.name}.split{seq}.{col}"
                )
                for rank in ranks:
                    record["comms"][rank] = new_comm
            record["event"].succeed()
        return record

    def node_flag_arrive(self, node_id: int, name: str, expected: int) -> None:
        """Counting flag: fires once ``expected`` ranks have arrived."""
        key = (node_id, name)
        count = self._flag_counts.get(key, 0) + 1
        self._flag_counts[key] = count
        if count == expected:
            self.node_flag(node_id, name).succeed(self.env.now)
        elif count > expected:  # pragma: no cover - defensive
            raise RuntimeError(f"flag {key} over-arrived")

    # -- execution ----------------------------------------------------------------
    @property
    def launched(self) -> bool:
        """True once :meth:`launch` (or :meth:`run`) queued the ranks."""
        return self._ran

    def launch(self, program: RankProgram, *args: Any, **kwargs: Any) -> "MpiJob":
        """Queue ``program`` on every rank without driving the simulation.

        The multi-job half of :meth:`run`: several jobs sharing one
        :class:`~repro.sim.session.SimSession` each ``launch()``, then
        :meth:`SimSession.run_jobs` drains the shared event queue once and
        :meth:`collect` builds each job's result.  Single-job callers keep
        using :meth:`run`, which composes the two around ``env.run()``.
        """
        if self._ran:
            raise RuntimeError("an MpiJob can only run once; build a new one")
        self._ran = True
        self._wall_start = time.perf_counter()
        self._events_before = self.env.events_processed
        self._finish_times = [0.0] * self.n_ranks
        self._returns: List[Any] = [None] * self.n_ranks
        arbiter = self.arbiter

        def wrapper(ctx: RankContext):
            ctx.core.set_activity(Activity.POLLING, self.env.now)
            value = yield from program(ctx, *args, **kwargs)
            ctx.core.set_activity(Activity.IDLE, self.env.now)
            self._finish_times[ctx.rank] = self.env.now
            self._returns[ctx.rank] = value
            if arbiter is not None:
                arbiter.rank_finished()

        for ctx in self.contexts:
            self.env.process(wrapper(ctx), name=f"rank{ctx.rank}")
        if arbiter is not None:
            arbiter.job_started(self)
        tracer = self.session.tracer
        if tracer.enabled:
            tracer.mark(
                self.env.now, "job.begin",
                ranks=self.n_ranks,
                node_offset=self.affinity.node_offset,
                nodes=self.affinity.n_nodes_used,
            )
        return self

    def collect(self) -> JobResult:
        """Build this job's :class:`JobResult` after the event queue drained.

        Requires the session to be settled
        (:meth:`~repro.sim.session.SimSession.finish_run`) so the
        accountant is finalized.  ``energy_j`` here is the *whole-system*
        total — :meth:`SimSession.run_jobs` overwrites it with the
        per-job attribution when several jobs share the session.
        """
        if not self.engine.quiescent():
            raise RuntimeError(
                "job finished with unmatched messages (deadlock or missing recv)"
            )
        end = max(self._finish_times) if self._finish_times else self.env.now
        self.stats.wall_time_s = time.perf_counter() - self._wall_start
        self.stats.events_processed = (
            self.env.events_processed - self._events_before
        )
        self.stats.rerate_calls = self.net.fabric.rerate_calls
        self.stats.flows_rerated = self.net.fabric.flows_rerated
        result = JobResult(
            duration_s=end,
            rank_finish_times=self._finish_times,
            returns=self._returns,
            energy_j=self.accountant.total_energy_j(),
            accountant=self.accountant,
            stats=self.stats,
            job=self,
        )
        for observer in JOB_OBSERVERS:
            observer(self, result)
        return result

    def run(self, program: RankProgram, *args: Any, **kwargs: Any) -> JobResult:
        """Run ``program`` on every rank and account time + energy."""
        self.launch(program, *args, **kwargs)
        self.env.run()
        end = max(self._finish_times) if self._finish_times else self.env.now
        self.session.finish_run(end)
        return self.collect()


def run_collective_once(
    op: str,
    nbytes: int,
    n_ranks: int = 64,
    **job_kwargs: Any,
) -> JobResult:
    """Convenience: run a single collective of ``nbytes`` across ``n_ranks``.

    ``op`` is any collective name on :class:`RankContext` (e.g. "alltoall",
    "bcast").  Used heavily by tests and benchmarks.
    """
    job = MpiJob(n_ranks, **job_kwargs)

    def program(ctx: RankContext):
        yield from getattr(ctx, op)(nbytes)

    return job.run(program)
