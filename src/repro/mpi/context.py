"""Per-rank programming interface.

A rank program is a generator function ``def program(ctx, ...)`` that
``yield from``-s the context's operations::

    def program(ctx):
        yield from ctx.compute(1e-3)              # 1 ms of work at fmax
        yield from ctx.alltoall(1 << 20)          # collective on COMM_WORLD
        yield from ctx.send(dst=1, nbytes=4096)   # p2p

Power-management operations (``scale_frequency`` / ``throttle``) mirror
what the paper's MVAPICH2 modifications do around and inside collectives.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..cluster.cpu import Activity
from ..sim import Event
from .communicator import Communicator
from .p2p import ANY_SOURCE, ANY_TAG, ProgressMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .job import MpiJob


class RankContext:
    """Everything one MPI rank can see and do."""

    def __init__(self, job: "MpiJob", rank: int):
        self.job = job
        self.rank = rank
        self.env = job.env
        self.core = job.affinity.core_of(rank)
        self.socket = job.affinity.socket_of(rank)
        self.node_id = job.affinity.node_of(rank)
        self._coll_seq: dict = {}

    # -- group facts ---------------------------------------------------------
    @property
    def size(self) -> int:
        return self.job.n_ranks

    @property
    def world(self) -> Communicator:
        return self.job.layout.world

    @property
    def shared_comm(self) -> Communicator:
        """This node's shared-memory communicator (Fig 1)."""
        return self.job.layout.shared[self.node_id]

    @property
    def leader_comm(self) -> Communicator:
        return self.job.layout.leaders

    @property
    def affinity(self):
        return self.job.affinity

    @property
    def spec(self):
        return self.job.net.spec

    def is_node_leader(self) -> bool:
        return self.job.affinity.is_leader(self.rank)

    def next_seq(self, comm: Communicator) -> int:
        """Per-communicator collective sequence number (SPMD programs call
        collectives in the same order, so counters agree across ranks).
        Used to keep the tag spaces of successive collectives disjoint."""
        seq = self._coll_seq.get(comm.comm_id, 0)
        self._coll_seq[comm.comm_id] = seq + 1
        return seq

    def now(self) -> float:
        return self.env.now

    # -- internal helpers ----------------------------------------------------
    def _overhead(self, seconds_at_peak: float):
        """CPU cost scaled by the core's current speed factor."""
        if seconds_at_peak > 0:
            yield self.env.timeout(self.core.cpu_time(seconds_at_peak))

    def _wait(self, event: Event):
        """Wait for ``event`` honouring the progress mode.

        Polling: spin (core stays busy).  Blocking: spin for the spin
        window, then sleep (core → BLOCKED) and pay interrupt + re-schedule
        latency on wake-up.

        When a governor is installed this is its sensing/actuation point:
        wait begin arms the countdown, wait end measures the slack and, if
        the core was dropped mid-wait, pays the restore transition before
        the program continues (mirroring how the static schemes charge
        Odvfs/Othrottle).
        """
        governor = self.job.governor
        if governor is not None:
            governor.wait_begin(self)
        arbiter = self.job.arbiter
        wait_start = self.env.now if arbiter is not None else 0.0
        if self.job.progress is ProgressMode.POLLING:
            value = yield event
        else:
            spec = self.spec
            spin = self.env.timeout(spec.spin_window)
            yield self.env.any_of([event, spin])
            if event.triggered:
                value = event.value
            else:
                self.core.set_activity(Activity.BLOCKED, self.env.now)
                value = yield event
                self.core.set_activity(Activity.POLLING, self.env.now)
                yield self.env.timeout(
                    spec.interrupt_latency + spec.resched_latency
                )
        if arbiter is not None:
            # The redistribute policy's slack signal: how long this core
            # sat in MPI waits (communication-bound nodes donate budget).
            arbiter.record_wait(self.core.core_id, self.env.now - wait_start)
        if governor is not None:
            penalty = governor.wait_end(self)
            if penalty > 0.0:
                yield self.env.timeout(penalty)
                governor.wait_restored(self)
        return value

    def _governed(self, op: str, nbytes: int, inner):
        """Run ``inner`` (an operation generator) between governor
        entry/exit notifications; transparent when no governor is
        installed.  The governor tracks call nesting itself, so the
        p2p issued *inside* a wrapped collective stays subordinate."""
        governor = self.job.governor
        if governor is None:
            value = yield from inner
            return value
        yield from governor.call_begin(self, op, nbytes)
        value = yield from inner
        yield from governor.call_end(self, op, nbytes)
        return value

    # -- point-to-point ---------------------------------------------------------
    def isend(
        self,
        dst: int,
        nbytes: int,
        tag: int = 0,
        comm: Optional[Communicator] = None,
    ):
        """Start a send; returns the request event (pays the CPU overhead)."""
        comm = comm or self.world
        yield from self._overhead(self.spec.o_send)
        dst_world = comm.world_rank(dst)
        return self.job.engine.post_send(self.rank, dst_world, nbytes, tag, comm)

    def irecv(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Optional[Communicator] = None,
    ):
        """Post a receive; returns the request event."""
        comm = comm or self.world
        yield from self._overhead(self.spec.o_recv)
        src_world = src if src == ANY_SOURCE else comm.world_rank(src)
        return self.job.engine.post_recv(self.rank, src_world, tag, comm)

    def send(self, dst, nbytes, tag=0, comm=None):
        """Blocking send: returns when the message engine releases the sender
        (immediately for eager, at transfer completion for rendezvous)."""

        def inner():
            req = yield from self.isend(dst, nbytes, tag, comm)
            value = yield from self._wait(req)
            return value

        return (yield from self._governed("send", nbytes, inner()))

    def recv(self, src=ANY_SOURCE, tag=ANY_TAG, comm=None):
        """Blocking receive; returns (src_world, tag, nbytes)."""

        def inner():
            req = yield from self.irecv(src, tag, comm)
            value = yield from self._wait(req)
            return value

        return (yield from self._governed("recv", 0, inner()))

    def waitall(self, requests):
        """Wait for every request in ``requests``; returns their values."""
        yield from self._wait(self.env.all_of(list(requests)))
        return [req.value for req in requests]

    def waitany(self, requests):
        """Wait until at least one request completes; returns the index and
        value of the first completed request (by list order)."""
        requests = list(requests)
        if not requests:
            raise ValueError("waitany needs at least one request")
        yield from self._wait(self.env.any_of(requests))
        for i, req in enumerate(requests):
            if req.triggered:
                return i, req.value
        raise AssertionError("any_of fired with no triggered request")

    def sendrecv(self, dst, nbytes, src=None, tag=0, comm=None, recv_tag=None):
        """Simultaneous exchange (the workhorse of pairwise alltoall)."""
        comm = comm or self.world
        src = dst if src is None else src
        recv_tag = tag if recv_tag is None else recv_tag

        def inner():
            sreq = yield from self.isend(dst, nbytes, tag, comm)
            rreq = yield from self.irecv(src, recv_tag, comm)
            yield from self._wait(self.env.all_of([sreq, rreq]))
            return rreq.value

        return (yield from self._governed("sendrecv", nbytes, inner()))

    # -- computation ---------------------------------------------------------------
    def compute(self, seconds_at_peak: float):
        """Run application computation costing ``seconds_at_peak`` at fmax/T0;
        slower under DVFS/throttling (and under injected stragglers/OS
        noise when a fault plan is active)."""
        if seconds_at_peak < 0:
            raise ValueError("compute time must be >= 0")
        if seconds_at_peak == 0:
            return
        faults = self.job.faults
        if faults is not None:
            seconds_at_peak = faults.perturb_compute(self.core, seconds_at_peak)
        self.core.set_activity(Activity.COMPUTE, self.env.now)
        yield self.env.timeout(self.core.cpu_time(seconds_at_peak))
        self.core.set_activity(Activity.POLLING, self.env.now)

    def idle(self, seconds: float):
        """Park the core (used by failure-injection and app tests)."""
        self.core.set_activity(Activity.IDLE, self.env.now)
        yield self.env.timeout(seconds)
        self.core.set_activity(Activity.POLLING, self.env.now)

    # -- power management ----------------------------------------------------------
    def scale_frequency(self, freq_ghz: float, charge: bool = True):
        """DVFS this rank's core (pays ``Odvfs`` unless ``charge=False``)."""
        if charge:
            faults = self.job.faults
            yield self.env.timeout(
                self.core.spec.dvfs_latency_s if faults is None
                else faults.dvfs_latency_s(self.core)
            )
        self.core.set_frequency(freq_ghz, self.env.now)
        self.job.net.dvfs_changed(self.core.node_id)
        self.job.stats.dvfs_transitions += 1

    def throttle(self, level: int, charge: bool = True):
        """Throttle this rank's core at the architecture's granularity
        (socket-wide on the paper's Nehalem; pays ``Othrottle``).

        A no-op (already at ``level``) costs nothing — callers may safely
        re-assert the state they need.
        """
        if self.core.tstate == level:
            return
        if charge:
            faults = self.job.faults
            yield self.env.timeout(
                self.core.spec.throttle_latency_s if faults is None
                else faults.throttle_latency_s(self.core)
            )
        self.job.cluster.throttle_domain.apply(
            self.core, self.socket, level, self.env.now
        )
        self.job.stats.throttle_transitions += 1

    # -- node-local coordination -----------------------------------------------------
    def notify(self, name: str) -> None:
        """Fire the node-local flag ``name`` (a shared-memory word write)."""
        self.job.node_flag(self.node_id, name).succeed(self.env.now)

    def arrive(self, name: str, expected: int) -> None:
        """Counting variant of :meth:`notify`: the flag fires once
        ``expected`` ranks of this node have arrived."""
        self.job.node_flag_arrive(self.node_id, name, expected)

    def flag(self, name: str) -> Event:
        """The node-local flag event (yield it to wait; idempotent lookup)."""
        return self.job.node_flag(self.node_id, name)

    # -- communicator management -------------------------------------------------------
    def comm_split(self, color, key=None, comm: Optional[Communicator] = None):
        """MPI_Comm_split: partition ``comm`` by ``color``; within each new
        communicator ranks are ordered by (key, old rank).

        ``color=None`` (MPI_UNDEFINED) returns ``None`` for this rank.
        Costs one barrier on ``comm`` (the color allgather).
        """
        comm = comm or self.world
        # The color exchange costs a small collective.
        yield from self.barrier(comm)
        key = comm.rank_of(self.rank) if key is None else key
        seq = self.next_seq(comm)
        result = self.job.register_split(comm, seq, self.rank, color, key)
        yield result["event"]
        return result["comms"].get(self.rank)

    # -- collectives (dispatched through the registry) ---------------------------------
    def alltoall(self, nbytes: int, comm: Optional[Communicator] = None):
        """MPI_Alltoall with per-peer message size ``nbytes``."""
        yield from self._governed(
            "alltoall", nbytes,
            self.job.collectives.alltoall(self, nbytes, comm or self.world),
        )

    def alltoallv(self, send_counts, comm: Optional[Communicator] = None):
        """MPI_Alltoallv: ``send_counts[d]`` bytes to each peer d."""
        peak = max(send_counts) if send_counts else 0
        yield from self._governed(
            "alltoallv", peak,
            self.job.collectives.alltoallv(self, send_counts, comm or self.world),
        )

    def bcast(self, nbytes: int, root: int = 0, comm: Optional[Communicator] = None):
        yield from self._governed(
            "bcast", nbytes,
            self.job.collectives.bcast(self, nbytes, root, comm or self.world),
        )

    def reduce(self, nbytes: int, root: int = 0, comm: Optional[Communicator] = None):
        yield from self._governed(
            "reduce", nbytes,
            self.job.collectives.reduce(self, nbytes, root, comm or self.world),
        )

    def allreduce(self, nbytes: int, comm: Optional[Communicator] = None):
        yield from self._governed(
            "allreduce", nbytes,
            self.job.collectives.allreduce(self, nbytes, comm or self.world),
        )

    def allgather(self, nbytes: int, comm: Optional[Communicator] = None):
        yield from self._governed(
            "allgather", nbytes,
            self.job.collectives.allgather(self, nbytes, comm or self.world),
        )

    def scatter(self, nbytes: int, root: int = 0, comm: Optional[Communicator] = None):
        yield from self._governed(
            "scatter", nbytes,
            self.job.collectives.scatter(self, nbytes, root, comm or self.world),
        )

    def gather(self, nbytes: int, root: int = 0, comm: Optional[Communicator] = None):
        yield from self._governed(
            "gather", nbytes,
            self.job.collectives.gather(self, nbytes, root, comm or self.world),
        )

    def reduce_scatter(self, nbytes: int, comm: Optional[Communicator] = None):
        """MPI_Reduce_scatter_block: each rank ends with an ``nbytes``
        block of the reduction."""
        yield from self._governed(
            "reduce_scatter", nbytes,
            self.job.collectives.reduce_scatter(self, nbytes, comm or self.world),
        )

    def scan(self, nbytes: int, comm: Optional[Communicator] = None):
        """MPI_Scan (inclusive prefix reduction)."""
        yield from self._governed(
            "scan", nbytes,
            self.job.collectives.scan(self, nbytes, comm or self.world),
        )

    def barrier(self, comm: Optional[Communicator] = None):
        yield from self._governed(
            "barrier", 0, self.job.collectives.barrier(self, comm or self.world)
        )
