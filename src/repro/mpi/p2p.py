"""Point-to-point messaging: matching, eager/rendezvous protocols, timing.

The engine reproduces MVAPICH2's two-protocol design:

* **eager** (≤ ``eager_threshold``): the sender fires and forgets; the
  payload travels immediately and is queued as *unexpected* if no receive
  is posted yet.
* **rendezvous** (large): sender and receiver must both arrive; an RTS/CTS
  round-trip precedes the bulk transfer, and both sides complete when the
  RDMA transfer does.

Intra-node messages use the shared-memory channel in polling mode; in
blocking mode they fall back to the HCA loopback (paper §II-B: blocking
mode "falls back to the network loop-back based communication instead of
using the shared-memory channels").
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from ..cluster.affinity import AffinityMap
from ..network.ibnet import IBNetwork
from ..sim import Environment, Event
from .communicator import Communicator

ANY_SOURCE = -1
ANY_TAG = -1


class ProgressMode(enum.Enum):
    """Message progression strategy (§II-B)."""

    POLLING = "polling"
    BLOCKING = "blocking"


class _Send:
    __slots__ = ("src", "dst", "tag", "comm_id", "nbytes", "posted_at", "done")

    def __init__(self, src, dst, tag, comm_id, nbytes, posted_at, done):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.comm_id = comm_id
        self.nbytes = nbytes
        self.posted_at = posted_at
        self.done = done


class _Recv:
    __slots__ = ("src", "dst", "tag", "comm_id", "posted_at", "done")

    def __init__(self, src, dst, tag, comm_id, posted_at, done):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.comm_id = comm_id
        self.posted_at = posted_at
        self.done = done

    def matches(self, src: int, tag: int) -> bool:
        return (self.src in (ANY_SOURCE, src)) and (self.tag in (ANY_TAG, tag))


class MessageEngine:
    """Per-job matching engine and transfer scheduler."""

    def __init__(
        self,
        env: Environment,
        net: IBNetwork,
        affinity: AffinityMap,
        progress: ProgressMode = ProgressMode.POLLING,
        governor=None,
    ):
        self.env = env
        self.net = net
        self.spec = net.spec
        self.affinity = affinity
        self.progress = progress
        #: Optional online power governor (repro.runtime): notified right
        #: before a transfer samples its endpoints' CPU feed rates, so a
        #: countdown-dropped endpoint can be woken (RDMA needs its feed
        #: path) instead of crippling the flow for its whole lifetime.
        self.governor = governor
        # Keyed by (comm_id, dst_world_rank).
        self._posted_recvs: Dict[Tuple[int, int], List[_Recv]] = {}
        self._unexpected: Dict[Tuple[int, int], List[_Send]] = {}
        self._pending_rndv: Dict[Tuple[int, int], List[_Send]] = {}
        #: Message counter for observability/tests.
        self.messages_sent = 0

    # -- public API ----------------------------------------------------------
    def post_send(
        self, src: int, dst: int, nbytes: int, tag: int, comm: Communicator
    ) -> Event:
        """Register a send; returns the sender-completion event."""
        if not comm.contains(src) or not comm.contains(dst):
            raise ValueError(f"ranks {src}->{dst} not both in {comm.name}")
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if tag < 0:
            raise ValueError("send tag must be >= 0")
        done = self.env.event()
        send = _Send(src, dst, tag, comm.comm_id, nbytes, self.env.now, done)
        self.messages_sent += 1
        if nbytes <= self.spec.eager_threshold:
            # Eager: sender completes immediately; payload travels now.
            done.succeed(self.env.now)
            self.env.process(self._deliver_eager(send), name=f"eager{src}->{dst}")
        else:
            recv = self._match_posted_recv(send)
            if recv is not None:
                self.env.process(
                    self._rendezvous(send, recv), name=f"rndv{src}->{dst}"
                )
            else:
                key = (send.comm_id, send.dst)
                self._pending_rndv.setdefault(key, []).append(send)
        return done

    def post_recv(
        self, dst: int, src: int, tag: int, comm: Communicator
    ) -> Event:
        """Register a receive; the event fires with (src, tag, nbytes)."""
        if not comm.contains(dst):
            raise ValueError(f"rank {dst} not in {comm.name}")
        if src != ANY_SOURCE and not comm.contains(src):
            raise ValueError(f"source {src} not in {comm.name}")
        done = self.env.event()
        recv = _Recv(src, dst, tag, comm.comm_id, self.env.now, done)
        key = (comm.comm_id, dst)
        # 1. Already-arrived eager message?
        arrived = self._unexpected.get(key, [])
        for i, send in enumerate(arrived):
            if recv.matches(send.src, send.tag):
                arrived.pop(i)
                self._complete_recv(recv, send)
                return done
        # 2. Waiting rendezvous sender?
        rndv = self._pending_rndv.get(key, [])
        for i, send in enumerate(rndv):
            if recv.matches(send.src, send.tag):
                rndv.pop(i)
                self.env.process(
                    self._rendezvous(send, recv), name=f"rndv{send.src}->{dst}"
                )
                return done
        # 3. Park.
        self._posted_recvs.setdefault(key, []).append(recv)
        return done

    # -- matching helpers ------------------------------------------------------
    def _match_posted_recv(self, send: _Send) -> Optional[_Recv]:
        key = (send.comm_id, send.dst)
        posted = self._posted_recvs.get(key, [])
        for i, recv in enumerate(posted):
            if recv.matches(send.src, send.tag):
                return posted.pop(i)
        return None

    def _complete_recv(self, recv: _Recv, send: _Send) -> None:
        recv.done.succeed((send.src, send.tag, send.nbytes))

    # -- timing ------------------------------------------------------------------
    def _path_params(self, send: _Send):
        """Resolve (latency, links, cpu_cap) for a message."""
        src_node = self.affinity.node_of(send.src)
        dst_node = self.affinity.node_of(send.dst)
        src_core = self.affinity.core_of(send.src)
        dst_core = self.affinity.core_of(send.dst)
        pair_speed = min(src_core.speed_factor, dst_core.speed_factor)
        if src_node == dst_node and self.progress is ProgressMode.POLLING:
            latency = self.spec.shm_latency
            links = [self.net.mem(src_node)]
            fmax = src_core.spec.fmax
            copy_factor = min(
                self.spec.shm_copy_factor(c.frequency_ghz / fmax, c.duty)
                for c in (src_core, dst_core)
            )
            # Cross-socket pairs pay the QPI hop (Nehalem NUMA).
            pair_bw = (
                self.spec.shm_bw
                if src_core.socket_id == dst_core.socket_id
                else self.spec.shm_bw_cross_socket
            )
            cap = pair_bw * copy_factor
        elif src_node == dst_node:
            # Blocking mode: HCA loopback.
            latency = self.spec.inter_node_latency
            links = self.net.loopback_path(src_node)
            cap = self.spec.cpu_feed_bw * pair_speed
        else:
            latency = self.spec.inter_node_latency
            links = self.net.inter_node_path(src_node, dst_node)
            cap = self.spec.cpu_feed_bw * pair_speed
        return latency, links, cap

    def _wake_endpoints(self, send: _Send):
        """Give the governor a chance to restore dropped endpoint cores
        before ``_path_params`` samples their feed rates; yields the
        transition time the transfer absorbs (usually none)."""
        delay = self.governor.transfer_starting(
            self.affinity.core_of(send.src), self.affinity.core_of(send.dst)
        )
        if delay > 0.0:
            yield self.env.timeout(delay)

    def _deliver_eager(self, send: _Send):
        if self.governor is not None:
            yield from self._wake_endpoints(send)
        latency, links, cap = self._path_params(send)
        yield self.env.timeout(latency)
        if send.nbytes > 0:
            yield self.net.fabric.transfer(
                links, send.nbytes, cpu_cap=cap, label=f"e{send.src}->{send.dst}"
            )
        recv = self._match_posted_recv(send)
        if recv is not None:
            self._complete_recv(recv, send)
        else:
            key = (send.comm_id, send.dst)
            self._unexpected.setdefault(key, []).append(send)

    def _rendezvous(self, send: _Send, recv: _Recv):
        if self.governor is not None:
            yield from self._wake_endpoints(send)
        latency, links, cap = self._path_params(send)
        # RTS/CTS handshake round-trip before the bulk transfer.
        yield self.env.timeout(latency * self.spec.rndv_rtt_factor)
        yield self.net.fabric.transfer(
            links, send.nbytes, cpu_cap=cap, label=f"r{send.src}->{send.dst}"
        )
        send.done.succeed(self.env.now)
        self._complete_recv(recv, send)

    # -- introspection -------------------------------------------------------------
    def quiescent(self) -> bool:
        """True when no unmatched sends or receives remain (end-of-job check)."""
        return (
            all(not v for v in self._posted_recvs.values())
            and all(not v for v in self._unexpected.values())
            and all(not v for v in self._pending_rndv.values())
        )
