"""Simulated MPI: communicators, point-to-point engine, rank programs."""

from .communicator import CommLayout, Communicator, CommunicatorFactory
from .context import RankContext
from .job import JobResult, JobStats, MpiJob, run_collective_once
from .p2p import ANY_SOURCE, ANY_TAG, MessageEngine, ProgressMode

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CommLayout",
    "Communicator",
    "CommunicatorFactory",
    "JobResult",
    "JobStats",
    "MessageEngine",
    "MpiJob",
    "ProgressMode",
    "RankContext",
    "run_collective_once",
]
