"""Content-addressed on-disk cache for sweep-cell results.

A cell's cache key is a sha256 over the canonical JSON of

* the cell's *content* spec (kind + params — NOT the experiment name, so
  experiments sharing identical cells share entries: fig9 and table1
  re-use the same 18 application runs, fig7a and the governor extension
  share their ungoverned baselines), and
* an *environment signature*: the paper-testbed defaults every cell
  implicitly closes over (cluster / network / power-model constants),
  the package version, and a cache-schema version.

Anything that could change a cell's simulated output must be inside one
of those two — that is the invariant that makes a hit trustworthy.
Bump :data:`CACHE_SCHEMA` whenever result semantics change without a
spec change (e.g. a bugfix in the fabric).

Entries are one JSON file each, sharded by the first two key hex digits
(``<dir>/ab/abcdef….json``) to keep directories small, written via a
temp file + :func:`os.replace` so concurrent writers and crashes can
never leave a half-written entry; corrupt or unreadable entries read as
misses.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from .cells import CellResult, SweepCell

_LOG = logging.getLogger("repro.runner")

__all__ = [
    "CACHE_SCHEMA",
    "ResultCache",
    "cache_key",
    "default_cache_dir",
    "environment_signature",
]

#: Bump when cell result semantics change without a spec change.
#: 2: exact-deadline ``call_at`` (re-armed fabric/governor timers no
#: longer drift an ulp) and coalesced θ-countdown timer groups can shift
#: governed timelines at same-timestamp ties.
#: 3: ``Governor.finish_run`` now charges the Odvfs/Othrottle restore
#: penalty for drops left over at end of run, changing the reported
#: ``penalty_s`` of governed cells without any spec change.
CACHE_SCHEMA = 3


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` > ``$XDG_CACHE_HOME/repro`` > ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


_ENV_SIGNATURE: Optional[Dict[str, Any]] = None


def environment_signature() -> Dict[str, Any]:
    """The implicit inputs of every cell: testbed/calibration defaults.

    Cells only record *deviations* from the defaults (a cell sweeping
    sizes carries no cluster dict at all), so the defaults themselves
    must be in the key — recalibrating the paper testbed invalidates
    every entry, as it should.
    """
    global _ENV_SIGNATURE
    if _ENV_SIGNATURE is None:
        from .. import __version__
        from ..cluster.specs import ClusterSpec
        from ..network.params import NetworkSpec
        from ..power.model import PowerModelParams

        _ENV_SIGNATURE = {
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "cluster": ClusterSpec.paper_testbed().to_dict(),
            "network": NetworkSpec().to_dict(),
            "power": PowerModelParams().to_dict(),
        }
    return _ENV_SIGNATURE


def _canonical(data: Any) -> str:
    # sort_keys + fixed separators => byte-stable across processes/runs.
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def cache_key(cell: SweepCell, capture: Optional[Any] = None) -> str:
    """Stable content address of ``cell`` (64 hex chars).

    ``capture`` (a :class:`~repro.obs.capture.CaptureConfig`) joins the
    key only when truthy: a captured result carries an observability
    payload an uncaptured one lacks, so they must be distinct entries —
    but every pre-existing uncaptured key stays valid (no schema bump).
    """
    data: Dict[str, Any] = {"cell": cell.spec(), "env": environment_signature()}
    if capture:
        data["capture"] = capture.to_dict()
    payload = _canonical(data)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of content-addressed :class:`CellResult` entries."""

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: Failed :meth:`put` calls (read-only or full store).  Surfaced
        #: through :meth:`stats` into ``last_sweep.json`` / bench-report
        #: so a degraded store is visible, not silent.
        self.write_errors = 0
        self._warned_write_error = False

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def contains(self, key: str) -> bool:
        """Cheap *validity* probe (no JSON parse, no hit/miss accounting).

        A bare ``exists()`` would let a corrupt/truncated entry block the
        memo write-through forever (the entry exists, so it is never
        rewritten, and every cold process re-executes the cell).  Instead
        the probe checks the atomic-write envelope: the file is non-empty,
        starts with ``{`` and ends with ``}`` — anything torn mid-write or
        truncated by the filesystem fails this and reads as absent, so
        the write-through repairs it.  Full-parse corruption detection
        stays where it was: :meth:`get` treats unparsable entries as
        misses.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                if fh.read(1) != b"{":
                    return False
                size = fh.seek(0, os.SEEK_END)
                fh.seek(max(0, size - 8))
                tail = fh.read().rstrip()
            return tail.endswith(b"}")
        except OSError:
            return False

    def get(self, key: str) -> Optional[CellResult]:
        """Stored result for ``key``, or None (corrupt entries = miss)."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            result = CellResult.from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, cell: SweepCell, result: CellResult) -> None:
        """Store ``result`` atomically (last writer wins; all write the
        same simulated content, so the race is benign)."""
        path = self._path(key)
        entry = {
            "key": key,
            "experiment": cell.experiment,  # provenance only
            "label": cell.label,
            "spec": cell.spec(),
            "result": result.to_dict(),
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(entry, fh)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            # A read-only or full cache dir degrades to "no cache",
            # never to a failed sweep — but not *silently*: count it and
            # warn once per cache instance (≈ once per sweep).
            self.write_errors += 1
            if not self._warned_write_error:
                self._warned_write_error = True
                _LOG.warning(
                    "result cache at %s is not writable (%s); results "
                    "will not be memoized this sweep", self.root, exc
                )
            return
        self.writes += 1

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "write_errors": self.write_errors,
        }

    # -- maintenance (the `repro cache` CLI) --------------------------
    def iter_entries(self):
        """Yield ``(path, stat_result)`` for every entry file on disk.

        Orphaned temp files (a writer died between ``mkstemp`` and
        ``os.replace``) and entries that vanish mid-scan are skipped —
        the scan itself never throws on a live, concurrently-used cache.
        """
        try:
            shards = sorted(p for p in self.root.iterdir() if p.is_dir())
        except OSError:
            return
        for shard in shards:
            try:
                files = sorted(shard.iterdir())
            except OSError:
                continue
            for path in files:
                if path.suffix != ".json" or path.name.startswith(".tmp-"):
                    continue
                try:
                    yield path, path.stat()
                except OSError:
                    continue

    def disk_stats(self) -> Dict[str, Any]:
        """Scan the store: entry count, total bytes, per-experiment counts.

        Provenance (the owning experiment) is read from each entry body;
        corrupt entries are counted separately rather than failing the
        scan, mirroring the read path's corrupt-equals-miss stance.
        """
        entries = 0
        total_bytes = 0
        corrupt = 0
        by_experiment: Dict[str, int] = {}
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for path, st in self.iter_entries():
            entries += 1
            total_bytes += st.st_size
            oldest = st.st_mtime if oldest is None else min(oldest, st.st_mtime)
            newest = st.st_mtime if newest is None else max(newest, st.st_mtime)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    experiment = json.load(fh).get("experiment") or "(unknown)"
            except (OSError, ValueError):
                corrupt += 1
                experiment = "(corrupt)"
            by_experiment[experiment] = by_experiment.get(experiment, 0) + 1
        return {
            "root": str(self.root),
            "entries": entries,
            "total_bytes": total_bytes,
            "corrupt": corrupt,
            "by_experiment": by_experiment,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
            "writable": self.probe_writable(),
        }

    def probe_writable(self) -> bool:
        """Can this process write entries here?  (``repro cache stats``
        shows this so a read-only/full store — the condition
        :meth:`put` degrades on — is visible from the CLI.)"""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-probe-")
            os.close(fd)
            os.unlink(tmp)
            return True
        except OSError:
            return False

    def gc(
        self,
        max_age_s: Optional[float] = None,
        max_size_bytes: Optional[int] = None,
        dry_run: bool = False,
        now: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Evict entries: corrupt ones, then by age, then oldest-first
        until the store fits ``max_size_bytes``.

        Deletions are single ``unlink`` calls (atomic; a concurrent
        reader either sees the whole entry or a miss), vanished files
        are ignored, and orphaned ``.tmp-*`` files older than an hour
        are swept too.  ``dry_run`` reports what would go without
        touching anything.
        """
        import time as _time

        now = _time.time() if now is None else now
        removed = {"corrupt": 0, "expired": 0, "evicted": 0, "tmp": 0}
        freed = 0
        live: list = []  # (mtime, size, path)
        for path, st in self.iter_entries():
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    entry = json.load(fh)
                ok = isinstance(entry, dict) and "result" in entry
            except (OSError, ValueError):
                ok = False
            if not ok:
                if self._remove(path, dry_run):
                    removed["corrupt"] += 1
                    freed += st.st_size
                continue
            if max_age_s is not None and now - st.st_mtime > max_age_s:
                if self._remove(path, dry_run):
                    removed["expired"] += 1
                    freed += st.st_size
                continue
            live.append((st.st_mtime, st.st_size, path))
        if max_size_bytes is not None:
            total = sum(size for _mtime, size, _path in live)
            # Oldest-first eviction until the survivors fit the budget.
            for _mtime, size, path in sorted(live, key=lambda e: e[0]):
                if total <= max_size_bytes:
                    break
                if self._remove(path, dry_run):
                    removed["evicted"] += 1
                    freed += size
                    total -= size
        removed["tmp"] = self._sweep_tmp(now, dry_run)
        kept = len(live) - removed["evicted"]
        return {
            "removed": removed,
            "removed_total": sum(removed.values()),
            "freed_bytes": freed,
            "kept": kept,
            "dry_run": dry_run,
        }

    @staticmethod
    def _remove(path: Path, dry_run: bool) -> bool:
        if dry_run:
            return True
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    def _sweep_tmp(self, now: float, dry_run: bool, min_age_s: float = 3600.0) -> int:
        """Remove orphaned ``.tmp-*`` files old enough that no live
        writer can still own them."""
        swept = 0
        try:
            shards = [p for p in self.root.iterdir() if p.is_dir()]
        except OSError:
            return 0
        for shard in shards:
            try:
                candidates = list(shard.glob(".tmp-*"))
            except OSError:
                continue
            for path in candidates:
                try:
                    if now - path.stat().st_mtime < min_age_s:
                        continue
                except OSError:
                    continue
                if self._remove(path, dry_run):
                    swept += 1
        return swept
