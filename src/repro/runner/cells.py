"""Cell decomposition: one sweep point = one self-describing spec.

A :class:`SweepCell` carries only plain data (dicts, lists, numbers,
strings), so it pickles across a process boundary and hashes into a
stable cache key.  :func:`execute_cell` is the pure entry point: it
reconstitutes the full simulation substrate (via
:meth:`repro.sim.session.SimSession.from_spec`), runs the cell's
workload, and returns a :class:`CellResult` of plain data again.

Purity contract
---------------
``execute_cell`` must depend on nothing but the cell: no ambient
tracer/governor/fault scopes, no module-level mutable state, no clock.
Seeds (e.g. a fault plan's) live *inside* the cell spec, so a cell run
in a worker process is bit-identical to the same cell run inline — the
property the parallel executor and the result cache both rest on.
``execute_cell`` enforces this itself by shadowing the ambient
governor/fault scopes for the duration (``use_governor(None)`` /
``use_faults(None)``), so an inline cell under a CLI scope reconstructs
exactly what a worker reconstructs: from its params, or nothing.

Substrate cache
---------------
Parsing and validating the (cluster, network, power) spec triple is
identical for every cell of a sweep that shares a substrate, so a
process caches the parsed frozen spec dataclasses per canonical-JSON
signature (:data:`SUBSTRATE_COUNTERS` accounts hits/misses/rebuild
time).  Only the immutable *specs* are shared — every cell still gets a
fresh :class:`~repro.sim.session.SimSession`, which owns all mutable
simulation state, so purity is unaffected.  A warm pool worker
therefore rebuilds each unique substrate spec at most once per worker
lifetime.

Cell kinds
----------
``collective``
    ``iterations`` back-to-back collectives (the OSU loop of §VII-B),
    optionally preceded by ``compute_s`` of computation per iteration
    (the fault-study workload).
``alltoallv``
    One vector alltoall with the deterministic ±15 % skew of §VII-D.
``mixed``
    The mixed-size adaptive/governor workload: per size, one alltoall
    plus one 16×-smaller bcast.
``app``
    One application profile (CPMD/NAS) under a static scheme or an
    online governor policy.
``osu``
    One OSU microbenchmark point (latency / bw / bibw / collective).
``multijob``
    Several co-scheduled jobs on one shared fabric at disjoint node
    offsets, optionally under a cluster power-budget arbiter
    (:mod:`repro.runtime.arbiter`); reports makespan, per-job energy
    attribution, and the arbiter's telemetry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

__all__ = [
    "APP_SPECS",
    "CellResult",
    "SUBSTRATE_COUNTERS",
    "SweepCell",
    "clear_substrate_cache",
    "execute_cell",
]


def _plain(value: Any) -> Any:
    """Normalise to JSON-able plain data (tuples → lists, recursively),
    so equal cells serialise identically no matter how they were built."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cell params must be plain data, got {type(value)!r}")


@dataclass(frozen=True)
class SweepCell:
    """One independent simulation point of a sweep (picklable spec)."""

    #: Owning experiment (provenance/labels only — NOT part of the cache
    #: key, so experiments sharing identical cells share cache entries).
    experiment: str
    #: Workload dispatch: "collective" | "alltoallv" | "mixed" | "app" | "osu".
    kind: str
    #: Plain-data parameters of the workload (see the executors below).
    params: Mapping[str, Any]
    #: Human label for timing reports, e.g. "alltoall/1M/proposed".
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _EXECUTORS:
            raise ValueError(
                f"unknown cell kind {self.kind!r} "
                f"(choose from {', '.join(sorted(_EXECUTORS))})"
            )
        object.__setattr__(self, "params", _plain(dict(self.params)))

    def spec(self) -> Dict[str, Any]:
        """The content that identifies this cell (feeds the cache key)."""
        return {"kind": self.kind, "params": self.params}

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON form (content + provenance) — the wire format of
        the campaign shard protocol and of ``campaign.json`` manifests."""
        return {
            "experiment": self.experiment,
            "kind": self.kind,
            "params": self.params,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepCell":
        return cls(
            experiment=data["experiment"],
            kind=data["kind"],
            params=data["params"],
            label=data.get("label", ""),
        )


@dataclass
class CellResult:
    """Plain-data outcome of one executed cell (JSON round-trippable)."""

    #: Simulated quantities — identical wherever the cell runs.
    duration_s: float = 0.0
    energy_j: float = 0.0
    average_power_w: float = 0.0
    phase_times: Dict[str, float] = field(default_factory=dict)
    dvfs_transitions: int = 0
    throttle_transitions: int = 0
    #: Governor report counters (minus the bulky monitor), when governed.
    governor: Optional[Dict[str, Any]] = None
    #: Fault report fields, when the cell carried a fault plan.
    faults: Optional[Dict[str, Any]] = None
    #: Arbiter report counters, when the cell carried an arbiter config.
    arbiter: Optional[Dict[str, Any]] = None
    #: Application-level quantities (app cells only).
    app: Optional[Dict[str, Any]] = None
    #: Kind-specific extras: sampled power trace, uplink flow counts,
    #: scalar microbenchmark metrics.
    extra: Dict[str, Any] = field(default_factory=dict)
    #: Observability payload (``CellMetrics.to_dict()`` form) captured
    #: when the caller asked for it — trace records, metrics snapshot,
    #: profile samples.  Simulated content only (plus the original
    #: execution's wall clock in profile samples), so it round-trips
    #: the result cache like everything else.  None when not captured.
    metrics: Optional[Dict[str, Any]] = None
    #: Host wall-clock of the execution (NOT part of the simulated
    #: output; excluded from experiment rows, kept for timing stats).
    wall_time_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "duration_s": self.duration_s,
            "energy_j": self.energy_j,
            "average_power_w": self.average_power_w,
            "phase_times": self.phase_times,
            "dvfs_transitions": self.dvfs_transitions,
            "throttle_transitions": self.throttle_transitions,
            "governor": self.governor,
            "faults": self.faults,
            "arbiter": self.arbiter,
            "app": self.app,
            "extra": self.extra,
            "metrics": self.metrics,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellResult":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__ if k in data})


# ---------------------------------------------------------------------
# Substrate cache (per process; workers keep it warm across batches)
# ---------------------------------------------------------------------
#: Canonical-JSON (cluster, network, power) signature → parsed frozen
#: spec dataclasses, validated once.  Sessions are still built fresh per
#: cell — only the immutable specs are shared.
_SUBSTRATE_SPECS: Dict[str, tuple] = {}

#: Process-wide substrate-cache accounting.  The pool folds per-batch
#: deltas of these into :class:`~repro.runner.pool.SweepStats` and the
#: runner metrics registry (never the ambient ``--metrics`` registry —
#: hit counts vary across jobs/cache layers and would break replay
#: determinism).
SUBSTRATE_COUNTERS: Dict[str, float] = {
    "hits": 0,
    "misses": 0,
    "rebuild_s": 0.0,
}


def clear_substrate_cache() -> None:
    """Drop cached substrate specs and zero the counters (tests)."""
    _SUBSTRATE_SPECS.clear()
    SUBSTRATE_COUNTERS["hits"] = 0
    SUBSTRATE_COUNTERS["misses"] = 0
    SUBSTRATE_COUNTERS["rebuild_s"] = 0.0


def _substrate_specs(params: Mapping) -> tuple:
    """Parsed ``(cluster_spec, network_spec, power_params)`` for a cell,
    served from the per-process cache keyed by spec signature."""
    import json

    signature = json.dumps(
        {
            "cluster": params.get("cluster"),
            "network": params.get("network"),
            "power": params.get("power"),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    cached = _SUBSTRATE_SPECS.get(signature)
    if cached is not None:
        SUBSTRATE_COUNTERS["hits"] += 1
        return cached
    t0 = time.perf_counter()
    from ..cluster.specs import ClusterSpec
    from ..network.params import NetworkSpec
    from ..power.model import PowerModelParams
    from ..sim.session import SessionConfigError, check_session_specs

    cluster = (
        ClusterSpec.from_dict(params["cluster"])
        if params.get("cluster") is not None
        else ClusterSpec.paper_testbed()
    )
    network = (
        NetworkSpec.from_dict(params["network"])
        if params.get("network") is not None
        else NetworkSpec()
    )
    power = (
        PowerModelParams.from_dict(params["power"])
        if params.get("power") is not None
        else None
    )
    # Validate once per signature; sessions then skip re-validation.
    problems = check_session_specs(cluster, network)
    if problems:
        raise SessionConfigError(
            "inconsistent session specs:\n  - " + "\n  - ".join(problems)
        )
    cached = (cluster, network, power)
    _SUBSTRATE_SPECS[signature] = cached
    SUBSTRATE_COUNTERS["misses"] += 1
    SUBSTRATE_COUNTERS["rebuild_s"] += time.perf_counter() - t0
    return cached


# ---------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------
def _cell_governor(params: Mapping):
    """A fresh in-worker Governor from a cell's plain-data config."""
    if params.get("governor") is None:
        return None
    from ..runtime.governor import Governor, GovernorConfig

    return Governor(GovernorConfig.from_dict(params["governor"]))


def _cell_faults(params: Mapping):
    """A fresh in-worker FaultPlan from a cell's plain-data spec."""
    if params.get("faults") is None:
        return None
    from ..faults.plan import FaultPlan

    return FaultPlan.from_dict(params["faults"])


def _cell_arbiter(params: Mapping):
    """A fresh in-worker PowerArbiter from a cell's plain-data config."""
    if params.get("arbiter") is None:
        return None
    from ..runtime.arbiter import ArbiterConfig, PowerArbiter

    return PowerArbiter(ArbiterConfig.from_dict(params["arbiter"]))


def _session_from_params(params: Mapping, keep_segments: bool):
    from ..sim.session import SimSession

    cluster, network, power = _substrate_specs(params)
    return SimSession(
        cluster_spec=cluster,
        network_spec=network,
        power_params=power,
        keep_segments=keep_segments,
        validate=False,  # validated once per signature in _substrate_specs
        governor=_cell_governor(params),
        faults=_cell_faults(params),
        arbiter=_cell_arbiter(params),
    )


def _engine(mode: str):
    from ..collectives.registry import CollectiveConfig, CollectiveEngine, PowerMode

    return CollectiveEngine(CollectiveConfig(power_mode=PowerMode(mode)))


def _harvest_reports(cell: CellResult, session) -> None:
    """Seal the session's governor/fault reports into the result as
    plain dicts (the monitor detail is bulky and dropped)."""
    if session.governor is not None:
        report = session.governor.report().to_dict()
        report.pop("monitor", None)
        cell.governor = report
    if session.faults is not None:
        from dataclasses import asdict

        cell.faults = asdict(session.faults.report())
    if session.arbiter is not None:
        cell.arbiter = session.arbiter.report().to_dict()


def _seal(job, result, session, params: Mapping) -> CellResult:
    """Common harvest: simulated scalars + per-run reports + extras."""
    cell = CellResult(
        duration_s=result.duration_s,
        energy_j=result.energy_j,
        average_power_w=result.average_power_w,
        phase_times=dict(result.stats.phase_times),
        dvfs_transitions=result.stats.dvfs_transitions,
        throttle_transitions=result.stats.throttle_transitions,
    )
    _harvest_reports(cell, session)
    interval = params.get("power_trace_interval_s")
    if interval is not None:
        from ..power.meter import PowerMeter

        trace = PowerMeter(interval).sample(result.accountant)
        cell.extra["power_trace"] = {
            "times_s": list(trace.times_s),
            "power_kw": list(trace.power_kw),
            "mean_power_w": trace.mean_power_w(),
        }
    prefix = params.get("link_flow_prefix")
    if prefix is not None:
        cell.extra["link_flows"] = sum(
            n for name, n in job.net.fabric.link_flows.items()
            if name.startswith(prefix)
        )
    return cell


def _run_job(params: Mapping, program, keep_segments: bool) -> CellResult:
    from ..mpi.job import MpiJob
    from ..mpi.p2p import ProgressMode

    session = _session_from_params(params, keep_segments)
    job = MpiJob(
        int(params["n_ranks"]),
        session=session,
        collectives=_engine(params.get("mode", "none")),
        progress=ProgressMode(params.get("progress", "polling")),
    )
    result = job.run(program)
    return _seal(job, result, session, params)


def _execute_collective(params: Mapping) -> CellResult:
    op = params["op"]
    nbytes = int(params["nbytes"])
    iterations = int(params.get("iterations", 1))
    compute_s = params.get("compute_s")

    def program(ctx):
        for _ in range(iterations):
            if compute_s is not None:
                yield from ctx.compute(compute_s)
            yield from getattr(ctx, op)(nbytes)

    return _run_job(params, program, bool(params.get("keep_segments", False)))


def _execute_alltoallv(params: Mapping) -> CellResult:
    nbytes = int(params["nbytes"])

    def program(ctx):
        # §VII-D: deterministically skewed per-peer counts (±15 % around
        # the mean) so the vector path is genuinely exercised.
        counts = [
            max(0, int(nbytes * (1 + 0.15 * (((ctx.rank + d) % 7 - 3) / 3))))
            for d in range(ctx.size)
        ]
        yield from ctx.alltoallv(counts)

    return _run_job(params, program, bool(params.get("keep_segments", False)))


def _execute_mixed(params: Mapping) -> CellResult:
    sizes = [int(n) for n in params["sizes"]]

    def program(ctx):
        for nbytes in sizes:
            yield from ctx.alltoall(nbytes)
            # Short broadcasts: engaging power here costs more than it
            # saves — the case that separates ADAPTIVE from PROPOSED.
            yield from ctx.bcast(nbytes // 16)

    return _run_job(params, program, bool(params.get("keep_segments", False)))


def _execute_app(params: Mapping) -> CellResult:
    from ..apps import run_app
    from ..collectives.registry import PowerMode

    app = APP_SPECS[params["app"]]
    app_result = run_app(
        app,
        int(params["ranks"]),
        PowerMode(params.get("mode", "none")),
        governor=_cell_governor(params),
        faults=_cell_faults(params),
    )
    result = app_result.sim
    cell = CellResult(
        duration_s=result.duration_s,
        energy_j=result.energy_j,
        average_power_w=result.average_power_w,
        phase_times=dict(result.stats.phase_times),
        dvfs_transitions=result.stats.dvfs_transitions,
        throttle_transitions=result.stats.throttle_transitions,
        app={
            "name": app_result.app,
            "total_time_s": app_result.total_time_s,
            "alltoall_time_s": app_result.alltoall_time_s,
            "alltoall_fraction": app_result.alltoall_fraction,
            "energy_kj": app_result.energy_kj,
        },
    )
    _harvest_reports(cell, result.job.session)
    return cell


def _execute_osu(params: Mapping) -> CellResult:
    from ..collectives.registry import PowerMode
    from ..microbench import osu
    from ..mpi.p2p import ProgressMode

    bench = params["bench"]
    nbytes = int(params["nbytes"])
    progress = (
        ProgressMode.BLOCKING if params.get("blocking") else ProgressMode.POLLING
    )
    inter_node = not params.get("intra_node", False)
    # Build the session here (not inside the benchmark's MpiJob) so a
    # governed/faulted osu cell reconstructs its instrumentation from
    # its own params, exactly like every other cell kind.
    session = _session_from_params(params, keep_segments=False)
    if bench == "latency":
        metric = osu.osu_latency(
            nbytes, inter_node=inter_node, progress=progress, session=session
        )
        unit = "s"
    elif bench in ("bw", "bibw"):
        fn = osu.osu_bw if bench == "bw" else osu.osu_bibw
        metric = fn(nbytes, inter_node=inter_node, session=session)
        unit = "B/s"
    else:
        metric = osu.osu_collective_latency(
            bench,
            nbytes,
            n_ranks=int(params.get("n_ranks", 64)),
            mode=PowerMode(params.get("mode", "none")),
            progress=progress,
            iterations=3,
            warmup=1,
            session=session,
        )
        unit = "s"
    cell = CellResult(extra={"metric": metric, "unit": unit})
    _harvest_reports(cell, session)
    return cell


def _job_program(jp: Mapping):
    """The per-rank program of one co-scheduled job (collective-cell
    shape: optional compute, then ``iterations`` collectives)."""
    op = jp.get("op", "alltoall")
    nbytes = int(jp.get("nbytes", 0))
    iterations = int(jp.get("iterations", 1))
    compute_s = jp.get("compute_s")

    def program(ctx):
        for _ in range(iterations):
            if compute_s is not None:
                yield from ctx.compute(compute_s)
            if nbytes > 0:
                yield from getattr(ctx, op)(nbytes)

    return program


def _execute_multijob(params: Mapping) -> CellResult:
    """Co-scheduled jobs sharing one fabric, optionally under an arbiter.

    ``params["jobs"]`` is a list of job specs, each with ``n_ranks``,
    ``node_offset``, and the collective-cell workload keys (``op`` /
    ``nbytes`` / ``iterations`` / ``compute_s``).  The cell's scalars
    describe the whole scenario (makespan, total energy); per-job
    attribution and the arbiter report land in ``extra``.
    """
    from ..mpi.job import MpiJob
    from ..mpi.p2p import ProgressMode

    session = _session_from_params(
        params, bool(params.get("keep_segments", False))
    )
    progress = ProgressMode(params.get("progress", "polling"))
    jobs = [
        MpiJob(
            int(jp["n_ranks"]),
            session=session,
            collectives=_engine(jp.get("mode", params.get("mode", "none"))),
            progress=progress,
            node_offset=int(jp.get("node_offset", 0)),
        )
        for jp in params["jobs"]
    ]
    for job, jp in zip(jobs, params["jobs"]):
        job.launch(_job_program(jp))
    results = session.run_jobs(jobs)
    makespan = max(r.duration_s for r in results)
    total_j = session.accountant.total_energy_j()
    cell = CellResult(
        duration_s=makespan,
        energy_j=total_j,
        average_power_w=total_j / makespan if makespan > 0 else 0.0,
        dvfs_transitions=sum(j.stats.dvfs_transitions for j in jobs),
        throttle_transitions=sum(j.stats.throttle_transitions for j in jobs),
    )
    _harvest_reports(cell, session)
    cell.extra["jobs"] = [
        {
            "n_ranks": job.n_ranks,
            "node_offset": job.affinity.node_offset,
            "duration_s": r.duration_s,
            "energy_j": r.energy_j,
        }
        for job, r in zip(jobs, results)
    ]
    cell.extra["residual_energy_j"] = session.residual_energy_j
    return cell


_EXECUTORS: Dict[str, Callable[[Mapping], CellResult]] = {
    "collective": _execute_collective,
    "alltoallv": _execute_alltoallv,
    "mixed": _execute_mixed,
    "app": _execute_app,
    "osu": _execute_osu,
    "multijob": _execute_multijob,
}


def execute_cell(cell: SweepCell, capture: Optional[Any] = None) -> CellResult:
    """Run one cell to completion (pure; safe in any process).

    ``capture`` is an optional
    :class:`~repro.obs.capture.CaptureConfig`.  When truthy, the cell
    runs inside a hermetic :func:`~repro.obs.capture.capture_cell`
    scope and its observability payload (trace records, metrics
    snapshot, profile samples) is sealed into ``result.metrics`` as
    plain data — the parent process replays it in submit order (see
    :func:`~repro.runner.pool.run_cells`), so ``--jobs N`` observes
    exactly what ``--jobs 1`` observes.  The scope shadows all ambient
    instrumentation, so the cell itself stays a pure function of
    ``(cell, capture)``.

    Ambient governor/fault/arbiter scopes are *always* shadowed
    (independent of ``capture``): a session built inside a cell would
    otherwise adopt the calling process's
    ``use_governor``/``use_faults``/``use_arbiter`` scope when run
    inline but not in a worker, breaking the inline == worker == cache
    identity.  Governor configs, fault plans, and arbiter configs reach
    a cell through its params only.
    """
    from ..faults.scope import use_faults
    from ..runtime.arbiter import use_arbiter
    from ..runtime.governor import use_governor

    wall0 = time.perf_counter()
    with use_governor(None), use_faults(None), use_arbiter(None):
        if capture:
            from ..obs.capture import capture_cell

            with capture_cell(capture) as cap:
                result = _EXECUTORS[cell.kind](cell.params)
            result.metrics = cap.seal()
        else:
            result = _EXECUTORS[cell.kind](cell.params)
    result.wall_time_s = time.perf_counter() - wall0
    return result


def _app_specs() -> Dict[str, Any]:
    from ..apps import (
        CPMD_TA_INP_MD,
        CPMD_WAT32_INP1,
        CPMD_WAT32_INP2,
        NAS_FT,
        NAS_IS,
    )

    return {
        "nas-ft": NAS_FT,
        "nas-is": NAS_IS,
        "cpmd-wat1": CPMD_WAT32_INP1,
        "cpmd-wat2": CPMD_WAT32_INP2,
        "cpmd-ta": CPMD_TA_INP_MD,
    }


class _AppRegistry:
    """Lazy name → :class:`~repro.apps.base.AppSpec` mapping (defers the
    apps import so ``repro.runner`` stays cheap to import in workers)."""

    def __init__(self) -> None:
        self._specs: Optional[Dict[str, Any]] = None

    def _load(self) -> Dict[str, Any]:
        if self._specs is None:
            self._specs = _app_specs()
        return self._specs

    def __getitem__(self, name: str):
        return self._load()[name]

    def __contains__(self, name: str) -> bool:
        return name in self._load()

    def __iter__(self):
        return iter(self._load())

    def keys(self) -> List[str]:
        return sorted(self._load())


#: Application registry shared by cells and the CLI ``app`` command.
APP_SPECS = _AppRegistry()
