"""Parallel sweep execution with deterministic reassembly.

:func:`run_cells` is the one entry point: given a list of
:class:`~repro.runner.cells.SweepCell`, it returns their
:class:`~repro.runner.cells.CellResult` in the *same order*, having
satisfied each cell from (in order):

1. the in-process memo — duplicates *within* a run (table1 re-requests
   fig9's app cells) execute once per process lifetime;
2. the on-disk content-addressed cache (unless disabled/refreshing);
3. actual execution — inline for one effective job, batched across a
   *persistent* warm-worker pool otherwise.

Warm workers
------------
The pool is built once (fork-server start method, with
:mod:`repro.runner.worker` preloaded) and reused across
:func:`run_cells` calls, so the per-submit cost is a pickle round-trip
rather than a process spawn.  Cells ship in batches
(:func:`repro.runner.worker.execute_batch`) to amortize IPC over many
sub-millisecond cells, and each worker keeps a substrate cache
(:data:`repro.runner.cells.SUBSTRATE_COUNTERS`) so the frozen
(cluster, network, power) spec triple is parsed once per unique
signature per worker, not once per cell.

Determinism argument
--------------------
Every cell is a pure function of its spec (fresh ``SimSession`` per
cell, seeds inside the spec, ambient scopes shadowed in
``execute_cell``), so *where* a cell runs cannot change its simulated
output.  Batches are collected in submit order — never ``as_completed``
— and results concatenate back into submission order, so reassembly
order cannot change either.  Hence ``--jobs N`` output is byte-identical
to ``--jobs 1`` for every N.

If the pool itself cannot be built (no fork, sandboxed semaphores) or
breaks mid-flight, execution degrades to inline — slower, never wrong.
When the machine has fewer usable CPUs than requested jobs, the job
count clamps (a pool bigger than the machine is a guaranteed slowdown);
a clamp all the way to one CPU runs inline with a logged warning.
"""

from __future__ import annotations

import atexit
import json
import logging
import math
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import MetricsRegistry
from .cache import ResultCache, cache_key
from .cells import SUBSTRATE_COUNTERS, CellResult, SweepCell, execute_cell

__all__ = [
    "RUNNER_METRICS",
    "SweepStats",
    "clear_memo",
    "load_sweep_stats",
    "resolve_jobs",
    "run_cells",
    "save_sweep_stats",
    "shutdown_pool",
]

_LOG = logging.getLogger("repro.runner")

#: Runner-infrastructure telemetry (substrate cache hits/misses, worker
#: reuse, batch counts).  Deliberately a *dedicated* registry, never the
#: ambient one: ambient metrics snapshots must stay byte-identical
#: across ``--jobs`` values and cache states, and pool behaviour is
#: exactly the thing that varies.
RUNNER_METRICS = MetricsRegistry()

#: In-process memo: cache key -> result.  Subsumes the old per-module
#: ``_APP_RUN_CACHE`` in bench.experiments — any two cells with the same
#: content share one execution within a process, across experiments.
_MEMO: Dict[str, CellResult] = {}


def clear_memo() -> None:
    """Forget memoised results (tests; ``--refresh`` uses it too)."""
    _MEMO.clear()


def resolve_jobs(jobs: Optional[int] = None, default: int = 1) -> int:
    """Worker count: explicit ``jobs`` > ``$REPRO_JOBS`` > ``default``.

    ``default`` is 1 for library callers (no surprise forking) — the CLI
    passes ``os.cpu_count()``.  Any resolution below 1 clamps to 1.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = None
    if jobs is None:
        jobs = default
    return max(1, jobs)


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _effective_jobs(jobs: int, stats: "SweepStats") -> int:
    """Clamp ``jobs`` to the usable CPU count, recording the decision.

    A pool wider than the machine is a guaranteed slowdown (workers
    time-slice one core while the parent pays full IPC), so requests
    beyond ``_available_cpus()`` clamp down with a warning.  A clamp to
    one means inline execution — deliberate, not a fallback.
    """
    avail = _available_cpus()
    effective = jobs
    if jobs > avail:
        effective = max(1, avail)
        stats.jobs_clamped = True
        suffix = " (running inline)" if effective == 1 else ""
        _LOG.warning(
            "requested %d jobs but only %d usable CPU(s); clamping to %d%s",
            jobs, avail, effective, suffix,
        )
    stats.jobs_effective = effective
    return effective


# ---------------------------------------------------------------------
# Persistent warm-worker pool
# ---------------------------------------------------------------------
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0
_PRELOAD_SET = False


def _pool_context() -> multiprocessing.context.BaseContext:
    """Start-method preference: forkserver (preloaded) > fork > default.

    Fork-server gives warm workers their biggest win: the server process
    imports :mod:`repro.runner.worker` (and transitively the simulation
    stack) once, so each worker starts from a warm interpreter instead
    of re-importing everything.
    """
    global _PRELOAD_SET
    methods = multiprocessing.get_all_start_methods()
    if "forkserver" in methods:
        ctx = multiprocessing.get_context("forkserver")
        if not _PRELOAD_SET:
            ctx.set_forkserver_preload(["repro.runner.worker"])
            _PRELOAD_SET = True
        return ctx
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent executor, (re)built when the width changes."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS == workers:
        return _POOL
    shutdown_pool()
    _POOL = ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context())
    _POOL_WORKERS = workers
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent pool (atexit; tests; pool failure)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)


def _batch(cells: List[SweepCell], workers: int) -> List[List[SweepCell]]:
    """Chunk cells for batched submission.

    Target ~4 batches per worker: large enough to amortize the pickle
    round-trip over many small cells, small enough that a straggler
    batch cannot idle the rest of the pool for long.
    """
    size = max(1, math.ceil(len(cells) / (workers * 4)))
    return [cells[i:i + size] for i in range(0, len(cells), size)]


@dataclass
class SweepStats:
    """Accounting for one :func:`run_cells` call (feeds ``bench-report``)."""

    experiment: str = ""
    jobs: int = 1
    #: Worker count actually used after the CPU clamp (== ``jobs`` when
    #: the machine is wide enough).
    jobs_effective: int = 1
    jobs_clamped: bool = False
    cells_total: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    executed: int = 0
    #: Distinct cells actually run (executed minus in-flight duplicates).
    unique_executed: int = 0
    fell_back_inline: bool = False
    elapsed_s: float = 0.0
    #: Batches shipped to the pool (0 when everything ran inline/cached).
    batches: int = 0
    #: Batches served by an already-warm worker (pool reuse across calls).
    worker_reuse: int = 0
    #: Distinct worker PIDs that served batches.
    workers_used: int = 0
    #: Substrate spec-cache accounting summed over inline + all workers.
    substrate_hits: int = 0
    substrate_misses: int = 0
    substrate_rebuild_s: float = 0.0
    #: (label, wall_time_s) per executed cell, submit order.
    timings: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        hits = self.memo_hits + self.cache_hits
        return hits / self.cells_total if self.cells_total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "jobs": self.jobs,
            "jobs_effective": self.jobs_effective,
            "jobs_clamped": self.jobs_clamped,
            "cells_total": self.cells_total,
            "memo_hits": self.memo_hits,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "unique_executed": self.unique_executed,
            "fell_back_inline": self.fell_back_inline,
            "elapsed_s": self.elapsed_s,
            "batches": self.batches,
            "worker_reuse": self.worker_reuse,
            "workers_used": self.workers_used,
            "substrate_hits": self.substrate_hits,
            "substrate_misses": self.substrate_misses,
            "substrate_rebuild_s": self.substrate_rebuild_s,
            "timings": [list(t) for t in self.timings],
        }

    def one_line(self) -> str:
        return (
            f"sweep[{self.experiment}]: {self.cells_total} cells, "
            f"{self.cache_hits} cache hits, {self.memo_hits} memo hits, "
            f"{self.unique_executed} executed (jobs={self.jobs}), "
            f"{self.elapsed_s:.2f}s"
        )


def _fold_telemetry(stats: SweepStats, telemetry: Dict[str, Any]) -> None:
    """Accumulate one worker batch's telemetry into stats + RUNNER_METRICS."""
    stats.substrate_hits += int(telemetry.get("substrate_hits", 0))
    stats.substrate_misses += int(telemetry.get("substrate_misses", 0))
    stats.substrate_rebuild_s += float(telemetry.get("substrate_rebuild_s", 0.0))
    RUNNER_METRICS.inc("runner.substrate.hits", telemetry.get("substrate_hits", 0))
    RUNNER_METRICS.inc("runner.substrate.misses", telemetry.get("substrate_misses", 0))
    RUNNER_METRICS.inc("runner.substrate.rebuild_s",
                       telemetry.get("substrate_rebuild_s", 0.0))


def _execute_pending(
    pending: List[Tuple[int, str, SweepCell]],
    jobs: int,
    stats: SweepStats,
    capture: Optional[Any] = None,
) -> List[Tuple[int, str, CellResult]]:
    """Run the cells that missed every cache; returns (index, key, result).

    Duplicate keys *within* ``pending`` execute once; every index still
    gets its result.  ``capture`` rides along to every
    :func:`~repro.runner.cells.execute_cell` call — worker or inline —
    so the observability payload is collected identically either way.
    """
    unique: Dict[str, Tuple[int, SweepCell]] = {}
    order: List[str] = []
    for idx, key, cell in pending:
        if key not in unique:
            unique[key] = (idx, cell)
            order.append(key)
    cells = [unique[k][1] for k in order]
    stats.unique_executed = len(cells)
    stats.executed = len(pending)

    effective = _effective_jobs(jobs, stats)
    by_key: Dict[str, CellResult] = {}
    if effective > 1 and len(cells) > 1:
        try:
            from . import worker as worker_mod

            pool = _get_pool(effective)
            batches = _batch(cells, effective)
            # Submit everything up front, then collect strictly in
            # submit order — completion order must never matter.
            futures = [
                pool.submit(worker_mod.execute_batch, chunk, capture)
                for chunk in batches
            ]
            flat: List[CellResult] = []
            pids: set = set()
            for future in futures:
                results, telemetry = future.result()
                flat.extend(results)
                stats.batches += 1
                pids.add(telemetry.get("pid"))
                if telemetry.get("warm"):
                    stats.worker_reuse += 1
                    RUNNER_METRICS.inc("runner.worker.reuse")
                _fold_telemetry(stats, telemetry)
            stats.workers_used = len(pids)
            RUNNER_METRICS.inc("runner.batches", len(batches))
            RUNNER_METRICS.inc("runner.cells.executed", len(flat))
            by_key = dict(zip(order, flat))
        except Exception:
            # Pool infrastructure failure (fork unavailable, broken
            # worker, pickling regression): rerun everything inline.
            # Correctness never depends on the pool.
            shutdown_pool()
            stats.fell_back_inline = True
            by_key = {}
    if not by_key:
        before = dict(SUBSTRATE_COUNTERS)
        for key, cell in zip(order, cells):
            by_key[key] = execute_cell(cell, capture)
        _fold_telemetry(stats, {
            "substrate_hits": SUBSTRATE_COUNTERS["hits"] - before["hits"],
            "substrate_misses": SUBSTRATE_COUNTERS["misses"] - before["misses"],
            "substrate_rebuild_s": (
                SUBSTRATE_COUNTERS["rebuild_s"] - before["rebuild_s"]
            ),
        })
        RUNNER_METRICS.inc("runner.cells.executed", len(cells))
    for key, cell in zip(order, cells):
        stats.timings.append((cell.label or key[:12], by_key[key].wall_time_s))
    return [(idx, key, by_key[key]) for idx, key, _cell in pending]


def run_cells(
    cells: Sequence[SweepCell],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    refresh: bool = False,
    stats: Optional[SweepStats] = None,
    capture: Optional[Any] = None,
) -> List[CellResult]:
    """Satisfy ``cells`` (memo > disk cache > execution), in input order.

    ``cache=None`` disables the on-disk layer entirely; ``refresh=True``
    skips cache *reads* but still writes fresh results through.  Pass a
    ``stats`` to receive the accounting.

    ``capture`` controls observability collection (a
    :class:`~repro.obs.capture.CaptureConfig`); ``None`` derives it from
    the calling process's ambient scopes (``--trace`` tracer, metrics
    registry, active self-profiles).  When any channel is on, every cell
    — worker-run, inline, memoised or cache-served — carries a sealed
    payload, and this function replays the payloads into the live scopes
    here in the parent, once per unique cell in input order.  Replay
    order therefore depends only on the input sequence, never on ``jobs``
    or on which layer satisfied a cell: ``--jobs N`` and a warm-cache
    rerun observe byte-identical streams.
    """
    import time

    if stats is None:
        stats = SweepStats()
    stats.jobs = resolve_jobs(jobs)
    stats.jobs_effective = stats.jobs
    stats.cells_total += len(cells)
    wall0 = time.perf_counter()

    if capture is None:
        from ..obs.capture import CaptureConfig

        capture = CaptureConfig.from_ambient()

    results: List[Optional[CellResult]] = [None] * len(cells)
    pending: List[Tuple[int, str, SweepCell]] = []
    keys: List[str] = []
    for idx, cell in enumerate(cells):
        key = cache_key(cell, capture)
        keys.append(key)
        if not refresh and key in _MEMO:
            results[idx] = _MEMO[key]
            stats.memo_hits += 1
            # Write-through: the memo outlives any one cache (campaigns
            # pointed at different stores share one process memo), and
            # downstream consumers — resume probes, shard collection —
            # treat the *store* as the source of truth.
            if cache is not None and not cache.contains(key):
                cache.put(key, cell, _MEMO[key])
            continue
        if cache is not None and not refresh:
            hit = cache.get(key)
            if hit is not None:
                results[idx] = hit
                _MEMO[key] = hit
                stats.cache_hits += 1
                continue
        pending.append((idx, key, cell))

    if pending:
        for idx, key, result in _execute_pending(
            pending, stats.jobs, stats, capture
        ):
            results[idx] = result
            _MEMO[key] = result
            if cache is not None:
                cache.put(key, cells[idx], result)

    if capture:
        from ..obs.capture import replay_payload

        seen: set = set()
        for idx, key in enumerate(keys):
            if key in seen:
                continue
            seen.add(key)
            replay_payload(results[idx].metrics)

    stats.elapsed_s += time.perf_counter() - wall0
    return results  # type: ignore[return-value]


# ---------------------------------------------------------------------
# Last-sweep persistence (the `repro bench-report` data source)
# ---------------------------------------------------------------------
def _stats_path(results_dir: Optional[Path] = None) -> Path:
    base = Path(results_dir) if results_dir is not None else Path("results")
    return base / "last_sweep.json"


def save_sweep_stats(
    stats: SweepStats,
    cache: Optional[ResultCache] = None,
    results_dir: Optional[Path] = None,
    metrics: Optional[Dict[str, Any]] = None,
) -> Optional[Path]:
    """Persist one sweep's accounting for ``repro bench-report``.

    ``metrics`` is an optional :class:`~repro.obs.metrics.MetricsRegistry`
    snapshot; when given, ``bench-report --metrics`` can render it later.
    Runner-infrastructure counters ride along separately (they are never
    part of the ambient snapshot — see :data:`RUNNER_METRICS`).
    """
    path = _stats_path(results_dir)
    payload = stats.to_dict()
    payload["cache"] = cache.stats() if cache is not None else None
    payload["cache_dir"] = str(cache.root) if cache is not None else None
    payload["metrics"] = metrics
    payload["runner_metrics"] = RUNNER_METRICS.snapshot()["counters"]
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
    except OSError:
        return None
    return path


def load_sweep_stats(results_dir: Optional[Path] = None) -> Optional[Dict[str, Any]]:
    """The last persisted sweep accounting, or None."""
    try:
        with open(_stats_path(results_dir), "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None
