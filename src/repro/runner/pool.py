"""Parallel sweep execution with deterministic reassembly.

:func:`run_cells` is the one entry point: given a list of
:class:`~repro.runner.cells.SweepCell`, it returns their
:class:`~repro.runner.cells.CellResult` in the *same order*, having
satisfied each cell from (in order):

1. the in-process memo — duplicates *within* a run (table1 re-requests
   fig9's app cells) execute once per process lifetime;
2. the on-disk content-addressed cache (unless disabled/refreshing);
3. actual execution — inline for ``jobs == 1``, sharded across a
   ``ProcessPoolExecutor`` otherwise.

Determinism argument
--------------------
Every cell is a pure function of its spec (fresh ``SimSession`` per
cell, seeds inside the spec, no ambient scopes in workers), so *where*
a cell runs cannot change its simulated output.  Futures are collected
in submit order — never ``as_completed`` — so reassembly order cannot
change either.  Hence ``--jobs N`` output is byte-identical to
``--jobs 1`` for every N.

If the pool itself cannot be built (no fork, sandboxed semaphores) or
breaks mid-flight, execution degrades to inline — slower, never wrong.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .cache import ResultCache, cache_key
from .cells import CellResult, SweepCell, execute_cell

__all__ = [
    "SweepStats",
    "clear_memo",
    "load_sweep_stats",
    "resolve_jobs",
    "run_cells",
    "save_sweep_stats",
]

#: In-process memo: cache key -> result.  Subsumes the old per-module
#: ``_APP_RUN_CACHE`` in bench.experiments — any two cells with the same
#: content share one execution within a process, across experiments.
_MEMO: Dict[str, CellResult] = {}


def clear_memo() -> None:
    """Forget memoised results (tests; ``--refresh`` uses it too)."""
    _MEMO.clear()


def resolve_jobs(jobs: Optional[int] = None, default: int = 1) -> int:
    """Worker count: explicit ``jobs`` > ``$REPRO_JOBS`` > ``default``.

    ``default`` is 1 for library callers (no surprise forking) — the CLI
    passes ``os.cpu_count()``.  Any resolution below 1 clamps to 1.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = None
    if jobs is None:
        jobs = default
    return max(1, jobs)


@dataclass
class SweepStats:
    """Accounting for one :func:`run_cells` call (feeds ``bench-report``)."""

    experiment: str = ""
    jobs: int = 1
    cells_total: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    executed: int = 0
    #: Distinct cells actually run (executed minus in-flight duplicates).
    unique_executed: int = 0
    fell_back_inline: bool = False
    elapsed_s: float = 0.0
    #: (label, wall_time_s) per executed cell, submit order.
    timings: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        hits = self.memo_hits + self.cache_hits
        return hits / self.cells_total if self.cells_total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "jobs": self.jobs,
            "cells_total": self.cells_total,
            "memo_hits": self.memo_hits,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "unique_executed": self.unique_executed,
            "fell_back_inline": self.fell_back_inline,
            "elapsed_s": self.elapsed_s,
            "timings": [list(t) for t in self.timings],
        }

    def one_line(self) -> str:
        return (
            f"sweep[{self.experiment}]: {self.cells_total} cells, "
            f"{self.cache_hits} cache hits, {self.memo_hits} memo hits, "
            f"{self.unique_executed} executed (jobs={self.jobs}), "
            f"{self.elapsed_s:.2f}s"
        )


def _execute_pending(
    pending: List[Tuple[int, str, SweepCell]],
    jobs: int,
    stats: SweepStats,
    capture: Optional[Any] = None,
) -> List[Tuple[int, str, CellResult]]:
    """Run the cells that missed every cache; returns (index, key, result).

    Duplicate keys *within* ``pending`` execute once; every index still
    gets its result.  ``capture`` rides along to every
    :func:`~repro.runner.cells.execute_cell` call — worker or inline —
    so the observability payload is collected identically either way.
    """
    unique: Dict[str, Tuple[int, SweepCell]] = {}
    order: List[str] = []
    for idx, key, cell in pending:
        if key not in unique:
            unique[key] = (idx, cell)
            order.append(key)
    cells = [unique[k][1] for k in order]
    stats.unique_executed = len(cells)
    stats.executed = len(pending)

    by_key: Dict[str, CellResult] = {}
    if jobs > 1 and len(cells) > 1:
        try:
            with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
                # Submit everything up front, then collect strictly in
                # submit order — completion order must never matter.
                futures = [pool.submit(execute_cell, c, capture) for c in cells]
                for key, future in zip(order, futures):
                    by_key[key] = future.result()
        except Exception:
            # Pool infrastructure failure (fork unavailable, broken
            # worker, pickling regression): rerun everything inline.
            # Correctness never depends on the pool.
            stats.fell_back_inline = True
            by_key = {}
    if not by_key:
        for key, cell in zip(order, cells):
            by_key[key] = execute_cell(cell, capture)
    for key, cell in zip(order, cells):
        stats.timings.append((cell.label or key[:12], by_key[key].wall_time_s))
    return [(idx, key, by_key[key]) for idx, key, _cell in pending]


def run_cells(
    cells: Sequence[SweepCell],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    refresh: bool = False,
    stats: Optional[SweepStats] = None,
    capture: Optional[Any] = None,
) -> List[CellResult]:
    """Satisfy ``cells`` (memo > disk cache > execution), in input order.

    ``cache=None`` disables the on-disk layer entirely; ``refresh=True``
    skips cache *reads* but still writes fresh results through.  Pass a
    ``stats`` to receive the accounting.

    ``capture`` controls observability collection (a
    :class:`~repro.obs.capture.CaptureConfig`); ``None`` derives it from
    the calling process's ambient scopes (``--trace`` tracer, metrics
    registry, active self-profiles).  When any channel is on, every cell
    — worker-run, inline, memoised or cache-served — carries a sealed
    payload, and this function replays the payloads into the live scopes
    here in the parent, once per unique cell in input order.  Replay
    order therefore depends only on the input sequence, never on ``jobs``
    or on which layer satisfied a cell: ``--jobs N`` and a warm-cache
    rerun observe byte-identical streams.
    """
    import time

    if stats is None:
        stats = SweepStats()
    stats.jobs = resolve_jobs(jobs)
    stats.cells_total += len(cells)
    wall0 = time.perf_counter()

    if capture is None:
        from ..obs.capture import CaptureConfig

        capture = CaptureConfig.from_ambient()

    results: List[Optional[CellResult]] = [None] * len(cells)
    pending: List[Tuple[int, str, SweepCell]] = []
    keys: List[str] = []
    for idx, cell in enumerate(cells):
        key = cache_key(cell, capture)
        keys.append(key)
        if not refresh and key in _MEMO:
            results[idx] = _MEMO[key]
            stats.memo_hits += 1
            continue
        if cache is not None and not refresh:
            hit = cache.get(key)
            if hit is not None:
                results[idx] = hit
                _MEMO[key] = hit
                stats.cache_hits += 1
                continue
        pending.append((idx, key, cell))

    if pending:
        for idx, key, result in _execute_pending(
            pending, stats.jobs, stats, capture
        ):
            results[idx] = result
            _MEMO[key] = result
            if cache is not None:
                cache.put(key, cells[idx], result)

    if capture:
        from ..obs.capture import replay_payload

        seen: set = set()
        for idx, key in enumerate(keys):
            if key in seen:
                continue
            seen.add(key)
            replay_payload(results[idx].metrics)

    stats.elapsed_s += time.perf_counter() - wall0
    return results  # type: ignore[return-value]


# ---------------------------------------------------------------------
# Last-sweep persistence (the `repro bench-report` data source)
# ---------------------------------------------------------------------
def _stats_path(results_dir: Optional[Path] = None) -> Path:
    base = Path(results_dir) if results_dir is not None else Path("results")
    return base / "last_sweep.json"


def save_sweep_stats(
    stats: SweepStats,
    cache: Optional[ResultCache] = None,
    results_dir: Optional[Path] = None,
    metrics: Optional[Dict[str, Any]] = None,
) -> Optional[Path]:
    """Persist one sweep's accounting for ``repro bench-report``.

    ``metrics`` is an optional :class:`~repro.obs.metrics.MetricsRegistry`
    snapshot; when given, ``bench-report --metrics`` can render it later.
    """
    path = _stats_path(results_dir)
    payload = stats.to_dict()
    payload["cache"] = cache.stats() if cache is not None else None
    payload["cache_dir"] = str(cache.root) if cache is not None else None
    payload["metrics"] = metrics
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
    except OSError:
        return None
    return path


def load_sweep_stats(results_dir: Optional[Path] = None) -> Optional[Dict[str, Any]]:
    """The last persisted sweep accounting, or None."""
    try:
        with open(_stats_path(results_dir), "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None
