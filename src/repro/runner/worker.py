"""Warm-worker entry points for the persistent sweep pool.

This module is the fork-server preload target: the pool asks the
``forkserver`` start method to import it once, so every worker process
starts with the runner (and, transitively, the whole simulation stack)
already imported instead of re-importing per fork.

Workers stay alive across :func:`~repro.runner.pool.run_cells` calls and
serve *batches* of cells rather than single submissions — one pickle
round-trip amortizes over the whole batch, which is what makes
sub-millisecond cells profitable to farm out at all.  Each batch reply
carries a telemetry dict (substrate-cache hits/misses, rebuild time,
whether this worker was warm) that the parent folds into
:class:`~repro.runner.pool.SweepStats` and the runner metrics registry.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .cells import SUBSTRATE_COUNTERS, CellResult, SweepCell, execute_cell

__all__ = ["execute_batch"]

#: Batches this process has served so far.  ``> 0`` on entry means the
#: worker (and its substrate cache) is being *reused* — the signal the
#: parent counts as ``worker_reuse``.
_BATCHES_SERVED = 0


def execute_batch(
    cells: Sequence[SweepCell],
    capture: Optional[Any] = None,
) -> Tuple[List[CellResult], Dict[str, Any]]:
    """Execute ``cells`` in order in this worker; return results + telemetry.

    The telemetry dict reports the *delta* of the per-process substrate
    counters over this batch, so the parent can attribute cache hits and
    rebuild time to the sweep that caused them even though the cache
    itself persists for the worker's lifetime.
    """
    global _BATCHES_SERVED
    warm = _BATCHES_SERVED > 0
    before = dict(SUBSTRATE_COUNTERS)
    results = [execute_cell(cell, capture) for cell in cells]
    _BATCHES_SERVED += 1
    telemetry = {
        "pid": os.getpid(),
        "warm": warm,
        "cells": len(results),
        "substrate_hits": SUBSTRATE_COUNTERS["hits"] - before["hits"],
        "substrate_misses": SUBSTRATE_COUNTERS["misses"] - before["misses"],
        "substrate_rebuild_s": (
            SUBSTRATE_COUNTERS["rebuild_s"] - before["rebuild_s"]
        ),
    }
    return results, telemetry
