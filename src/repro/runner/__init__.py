"""Sharded sweep execution with content-addressed result caching.

Every paper experiment is a sweep over independent simulation cells —
(workload, parameter point, governor/fault config, seed) tuples — and
every cell is an isolated deterministic DES run.  This package turns
that structure into an engine:

* :mod:`repro.runner.cells` — the cell decomposition layer.  A
  :class:`SweepCell` is a self-describing, picklable spec; the pure
  :func:`execute_cell` entry point rebuilds the whole simulation
  substrate from it inside any process.
* :mod:`repro.runner.pool` — the parallel executor.
  :func:`run_cells` shards cells across a ``ProcessPoolExecutor`` with
  submit-order reassembly, so ``--jobs 4`` output is bit-identical to
  ``--jobs 1``, and falls back to inline execution when processes are
  unavailable.
* :mod:`repro.runner.cache` — the content-addressed on-disk cache,
  keyed by a stable hash of the cell spec plus the testbed/calibration
  constants and a cache-schema version.
"""

from .cache import (
    CACHE_SCHEMA,
    ResultCache,
    cache_key,
    default_cache_dir,
    environment_signature,
)
from .cells import (
    APP_SPECS,
    SUBSTRATE_COUNTERS,
    CellResult,
    SweepCell,
    clear_substrate_cache,
    execute_cell,
)
from .pool import (
    RUNNER_METRICS,
    SweepStats,
    clear_memo,
    load_sweep_stats,
    resolve_jobs,
    run_cells,
    save_sweep_stats,
    shutdown_pool,
)

__all__ = [
    "APP_SPECS",
    "CACHE_SCHEMA",
    "CellResult",
    "RUNNER_METRICS",
    "ResultCache",
    "SUBSTRATE_COUNTERS",
    "SweepCell",
    "SweepStats",
    "cache_key",
    "clear_memo",
    "clear_substrate_cache",
    "default_cache_dir",
    "environment_signature",
    "execute_cell",
    "load_sweep_stats",
    "resolve_jobs",
    "run_cells",
    "save_sweep_stats",
    "shutdown_pool",
]
