"""Shared-resource primitives built on the event core.

Only what the rest of the package needs:

* :class:`Store` — FIFO buffer of items with optional capacity; the MPI
  shared-memory channel and several tests are built on it.
* :class:`Resource` — counted resource with FIFO request/release, used to
  model exclusive structures (e.g. a shared-memory region writer slot).
* :class:`Signal` — a broadcast event that processes can wait on repeatedly
  (used for throttle-up/down phase coordination inside power-aware
  collectives).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from .engine import Environment
from .events import Event, URGENT


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    __slots__ = ()


class Store:
    """FIFO item buffer with blocking put/get.

    ``capacity`` bounds the number of stored items; ``put`` on a full store
    parks the producer until space frees up.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Event that fires once ``item`` has entered the store."""
        event = StorePut(self, item)
        self._putters.append(event)
        self._trigger()
        return event

    def get(self) -> StoreGet:
        """Event that fires with the oldest item once one is available."""
        event = StoreGet(self.env)
        self._getters.append(event)
        self._trigger()
        return event

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters and len(self.items) < self.capacity:
                putter = self._putters.popleft()
                self.items.append(putter.item)
                putter.succeed(priority=URGENT)
                progress = True
            if self._getters and self.items:
                getter = self._getters.popleft()
                getter.succeed(self.items.pop(0), priority=URGENT)
                progress = True


class ResourceRequest(Event):
    __slots__ = ("resource", "_released")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self._released = False

    def release(self) -> None:
        """Give the slot back (idempotent)."""
        if self._released:
            return
        self._released = True
        self.resource._release(self)

    # Allow `with resource.request() as req: yield req`
    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class Resource:
    """Counted resource with FIFO granting semantics."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.users: List[ResourceRequest] = []
        self._waiters: Deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> ResourceRequest:
        """Event that fires once a slot is granted to the caller."""
        req = ResourceRequest(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed(priority=URGENT)
        else:
            self._waiters.append(req)
        return req

    def _release(self, req: ResourceRequest) -> None:
        if req in self.users:
            self.users.remove(req)
        elif req in self._waiters:  # released before ever granted
            self._waiters.remove(req)
            return
        if self._waiters and len(self.users) < self.capacity:
            nxt = self._waiters.popleft()
            self.users.append(nxt)
            nxt.succeed(priority=URGENT)


class Signal:
    """A re-armable broadcast: ``wait()`` returns an event for the *next*
    :meth:`fire`; every waiter registered before the fire is released.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._event = Event(env)

    def wait(self) -> Event:
        """Event that fires at the next :meth:`fire` call."""
        return self._event

    def fire(self, value: Any = None) -> None:
        """Release all current waiters and re-arm."""
        event, self._event = self._event, Event(self.env)
        event.succeed(value)
