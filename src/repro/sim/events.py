"""Event primitives for the discrete-event simulation engine.

The design follows the classic process-interaction style (as popularised by
SimPy): an :class:`Event` is a one-shot occurrence with a value, a
:class:`Process` wraps a generator that yields events, and composite
conditions (:class:`AllOf` / :class:`AnyOf`) let a process wait on several
events at once.

Everything is deterministic: ties in time are broken by (priority, sequence
number), so two runs of the same model produce identical timelines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Environment

#: Scheduling priorities.  URGENT events (process initialisation, condition
#: resolution) run before NORMAL events at the same timestamp.
URGENT = 0
NORMAL = 1

_PENDING = 0
_TRIGGERED = 1
_PROCESSED = 2


class SimulationError(Exception):
    """Base class for errors raised by the simulation core."""


class Interrupt(SimulationError):
    """Raised inside a process that was interrupted by another process.

    The interrupting party supplies ``cause`` which the interrupted process
    can inspect to decide how to recover.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, becomes *triggered* once it has been given a
    value (and is sitting in the scheduler queue), and *processed* once its
    callbacks have run.  Processes yield events to wait on them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state: int = _PENDING
        self._defused: bool = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once all callbacks have been invoked."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception instance if it failed)."""
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the event;
        if nobody waits, the engine raises it at processing time (unless the
        event was :meth:`defused <defuse>`).
        """
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        self.env.schedule(self, priority=priority)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the engine will not re-raise."""
        self._defused = True

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._state = _PROCESSED
        assert callbacks is not None
        for callback in callbacks:
            callback(self)
        if not self._ok and not self._defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        env.schedule(self, priority=NORMAL, delay=delay)


class Timer(Event):
    """A cancellable scheduled callback.

    Unlike :class:`Timeout`, a Timer carries its own callback and can be
    *cancelled* before it fires: the heap entry stays where it is (lazy
    deletion — no O(n) queue surgery) but processing a cancelled timer is
    a no-op.  This replaces generation-counter tricks where consumers had
    to detect their own stale wakeups by hand.

    Timers are scheduling primitives, not synchronisation points: processes
    should yield :class:`Timeout`/:class:`Event`, not Timers (a cancelled
    Timer never fires its waiters).
    """

    __slots__ = ("at", "_callback", "_cancelled")

    def __init__(
        self,
        env: "Environment",
        delay: float,
        callback: Callable[["Timer"], None],
        at: Optional[float] = None,
    ):
        """With ``at`` given, the timer fires at exactly that absolute
        time — ``env.now + (at - env.now)`` can differ from ``at`` by an
        ulp, and a fabric deadline re-armed from a later wake-up must hit
        the *same* float the prediction computed."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        #: Absolute firing time (for introspection and staleness checks).
        self.at = env.now + delay if at is None else at
        self._callback: Optional[Callable[["Timer"], None]] = callback
        self._cancelled = False
        self._ok = True
        self._state = _TRIGGERED
        env.schedule_at(self, self.at, priority=NORMAL)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._state == _PROCESSED and not self._cancelled

    def cancel(self) -> None:
        """Deactivate the timer; safe to call repeatedly, or after firing."""
        if not self._cancelled:
            self._cancelled = True
            if self._state == _TRIGGERED:  # still sitting in the heap
                self.env._note_timer_cancelled()
        self._callback = None  # release promptly; heap entry fires as a no-op

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._state = _PROCESSED
        if self._cancelled:
            return
        callback, self._callback = self._callback, None
        if callback is not None:
            callback(self)
        if callbacks:
            for cb in callbacks:
                cb(self)


class Initialize(Event):
    """Internal event used to start a freshly created :class:`Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._state = _TRIGGERED
        env.schedule(self, priority=URGENT)


class Process(Event):
    """Wraps a generator; the process itself is an event that triggers when
    the generator returns (value = return value) or raises (failure)."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._state == _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on (if any)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current target (the target event
        itself is unaffected and may trigger later, unobserved).
        """
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated; cannot interrupt")
        if self._target is None and self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event._state = _TRIGGERED
        # Run before anything else at this timestamp.
        interrupt_event.callbacks = [self._resume_interrupt]
        self.env.schedule(interrupt_event, priority=URGENT)

    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:  # terminated in the meantime: drop silently
            return
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._target = None
        self._resume(event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s value (or exception)."""
        env = self.env
        env._active_process = self
        self._target = None
        tracer = env.tracer
        if tracer.enabled:
            tracer.process_resume(env._now, self.name)
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                event._defused = True
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self._ok = True
            self._value = stop.value
            self._state = _TRIGGERED
            env.schedule(self, priority=NORMAL)
            return
        except BaseException as exc:
            env._active_process = None
            self._ok = False
            self._value = exc
            self._state = _TRIGGERED
            env.schedule(self, priority=NORMAL)
            return
        env._active_process = None

        if not isinstance(next_target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded a non-event: {next_target!r}"
            )
        if next_target.callbacks is not None:
            # Target not yet processed: park until it fires.
            next_target.callbacks.append(self._resume)
            self._target = next_target
            if tracer.enabled:
                tracer.process_suspend(
                    env._now, self.name, type(next_target).__name__
                )
        else:
            # Target already processed: resume immediately (still via the
            # queue, so ordering stays deterministic).
            relay = Event(self.env)
            relay._ok = next_target._ok
            relay._value = next_target._value
            relay._defused = True
            relay._state = _TRIGGERED
            relay.callbacks = [self._resume]
            env.schedule(relay, priority=URGENT)
            self._target = relay


class ConditionValue:
    """Ordered mapping of events to values for triggered condition events."""

    __slots__ = ("events",)

    def __init__(self, events: List[Event]):
        self.events = events

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict:
        return {event: event._value for event in self.events}

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event over a set of sub-events.

    ``evaluate`` decides when the condition holds: :func:`all_events` for
    AllOf semantics, :func:`any_events` for AnyOf.  A failing sub-event fails
    the whole condition immediately.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise ValueError("all events of a condition must share an environment")
        if self._evaluate(self._events, self._count):
            self.succeed(ConditionValue(self._processed_events()))
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
                if self._state != _PENDING:
                    break
            else:
                event.callbacks.append(self._check)

    def _processed_events(self) -> List[Event]:
        return [e for e in self._events if e._state == _PROCESSED or e.callbacks is None]

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value, priority=URGENT)
        elif self._evaluate(self._events, self._count):
            triggered = [e for e in self._events if e.triggered and e.callbacks is None]
            self.succeed(ConditionValue(triggered), priority=URGENT)


def all_events(events: List[Event], count: int) -> bool:
    """AllOf predicate: every sub-event has fired."""
    return len(events) == count


def any_events(events: List[Event], count: int) -> bool:
    """AnyOf predicate: at least one sub-event has fired (vacuously true for
    an empty set, mirroring SimPy)."""
    return count > 0 or len(events) == 0


class AllOf(Condition):
    """Event that triggers once *all* of ``events`` have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, all_events, events)


class AnyOf(Condition):
    """Event that triggers once *any* of ``events`` has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, any_events, events)
