"""`SimSession` — the one object that owns a simulation's substrate.

Before this existed, every consumer (jobs, benchmarks, examples, the CLI)
hand-threaded the same five constructors: Environment → Cluster →
IBNetwork → PowerModel → EnergyAccountant.  A session builds and owns the
whole stack from the three spec dataclasses, injects one
:class:`~repro.sim.trace.Tracer` into every layer, and *validates the
spec combination up front* — a mismatched cluster/network pair fails here
with a message naming the conflict, not three layers down with a
``KeyError``.

Use::

    from repro.sim import SimSession

    session = SimSession(tracer=JsonlTracer("run.jsonl"))
    job = MpiJob(n_ranks=64, session=session)

or let :class:`~repro.mpi.job.MpiJob` build its own private session from
specs (the pre-session signature still works unchanged).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from .engine import Environment
from .trace import Tracer, default_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.specs import ClusterSpec
    from ..cluster.topology import Cluster
    from ..faults.plan import FaultPlan
    from ..faults.state import FaultState
    from ..mpi.job import JobResult, MpiJob
    from ..network.ibnet import IBNetwork
    from ..network.params import NetworkSpec
    from ..power.accounting import EnergyAccountant
    from ..power.model import PowerModel, PowerModelParams
    from ..runtime.arbiter import PowerArbiter
    from ..runtime.governor import Governor


class SessionConfigError(ValueError):
    """The cluster/network/power specs contradict each other."""


def check_session_specs(
    cluster_spec: "ClusterSpec", network_spec: "NetworkSpec"
) -> List[str]:
    """Cross-spec consistency checks a session refuses to run with.

    Returns human-readable problems (empty = consistent).  These are the
    *structural* mismatches that would otherwise surface as deep
    ``KeyError``/nonsense timings inside the fabric; softer physical
    plausibility checks live in :mod:`repro.validate`.
    """
    import math

    problems: List[str] = []
    if cluster_spec.racks > 1:
        if not math.isinf(network_spec.switch_oversubscription):
            problems.append(
                f"cluster has {cluster_spec.racks} racks but the network "
                "models a single flat switch backplane "
                f"(switch_oversubscription={network_spec.switch_oversubscription}); "
                "a racked topology routes through per-rack uplinks instead — "
                "drop `racks` or leave switch_oversubscription infinite"
            )
        if network_spec.rack_uplink_factor <= 0:
            problems.append(
                f"cluster has {cluster_spec.racks} racks but "
                f"rack_uplink_factor={network_spec.rack_uplink_factor} gives "
                "the leaf-to-spine uplinks no capacity"
            )
    if network_spec.mem_bw_node < network_spec.shm_bw:
        problems.append(
            f"node memory bandwidth ({network_spec.mem_bw_node:.3g} B/s) is "
            f"below a single pair's copy bandwidth ({network_spec.shm_bw:.3g} "
            "B/s); shared-memory phases would violate the link model"
        )
    return problems


class SimSession:
    """Owns env + cluster + network + power model + accountant + tracer.

    Parameters mirror the spec dataclasses; every one is optional and
    defaults to the paper's testbed.  ``tracer`` defaults to the ambient
    tracer (see :func:`repro.sim.trace.use_tracer`), which is the null
    tracer unless a CLI ``--trace`` scope is active.
    """

    def __init__(
        self,
        cluster_spec: Optional["ClusterSpec"] = None,
        network_spec: Optional["NetworkSpec"] = None,
        power_params: Optional["PowerModelParams"] = None,
        tracer: Optional[Tracer] = None,
        keep_segments: bool = True,
        columnar: bool = True,
        validate: bool = True,
        governor: Optional["Governor"] = None,
        faults: Optional["FaultPlan"] = None,
        arbiter: Optional["PowerArbiter"] = None,
    ):
        from ..cluster.specs import ClusterSpec
        from ..cluster.topology import Cluster
        from ..faults.scope import ambient_fault_scope
        from ..faults.state import FaultState
        from ..network.ibnet import IBNetwork
        from ..network.params import NetworkSpec
        from ..power.accounting import EnergyAccountant
        from ..power.model import PowerModel
        from ..runtime.arbiter import ambient_arbiter_scope
        from ..runtime.governor import ambient_governor_scope

        self.cluster_spec = cluster_spec or ClusterSpec.paper_testbed()
        self.network_spec = network_spec or NetworkSpec()
        if validate:
            problems = check_session_specs(self.cluster_spec, self.network_spec)
            if problems:
                raise SessionConfigError(
                    "inconsistent session specs:\n  - " + "\n  - ".join(problems)
                )
        self.tracer: Tracer = default_tracer() if tracer is None else tracer
        # An ambient metrics registry (repro.obs `use_metrics` scope) tees
        # into the trace bus here — one MetricsTracer per session, since
        # its derived state (per-core frequency, in-flight flows) tracks
        # one session's clock.  No scope, no tee, no overhead.
        from ..obs.metrics import MetricsTracer, ambient_metrics_registry

        registry = ambient_metrics_registry()
        if registry is not None:
            from .trace import TeeTracer

            metrics_tracer = MetricsTracer(registry)
            self.tracer = (
                TeeTracer([self.tracer, metrics_tracer])
                if self.tracer.enabled else metrics_tracer
            )
        self.env: Environment = Environment(tracer=self.tracer)
        self.cluster: "Cluster" = Cluster(self.cluster_spec)
        self.cluster.attach_tracer(self.tracer)
        self.net: "IBNetwork" = IBNetwork(self.env, self.cluster, self.network_spec)
        self.power_model: "PowerModel" = PowerModel(power_params)
        self.accountant: "EnergyAccountant" = EnergyAccountant(
            self.cluster, self.power_model,
            keep_segments=keep_segments, columnar=columnar,
        )
        fault_scope = None
        if faults is None:
            fault_scope = ambient_fault_scope()
            if fault_scope is not None:
                faults = fault_scope.plan
        #: Live fault-injection state (see :mod:`repro.faults`), or None.
        #: Bound before the governor so policies always see the perturbed
        #: machine, never a half-built one.
        self.faults: Optional["FaultState"] = (
            FaultState(faults, self, scope=fault_scope)
            if faults is not None else None
        )
        if governor is None:
            scope = ambient_governor_scope()
            if scope is not None:
                governor = scope.make_governor()
        #: Optional online power governor (see :mod:`repro.runtime`); the
        #: MPI layer notifies it when present, never pays for it when not.
        self.governor: Optional["Governor"] = governor
        if governor is not None:
            governor.bind(self)
        if arbiter is None:
            arb_scope = ambient_arbiter_scope()
            if arb_scope is not None:
                arbiter = arb_scope.make_arbiter()
        #: Optional cluster-wide power-budget arbiter (see
        #: :mod:`repro.runtime.arbiter`).  Bound *after* the governor so it
        #: sees the fully instrumented machine; it owns the whole session,
        #: never an individual job.
        self.arbiter: Optional["PowerArbiter"] = arbiter
        if arbiter is not None:
            arbiter.bind(self)

    @classmethod
    def from_spec(cls, spec: dict, tracer: Optional[Tracer] = None) -> "SimSession":
        """Build a session from one plain (picklable, JSON-able) dict.

        This is the worker-process entry point of the sweep runner: a
        :class:`~repro.runner.cells.SweepCell` ships only plain data
        across the process boundary, and the worker reconstitutes the
        full substrate here.  Recognised keys (all optional):

        * ``cluster`` / ``network`` / ``power`` — ``to_dict()`` forms of
          :class:`~repro.cluster.specs.ClusterSpec`,
          :class:`~repro.network.params.NetworkSpec`,
          :class:`~repro.power.model.PowerModelParams`.
        * ``governor`` — ``GovernorConfig.to_dict()`` form; a fresh
          :class:`~repro.runtime.governor.Governor` is built from it.
        * ``faults`` — ``FaultPlan.to_dict()`` form.
        * ``arbiter`` — ``ArbiterConfig.to_dict()`` form; a fresh
          :class:`~repro.runtime.arbiter.PowerArbiter` is built from it.
        * ``keep_segments`` / ``columnar`` / ``validate`` — booleans, as
          in ``__init__``.  ``columnar`` selects the energy-accounting
          backend only (byte-identical results), so like
          ``NetworkSpec.vectorized`` it never enters cell cache keys.
        """
        from ..cluster.specs import ClusterSpec
        from ..network.params import NetworkSpec
        from ..power.model import PowerModelParams

        governor = None
        if spec.get("governor") is not None:
            from ..runtime.governor import Governor, GovernorConfig

            governor = Governor(GovernorConfig.from_dict(spec["governor"]))
        faults = None
        if spec.get("faults") is not None:
            from ..faults.plan import FaultPlan

            faults = FaultPlan.from_dict(spec["faults"])
        arbiter = None
        if spec.get("arbiter") is not None:
            from ..runtime.arbiter import ArbiterConfig, PowerArbiter

            arbiter = PowerArbiter(ArbiterConfig.from_dict(spec["arbiter"]))
        return cls(
            cluster_spec=(
                ClusterSpec.from_dict(spec["cluster"])
                if spec.get("cluster") is not None else None
            ),
            network_spec=(
                NetworkSpec.from_dict(spec["network"])
                if spec.get("network") is not None else None
            ),
            power_params=(
                PowerModelParams.from_dict(spec["power"])
                if spec.get("power") is not None else None
            ),
            tracer=tracer,
            keep_segments=spec.get("keep_segments", True),
            columnar=spec.get("columnar", True),
            validate=spec.get("validate", True),
            governor=governor,
            faults=faults,
            arbiter=arbiter,
        )

    # -- multi-job lifecycle -------------------------------------------------
    def finish_run(self, end: float) -> None:
        """Seal the run at simulated time ``end``: settle every installed
        instrument, then finalize energy accounting.  Order matters —
        governor restores (charging any outstanding penalties) and fault
        state settles before the arbiter seals its report, and the
        accountant closes segments last so it sees final frequencies."""
        if self.governor is not None:
            self.governor.finish_run()
        if self.faults is not None:
            self.faults.finish_run()
        if self.arbiter is not None:
            self.arbiter.finish_run()
        self.accountant.finalize(end)

    def run_jobs(self, jobs: List["MpiJob"]) -> List["JobResult"]:
        """Drive several co-scheduled jobs on this session to completion.

        Each job must already be :meth:`~repro.mpi.job.MpiJob.launch`-ed
        (its rank processes queued) and must adopt *this* session.  One
        ``env.run()`` drains them all — they contend for the same fabric
        — then the session settles instruments once at the global end
        time and each job collects its :class:`~repro.mpi.job.JobResult`.

        Per-job energy attribution: every result's ``energy_j`` is the
        job's cores plus its nodes' base draw over the whole window
        (:meth:`~repro.power.accounting.EnergyAccountant.attribute_energy_j`);
        the cluster-idle remainder is stored as ``self.residual_energy_j``
        so ``sum(per-job) + residual == accountant.total_energy_j()``
        exactly (the residual is computed by subtraction).
        """
        if not jobs:
            raise ValueError("run_jobs needs at least one job")
        for job in jobs:
            if job.session is not self:
                raise ValueError(
                    "every job in run_jobs must adopt this session"
                )
            if not job.launched:
                raise ValueError(
                    "launch() every job before run_jobs (ranks not queued)"
                )
        self.env.run()
        end = max(
            (max(job._finish_times) if job._finish_times else self.env.now)
            for job in jobs
        )
        self.finish_run(end)
        results = [job.collect() for job in jobs]
        attributed = 0.0
        for job, result in zip(jobs, results):
            result.energy_j = self.accountant.attribute_energy_j(
                [core.core_id for core in job.affinity._rank_to_core],
                job.affinity.n_nodes_used,
            )
            attributed += result.energy_j
        #: Energy of nodes/cores no job occupied (0.0 when jobs tile the
        #: cluster); by construction jobs + residual == total exactly.
        self.residual_energy_j = self.accountant.total_energy_j() - attributed
        if self.tracer.enabled:
            for i, (job, result) in enumerate(zip(jobs, results)):
                self.tracer.mark(
                    result.duration_s, "job.end",
                    job=i, node_offset=job.affinity.node_offset,
                    nodes=job.affinity.n_nodes_used,
                    energy_j=result.energy_j,
                )
        return results

    @property
    def now(self) -> float:
        """Current simulation time (shorthand for ``session.env.now``)."""
        return self.env.now

    def close(self) -> None:
        """Flush the tracer (no-op for in-memory/null tracers)."""
        self.tracer.close()

    def __enter__(self) -> "SimSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
