"""`SimSession` — the one object that owns a simulation's substrate.

Before this existed, every consumer (jobs, benchmarks, examples, the CLI)
hand-threaded the same five constructors: Environment → Cluster →
IBNetwork → PowerModel → EnergyAccountant.  A session builds and owns the
whole stack from the three spec dataclasses, injects one
:class:`~repro.sim.trace.Tracer` into every layer, and *validates the
spec combination up front* — a mismatched cluster/network pair fails here
with a message naming the conflict, not three layers down with a
``KeyError``.

Use::

    from repro.sim import SimSession

    session = SimSession(tracer=JsonlTracer("run.jsonl"))
    job = MpiJob(n_ranks=64, session=session)

or let :class:`~repro.mpi.job.MpiJob` build its own private session from
specs (the pre-session signature still works unchanged).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from .engine import Environment
from .trace import Tracer, default_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.specs import ClusterSpec
    from ..cluster.topology import Cluster
    from ..faults.plan import FaultPlan
    from ..faults.state import FaultState
    from ..network.ibnet import IBNetwork
    from ..network.params import NetworkSpec
    from ..power.accounting import EnergyAccountant
    from ..power.model import PowerModel, PowerModelParams
    from ..runtime.governor import Governor


class SessionConfigError(ValueError):
    """The cluster/network/power specs contradict each other."""


def check_session_specs(
    cluster_spec: "ClusterSpec", network_spec: "NetworkSpec"
) -> List[str]:
    """Cross-spec consistency checks a session refuses to run with.

    Returns human-readable problems (empty = consistent).  These are the
    *structural* mismatches that would otherwise surface as deep
    ``KeyError``/nonsense timings inside the fabric; softer physical
    plausibility checks live in :mod:`repro.validate`.
    """
    import math

    problems: List[str] = []
    if cluster_spec.racks > 1:
        if not math.isinf(network_spec.switch_oversubscription):
            problems.append(
                f"cluster has {cluster_spec.racks} racks but the network "
                "models a single flat switch backplane "
                f"(switch_oversubscription={network_spec.switch_oversubscription}); "
                "a racked topology routes through per-rack uplinks instead — "
                "drop `racks` or leave switch_oversubscription infinite"
            )
        if network_spec.rack_uplink_factor <= 0:
            problems.append(
                f"cluster has {cluster_spec.racks} racks but "
                f"rack_uplink_factor={network_spec.rack_uplink_factor} gives "
                "the leaf-to-spine uplinks no capacity"
            )
    if network_spec.mem_bw_node < network_spec.shm_bw:
        problems.append(
            f"node memory bandwidth ({network_spec.mem_bw_node:.3g} B/s) is "
            f"below a single pair's copy bandwidth ({network_spec.shm_bw:.3g} "
            "B/s); shared-memory phases would violate the link model"
        )
    return problems


class SimSession:
    """Owns env + cluster + network + power model + accountant + tracer.

    Parameters mirror the spec dataclasses; every one is optional and
    defaults to the paper's testbed.  ``tracer`` defaults to the ambient
    tracer (see :func:`repro.sim.trace.use_tracer`), which is the null
    tracer unless a CLI ``--trace`` scope is active.
    """

    def __init__(
        self,
        cluster_spec: Optional["ClusterSpec"] = None,
        network_spec: Optional["NetworkSpec"] = None,
        power_params: Optional["PowerModelParams"] = None,
        tracer: Optional[Tracer] = None,
        keep_segments: bool = True,
        columnar: bool = True,
        validate: bool = True,
        governor: Optional["Governor"] = None,
        faults: Optional["FaultPlan"] = None,
    ):
        from ..cluster.specs import ClusterSpec
        from ..cluster.topology import Cluster
        from ..faults.scope import ambient_fault_scope
        from ..faults.state import FaultState
        from ..network.ibnet import IBNetwork
        from ..network.params import NetworkSpec
        from ..power.accounting import EnergyAccountant
        from ..power.model import PowerModel
        from ..runtime.governor import ambient_governor_scope

        self.cluster_spec = cluster_spec or ClusterSpec.paper_testbed()
        self.network_spec = network_spec or NetworkSpec()
        if validate:
            problems = check_session_specs(self.cluster_spec, self.network_spec)
            if problems:
                raise SessionConfigError(
                    "inconsistent session specs:\n  - " + "\n  - ".join(problems)
                )
        self.tracer: Tracer = default_tracer() if tracer is None else tracer
        # An ambient metrics registry (repro.obs `use_metrics` scope) tees
        # into the trace bus here — one MetricsTracer per session, since
        # its derived state (per-core frequency, in-flight flows) tracks
        # one session's clock.  No scope, no tee, no overhead.
        from ..obs.metrics import MetricsTracer, ambient_metrics_registry

        registry = ambient_metrics_registry()
        if registry is not None:
            from .trace import TeeTracer

            metrics_tracer = MetricsTracer(registry)
            self.tracer = (
                TeeTracer([self.tracer, metrics_tracer])
                if self.tracer.enabled else metrics_tracer
            )
        self.env: Environment = Environment(tracer=self.tracer)
        self.cluster: "Cluster" = Cluster(self.cluster_spec)
        self.cluster.attach_tracer(self.tracer)
        self.net: "IBNetwork" = IBNetwork(self.env, self.cluster, self.network_spec)
        self.power_model: "PowerModel" = PowerModel(power_params)
        self.accountant: "EnergyAccountant" = EnergyAccountant(
            self.cluster, self.power_model,
            keep_segments=keep_segments, columnar=columnar,
        )
        fault_scope = None
        if faults is None:
            fault_scope = ambient_fault_scope()
            if fault_scope is not None:
                faults = fault_scope.plan
        #: Live fault-injection state (see :mod:`repro.faults`), or None.
        #: Bound before the governor so policies always see the perturbed
        #: machine, never a half-built one.
        self.faults: Optional["FaultState"] = (
            FaultState(faults, self, scope=fault_scope)
            if faults is not None else None
        )
        if governor is None:
            scope = ambient_governor_scope()
            if scope is not None:
                governor = scope.make_governor()
        #: Optional online power governor (see :mod:`repro.runtime`); the
        #: MPI layer notifies it when present, never pays for it when not.
        self.governor: Optional["Governor"] = governor
        if governor is not None:
            governor.bind(self)

    @classmethod
    def from_spec(cls, spec: dict, tracer: Optional[Tracer] = None) -> "SimSession":
        """Build a session from one plain (picklable, JSON-able) dict.

        This is the worker-process entry point of the sweep runner: a
        :class:`~repro.runner.cells.SweepCell` ships only plain data
        across the process boundary, and the worker reconstitutes the
        full substrate here.  Recognised keys (all optional):

        * ``cluster`` / ``network`` / ``power`` — ``to_dict()`` forms of
          :class:`~repro.cluster.specs.ClusterSpec`,
          :class:`~repro.network.params.NetworkSpec`,
          :class:`~repro.power.model.PowerModelParams`.
        * ``governor`` — ``GovernorConfig.to_dict()`` form; a fresh
          :class:`~repro.runtime.governor.Governor` is built from it.
        * ``faults`` — ``FaultPlan.to_dict()`` form.
        * ``keep_segments`` / ``columnar`` / ``validate`` — booleans, as
          in ``__init__``.  ``columnar`` selects the energy-accounting
          backend only (byte-identical results), so like
          ``NetworkSpec.vectorized`` it never enters cell cache keys.
        """
        from ..cluster.specs import ClusterSpec
        from ..network.params import NetworkSpec
        from ..power.model import PowerModelParams

        governor = None
        if spec.get("governor") is not None:
            from ..runtime.governor import Governor, GovernorConfig

            governor = Governor(GovernorConfig.from_dict(spec["governor"]))
        faults = None
        if spec.get("faults") is not None:
            from ..faults.plan import FaultPlan

            faults = FaultPlan.from_dict(spec["faults"])
        return cls(
            cluster_spec=(
                ClusterSpec.from_dict(spec["cluster"])
                if spec.get("cluster") is not None else None
            ),
            network_spec=(
                NetworkSpec.from_dict(spec["network"])
                if spec.get("network") is not None else None
            ),
            power_params=(
                PowerModelParams.from_dict(spec["power"])
                if spec.get("power") is not None else None
            ),
            tracer=tracer,
            keep_segments=spec.get("keep_segments", True),
            columnar=spec.get("columnar", True),
            validate=spec.get("validate", True),
            governor=governor,
            faults=faults,
        )

    @property
    def now(self) -> float:
        """Current simulation time (shorthand for ``session.env.now``)."""
        return self.env.now

    def close(self) -> None:
        """Flush the tracer (no-op for in-memory/null tracers)."""
        self.tracer.close()

    def __enter__(self) -> "SimSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
