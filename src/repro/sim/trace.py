"""Trace hook bus: typed instrumentation events from the simulation kernel.

Every layer of the simulator (engine, fabric, cores, collectives) reports
its state transitions to a :class:`Tracer`.  The default is
:data:`NULL_TRACER`, whose ``enabled`` flag is ``False`` — every emission
site guards with ``if tracer.enabled:`` so a disabled tracer costs one
attribute read and a branch, nothing more.  Timelines therefore stay
byte-identical with tracing on or off: tracers observe, they never steer.

Event types (the ``type`` field of every record)
------------------------------------------------
``process.resume``   a process coroutine was resumed
                     (``process``: name)
``process.suspend``  a process parked on an event
                     (``process``, ``target``: class name of the event)
``core.activity``    a core's activity changed
                     (``core``, ``node``, ``old``, ``new``)
``core.frequency``   a DVFS (P-state) transition
                     (``core``, ``node``, ``old``, ``new`` in GHz)
``core.tstate``      a throttle (T-state) transition
                     (``core``, ``node``, ``old``, ``new``)
``flow.start``       a bulk transfer entered the fabric
                     (``flow``: label, ``bytes``, ``links``, ``seq``: the
                     fabric's admission number — labels repeat across a
                     run, ``seq`` is unique)
``flow.finish``      a bulk transfer completed
                     (``flow``, ``bytes``, ``start``, ``links``, ``seq``,
                     ``delivered``: bytes carried, ``duration``: seconds
                     from start to completion).  Every ``flow.start``
                     has exactly one ``flow.finish`` with the same
                     ``seq`` — trace consumers can rely on the pairing
                     to compute flow lifetimes.
``fault.*``          the fault-injection layer acted (see repro.faults):
                     ``fault.plan`` (``spec``) at bind, ``fault.link``
                     (``links``, ``factor``) per capacity event,
                     ``fault.noise`` (``core``, ``pulses``) per insertion
``mark``             free-form annotation from model code
                     (``name`` plus arbitrary extra fields).  Notable
                     producer: the online governor emits
                     ``name="governor.slack"`` (``core``, ``wait_s``,
                     ``ewma_s``) at every wait exit, feeding the
                     slack-EWMA metric series (repro.obs)

Every record also carries ``t``, the simulation time in seconds.

The JSONL schema written by :class:`JsonlTracer` is exactly one record per
line: ``{"t": <float>, "type": "<type>", ...fields}``.
"""

from __future__ import annotations

import contextlib
import json
from dataclasses import dataclass, field
from typing import IO, Any, Dict, Iterator, List, Optional, Union


@dataclass(frozen=True)
class TraceRecord:
    """One instrumentation event on the simulation timeline."""

    t: float
    type: str
    data: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps({"t": self.t, "type": self.type, **self.data})


class Tracer:
    """Base tracer: receives typed events via :meth:`emit`.

    Subclasses override :meth:`emit` (all the typed convenience methods
    funnel into it).  ``enabled`` is the zero-overhead switch every
    emission site checks before building a record.
    """

    enabled: bool = True

    # -- sink --------------------------------------------------------------
    def emit(self, t: float, type: str, **data: Any) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release any underlying resource (file tracers)."""

    # -- typed emission helpers -------------------------------------------
    def process_resume(self, t: float, name: str) -> None:
        self.emit(t, "process.resume", process=name)

    def process_suspend(self, t: float, name: str, target: str) -> None:
        self.emit(t, "process.suspend", process=name, target=target)

    def core_activity(self, t: float, core_id: int, node_id: int,
                      old: str, new: str) -> None:
        self.emit(t, "core.activity", core=core_id, node=node_id,
                  old=old, new=new)

    def power_state(self, t: float, core_id: int, node_id: int, kind: str,
                    old: float, new: float) -> None:
        self.emit(t, f"core.{kind}", core=core_id, node=node_id,
                  old=old, new=new)

    def flow_start(self, t: float, label: str, nbytes: float,
                   links: List[str], seq: int = -1) -> None:
        self.emit(t, "flow.start", flow=label, bytes=nbytes, links=links,
                  seq=seq)

    def flow_finish(self, t: float, label: str, nbytes: float,
                    started: float, links: List[str], seq: int = -1,
                    delivered: Optional[float] = None) -> None:
        self.emit(t, "flow.finish", flow=label, bytes=nbytes,
                  start=started, links=links, seq=seq,
                  delivered=nbytes if delivered is None else delivered,
                  duration=t - started)

    def fault(self, t: float, kind: str, **data: Any) -> None:
        self.emit(t, f"fault.{kind}", **data)

    def mark(self, t: float, name: str, **data: Any) -> None:
        self.emit(t, "mark", name=name, **data)


class NullTracer(Tracer):
    """The zero-overhead default: never records anything."""

    enabled = False

    def emit(self, t: float, type: str, **data: Any) -> None:  # pragma: no cover
        pass


#: Shared do-nothing tracer (safe: it holds no state).
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Collects records in memory (tests, notebooks)."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def emit(self, t: float, type: str, **data: Any) -> None:
        self.records.append(TraceRecord(t, type, data))

    def of_type(self, type: str) -> List[TraceRecord]:
        return [r for r in self.records if r.type == type]

    def __len__(self) -> int:
        return len(self.records)


class JsonlTracer(Tracer):
    """Streams records as JSON lines to a file (the ``--trace`` backend).

    Accepts a path (opened and owned; closed by :meth:`close`) or any
    writable text file object (borrowed; left open).  The stream is
    flushed every ``flush_every`` records so a crashed or killed run
    loses at most that many trailing records, not the whole buffered
    tail.  :meth:`close` is idempotent; :meth:`emit` after close raises
    ``ValueError`` instead of silently writing into a closed (or
    no-longer-owned) sink.
    """

    def __init__(self, sink: Union[str, IO[str]], flush_every: int = 1024):
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        if isinstance(sink, str):
            self._file: IO[str] = open(sink, "w")
            self._owns = True
        else:
            self._file = sink
            self._owns = False
        self.flush_every = flush_every
        self.records_written = 0
        self._closed = False

    def emit(self, t: float, type: str, **data: Any) -> None:
        if self._closed:
            raise ValueError("emit() on a closed JsonlTracer")
        self._file.write(json.dumps({"t": t, "type": type, **data}) + "\n")
        self.records_written += 1
        if self.records_written % self.flush_every == 0:
            self._file.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._file.flush()
        if self._owns:
            self._file.close()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TeeTracer(Tracer):
    """Fans every record out to several child tracers.

    Built by :class:`~repro.sim.session.SimSession` when an ambient
    metrics registry is active alongside a record tracer; closing the
    tee closes its children (matching the session's single-tracer
    close semantics).
    """

    def __init__(self, children: List[Tracer]):
        self.children = [c for c in children if c is not None]

    def emit(self, t: float, type: str, **data: Any) -> None:
        for child in self.children:
            if child.enabled:
                child.emit(t, type, **data)

    def close(self) -> None:
        for child in self.children:
            child.close()


# -- ambient default -------------------------------------------------------
# Components built without an explicit tracer (e.g. jobs constructed deep
# inside an experiment function) pick up the ambient default, so the CLI's
# ``--trace`` flag reaches every simulation a command runs.
_DEFAULT: Tracer = NULL_TRACER


def default_tracer() -> Tracer:
    """The ambient tracer new sessions adopt when none is passed."""
    return _DEFAULT


@contextlib.contextmanager
def use_tracer(tracer: Optional[Tracer]) -> Iterator[Tracer]:
    """Scope ``tracer`` as the ambient default (restores on exit)."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = tracer if tracer is not None else NULL_TRACER
    try:
        yield _DEFAULT
    finally:
        _DEFAULT = previous
