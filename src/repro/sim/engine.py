"""The discrete-event simulation engine.

:class:`Environment` owns the clock and the event queue.  Model code is
written as generator functions that ``yield`` events; see
:mod:`repro.sim.events` for the event types.

Example
-------
>>> env = Environment()
>>> def hello(env, out):
...     yield env.timeout(3.0)
...     out.append(env.now)
>>> out = []
>>> _ = env.process(hello(env, out))
>>> env.run()
>>> out
[3.0]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from .events import (
    NORMAL,
    AllOf,
    AnyOf,
    Event,
    Process,
    SimulationError,
    Timeout,
    Timer,
)
from .trace import NULL_TRACER, Tracer

Infinity = float("inf")


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(SimulationError):
    """Internal: unwinds :meth:`Environment.run` when the ``until`` event fires."""


class Environment:
    """Holds simulation time and the pending-event queue.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds by convention
        throughout this package).
    tracer:
        Instrumentation sink for kernel events (process resume/suspend).
        Defaults to the zero-overhead :data:`~repro.sim.trace.NULL_TRACER`.
    """

    #: Compact the heap only once cancelled entries could dominate it:
    #: when they exceed this fraction of the queue *and* the floor below.
    COMPACT_FRACTION = 0.5
    #: Minimum cancelled entries before compaction is worth an O(n) pass
    #: (tiny heaps never compact — head purging already covers them).
    COMPACT_MIN = 64

    def __init__(self, initial_time: float = 0.0, tracer: Optional[Tracer] = None):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        self.tracer: Tracer = NULL_TRACER if tracer is None else tracer
        #: Events popped off the queue so far — the kernel's work metric,
        #: reported by the bench self-profile.
        self.events_processed = 0
        #: Cancelled Timer entries still buried in the heap.
        self._cancelled_pending = 0
        #: Full-heap compactions performed (observability/benchmarks).
        self.compactions = 0

    # -- clock & introspection -------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between steps)."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        self._purge_cancelled()
        return self._queue[0][0] if self._queue else Infinity

    def _purge_cancelled(self) -> None:
        """Drop cancelled :class:`Timer` entries from the head of the queue.

        Lazy deletion leaves cancelled timers in the heap; purging them
        before they are *observed* means a dead timer never advances the
        clock, never counts as a processed event, and — critically for
        ``run(until=T)`` — never extends a bounded run past the horizon
        just to process a no-op (a governor timeout armed behind a wait
        that ended early, a fabric completion estimate that was re-rated).
        """
        queue = self._queue
        while queue:
            event = queue[0][3]
            if isinstance(event, Timer) and event.cancelled:
                heapq.heappop(queue)
                if self._cancelled_pending > 0:
                    self._cancelled_pending -= 1
            else:
                return

    def _note_timer_cancelled(self) -> None:
        """A live heap entry just became garbage (Timer.cancel hook).

        Head purging alone only reclaims cancelled timers once they reach
        the front, so a workload that arms far-out timers and cancels
        them early (the governor under heavy churn, re-rated fabric
        estimates) can grow the heap well past its live size — and every
        push/pop pays the log of the *inflated* size.  Once cancelled
        entries pass a fraction of the whole queue (was: never), rebuild
        it without them in one O(n) pass, amortised O(1) per cancel.
        """
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= self.COMPACT_MIN
            and self._cancelled_pending >= len(self._queue) * self.COMPACT_FRACTION
        ):
            self._queue = [
                entry for entry in self._queue
                if not (isinstance(entry[3], Timer) and entry[3].cancelled)
            ]
            heapq.heapify(self._queue)
            self._cancelled_pending = 0
            self.compactions += 1

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Enqueue ``event`` to be processed ``delay`` after the current time."""
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def schedule_at(self, event: Event, time: float, priority: int = NORMAL) -> None:
        """Enqueue ``event`` at the exact absolute ``time`` (no
        ``now + delay`` round trip, which can shift the deadline an ulp)."""
        self._eid += 1
        heapq.heappush(self._queue, (time, priority, self._eid, event))

    def call_after(self, delay: float, callback: Callable[[Timer], None]) -> Timer:
        """Schedule ``callback`` to run ``delay`` from now; returns a
        cancellable :class:`~repro.sim.events.Timer` handle."""
        return Timer(self, delay, callback)

    def call_at(self, time: float, callback: Callable[[Timer], None]) -> Timer:
        """Schedule ``callback`` at absolute ``time`` (must not be in the
        past); returns a cancellable handle.  The timer fires at exactly
        ``time``: a deadline computed once and re-armed from a later
        wake-up hits the same float either way."""
        if time < self._now:
            raise ValueError(f"call_at({time}) lies in the past (now={self._now})")
        return Timer(self, time - self._now, callback, at=time)

    def defer(self, callback: Callable[[Timer], None]) -> Timer:
        """Run ``callback`` after the events already queued at the current
        timestamp (a zero-delay timer; returns its cancellable handle).

        This is the batching primitive behind the vector fabric kernel:
        every flow admitted at one timestamp lands in a pending list and a
        single deferred flush re-rates them together, so one wave of n
        admissions costs one water-filling pass instead of n.
        """
        return Timer(self, 0.0, callback)

    def step(self) -> None:
        """Process the single next event; raises :class:`EmptySchedule` if none."""
        self._purge_cancelled()
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self.events_processed += 1
        event._run_callbacks()

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        * ``until=None`` — drain the queue completely.
        * ``until=<number>`` — process every event scheduled at or before the
          horizon, then advance the clock *to* the horizon (even when the
          queue drains early, so ``env.now == until`` afterwards).
        * ``until=<Event>`` — run until that event triggers; its value is
          returned.
        """
        if until is None:
            try:
                while True:
                    self.step()
            except EmptySchedule:
                return None
        if isinstance(until, Event):
            stop = until
            if stop.callbacks is None:  # already processed
                return stop._value
            stop.callbacks.append(_stop_simulation)
            try:
                while True:
                    self.step()
            except EmptySchedule:
                raise SimulationError(
                    "run() ended before the awaited event fired"
                ) from None
            except StopSimulation as marker:
                return marker.args[0]
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} lies in the past (now={self._now})")
        while True:
            self._purge_cancelled()
            if not self._queue or self._queue[0][0] > horizon:
                break
            self.step()
        self._now = horizon
        return None

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event (trigger it with ``succeed``/``fail``)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a process from ``generator`` and return its Process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event that fires once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event that fires once any of ``events`` has fired."""
        return AnyOf(self, events)


def _stop_simulation(event: Event) -> None:
    raise StopSimulation(event._value)


class _CoalescedSlot:
    """Cancellable handle for one callback armed via :class:`CoalescedTimers`.

    Mirrors the :class:`~repro.sim.events.Timer` handle contract —
    ``cancel()`` is idempotent and safe after firing — but cancelling a
    slot never touches the heap unless it was the group's last live
    member.
    """

    __slots__ = ("_callback", "_group", "_cancelled", "_fired")

    def __init__(self, callback: Callable[["_CoalescedSlot"], None]):
        self._callback = callback
        self._group: Optional[_TimerGroup] = None
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    def cancel(self) -> None:
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        group = self._group
        if group is not None:
            group.live -= 1
            if group.live == 0 and group.timer is not None:
                group.timer.cancel()


class _TimerGroup:
    """All slots sharing one (arm timestamp, deadline): one heap Timer."""

    __slots__ = ("slots", "live", "timer")

    def __init__(self, slots: List[_CoalescedSlot]):
        self.slots = slots
        self.live = len(slots)
        self.timer: Optional[Timer] = None

    def _fire(self, _timer: Timer) -> None:
        for slot in self.slots:
            if not slot._cancelled:
                slot._fired = True
                slot._callback(slot)


class CoalescedTimers:
    """Batch same-deadline timer arms into one heap transaction.

    A wave of same-timestamp FSM transitions (the governor arming a
    θ-countdown per rank entering a wait) used to push one heap entry per
    rank.  Arms instead land in a pending map keyed by deadline; a single
    :meth:`Environment.defer` flush — the same batching primitive the
    vector fabric kernel uses for re-rates — converts each deadline's
    surviving slots into *one* :class:`Timer`, fired in arm order.

    Cancelling a slot before the flush costs nothing; after the flush it
    decrements the group's live count and only cancels the underlying
    heap timer when the whole group is dead, so the common
    arm-then-cancel governor churn stays O(1) per slot.
    """

    __slots__ = ("env", "_pending", "_flush_armed", "slots_armed",
                 "heap_timers")

    def __init__(self, env: Environment):
        self.env = env
        self._pending: dict = {}
        self._flush_armed = False
        #: Telemetry: slots armed / underlying heap timers created.
        self.slots_armed = 0
        self.heap_timers = 0

    def call_after(self, delay: float,
                   callback: Callable[[_CoalescedSlot], None]) -> _CoalescedSlot:
        """Arm ``callback`` ``delay`` from now; returns a cancellable slot."""
        return self.call_at(self.env.now + delay, callback)

    def call_at(self, time: float,
                callback: Callable[[_CoalescedSlot], None]) -> _CoalescedSlot:
        if time < self.env.now:
            raise ValueError(
                f"call_at({time}) lies in the past (now={self.env.now})")
        slot = _CoalescedSlot(callback)
        bucket = self._pending.get(time)
        if bucket is None:
            self._pending[time] = [slot]
        else:
            bucket.append(slot)
        if not self._flush_armed:
            self._flush_armed = True
            self.env.defer(self._flush)
        self.slots_armed += 1
        return slot

    def _flush(self, _timer: Timer) -> None:
        """Convert this timestamp's pending arms into one Timer each."""
        self._flush_armed = False
        pending = self._pending
        self._pending = {}
        for deadline, slots in pending.items():
            live = [slot for slot in slots if not slot._cancelled]
            if not live:
                continue
            group = _TimerGroup(live)
            for slot in live:
                slot._group = group
            group.timer = self.env.call_at(deadline, group._fire)
            self.heap_timers += 1
