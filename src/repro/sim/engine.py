"""The discrete-event simulation engine.

:class:`Environment` owns the clock and the event queue.  Model code is
written as generator functions that ``yield`` events; see
:mod:`repro.sim.events` for the event types.

Example
-------
>>> env = Environment()
>>> def hello(env, out):
...     yield env.timeout(3.0)
...     out.append(env.now)
>>> out = []
>>> _ = env.process(hello(env, out))
>>> env.run()
>>> out
[3.0]
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, List, Optional, Tuple

from .events import (
    NORMAL,
    AllOf,
    AnyOf,
    Event,
    Process,
    SimulationError,
    Timeout,
)

Infinity = float("inf")


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(SimulationError):
    """Internal: unwinds :meth:`Environment.run` when the ``until`` event fires."""


class Environment:
    """Holds simulation time and the pending-event queue.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds by convention
        throughout this package).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    # -- clock & introspection -------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between steps)."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else Infinity

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Enqueue ``event`` to be processed ``delay`` after the current time."""
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def step(self) -> None:
        """Process the single next event; raises :class:`EmptySchedule` if none."""
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        event._run_callbacks()

    def run(self, until: Any = None) -> Any:
        """Run until the queue drains, the clock passes ``until`` (number), or
        the ``until`` event triggers (its value is returned)."""
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(f"until={at} lies in the past (now={self._now})")
                stop = Timeout(self, at - self._now)
            if stop.callbacks is None:  # already processed
                return stop._value
            stop.callbacks.append(_stop_simulation)
        try:
            while True:
                self.step()
        except EmptySchedule:
            if stop is not None and not stop.triggered:
                if isinstance(stop, Timeout):
                    # Queue drained before the requested horizon: just advance
                    # the clock to the horizon.
                    self._now = self._now  # clock already at last event
                    return None
                raise SimulationError("run() ended before the awaited event fired")
            return None
        except StopSimulation as marker:
            return marker.args[0]

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event (trigger it with ``succeed``/``fail``)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a process from ``generator`` and return its Process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event that fires once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event that fires once any of ``events`` has fired."""
        return AnyOf(self, events)


def _stop_simulation(event: Event) -> None:
    raise StopSimulation(event._value)
