"""Deterministic discrete-event simulation core (SimPy-style, from scratch).

Public surface::

    env = Environment()
    env.process(gen)          # start a coroutine process
    yield env.timeout(1e-6)   # inside a process
    env.run(until=...)
"""

from .engine import EmptySchedule, Environment, Infinity
from .events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Resource, Signal, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "EmptySchedule",
    "Environment",
    "Event",
    "Infinity",
    "Interrupt",
    "Process",
    "Resource",
    "Signal",
    "SimulationError",
    "Store",
    "Timeout",
]
