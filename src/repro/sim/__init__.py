"""Deterministic discrete-event simulation core (SimPy-style, from scratch).

Public surface::

    env = Environment()
    env.process(gen)          # start a coroutine process
    yield env.timeout(1e-6)   # inside a process
    env.run(until=...)

plus the instrumentation layer (:class:`Tracer` and friends) and the
:class:`SimSession` context object that owns a whole simulation stack
(env + cluster + fabric + power model + tracer).
"""

from .engine import EmptySchedule, Environment, Infinity
from .events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    Timer,
)
from .resources import Resource, Signal, Store
from .trace import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Tracer,
    TraceRecord,
    default_tracer,
    use_tracer,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "EmptySchedule",
    "Environment",
    "Event",
    "Infinity",
    "Interrupt",
    "JsonlTracer",
    "NULL_TRACER",
    "NullTracer",
    "Process",
    "RecordingTracer",
    "Resource",
    "SessionConfigError",
    "Signal",
    "SimSession",
    "SimulationError",
    "Store",
    "Timeout",
    "Timer",
    "TraceRecord",
    "Tracer",
    "default_tracer",
    "use_tracer",
]

_LAZY = {"SimSession", "SessionConfigError", "check_session_specs"}


def __getattr__(name):
    # SimSession pulls in cluster/network/power, which themselves import
    # repro.sim — resolve it lazily to keep the core import-cycle free.
    if name in _LAZY:
        from . import session

        return getattr(session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
