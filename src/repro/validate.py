"""Configuration validation and sanity reporting.

``validate_configuration`` cross-checks a (cluster, network, power) triple
for the physical-consistency conditions the simulator's accuracy relies
on, returning human-readable findings instead of failing deep inside a
run.  ``python -m repro validate`` exposes it on the command line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .cluster.specs import ClusterSpec
from .network.params import NetworkSpec
from .power.model import PowerModel, PowerModelParams


@dataclass(frozen=True)
class Finding:
    severity: str  # "error" | "warning" | "info"
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"[{self.severity}] {self.message}"


def validate_configuration(
    cluster: Optional[ClusterSpec] = None,
    network: Optional[NetworkSpec] = None,
    power: Optional[PowerModelParams] = None,
) -> List[Finding]:
    """Check a configuration triple; returns findings (empty = all good).

    Dataclass ``__post_init__`` hooks already reject malformed values;
    this layer checks *cross-parameter* physics.
    """
    from .sim.session import check_session_specs

    cluster = cluster or ClusterSpec()
    network = network or NetworkSpec()
    power = power or PowerModelParams()
    model = PowerModel(power)
    findings: List[Finding] = []

    # -- structural cluster/network mismatches (SimSession refuses these) --
    for problem in check_session_specs(cluster, network):
        findings.append(Finding("error", problem))

    # -- cluster ----------------------------------------------------------
    cpu = cluster.node.cpu
    if cpu.fmin == cpu.fmax:
        findings.append(
            Finding("warning", "single P-state: DVFS schemes will be no-ops")
        )
    if cpu.dvfs_latency_s > 1e-3:
        findings.append(
            Finding(
                "warning",
                f"Odvfs={cpu.dvfs_latency_s * 1e6:.0f}us is far above the "
                "Nehalem-class 10-15us the per-call schemes assume",
            )
        )
    if cluster.node.sockets != 2:
        findings.append(
            Finding(
                "info",
                f"{cluster.node.sockets} sockets/node: the proposed alltoall "
                "requires exactly 2 and will fall back to Freq-Scaling",
            )
        )

    # -- network ------------------------------------------------------------
    if network.shm_bw <= network.nic_bw / 2:
        findings.append(
            Finding(
                "warning",
                "shared-memory bandwidth below half the NIC rate: intra-node "
                "phases would dominate, contradicting the Fig 2(b) premise",
            )
        )
    if network.cpu_feed_bw < network.nic_bw:
        findings.append(
            Finding(
                "warning",
                "per-flow CPU feed cap below line rate: even unthrottled "
                "cores cannot saturate the HCA",
            )
        )
    if network.eager_threshold > 1 << 20:
        findings.append(
            Finding("warning", "eager threshold above 1MB is unrealistic")
        )
    if network.vectorized:
        from .network.fabric import vector_kernel_available

        if not vector_kernel_available():
            findings.append(
                Finding(
                    "warning",
                    "numpy unavailable: the fabric falls back to the scalar "
                    "kernel (identical results, but large cells run several "
                    "times slower)",
                )
            )
    # -- power ---------------------------------------------------------------
    p_fmax = model.full_core_power(cpu.fmax)
    p_fmin = model.full_core_power(cpu.fmin)
    if cpu.fmin < cpu.fmax and p_fmin >= p_fmax:
        findings.append(
            Finding("error", "core power not increasing with frequency")
        )
    idle_factor = power.activity_factors.get(
        next(a for a in power.activity_factors if a.value == "idle"), 0.3
    )
    if idle_factor >= 1.0:
        findings.append(
            Finding("error", "idle activity factor must be below active (1.0)")
        )
    system_w = (
        power.node_base_w * cluster.nodes + cluster.total_cores * p_fmax
    )
    per_core_total = system_w / max(cluster.total_cores, 1)
    if per_core_total > 100.0:
        findings.append(
            Finding(
                "warning",
                f"{per_core_total:.0f} W per core including overheads — "
                "outside the 2008-2012 Xeon envelope the calibration targets",
            )
        )
    return findings


def is_valid(findings: List[Finding]) -> bool:
    """True when no *errors* were found (warnings/info allowed)."""
    return not any(f.severity == "error" for f in findings)
