"""Cluster-shaped InfiniBand network: per-node HCA links on one switch.

Builds the link graph for a :class:`~repro.cluster.topology.Cluster`:

* ``nic_up:<n>`` / ``nic_dn:<n>`` — the node's HCA send/receive directions.
  Their capacity follows the node's DVFS level (uncore feed limit).
* ``mem:<n>`` — the node's aggregate memory bandwidth, shared by concurrent
  shared-memory copies (the intra-node phase of multi-core collectives).
* ``switch`` — optional aggregate backplane (∞ for a non-blocking crossbar).
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..cluster.topology import Cluster, Node
from ..sim import Environment, Event
from .fabric import Fabric, Link
from .params import NetworkSpec


class IBNetwork:
    """The fabric plus the cluster-specific link topology."""

    def __init__(self, env: Environment, cluster: Cluster, spec: Optional[NetworkSpec] = None):
        self.env = env
        self.cluster = cluster
        self.spec = spec or NetworkSpec()
        self.fabric = Fabric(env, self.spec)
        self._switch: Optional[Link] = None
        #: Per-node HCA utilisation factor for interrupt-driven ("blocking")
        #: progression: sleeping ranks cannot keep the HCA queues full, so
        #: the achievable node bandwidth drops (set by the MPI job).
        self.progress_factor = {node.node_id: 1.0 for node in cluster.nodes}
        for node in cluster.nodes:
            self._build_node_links(node)
        if not math.isinf(self.spec.switch_oversubscription):
            self._switch = self.fabric.add_link(
                "switch", self.spec.nic_bw * self.spec.switch_oversubscription
            )
        self.n_racks = cluster.spec.racks
        if self.n_racks > 1:
            cap = self.spec.nic_bw * self.spec.rack_uplink_factor
            for rack in range(self.n_racks):
                self.fabric.add_link(f"rack_up:{rack}", cap)
                self.fabric.add_link(f"rack_dn:{rack}", cap)

    def _build_node_links(self, node: Node) -> None:
        spec = self.spec

        def nic_capacity(node=node) -> float:
            return (
                spec.nic_bw
                * spec.nic_dvfs_factor(node.mean_dvfs_ratio)
                * self.progress_factor[node.node_id]
            )

        self.fabric.add_link(f"nic_up:{node.node_id}", spec.nic_bw, nic_capacity)
        self.fabric.add_link(f"nic_dn:{node.node_id}", spec.nic_bw, nic_capacity)
        self.fabric.add_link(f"mem:{node.node_id}", spec.mem_bw_node)

    # -- link lookups ---------------------------------------------------------
    def nic_up(self, node_id: int) -> Link:
        return self.fabric.link(f"nic_up:{node_id}")

    def nic_dn(self, node_id: int) -> Link:
        return self.fabric.link(f"nic_dn:{node_id}")

    def mem(self, node_id: int) -> Link:
        return self.fabric.link(f"mem:{node_id}")

    def rack_up(self, rack: int) -> Link:
        return self.fabric.link(f"rack_up:{rack}")

    def rack_dn(self, rack: int) -> Link:
        return self.fabric.link(f"rack_dn:{rack}")

    def inter_node_path(self, src_node: int, dst_node: int) -> List[Link]:
        """Links a bulk transfer from ``src_node`` to ``dst_node`` crosses.

        Cross-rack traffic additionally traverses both racks' (typically
        oversubscribed) leaf-to-spine uplinks."""
        path = [self.nic_up(src_node), self.nic_dn(dst_node)]
        if self.n_racks > 1:
            src_rack = self.cluster.spec.rack_of_node(src_node)
            dst_rack = self.cluster.spec.rack_of_node(dst_node)
            if src_rack != dst_rack:
                path.insert(1, self.rack_up(src_rack))
                path.insert(2, self.rack_dn(dst_rack))
        if self._switch is not None:
            path.insert(1, self._switch)
        return path

    def loopback_path(self, node_id: int) -> List[Link]:
        """HCA loopback (used intra-node in blocking mode, §II-B)."""
        return [self.nic_up(node_id), self.nic_dn(node_id)]

    # -- transfers -------------------------------------------------------------
    def transfer_inter(
        self,
        src_node: int,
        dst_node: int,
        nbytes: float,
        cpu_cap: float = math.inf,
        label: str = "",
    ) -> Event:
        """Bulk transfer between two nodes (event fires at completion)."""
        if src_node == dst_node:
            path = self.loopback_path(src_node)
        else:
            path = self.inter_node_path(src_node, dst_node)
        return self.fabric.transfer(path, nbytes, cpu_cap=cpu_cap, label=label)

    def transfer_shm(
        self,
        node_id: int,
        nbytes: float,
        pair_cap: float,
        label: str = "",
    ) -> Event:
        """Shared-memory copy on ``node_id``: capped by the pair's copy
        bandwidth and sharing the node's memory link with other copies."""
        return self.fabric.transfer(
            [self.mem(node_id)], nbytes, cpu_cap=pair_cap, label=label
        )

    def dvfs_changed(self, node_id: Optional[int] = None) -> None:
        """Propagate a DVFS change into NIC capacities mid-flight.

        With ``node_id`` given, only that node's HCA links are marked
        changed, so the fabric re-rates just the flows touching them.
        """
        if node_id is None:
            self.fabric.capacities_changed()
        else:
            self.fabric.capacities_changed(
                [self.nic_up(node_id), self.nic_dn(node_id)]
            )
