"""Flow-level network fabric with max-min fair bandwidth sharing.

Every bulk transfer is a :class:`Flow` across an ordered set of
:class:`Link` s (e.g. source NIC uplink → destination NIC downlink; or the
node's memory link for shared-memory copies).  Whenever the flow population
or a link capacity changes, all flow rates are recomputed with the classic
max-min water-filling algorithm (respecting per-flow caps, which model the
sending CPU's pipeline feed limit).

This is where the paper's contention parameter ``Cnet`` comes from in our
reproduction: it is *emergent* — eight ranks per node draining through one
QDR HCA simply share 3 GB/s — rather than a fitted constant.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..sim import Environment, Event
from .params import NetworkSpec

#: Residual bytes below which a flow is considered complete (far smaller
#: than any datatype we transfer).
_EPSILON_BYTES = 0.5


class Link:
    """A unidirectional capacity-constrained resource.

    ``capacity_fn`` (if given) is consulted on every recomputation so that
    capacities can track external state — the NIC links use it to follow
    the node's DVFS level (uncore slowdown).
    """

    __slots__ = ("name", "base_capacity", "capacity_fn")

    def __init__(
        self,
        name: str,
        base_capacity: float,
        capacity_fn: Optional[Callable[[], float]] = None,
    ):
        if base_capacity <= 0:
            raise ValueError(f"link {name}: capacity must be positive")
        self.name = name
        self.base_capacity = base_capacity
        self.capacity_fn = capacity_fn

    @property
    def capacity(self) -> float:
        if self.capacity_fn is not None:
            return self.capacity_fn()
        return self.base_capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.capacity / 1e9:.2f} GB/s>"


class Flow:
    """One in-flight bulk transfer."""

    __slots__ = ("links", "remaining", "rate", "cap", "event", "label")

    def __init__(
        self,
        links: Tuple[Link, ...],
        nbytes: float,
        cap: float,
        event: Event,
        label: str = "",
    ):
        self.links = links
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.cap = cap
        self.event = event
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Flow {self.label} rem={self.remaining:.0f}B rate={self.rate / 1e9:.2f}GB/s>"


def maxmin_rates(
    flows: Sequence[Flow],
    capacities: Dict[Link, float],
    congestion: float = 0.0,
    congestion_saturation: int = 7,
) -> Dict[Flow, float]:
    """Max-min fair allocation with per-flow caps (water-filling).

    Repeatedly finds the most constrained resource — either a link whose
    fair share is smallest or a flow whose cap binds first — freezes the
    affected flows at that rate, removes their demand, and iterates.

    ``congestion`` degrades a link carrying n flows to
    ``capacity / (1 + congestion·min(n−1, congestion_saturation))``
    before sharing.
    """
    rates: Dict[Flow, float] = {}
    if congestion > 0.0:
        load: Dict[Link, int] = {}
        for flow in flows:
            for link in flow.links:
                load[link] = load.get(link, 0) + 1
        capacities = {
            link: cap
            / (1.0 + congestion * min(load.get(link, 1) - 1, congestion_saturation))
            for link, cap in capacities.items()
        }
    residual = dict(capacities)
    unfrozen = list(flows)
    while unfrozen:
        # Fair share per link among its unfrozen flows.
        link_share: Dict[Link, float] = {}
        counts: Dict[Link, int] = {}
        for flow in unfrozen:
            for link in flow.links:
                counts[link] = counts.get(link, 0) + 1
        for link, n in counts.items():
            link_share[link] = residual[link] / n
        bottleneck_share = min(link_share.values()) if link_share else math.inf
        min_cap = min(f.cap for f in unfrozen)
        if min_cap < bottleneck_share:
            # Cap binds first: freeze all flows at that cap level.
            level = min_cap
            frozen = [f for f in unfrozen if f.cap <= level]
        else:
            level = bottleneck_share
            tight = {l for l, s in link_share.items() if s <= level * (1 + 1e-12)}
            frozen = [f for f in unfrozen if any(l in tight for l in f.links)]
        for flow in frozen:
            rate = min(level, flow.cap)
            rates[flow] = rate
            for link in flow.links:
                residual[link] = max(0.0, residual[link] - rate)
            unfrozen.remove(flow)
    return rates


class Fabric:
    """Tracks all active flows and advances them through simulated time."""

    def __init__(self, env: Environment, spec: NetworkSpec):
        self.env = env
        self.spec = spec
        self._links: Dict[str, Link] = {}
        self._flows: List[Flow] = []
        self._last_settle = env.now
        self._timer_generation = 0
        #: Total bytes ever carried (observability / tests).
        self.bytes_delivered = 0.0
        #: Per-link counters: bytes carried and flows started (observability
        #: for topology studies — e.g. traffic over rack uplinks).
        self.link_bytes: Dict[str, float] = {}
        self.link_flows: Dict[str, int] = {}

    # -- link management -----------------------------------------------------
    def add_link(
        self,
        name: str,
        capacity: float,
        capacity_fn: Optional[Callable[[], float]] = None,
    ) -> Link:
        if name in self._links:
            raise ValueError(f"duplicate link {name}")
        link = Link(name, capacity, capacity_fn)
        self._links[name] = link
        return link

    def link(self, name: str) -> Link:
        return self._links[name]

    def has_link(self, name: str) -> bool:
        return name in self._links

    @property
    def active_flows(self) -> List[Flow]:
        return list(self._flows)

    # -- transfers -------------------------------------------------------------
    def transfer(
        self,
        links: Sequence[Link],
        nbytes: float,
        cpu_cap: float = math.inf,
        label: str = "",
    ) -> Event:
        """Start a bulk transfer; the returned event fires at completion
        with the completion time as its value."""
        event = self.env.event()
        if nbytes <= 0:
            event.succeed(self.env.now)
            return event
        if not links:
            raise ValueError("a transfer needs at least one link")
        flow = Flow(tuple(links), nbytes, cpu_cap, event, label=label)
        for link in flow.links:
            self.link_bytes[link.name] = self.link_bytes.get(link.name, 0.0) + nbytes
            self.link_flows[link.name] = self.link_flows.get(link.name, 0) + 1
        self._settle()
        self._flows.append(flow)
        self._reallocate()
        return event

    def capacities_changed(self) -> None:
        """Re-read link capacities (call after DVFS transitions)."""
        if self._flows:
            self._settle()
            self._reallocate()

    # -- internals ---------------------------------------------------------------
    def _settle(self) -> None:
        """Drain bytes at current rates from the last settle point to now."""
        now = self.env.now
        dt = now - self._last_settle
        if dt > 0:
            for flow in self._flows:
                moved = flow.rate * dt
                flow.remaining -= moved
                self.bytes_delivered += moved
        self._last_settle = now
        # Complete anything that just finished.
        done = [f for f in self._flows if f.remaining <= _EPSILON_BYTES]
        if done:
            for flow in done:
                self.bytes_delivered += max(flow.remaining, 0.0)
                flow.remaining = 0.0
                self._flows.remove(flow)
                flow.event.succeed(now)

    def _reallocate(self) -> None:
        """Recompute max-min rates and arm the next-completion timer."""
        self._timer_generation += 1
        if not self._flows:
            return
        capacities = {}
        for flow in self._flows:
            for link in flow.links:
                if link not in capacities:
                    capacities[link] = link.capacity
        rates = maxmin_rates(
            self._flows,
            capacities,
            self.spec.flow_congestion,
            self.spec.flow_congestion_saturation,
        )
        next_done = math.inf
        for flow in self._flows:
            flow.rate = rates[flow]
            if flow.rate > 0:
                next_done = min(next_done, flow.remaining / flow.rate)
        if math.isinf(next_done):  # pragma: no cover - all flows stalled
            raise RuntimeError("fabric deadlock: active flows with zero rate")
        generation = self._timer_generation
        timer = self.env.timeout(next_done)
        timer.callbacks.append(lambda _ev: self._on_timer(generation))

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # superseded by a newer reallocation
        self._settle()
        self._reallocate()
