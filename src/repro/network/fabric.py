"""Flow-level network fabric with max-min fair bandwidth sharing.

Every bulk transfer is a :class:`Flow` across an ordered set of
:class:`Link` s (e.g. source NIC uplink → destination NIC downlink; or the
node's memory link for shared-memory copies).  Whenever the flow population
or a link capacity changes, flow rates are recomputed with the classic
max-min water-filling algorithm (respecting per-flow caps, which model the
sending CPU's pipeline feed limit).

Re-rating is *incremental*: the fabric keeps a link → flows index and,
when a flow arrives/finishes or a link's capacity moves, re-runs
water-filling only over the affected **connected component** — the flows
transitively sharing links with a changed link.  Components share no
links, so their allocations are independent and the untouched ones keep
their rates (this is exact, not an approximation).  Byte progress is
settled lazily per flow (each flow remembers when its rate last changed).
Set ``NetworkSpec(incremental_rerate=False)`` to force the historical
whole-fabric recompute (the baseline
``benchmarks/bench_kernel_scaling.py`` measures against).

Two interchangeable kernels implement this contract (DESIGN.md §12):

* :class:`ScalarFabric` — the reference object-graph implementation:
  per-flow completion predictions on a min-heap guarded by per-flow
  epochs, one re-rate per fabric event.
* ``repro.network.kernel.VectorFabric`` — the numpy implementation:
  flow state lives in slot-addressed arrays, same-timestamp admissions
  are batched into one deferred water-filling flush, and the single
  wake-up timer is armed from an ``argmin`` over a persistent
  finish-time vector instead of per-flow heap pushes.

``Fabric(env, spec)`` is a factory returning the vector kernel when
``spec.vectorized`` is true and numpy is importable, else the scalar
kernel.  Both produce identical per-flow rates and completion times —
the scalar path is kept as the differential-testing oracle
(``tests/network/test_fabric_vectorized.py``).  To make that equality
exact (not approximate), every floating-point fold both kernels share is
performed in one canonical order: components are walked in flow-admission
(``seq``) order, water-filling subtracts each link's frozen demand as a
single summed delta, and due completions are processed in
``(finish, seq)`` order.

This is where the paper's contention parameter ``Cnet`` comes from in our
reproduction: it is *emergent* — eight ranks per node draining through one
QDR HCA simply share 3 GB/s — rather than a fitted constant.
"""

from __future__ import annotations

import heapq
import math
import operator
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim import Environment, Event
from ..sim.events import Timer
from .params import NetworkSpec

#: Residual bytes below which a flow is considered complete (far smaller
#: than any datatype we transfer).
_EPSILON_BYTES = 0.5

#: Tight-link detection tolerance for water-filling: a link is at the
#: current water level when its fair share ``s`` satisfies
#: ``s <= max(level·(1+REL), level + ABS)``.  The relative term absorbs
#: accumulated rounding at physical bandwidths; the absolute term keeps
#: equal-share links tie-breaking consistently when the level itself is
#: ~0 (heavily faulted links), where a purely relative tolerance
#: degenerates to exact comparison.  ABS is far below any physically
#: meaningful rate (1e-24 B/s ≈ one byte per 3e7 ages of the universe).
_TIGHT_REL = 1e-12
_TIGHT_ABS = 1e-24

_seq_of = operator.attrgetter("seq")


def _tight_limit(level: float) -> float:
    """Shares at or below this value count as tight at ``level``."""
    rel = level * (1.0 + _TIGHT_REL)
    ab = level + _TIGHT_ABS
    return ab if ab > rel else rel


class Link:
    """A unidirectional capacity-constrained resource.

    ``capacity_fn`` (if given) is consulted on every recomputation so that
    capacities can track external state — the NIC links use it to follow
    the node's DVFS level (uncore slowdown).  ``fault_factor`` is the
    fault layer's multiplicative degradation (see :mod:`repro.faults`);
    it stays exactly 1.0 — and therefore bit-invisible — unless a fault
    plan is active.
    """

    __slots__ = ("name", "base_capacity", "capacity_fn", "fault_factor")

    def __init__(
        self,
        name: str,
        base_capacity: float,
        capacity_fn: Optional[Callable[[], float]] = None,
    ):
        if base_capacity <= 0:
            raise ValueError(f"link {name}: capacity must be positive")
        self.name = name
        self.base_capacity = base_capacity
        self.capacity_fn = capacity_fn
        self.fault_factor = 1.0

    @property
    def capacity(self) -> float:
        cap = (
            self.capacity_fn() if self.capacity_fn is not None
            else self.base_capacity
        )
        if self.fault_factor != 1.0:
            cap *= self.fault_factor
        return cap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.capacity / 1e9:.2f} GB/s>"


class Flow:
    """One in-flight bulk transfer (scalar-kernel state layout)."""

    __slots__ = (
        "links",
        "nbytes",
        "remaining",
        "rate",
        "cap",
        "event",
        "label",
        "seq",
        "started_at",
        "updated_at",
        "_epoch",
    )

    def __init__(
        self,
        links: Tuple[Link, ...],
        nbytes: float,
        cap: float,
        event: Event,
        label: str = "",
    ):
        self.links = links
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.cap = cap
        self.event = event
        self.label = label
        #: Fabric-assigned admission number (deterministic tie-break).
        self.seq = -1
        self.started_at = 0.0
        #: Simulation time up to which ``remaining`` has been settled.
        self.updated_at = 0.0
        #: Bumped on every rate change; stale finish-time predictions in
        #: the completion heap carry an older epoch and are skipped.
        self._epoch = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Flow {self.label} rem={self.remaining:.0f}B rate={self.rate / 1e9:.2f}GB/s>"


def maxmin_rates(
    flows: Sequence[Flow],
    capacities: Dict[Link, float],
    congestion: float = 0.0,
    congestion_saturation: int = 7,
) -> Dict[Flow, float]:
    """Max-min fair allocation with per-flow caps (water-filling).

    Repeatedly finds the most constrained resource — either a link whose
    fair share is smallest or a flow whose cap binds first — freezes the
    affected flows at that rate, removes their demand, and iterates.
    The per-link membership index and the cap-sorted cursor are maintained
    across rounds, so freezing a flow is O(path length) instead of the
    former O(n) list removal plus per-round full count rebuilds.

    ``congestion`` degrades a link carrying n flows to
    ``capacity / (1 + congestion·min(n−1, congestion_saturation))``
    before sharing.

    Floating-point folds are canonical (see module docstring): the flows
    frozen in a round are processed in their position order within
    ``flows``, and each link's residual is reduced once per round by the
    summed demand of that round's frozen flows — bit-for-bit what the
    vector kernel's ``np.add.at`` accumulation computes.
    """
    rates: Dict[Flow, float] = {}
    if not flows:
        return rates
    if congestion > 0.0:
        load: Dict[Link, int] = {}
        for flow in flows:
            for link in flow.links:
                load[link] = load.get(link, 0) + 1
        capacities = {
            link: cap
            / (1.0 + congestion * min(load.get(link, 1) - 1, congestion_saturation))
            for link, cap in capacities.items()
        }
    residual = dict(capacities)
    # Insertion-ordered structures keep every iteration deterministic
    # (plain sets would walk in id() order, which varies between runs).
    unfrozen: Dict[Flow, None] = dict.fromkeys(flows)
    members: Dict[Link, Dict[Flow, None]] = {}
    for flow in unfrozen:
        for link in flow.links:
            members.setdefault(link, {})[flow] = None
    flow_list = list(unfrozen)
    order = {flow: i for i, flow in enumerate(flow_list)}
    by_cap = sorted(range(len(flow_list)), key=lambda i: (flow_list[i].cap, i))
    cap_ptr = 0
    while unfrozen:
        while cap_ptr < len(by_cap) and flow_list[by_cap[cap_ptr]] not in unfrozen:
            cap_ptr += 1
        min_cap = (
            flow_list[by_cap[cap_ptr]].cap if cap_ptr < len(by_cap) else math.inf
        )
        link_share: Dict[Link, float] = {}
        for link, flows_on in members.items():
            if flows_on:
                link_share[link] = residual[link] / len(flows_on)
        bottleneck_share = min(link_share.values()) if link_share else math.inf
        if min_cap < bottleneck_share:
            # Cap binds first: freeze all flows at that cap level.
            level = min_cap
            frozen: List[Flow] = []
            j = cap_ptr
            while j < len(by_cap):
                flow = flow_list[by_cap[j]]
                if flow.cap > level:
                    break
                if flow in unfrozen:
                    frozen.append(flow)
                j += 1
        else:
            level = bottleneck_share
            limit = _tight_limit(level)
            tight = [lk for lk, s in link_share.items() if s <= limit]
            frozen_set: Dict[Flow, None] = {}
            for link in tight:
                for flow in members[link]:
                    frozen_set[flow] = None
            frozen = list(frozen_set)
        frozen.sort(key=order.__getitem__)
        delta: Dict[Link, float] = {}
        for flow in frozen:
            rate = min(level, flow.cap)
            rates[flow] = rate
            for link in flow.links:
                delta[link] = delta.get(link, 0.0) + rate
                del members[link][flow]
            del unfrozen[flow]
        for link, d in delta.items():
            residual[link] = max(0.0, residual[link] - d)
    return rates


class FabricBase:
    """State and bookkeeping shared by the scalar and vector kernels:
    link registry, the active-flow set, the link → flows index, per-link
    admission counters, and the zero-rated (stalled) flow set."""

    def __init__(self, env: Environment, spec: NetworkSpec):
        self.env = env
        self.spec = spec
        self._links: Dict[str, Link] = {}
        #: Active flows in admission order (ordered set).
        self._flows: Dict[object, None] = {}
        #: link → active flows crossing it (ordered set per link).
        self._flows_on: Dict[Link, Dict[object, None]] = {}
        self._timer: Optional[Timer] = None
        self._seq = 0
        #: Flows whose last water-filling left them at rate 0 (their
        #: bottleneck link is fully faulted).  A zero-rated flow has no
        #: completion prediction, so nothing on its own links will ever
        #: wake it; every re-rate therefore extends its seed links with
        #: the stalled flows' links, re-rating them as soon as *any*
        #: component event fires (and immediately once capacity returns).
        self._stalled: Dict[object, None] = {}
        #: Components re-rated since construction (self-profiling metric:
        #: pairs with ``flows_rerated`` to show the incremental win).
        self.rerate_calls = 0
        self.flows_rerated = 0
        #: Total bytes ever *delivered* (observability / tests).
        self.bytes_delivered = 0.0
        #: Per-link flows-started counters (observability for topology
        #: studies — e.g. traffic over rack uplinks).  Credited at
        #: admission; per-link *bytes* (``link_bytes``) are settled at
        #: delivery time, alongside ``bytes_delivered``.
        self.link_flows: Dict[str, int] = {}

    # -- link management -----------------------------------------------------
    def add_link(
        self,
        name: str,
        capacity: float,
        capacity_fn: Optional[Callable[[], float]] = None,
    ) -> Link:
        if name in self._links:
            raise ValueError(f"duplicate link {name}")
        link = Link(name, capacity, capacity_fn)
        self._links[name] = link
        self._flows_on[link] = {}
        self.link_flows[name] = 0
        self._register_link(link)
        return link

    def _register_link(self, link: Link) -> None:
        """Kernel hook: called once per new link."""

    def link(self, name: str) -> Link:
        return self._links[name]

    def has_link(self, name: str) -> bool:
        return name in self._links

    # -- transfers -------------------------------------------------------------
    def transfer(
        self,
        links: Sequence[Link],
        nbytes: float,
        cpu_cap: float = math.inf,
        label: str = "",
    ) -> Event:
        """Start a bulk transfer; the returned event fires at completion
        with the completion time as its value."""
        env = self.env
        event = Event(env)
        if nbytes <= 0:
            event.succeed(env.now)
            return event
        if not links:
            raise ValueError("a transfer needs at least one link")
        now = env.now
        flow = self._make_flow(tuple(links), nbytes, cpu_cap, event, label, now)
        self._flows[flow] = None
        link_flows = self.link_flows
        for link in flow.links:
            self._flows_on[link][flow] = None
            link_flows[link.name] += 1
        tracer = env.tracer
        if tracer.enabled:
            tracer.flow_start(
                now, label, float(nbytes), [lk.name for lk in flow.links],
                seq=flow.seq,
            )
        self._admit(flow)
        return event

    # -- kernel hooks --------------------------------------------------------
    def _make_flow(self, links, nbytes, cap, event, label, now):
        raise NotImplementedError

    def _admit(self, flow) -> None:
        raise NotImplementedError

    def capacities_changed(self, links: Optional[Iterable[Link]] = None) -> None:
        raise NotImplementedError

    # -- shared internals ----------------------------------------------------
    def _carrying_links(self) -> List[Link]:
        return [lk for lk, flows_on in self._flows_on.items() if flows_on]

    def _stalled_links(self) -> List[Link]:
        return [lk for flow in self._stalled for lk in flow.links]

    def _component(self, seed_links: Iterable[Link]) -> List[object]:
        """All active flows transitively sharing links with ``seed_links``,
        in admission (``seq``) order — the canonical fold order both
        kernels settle and water-fill in."""
        component: Dict[object, None] = {}
        seen_links = set()
        stack: List[Link] = []
        for link in seed_links:
            if link not in seen_links:
                seen_links.add(link)
                stack.append(link)
        while stack:
            link = stack.pop()
            for flow in self._flows_on.get(link, ()):
                if flow in component:
                    continue
                component[flow] = None
                for other in flow.links:
                    if other not in seen_links:
                        seen_links.add(other)
                        stack.append(other)
        flows = list(component)
        flows.sort(key=_seq_of)
        return flows


class ScalarFabric(FabricBase):
    """Reference kernel: per-flow objects, a completion min-heap guarded
    by per-flow epochs, one water-filling pass per fabric event."""

    def __init__(self, env: Environment, spec: NetworkSpec):
        super().__init__(env, spec)
        #: Min-heap of (finish_time, seq, epoch, flow) predictions; entries
        #: whose epoch lags the flow's are stale and skipped on pop.
        self._completions: List[Tuple[float, int, int, Flow]] = []
        #: Per-link bytes *delivered* (settled with ``bytes_delivered``).
        self.link_bytes: Dict[str, float] = {}

    def _register_link(self, link: Link) -> None:
        self.link_bytes[link.name] = 0.0

    @property
    def active_flows(self) -> List[Flow]:
        return list(self._flows)

    def _make_flow(self, links, nbytes, cap, event, label, now) -> Flow:
        flow = Flow(links, nbytes, cap, event, label=label)
        flow.seq = self._seq
        self._seq += 1
        flow.started_at = now
        flow.updated_at = now
        return flow

    def _admit(self, flow: Flow) -> None:
        self._rerate(flow.links)

    def capacities_changed(self, links: Optional[Iterable[Link]] = None) -> None:
        """Re-read link capacities (call after DVFS transitions).

        With ``links`` given, only the components touching those links are
        re-rated; without, every link currently carrying flows is treated
        as changed (the safe legacy behaviour).
        """
        if not self._flows:
            return
        if links is None:
            links = self._carrying_links()
        self._rerate(links)

    # -- internals ---------------------------------------------------------------
    def _settle_flow(self, flow: Flow, now: float) -> None:
        """Drain bytes at the current rate since the flow's last update."""
        dt = now - flow.updated_at
        if dt > 0.0 and flow.rate > 0.0:
            moved = flow.rate * dt
            if moved > flow.remaining:
                moved = flow.remaining
            flow.remaining -= moved
            self.bytes_delivered += moved
            if moved > 0.0:
                link_bytes = self.link_bytes
                for link in flow.links:
                    link_bytes[link.name] += moved
        flow.updated_at = now

    def _rerate(self, changed_links: Iterable[Link]) -> None:
        """Settle and re-run water-filling over the affected component."""
        if not self._flows:
            self._arm_timer()
            return
        if self._stalled:
            changed_links = list(changed_links) + self._stalled_links()
        if self.spec.incremental_rerate:
            component = self._component(changed_links)
        else:
            component = list(self._flows)  # admission order == seq order
        if not component:
            self._arm_timer()
            return
        self.rerate_calls += 1
        self.flows_rerated += len(component)
        now = self.env.now
        capacities: Dict[Link, float] = {}
        for flow in component:
            self._settle_flow(flow, now)
            for link in flow.links:
                if link not in capacities:
                    capacities[link] = link.capacity
        rates = maxmin_rates(
            component,
            capacities,
            self.spec.flow_congestion,
            self.spec.flow_congestion_saturation,
        )
        stalled = self._stalled
        for flow in component:
            rate = rates[flow]
            flow.rate = rate
            flow._epoch += 1
            if rate > 0.0:
                if stalled:
                    stalled.pop(flow, None)
                finish = flow.updated_at + flow.remaining / rate
                heapq.heappush(
                    self._completions, (finish, flow.seq, flow._epoch, flow)
                )
            else:
                # Fully faulted bottleneck: no completion prediction.
                # Tracked so the next component event re-rates it (see
                # FabricBase._stalled) instead of dropping it forever.
                stalled[flow] = None
        self._arm_timer()

    def _arm_timer(self) -> None:
        """Point the (single, cancellable) wake-up at the next prediction."""
        heap = self._completions
        while heap:
            _, _, epoch, flow = heap[0]
            if flow in self._flows and epoch == flow._epoch:
                break
            heapq.heappop(heap)
        if not heap:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            return
        t_next = heap[0][0]
        if self._timer is not None:
            if not self._timer.cancelled and self._timer.at <= t_next:
                return  # fires at or before the new prediction; re-arms itself
            self._timer.cancel()
        self._timer = self.env.call_at(max(t_next, self.env.now), self._on_timer)

    def _on_timer(self, _timer: Timer) -> None:
        self._timer = None
        now = self.env.now
        heap = self._completions
        due: List[Flow] = []
        while heap and heap[0][0] <= now:
            _, _, epoch, flow = heapq.heappop(heap)
            if flow in self._flows and epoch == flow._epoch:
                due.append(flow)
        # Settle all due flows first, then process completions — two
        # passes so the byte-counter fold order matches the vector
        # kernel's batched settle + batched completion credit.
        for flow in due:
            self._settle_flow(flow, now)
        freed: Dict[Link, None] = {}
        tracer = self.env.tracer
        for flow in due:
            if flow.remaining <= _EPSILON_BYTES:
                tail = flow.remaining
                self.bytes_delivered += tail
                if tail > 0.0:
                    link_bytes = self.link_bytes
                    for link in flow.links:
                        link_bytes[link.name] += tail
                flow.remaining = 0.0
                del self._flows[flow]
                for link in flow.links:
                    del self._flows_on[link][flow]
                    freed[link] = None
                if tracer.enabled:
                    tracer.flow_finish(
                        now,
                        flow.label,
                        flow.nbytes,
                        flow.started_at,
                        [lk.name for lk in flow.links],
                        seq=flow.seq,
                        delivered=flow.nbytes,
                    )
                flow.event.succeed(now)
            else:
                # Prediction landed a shade early (float slack): repush.
                flow._epoch += 1
                if flow.rate > 0.0:
                    finish = flow.updated_at + flow.remaining / flow.rate
                    heapq.heappush(heap, (finish, flow.seq, flow._epoch, flow))
                else:
                    # Re-rated to zero between prediction and wake-up:
                    # park it with the stalled set rather than dropping
                    # the flow with no prediction at all.
                    self._stalled[flow] = None
        if freed:
            self._rerate(freed)
        else:
            self._arm_timer()


def vector_kernel_available() -> bool:
    """True when the numpy-backed fabric kernel can be used."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is a baked-in dep here
        return False
    return True


def Fabric(env: Environment, spec: NetworkSpec) -> FabricBase:
    """Build the fabric kernel selected by ``spec``.

    Returns the numpy :class:`~repro.network.kernel.VectorFabric` when
    ``spec.vectorized`` is true and numpy is importable; otherwise the
    :class:`ScalarFabric` reference kernel.  Both are drop-in equivalent
    (identical rates, completion times, and event ordering).
    """
    if getattr(spec, "vectorized", True) and vector_kernel_available():
        from .kernel import VectorFabric

        return VectorFabric(env, spec)
    return ScalarFabric(env, spec)
