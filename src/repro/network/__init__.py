"""InfiniBand network model: links, flows, max-min sharing, QDR parameters."""

from .fabric import Fabric, Flow, Link, maxmin_rates
from .ibnet import IBNetwork
from .params import NetworkSpec

__all__ = ["Fabric", "Flow", "IBNetwork", "Link", "NetworkSpec", "maxmin_rates"]
