"""InfiniBand network model: links, flows, max-min sharing, QDR parameters."""

from .fabric import Fabric, Flow, Link, ScalarFabric, maxmin_rates, vector_kernel_available
from .ibnet import IBNetwork
from .params import NetworkSpec

__all__ = [
    "Fabric",
    "Flow",
    "IBNetwork",
    "Link",
    "NetworkSpec",
    "ScalarFabric",
    "maxmin_rates",
    "vector_kernel_available",
]
