"""numpy array kernel for the fabric (DESIGN.md §12).

The scalar fabric spends its time in per-flow dict surgery: every
admission, completion, and capacity change walks Python objects, re-runs
water-filling over dicts, and pushes one heap entry per re-rated flow.
This module keeps the same *model* — lazy byte settling, component-local
max-min re-rating, a single wake-up timer — but stores all mutable flow
state in slot-addressed numpy arrays (:class:`FlowTable`) and turns each
hot operation into whole-array expressions:

* **Admission batching** — ``transfer()`` only appends the flow to a
  pending list and arms a zero-delay flush via ``env.defer``; the flush
  rates every same-timestamp admission wave in one segmented
  water-filling call (:func:`waterfill`).  Water-filling is memoryless
  (rates depend only on the current population), so intermediate
  same-timestamp re-rates the scalar kernel performs are pure waste —
  only the last one per component determines the rates.  The flush
  computes exactly that final re-rate per touched component.
* **Vector water-filling** — :func:`waterfill` runs whole rounds of the
  share/freeze loop as array ops over a links×flows incidence relation
  in COO form (``rep_flow``/``rep_link``): fair shares via
  ``np.bincount`` membership counts, cap-binding and tight-link
  detection via boolean masks, per-segment water levels via
  ``np.minimum.at`` so disjoint components solved in one call cannot
  couple numerically.
* **Batched completions** — predicted finish times live in one persistent
  vector; the single timer is armed from its ``min()`` and due flows are
  selected with one comparison, replacing the scalar kernel's
  heap-push-per-flow-per-re-rate.

Equivalence with the scalar oracle is exact, not approximate: both
kernels fold floating-point sums in one canonical order (components in
admission order, per-link frozen demand summed then subtracted once,
completions in ``(finish, seq)`` order), so per-flow rates, remaining
bytes, and completion times are bit-identical
(``tests/network/test_fabric_vectorized.py``).  Aggregate byte counters
(``bytes_delivered``, ``link_bytes``) can differ at the last ulp in rare
same-timestamp component-bridging interleavings, where the scalar kernel
settles partially-overlapping components request by request.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sim import Environment, Event
from .fabric import (
    _EPSILON_BYTES,
    _TIGHT_ABS,
    _TIGHT_REL,
    FabricBase,
    Link,
    maxmin_rates,
)
from .params import NetworkSpec


class VectorFlow:
    """Flow handle for the vector kernel.

    Identity and immutable metadata live on the object; mutable state
    (remaining bytes, rate, settle time) lives in the owning fabric's
    :class:`FlowTable` row addressed by ``idx`` (−1 once complete).  The
    properties mirror the scalar :class:`~repro.network.fabric.Flow`
    attributes for observability code and tests.
    """

    __slots__ = (
        "links",
        "link_ids",
        "nbytes",
        "cap",
        "event",
        "label",
        "seq",
        "started_at",
        "idx",
        "_table",
    )

    def __init__(
        self,
        links: Tuple[Link, ...],
        link_ids: Tuple[int, ...],
        nbytes: float,
        cap: float,
        event: Event,
        label: str,
        seq: int,
        started_at: float,
        idx: int,
        table: "FlowTable",
    ):
        self.links = links
        self.link_ids = link_ids
        self.nbytes = nbytes
        self.cap = cap
        self.event = event
        self.label = label
        self.seq = seq
        self.started_at = started_at
        self.idx = idx
        self._table = table

    @property
    def remaining(self) -> float:
        return float(self._table.remaining[self.idx]) if self.idx >= 0 else 0.0

    @property
    def rate(self) -> float:
        return float(self._table.rate[self.idx]) if self.idx >= 0 else 0.0

    @property
    def updated_at(self) -> float:
        if self.idx >= 0:
            return float(self._table.updated[self.idx])
        return self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VectorFlow {self.label} rem={self.remaining:.0f}B "
            f"rate={self.rate / 1e9:.2f}GB/s>"
        )


class FlowTable:
    """Slot-addressed structure-of-arrays holding all mutable flow state.

    Slots are recycled through a free list; a freed slot keeps
    ``finish = inf`` and ``rate = remaining = 0`` so whole-array scans
    (due-completion selection, timer arming) never see garbage.
    """

    __slots__ = (
        "capacity",
        "remaining",
        "rate",
        "cap",
        "updated",
        "finish",
        "seq",
        "_free",
    )

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self.remaining = np.zeros(capacity)
        self.rate = np.zeros(capacity)
        self.cap = np.zeros(capacity)
        self.updated = np.zeros(capacity)
        self.finish = np.full(capacity, np.inf)
        self.seq = np.zeros(capacity, dtype=np.int64)
        self._free: List[int] = list(range(capacity - 1, -1, -1))

    def alloc(self) -> int:
        if not self._free:
            self._grow()
        return self._free.pop()

    def free(self, slot: int) -> None:
        self.remaining[slot] = 0.0
        self.rate[slot] = 0.0
        self.finish[slot] = np.inf
        self._free.append(slot)

    def _grow(self) -> None:
        old = self.capacity
        new = old * 2
        for name in ("remaining", "rate", "cap", "updated", "seq"):
            arr = getattr(self, name)
            grown = np.zeros(new, dtype=arr.dtype)
            grown[:old] = arr
            setattr(self, name, grown)
        finish = np.full(new, np.inf)
        finish[:old] = self.finish
        self.finish = finish
        self._free.extend(range(new - 1, old - 1, -1))
        self.capacity = new


def waterfill(
    n_links: int,
    caps: np.ndarray,
    flow_cap: np.ndarray,
    seg: np.ndarray,
    n_segs: int,
    rep_flow: np.ndarray,
    rep_link: np.ndarray,
    congestion: float = 0.0,
    congestion_saturation: int = 7,
) -> np.ndarray:
    """Segmented max-min water-filling as whole-round array ops.

    Solves ``n_segs`` *disjoint* allocation problems (connected
    components) in one call.  Flows are rows of the concatenated batch;
    ``seg[i]`` names flow ``i``'s component, and the links×flows
    incidence is given in COO form: entry ``k`` says flow ``rep_flow[k]``
    crosses link ``rep_link[k]`` (global link ids ``< n_links``).  The
    ``caps`` array is indexed by global link id; only entries for links
    that actually appear in ``rep_link`` are read.

    Per-segment water levels (``np.minimum.at`` over the link shares)
    keep the segments numerically independent — solving components
    jointly is bit-identical to solving each alone, which is what makes
    batching admission waves safe.  Freeze order and residual updates
    replicate the canonical scalar folds (see
    :func:`repro.network.fabric.maxmin_rates`): ``np.add.at``
    accumulates each link's frozen demand over COO entries in flow-major
    (admission) order, then the residual is reduced by that sum once.
    """
    n = flow_cap.shape[0]
    load = np.bincount(rep_link, minlength=n_links)
    member = load > 0
    with np.errstate(invalid="ignore", divide="ignore"):
        if congestion > 0.0:
            penalty = 1.0 + congestion * np.minimum(load - 1, congestion_saturation)
            residual = np.where(member, caps / penalty, np.inf)
        else:
            residual = np.where(member, caps, np.inf)
    link_seg = np.zeros(n_links, dtype=np.int64)
    link_seg[rep_link] = seg[rep_flow]

    rates = np.zeros(n)
    alive = np.ones(n, dtype=bool)
    while alive.any():
        alive_rep = alive[rep_flow]
        counts = np.bincount(rep_link[alive_rep], minlength=n_links)
        has = counts > 0
        shares = np.full(n_links, np.inf)
        np.divide(residual, counts, out=shares, where=has)
        seg_share = np.full(n_segs, np.inf)
        np.minimum.at(seg_share, link_seg[has], shares[has])
        seg_cap = np.full(n_segs, np.inf)
        np.minimum.at(seg_cap, seg[alive], flow_cap[alive])
        cap_binds = seg_cap < seg_share
        seg_level = np.where(cap_binds, seg_cap, seg_share)
        lvl_flow = seg_level[seg]
        capb_flow = cap_binds[seg]
        # Tight links at this round's level (only for share-bound segments).
        lk_level = seg_level[link_seg]
        limit = np.maximum(lk_level * (1.0 + _TIGHT_REL), lk_level + _TIGHT_ABS)
        tight = has & ~cap_binds[link_seg] & (shares <= limit)
        on_tight = np.zeros(n, dtype=bool)
        sel = alive_rep & tight[rep_link]
        on_tight[rep_flow[sel]] = True
        freeze = alive & (
            (capb_flow & (flow_cap <= lvl_flow)) | (~capb_flow & on_tight)
        )
        if not freeze.any():  # pragma: no cover - every live segment freezes
            break
        rates = np.where(freeze, np.minimum(lvl_flow, flow_cap), rates)
        freeze_rep = freeze[rep_flow]
        delta = np.zeros(n_links)
        np.add.at(delta, rep_link[freeze_rep], rates[rep_flow[freeze_rep]])
        residual = np.maximum(0.0, residual - delta)
        alive &= ~freeze
    return rates


def maxmin_rates_vectorized(
    flows: Sequence,
    capacities: Dict[Link, float],
    congestion: float = 0.0,
    congestion_saturation: int = 7,
) -> Dict[object, float]:
    """Array-kernel twin of :func:`repro.network.fabric.maxmin_rates`.

    Same signature over flow objects (anything with ``links`` and
    ``cap``), solved as one :func:`waterfill` segment — the differential
    tests compare the two for exact equality.
    """
    if not flows:
        return {}
    link_ids: Dict[Link, int] = {}
    for flow in flows:
        for link in flow.links:
            if link not in link_ids:
                link_ids[link] = len(link_ids)
    n_links = len(link_ids)
    caps = np.empty(n_links)
    for link, i in link_ids.items():
        caps[i] = capacities[link]
    n = len(flows)
    flow_cap = np.fromiter((f.cap for f in flows), dtype=np.float64, count=n)
    lens = np.fromiter((len(f.links) for f in flows), dtype=np.int64, count=n)
    rep_flow = np.repeat(np.arange(n), lens)
    rep_link = np.fromiter(
        (link_ids[lk] for f in flows for lk in f.links),
        dtype=np.int64,
        count=int(lens.sum()),
    )
    seg = np.zeros(n, dtype=np.int64)
    rates = waterfill(
        n_links, caps, flow_cap, seg, 1, rep_flow, rep_link,
        congestion, congestion_saturation,
    )
    return {flow: float(rates[i]) for i, flow in enumerate(flows)}


class VectorFabric(FabricBase):
    """numpy fabric kernel: array state, batched flushes, vector timers.

    Drop-in equivalent of :class:`~repro.network.fabric.ScalarFabric`
    (identical rates, completion times, and completion-event ordering);
    see the module docstring for the batching contract.  ``rerate_calls``
    counts water-filling *groups* here — an admission wave that the
    scalar kernel re-rates n times counts once — so kernel self-profiling
    metrics are comparable only within one kernel.
    """

    #: At or below this many flows per re-rate, the canonical scalar
    #: water-filler on flow objects beats numpy dispatch overhead.  Both
    #: paths are bit-identical, so this is purely a performance knob
    #: (small components dominate governed/DVFS-heavy runs; profiled on
    #: governed alltoall cells in DESIGN.md §13 — the default below sits
    #: on the measured plateau).  Override per process with the
    #: ``REPRO_SMALL_BATCH`` environment variable, or per fabric by
    #: assigning the attribute.
    SMALL_BATCH_DEFAULT = 64
    SMALL_BATCH = SMALL_BATCH_DEFAULT

    @staticmethod
    def _small_batch_from_env() -> Optional[int]:
        """The ``REPRO_SMALL_BATCH`` override, or None when unset."""
        raw = os.environ.get("REPRO_SMALL_BATCH")
        if raw is None:
            return None
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_SMALL_BATCH must be an integer, got {raw!r}"
            ) from None
        if value < 0:
            raise ValueError("REPRO_SMALL_BATCH must be >= 0")
        return value

    def __init__(self, env: Environment, spec: NetworkSpec):
        super().__init__(env, spec)
        env_threshold = self._small_batch_from_env()
        if env_threshold is not None:
            self.SMALL_BATCH = env_threshold  # instance-level override
        self._table = FlowTable()
        self._slot_flow: List[Optional[VectorFlow]] = [None] * self._table.capacity
        self._link_ids: Dict[Link, int] = {}
        self._link_list: List[Link] = []
        self._link_bytes_arr = np.zeros(64)
        self._caps = np.ones(64)
        self._pending: List[VectorFlow] = []
        self._flush_timer = None
        #: Path → link-id tuple; collectives re-send the same few hundred
        #: routes thousands of times, so admissions skip the id lookup.
        self._path_ids: Dict[tuple, tuple] = {}

    # -- link registry -------------------------------------------------------
    def _register_link(self, link: Link) -> None:
        i = len(self._link_list)
        if i >= self._link_bytes_arr.shape[0]:
            grown = np.zeros(self._link_bytes_arr.shape[0] * 2)
            grown[:i] = self._link_bytes_arr
            self._link_bytes_arr = grown
            caps = np.ones(self._caps.shape[0] * 2)
            caps[:i] = self._caps
            self._caps = caps
        self._link_ids[link] = i
        self._link_list.append(link)

    # -- observability -------------------------------------------------------
    @property
    def active_flows(self) -> List[VectorFlow]:
        self._flush()
        return list(self._flows)

    @property
    def link_bytes(self) -> Dict[str, float]:
        """Per-link delivered bytes (settled with ``bytes_delivered``)."""
        self._flush()
        counters = self._link_bytes_arr
        return {
            link.name: float(counters[i])
            for i, link in enumerate(self._link_list)
        }

    # -- admission -----------------------------------------------------------
    def transfer(
        self,
        links: Sequence[Link],
        nbytes: float,
        cpu_cap: float = math.inf,
        label: str = "",
    ) -> Event:
        """Start a bulk transfer; the returned event fires at completion.

        Hot-path override of the :class:`FabricBase` template — same
        semantics and trace, but fully inlined (a transfer is the single
        most frequent fabric call) and admission only appends to the
        pending wave; the deferred flush does the rating.
        """
        env = self.env
        event = Event(env)
        if nbytes <= 0:
            event.succeed(env.now)
            return event
        if not links:
            raise ValueError("a transfer needs at least one link")
        now = env.now
        links = tuple(links)
        table = self._table
        free = table._free
        slot = free.pop() if free else table.alloc()
        slot_flow = self._slot_flow
        if slot >= len(slot_flow):
            slot_flow.extend([None] * (table.capacity - len(slot_flow)))
        path_ids = self._path_ids.get(links)
        if path_ids is None:
            path_ids = tuple(self._link_ids[lk] for lk in links)
            self._path_ids[links] = path_ids
        seq = self._seq
        self._seq = seq + 1
        flow = VectorFlow(
            links, path_ids, float(nbytes), cpu_cap, event, label, seq,
            now, slot, table,
        )
        slot_flow[slot] = flow
        self._flows[flow] = None
        link_flows = self.link_flows
        flows_on = self._flows_on
        for link in links:
            flows_on[link][flow] = None
            link_flows[link.name] += 1
        tracer = env.tracer
        if tracer.enabled:
            tracer.flow_start(
                now, label, float(nbytes), [lk.name for lk in links], seq=seq
            )
        self._pending.append(flow)
        if self._flush_timer is None:
            self._flush_timer = env.defer(self._flush)
        return event

    def capacities_changed(self, links=None) -> None:
        """Re-read link capacities (call after DVFS transitions); same
        contract as the scalar kernel."""
        if not self._flows:
            return
        self._flush()
        if links is None:
            links = self._carrying_links()
        self._rerate_now(links)

    # -- re-rating -----------------------------------------------------------
    def _flush(self, _timer=None) -> None:
        """Rate every flow admitted at the current timestamp.

        For same-timestamp admissions only the *last* scalar re-rate
        touching a component determines its rates (water-filling is
        memoryless), and that re-rate sees exactly the component as it
        stands once the whole wave is admitted — so one re-rate per
        touched component reproduces the scalar results bit-for-bit.
        Stalled-flow rescue widens the seed set per request, making the
        grouping request-order-dependent; that rare regime replays the
        scalar per-admission sequence literally.
        """
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        pending = self._pending
        if not pending:
            return
        self._pending = []
        now = self.env.now
        table = self._table
        count = len(pending)
        idx = np.fromiter((f.idx for f in pending), dtype=np.int64, count=count)
        table.remaining[idx] = np.fromiter(
            (f.nbytes for f in pending), dtype=np.float64, count=count
        )
        table.cap[idx] = np.fromiter(
            (f.cap for f in pending), dtype=np.float64, count=count
        )
        table.seq[idx] = np.fromiter(
            (f.seq for f in pending), dtype=np.int64, count=count
        )
        table.updated[idx] = now
        if not self.spec.incremental_rerate:
            self._apply([list(self._flows)])
            return
        if self._stalled:
            for flow in pending:
                if flow.idx >= 0:
                    self._rerate_now(flow.links)
            return
        if count == len(self._flows):
            # Full wave (no pre-existing flows): components are exactly
            # the connectivity classes of the pending flows, found by an
            # integer union-find over link ids — far cheaper than one
            # object-graph BFS per flow.  Group order is first-encounter
            # and members stay in admission (seq) order, matching the
            # BFS grouping below.
            parent: Dict[int, int] = {}

            def find(x: int) -> int:
                root = x
                while parent[root] != root:
                    root = parent[root]
                while parent[x] != root:
                    parent[x], x = root, parent[x]
                return root

            for flow in pending:
                ids = flow.link_ids
                first = ids[0]
                if first not in parent:
                    parent[first] = first
                root = find(first)
                for li in ids[1:]:
                    if li not in parent:
                        parent[li] = root
                    else:
                        parent[find(li)] = root
            by_root: Dict[int, List[VectorFlow]] = {}
            for flow in pending:
                root = find(flow.link_ids[0])
                group = by_root.get(root)
                if group is None:
                    by_root[root] = [flow]
                else:
                    group.append(flow)
            self._apply(list(by_root.values()))
            return
        covered = set()
        groups: List[List[VectorFlow]] = []
        for flow in pending:
            # A flow with any link covered lies entirely inside an
            # already-collected component (components are link-disjoint).
            if flow.idx < 0 or flow.links[0] in covered:
                continue
            component = self._component(flow.links)
            groups.append(component)
            for member in component:
                covered.update(member.links)
        if groups:
            self._apply(groups)

    def _rerate_now(self, seed_links) -> None:
        """One immediate component re-rate (completions / capacity
        changes) — the union of components touching the seeds is solved
        as a single water-fill, mirroring the scalar kernel's grouping
        (and therefore its cross-component tolerance coupling) exactly."""
        if not self._flows:
            self._arm_timer()
            return
        seeds = list(seed_links)
        if self._stalled:
            seeds += self._stalled_links()
        if self.spec.incremental_rerate:
            component = self._component(seeds)
        else:
            component = list(self._flows)
        if not component:
            self._arm_timer()
            return
        self._apply([component])

    def _apply(self, groups: List[List[VectorFlow]]) -> None:
        """Settle + water-fill + predict for a batch of disjoint groups."""
        now = self.env.now
        self.rerate_calls += len(groups)
        total = sum(len(g) for g in groups)
        self.flows_rerated += total
        if total <= self.SMALL_BATCH:
            for group in groups:
                self._apply_small(group, now)
        else:
            self._apply_batch(groups, total, now)
        self._arm_timer()

    def _apply_small(self, component: List[VectorFlow], now: float) -> None:
        """Scalar-shaped path for small components: same canonical folds
        (and the same ``maxmin_rates``), just without numpy dispatch."""
        table = self._table
        remaining = table.remaining
        rate_arr = table.rate
        updated = table.updated
        finish = table.finish
        link_bytes = self._link_bytes_arr
        capacities: Dict[Link, float] = {}
        for flow in component:
            i = flow.idx
            dt = now - float(updated[i])
            rate = float(rate_arr[i])
            if dt > 0.0 and rate > 0.0:
                moved = rate * dt
                rem = float(remaining[i])
                if moved > rem:
                    moved = rem
                remaining[i] = rem - moved
                self.bytes_delivered += moved
                if moved > 0.0:
                    for li in flow.link_ids:
                        link_bytes[li] += moved
            updated[i] = now
            for link in flow.links:
                if link not in capacities:
                    capacities[link] = link.capacity
        rates = maxmin_rates(
            component,
            capacities,
            self.spec.flow_congestion,
            self.spec.flow_congestion_saturation,
        )
        stalled = self._stalled
        for flow in component:
            rate = rates[flow]
            i = flow.idx
            rate_arr[i] = rate
            if rate > 0.0:
                if stalled:
                    stalled.pop(flow, None)
                finish[i] = float(updated[i]) + float(remaining[i]) / rate
            else:
                finish[i] = np.inf
                stalled[flow] = None

    def _apply_batch(
        self, groups: List[List[VectorFlow]], total: int, now: float
    ) -> None:
        table = self._table
        flat = [f for g in groups for f in g]
        idx = np.fromiter((f.idx for f in flat), dtype=np.int64, count=total)
        seg = np.repeat(
            np.arange(len(groups)),
            np.fromiter((len(g) for g in groups), dtype=np.int64, count=len(groups)),
        )
        lens = np.fromiter(
            (len(f.link_ids) for f in flat), dtype=np.int64, count=total
        )
        rep_flow = np.repeat(np.arange(total), lens)
        rep_link = np.fromiter(
            (li for f in flat for li in f.link_ids),
            dtype=np.int64,
            count=int(lens.sum()),
        )
        self._settle_batch(idx, rep_flow, rep_link, now)
        # Refresh every registered link's capacity: fabrics hold at most a
        # few hundred links, so a straight attribute sweep beats sorting
        # the incidence column (np.unique) to find the touched subset.
        caps = self._caps
        link_list = self._link_list
        for li, link in enumerate(link_list):
            caps[li] = link.capacity
        rates = waterfill(
            len(link_list),
            caps[: len(link_list)],
            table.cap[idx],
            seg,
            len(groups),
            rep_flow,
            rep_link,
            self.spec.flow_congestion,
            self.spec.flow_congestion_saturation,
        )
        table.rate[idx] = rates
        positive = rates > 0.0
        fin = np.full(total, np.inf)
        rem_new = table.remaining[idx]
        fin[positive] = now + rem_new[positive] / rates[positive]
        table.finish[idx] = fin
        stalled = self._stalled
        if not positive.all():
            for k in np.nonzero(~positive)[0].tolist():
                stalled[flat[k]] = None
        if stalled:
            for k in np.nonzero(positive)[0].tolist():
                stalled.pop(flat[k], None)

    def _settle_batch(
        self,
        idx: np.ndarray,
        rep_flow: np.ndarray,
        rep_link: np.ndarray,
        now: float,
    ) -> None:
        """Vectorized lazy settle: drain bytes at the pre-change rates,
        folding byte counters in flow (admission/due) order."""
        table = self._table
        old_rate = table.rate[idx]
        dt = now - table.updated[idx]
        rem = table.remaining[idx]
        moved = np.where((dt > 0.0) & (old_rate > 0.0), old_rate * dt, 0.0)
        moved = np.where(moved > rem, rem, moved)
        table.remaining[idx] = rem - moved
        table.updated[idx] = now
        moving = moved > 0.0
        if moving.any():
            for value in moved[moving].tolist():
                self.bytes_delivered += value
            sel = moving[rep_flow]
            np.add.at(
                self._link_bytes_arr, rep_link[sel], moved[rep_flow[sel]]
            )

    # -- completions ---------------------------------------------------------
    def _arm_timer(self) -> None:
        """Arm the single wake-up from the finish vector's minimum (free
        and zero-rated slots hold ``inf``, so no purging is needed)."""
        t_next = float(self._table.finish.min())
        if t_next == math.inf:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            return
        if self._timer is not None:
            if not self._timer.cancelled and self._timer.at <= t_next:
                return  # fires at or before the new prediction; re-arms itself
            self._timer.cancel()
        self._timer = self.env.call_at(max(t_next, self.env.now), self._on_timer)

    def _on_timer(self, _timer) -> None:
        self._timer = None
        self._flush()  # admissions queued ahead of this timer at the same t
        table = self._table
        now = self.env.now
        finish = table.finish
        due = np.nonzero(finish <= now)[0]
        if due.size == 0:
            self._arm_timer()
            return
        # Process in (finish, seq) order — the scalar heap's pop order.
        due = due[np.lexsort((table.seq[due], finish[due]))]
        flows = [self._slot_flow[s] for s in due.tolist()]
        count = len(flows)
        lens = np.fromiter(
            (len(f.link_ids) for f in flows), dtype=np.int64, count=count
        )
        rep_flow = np.repeat(np.arange(count), lens)
        rep_link = np.fromiter(
            (li for f in flows for li in f.link_ids),
            dtype=np.int64,
            count=int(lens.sum()),
        )
        self._settle_batch(due, rep_flow, rep_link, now)
        rem = table.remaining[due]
        done = rem <= _EPSILON_BYTES
        freed: Dict[Link, None] = {}
        tracer = self.env.tracer
        traced = tracer.enabled
        stalled = self._stalled
        if done.any():
            # Completion credit: the sub-epsilon residual tails.
            for value in rem[done].tolist():
                self.bytes_delivered += value
            done_rep = done[rep_flow]
            np.add.at(
                self._link_bytes_arr, rep_link[done_rep], rem[rep_flow[done_rep]]
            )
            # Clear the table rows in one array transaction (per-slot
            # ``table.free`` would pay three numpy scalar writes each).
            done_slots = due[done]
            table.remaining[done_slots] = 0.0
            table.rate[done_slots] = 0.0
            table.finish[done_slots] = np.inf
            table._free.extend(done_slots.tolist())
            flows_dict = self._flows
            flows_on = self._flows_on
            slot_flow = self._slot_flow
            for k in np.nonzero(done)[0].tolist():
                flow = flows[k]
                slot_flow[flow.idx] = None
                flow.idx = -1
                del flows_dict[flow]
                for link in flow.links:
                    del flows_on[link][flow]
                    freed[link] = None
                if stalled:
                    stalled.pop(flow, None)
                if traced:
                    tracer.flow_finish(
                        now,
                        flow.label,
                        flow.nbytes,
                        flow.started_at,
                        [lk.name for lk in flow.links],
                        seq=flow.seq,
                        delivered=flow.nbytes,
                    )
                flow.event.succeed(now)
        live = ~done
        if live.any():
            # Prediction landed a shade early (float slack): re-predict;
            # a flow re-rated to zero in between parks with the stalled
            # set instead of being dropped.
            remaining = table.remaining
            updated = table.updated
            rate_arr = table.rate
            for k in np.nonzero(live)[0].tolist():
                slot = int(due[k])
                rate = float(rate_arr[slot])
                if rate > 0.0:
                    finish[slot] = float(updated[slot]) + float(remaining[slot]) / rate
                else:
                    finish[slot] = np.inf
                    stalled[flows[k]] = None
        if freed:
            self._rerate_now(freed)
        else:
            self._arm_timer()
