"""Network and message-engine parameters.

Defaults model the paper's testbed: InfiniBand QDR (40 Gbit/s signalled,
8b/10b encoded → 32 Gbit/s raw; ≈3 GB/s achievable MPI payload bandwidth)
through one Mellanox QDR switch (non-blocking crossbar, so contention
concentrates at the per-node HCA links), plus MVAPICH2-like software costs.

Two knobs tie the network to the power machinery:

* ``dvfs_io_alpha`` — on Nehalem the uncore (IMC/QPI/PCIe feed) clocks down
  with the core P-state, so a node whose cores run at fmin cannot feed its
  HCA at full rate.  Effective NIC capacity = nic_bw · (α + (1−α)·f/fmax).
  With α = 0.72 a node at 1.6 GHz reaches ≈91 % of line rate — this is the
  physical origin of the ≈10 % "Freq-Scaling" overhead in Figs 7a/8a.
* ``cpu_feed_bw`` — a single *flow's* rate is additionally capped by the
  sending core's ability to progress the rendezvous pipeline, which scales
  with the core's speed factor (frequency × duty).  At fmax the cap is far
  above line rate, so it only binds for heavily throttled cores (the
  paper's ``Cthrottle``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkSpec:
    """All tunables of the fabric + message engine."""

    # -- InfiniBand QDR fabric --------------------------------------------
    #: Achievable MPI payload bandwidth per HCA port (B/s).
    nic_bw: float = 3.0e9
    #: One-way inter-node MPI latency (s).
    inter_node_latency: float = 1.5e-6
    #: Switch backplane aggregate capacity in units of per-port bandwidth;
    #: a non-blocking crossbar has >= n_ports (we default to effectively ∞).
    switch_oversubscription: float = float("inf")

    #: Rack uplink capacity in units of one HCA's bandwidth (only used when
    #: the cluster spec has racks > 1).  E.g. 2.0 = two QDR links from each
    #: leaf switch to the spine; with 4 nodes/rack that is 2:1
    #: oversubscription for inter-rack traffic.
    rack_uplink_factor: float = 2.0

    # -- intra-node (shared memory) path -----------------------------------
    #: Startup cost of a shared-memory message (s).
    shm_latency: float = 0.4e-6
    #: Pairwise shared-memory copy bandwidth at fmax (B/s) when both ranks
    #: share a socket (same last-level cache / memory controller).
    shm_bw: float = 4.5e9
    #: Cross-socket pair bandwidth: the copy crosses the QPI interconnect
    #: between the two Nehalem packages (paper Fig 5's A↔B boundary).
    shm_bw_cross_socket: float = 3.2e9
    #: Aggregate memory bandwidth per node shared by concurrent copies (B/s).
    mem_bw_node: float = 18.0e9

    # -- software (MVAPICH2-like) costs ------------------------------------
    #: Eager→rendezvous switch point (B).
    eager_threshold: int = 12 * 1024
    #: Per-message CPU send overhead at fmax/T0 (s).
    o_send: float = 0.35e-6
    #: Per-message CPU receive/match overhead at fmax/T0 (s).
    o_recv: float = 0.35e-6
    #: Rendezvous handshake adds one extra round trip.
    rndv_rtt_factor: float = 2.0
    #: Local reduction throughput at fmax (B/s) — cost of combining two
    #: buffers in MPI_Reduce/Allreduce.
    reduce_bw: float = 4.0e9

    #: Per-link congestion inefficiency: a link carrying n concurrent flows
    #: delivers capacity/(1 + p·(n−1)).  This is the paper's observation
    #: that contention has a super-linear cost (QP thrashing, HOL blocking)
    #: — and the reason its phased alltoall, which halves the flows per HCA,
    #: wins back bandwidth ("we expect the network contention to improve by
    #: 50 %", §VI-A2).  Set 0.0 for an ideal fair-sharing fabric.
    flow_congestion: float = 0.05
    #: The congestion penalty saturates at this many extra flows: beyond
    #: ~8 concurrent streams the HCA's scheduling overhead stops growing
    #: (keeps heavily-windowed transfers from collapsing unrealistically).
    flow_congestion_saturation: int = 7

    # -- DVFS / throttling coupling ----------------------------------------
    #: Uncore floor for NIC feed rate (see module docstring).
    dvfs_io_alpha: float = 0.72
    #: Frequency-sensitivity floor of shared-memory copies: memcpy is
    #: partially memory-bound, so a core at fmin still reaches
    #: α + (1−α)·f/fmax of its copy bandwidth (T-state duty still scales
    #: it linearly — gated clocks stall the copy loop outright).
    mem_dvfs_alpha: float = 0.60

    def shm_copy_factor(self, freq_ratio: float, duty: float) -> float:
        """Copy-bandwidth multiplier for a core at f/fmax = ``freq_ratio``
        and T-state duty cycle ``duty``."""
        return duty * (self.mem_dvfs_alpha + (1.0 - self.mem_dvfs_alpha) * freq_ratio)
    #: Per-flow CPU pipeline feed cap at fmax/T0 (B/s).
    cpu_feed_bw: float = 8.0e9

    # -- fabric kernel -------------------------------------------------------
    #: Re-run water-filling only over the connected component of flows
    #: affected by a change (exact — components share no links).  False
    #: forces the historical whole-fabric recompute on every event; only
    #: useful for benchmarking the kernel itself.
    incremental_rerate: bool = True
    #: Use the numpy array kernel (``repro.network.kernel.VectorFabric``):
    #: flow state in slot-addressed arrays, same-timestamp admissions
    #: batched into one water-filling flush, completions from a single
    #: finish-time vector.  False selects the scalar object-graph kernel,
    #: kept as the differential-testing oracle — both produce identical
    #: rates and completion times (DESIGN.md §12).  Ignored (scalar
    #: fallback) when numpy is unavailable.
    vectorized: bool = True

    # -- blocking progression mode (§II-B) ----------------------------------
    #: How long a blocking-mode process spins before yielding the CPU (s).
    spin_window: float = 20e-6
    #: HCA interrupt service latency (s).
    interrupt_latency: float = 8e-6
    #: OS re-schedule latency after wake-up (s).
    resched_latency: float = 10e-6
    #: Rendezvous pipeline chunk size; each chunk costs one wake-up when the
    #: receiver sleeps, which halves effective large-message bandwidth.
    blocking_chunk: int = 64 * 1024
    #: Node HCA utilisation when all ranks progress via interrupts: with every
    #: rank sleeping between events the send queues drain dry, roughly
    #: halving the achievable node bandwidth (Fig 6a's ≈2x gap).
    blocking_nic_factor: float = 0.55

    def __post_init__(self) -> None:
        if self.nic_bw <= 0 or self.shm_bw <= 0 or self.mem_bw_node <= 0:
            raise ValueError("bandwidths must be positive")
        if self.eager_threshold < 0:
            raise ValueError("eager_threshold must be >= 0")
        if not 0.0 <= self.dvfs_io_alpha <= 1.0:
            raise ValueError("dvfs_io_alpha must be in [0, 1]")

    def to_dict(self) -> dict:
        """Plain-data form for sweep cells and cache keys (flat floats/
        ints/bools; ``inf`` survives the JSON round trip as ``Infinity``).

        ``vectorized`` is deliberately excluded: it selects an execution
        kernel, not a model parameter — both kernels produce identical
        results (DESIGN.md §12), so a result cache primed under either
        stays valid under the other.
        """
        from dataclasses import asdict

        data = asdict(self)
        del data["vectorized"]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "NetworkSpec":
        """Inverse of :meth:`to_dict` (omitted keys take defaults)."""
        return cls(**data)

    def nic_dvfs_factor(self, mean_freq_ratio: float) -> float:
        """Effective NIC capacity multiplier for a node whose cores run at
        ``mean_freq_ratio`` = mean(f)/fmax."""
        return self.dvfs_io_alpha + (1.0 - self.dvfs_io_alpha) * mean_freq_ratio

    def blocking_bw_penalty(self) -> float:
        """Serial per-byte cost (s/B) added to large transfers when the
        receiver sleeps between pipeline chunks (blocking mode)."""
        wake = self.interrupt_latency + self.resched_latency
        return wake / self.blocking_chunk
