"""Per-cell observability capture for the parallel sweep runner.

Ambient ``--trace`` / ``--profile`` / ``--metrics`` scopes are
process-global: a ``ProcessPoolExecutor`` worker never sees the parent's
``use_tracer`` default (spawn) or sees a stale copy pointing at the
parent's open file (fork) — either way records were silently lost or
corrupted.  This module makes capture *explicit and serializable*
instead:

1. the parent derives a :class:`CaptureConfig` from its ambient scopes
   (:meth:`CaptureConfig.from_ambient`),
2. :func:`repro.runner.cells.execute_cell` runs the cell inside
   :func:`capture_cell`, which shadows every ambient scope with
   process-local collectors and seals a plain-data :class:`CellMetrics`,
3. the parent replays each cell's payload — in submit order — into its
   own live scopes via :func:`replay_payload`.

Because the capture path is identical inline and in a worker, ``--jobs
N`` reproduces the ``--jobs 1`` record stream exactly, and a payload
served from the result cache replays the same way a fresh one does.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from ..sim.trace import RecordingTracer, default_tracer, use_tracer
from .metrics import MetricsRegistry, ambient_metrics_registry, use_metrics

__all__ = ["CaptureConfig", "CellMetrics", "capture_cell", "replay_payload"]


@dataclass(frozen=True)
class CaptureConfig:
    """Which observability channels a cell run must collect.

    Plain data (picklable, JSON-able) so it crosses the process boundary
    with the cell and participates in the cache key — a captured result
    and an uncaptured one are different cache entries.
    """

    #: Collect the full trace-record stream (``--trace``).
    trace: bool = False
    #: Collect a per-cell :class:`~repro.obs.metrics.MetricsRegistry`
    #: snapshot (``--metrics``).
    metrics: bool = False
    #: Collect per-job simulator self-profile samples (``--profile``).
    profile: bool = False

    def __bool__(self) -> bool:
        return self.trace or self.metrics or self.profile

    def to_dict(self) -> Dict[str, bool]:
        return {"trace": self.trace, "metrics": self.metrics,
                "profile": self.profile}

    @classmethod
    def from_dict(cls, data: Dict[str, bool]) -> "CaptureConfig":
        return cls(trace=bool(data.get("trace")),
                   metrics=bool(data.get("metrics")),
                   profile=bool(data.get("profile")))

    @classmethod
    def from_ambient(cls) -> "CaptureConfig":
        """Derive the capture the calling process's live scopes need."""
        from ..bench.profile import ACTIVE_PROFILES  # lazy: bench imports runner

        return cls(
            trace=default_tracer().enabled,
            metrics=ambient_metrics_registry() is not None,
            profile=bool(ACTIVE_PROFILES),
        )


@dataclass
class CellMetrics:
    """Serializable observability payload of one executed cell."""

    #: Trace records as plain dicts (``{"t", "type", ...fields}``).
    records: Optional[List[Dict[str, Any]]] = None
    #: Per-cell metrics snapshot (:meth:`MetricsRegistry.snapshot`).
    metrics: Optional[Dict[str, Any]] = None
    #: Per-job self-profile samples (:class:`repro.bench.profile.JobSample`
    #: fields; ``wall_time_s`` reflects the *original* execution when the
    #: payload is served from the cache).
    profile: Optional[List[Dict[str, Any]]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"records": self.records, "metrics": self.metrics,
                "profile": self.profile}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellMetrics":
        return cls(records=data.get("records"), metrics=data.get("metrics"),
                   profile=data.get("profile"))


class _CellCapture:
    """Live collectors for one cell run (sealed into :class:`CellMetrics`)."""

    def __init__(
        self,
        config: CaptureConfig,
        recorder: Optional[RecordingTracer],
        registry: Optional[MetricsRegistry],
        samples: Optional[List[Dict[str, Any]]],
    ):
        self.config = config
        self.recorder = recorder
        self.registry = registry
        self.samples = samples

    def seal(self) -> Dict[str, Any]:
        records = None
        if self.recorder is not None:
            records = [
                {"t": r.t, "type": r.type, **r.data}
                for r in self.recorder.records
            ]
        return CellMetrics(
            records=records,
            metrics=self.registry.snapshot() if self.registry is not None else None,
            profile=self.samples,
        ).to_dict()


@contextlib.contextmanager
def capture_cell(config: CaptureConfig) -> Iterator[_CellCapture]:
    """Run a cell body under process-local collectors.

    Every ambient scope is shadowed for the duration — the inherited
    tracer (possibly the parent's open trace file, under fork), the
    ambient metrics registry, and the job-observer list — so capture is
    hermetic: the same cell captures the same payload inline, in a
    worker, or nested under any outer instrumentation.
    """
    from ..mpi.job import JOB_OBSERVERS  # lazy: keep worker imports cheap

    recorder = RecordingTracer() if config.trace else None
    registry = MetricsRegistry() if config.metrics else None
    samples: Optional[List[Dict[str, Any]]] = [] if config.profile else None

    def observe(job, result) -> None:
        samples.append({
            "n_ranks": job.n_ranks,
            "sim_time_s": result.duration_s,
            "wall_time_s": result.stats.wall_time_s,
            "events_processed": result.stats.events_processed,
            "rerate_calls": result.stats.rerate_calls,
            "flows_rerated": result.stats.flows_rerated,
        })

    saved_observers = JOB_OBSERVERS[:]
    JOB_OBSERVERS[:] = [observe] if samples is not None else []
    try:
        with use_tracer(recorder), use_metrics(registry):
            yield _CellCapture(config, recorder, registry, samples)
    finally:
        JOB_OBSERVERS[:] = saved_observers


def replay_payload(payload: Optional[Dict[str, Any]]) -> None:
    """Feed one sealed :class:`CellMetrics` payload into the calling
    process's live scopes: records into the ambient tracer, the metrics
    snapshot into the ambient registry, profile samples into every
    active :class:`~repro.bench.profile.SelfProfile`."""
    if not payload:
        return
    tracer = default_tracer()
    if tracer.enabled:
        for rec in payload.get("records") or []:
            data = {k: v for k, v in rec.items() if k not in ("t", "type")}
            tracer.emit(rec["t"], rec["type"], **data)
    snap = payload.get("metrics")
    if snap:
        registry = ambient_metrics_registry()
        if registry is not None:
            registry.merge_snapshot(snap)
    samples = payload.get("profile")
    if samples:
        from ..bench.profile import ACTIVE_PROFILES, JobSample

        for profile in list(ACTIVE_PROFILES):
            for sample in samples:
                profile.add_sample(JobSample(**sample))
