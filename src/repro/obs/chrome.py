"""Chrome trace-event exporter (``chrome://tracing`` / Perfetto).

Converts the simulator's JSONL trace records (schema:
:mod:`repro.sim.trace`) into the Trace Event Format that Chrome's
tracing UI and https://ui.perfetto.dev load directly:

* **rank tracks** (pid ``1``) — one thread per simulated process
  (``rank0`` …), with a complete ("X") slice per resume→suspend
  interval, named after the event the process parked on;
* **flow tracks** (pid ``2``) — one complete slice per fabric transfer,
  built from ``flow.finish`` records (which carry start + duration; the
  1:1 seq pairing with ``flow.start`` is verified separately), packed
  greedily into lanes so concurrent flows never nest;
* **power counters** (pid ``3``) — counter ("C") tracks for mean core
  frequency, throttled-core count, in-flight flows, cumulative bytes
  delivered, the governor's slack EWMA, and the arbiter's enforced
  budget / donor count; ``fault.*`` and ``mark`` records become
  instant ("i") events;
* **job lanes** (pid ``4``) — one complete slice per co-scheduled job
  (``job.begin``/``job.end`` marks from
  :meth:`~repro.sim.session.SimSession.run_jobs`), keyed by node
  offset, carrying the job's attributed energy.

Timestamps are microseconds of *simulation* time, emitted in
non-decreasing order.  The output is a plain dict (JSON object format:
``{"traceEvents": [...]}``) so callers can serialize or post-process.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Mapping, Tuple, Union

__all__ = ["chrome_trace", "export_chrome_trace", "read_jsonl_records"]

_PID_RANKS = 1
_PID_FLOWS = 2
_PID_POWER = 3
_PID_JOBS = 4


def _us(t: float) -> float:
    return t * 1e6


class _LaneAllocator:
    """Greedy packing of [start, end) intervals into reusable lanes, so
    overlapping flows get distinct ``tid`` s (Chrome nests same-tid
    overlaps, which misrenders concurrency)."""

    def __init__(self) -> None:
        self._lane_ends: List[float] = []

    def assign(self, start: float, end: float) -> int:
        for lane, lane_end in enumerate(self._lane_ends):
            if lane_end <= start:
                self._lane_ends[lane] = end
                return lane
        self._lane_ends.append(end)
        return len(self._lane_ends) - 1


def chrome_trace(records: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Convert an iterable of trace-record dicts into a Chrome trace.

    Records must carry ``t`` and ``type`` (exactly what
    :class:`~repro.sim.trace.JsonlTracer` writes / what
    :func:`read_jsonl_records` yields).  Unknown record types are
    ignored, so the exporter tolerates traces from newer schemas.
    """
    events: List[Dict[str, Any]] = []
    # Per-process open slice: name -> resume time.
    open_slice: Dict[str, float] = {}
    tids: Dict[str, int] = {}
    flow_lanes = _LaneAllocator()
    # (start_us, seq, event) triples collected for deterministic lane
    # assignment by admission order, then merged into the main stream.
    flow_slices: List[Tuple[float, int, Dict[str, Any]]] = []
    core_freq: Dict[int, float] = {}
    throttled: set = set()
    active_flows = 0
    bytes_delivered = 0.0
    max_t = 0.0
    # Co-scheduled job lanes: node_offset -> (begin time, begin args).
    job_open: Dict[int, Tuple[float, Dict[str, Any]]] = {}
    job_tids: Dict[int, int] = {}

    def tid_of(process: str) -> int:
        if process not in tids:
            tids[process] = len(tids)
        return tids[process]

    def counter(t: float, name: str, value: float) -> None:
        events.append({
            "ph": "C", "pid": _PID_POWER, "tid": 0, "ts": _us(t),
            "name": name, "args": {"value": value},
        })

    for rec in records:
        t = float(rec.get("t", 0.0))
        max_t = max(max_t, t)
        rtype = rec.get("type")
        if rtype == "process.resume":
            open_slice.setdefault(rec["process"], t)
        elif rtype == "process.suspend":
            name = rec["process"]
            started = open_slice.pop(name, None)
            if started is not None:
                events.append({
                    "ph": "X", "pid": _PID_RANKS, "tid": tid_of(name),
                    "ts": _us(started), "dur": _us(t - started),
                    "name": rec.get("target", "run"), "cat": "process",
                })
        elif rtype == "flow.start":
            active_flows += 1
            counter(t, "active_flows", active_flows)
        elif rtype == "flow.finish":
            active_flows -= 1
            bytes_delivered += rec.get("delivered", 0.0)
            counter(t, "active_flows", active_flows)
            counter(t, "bytes_delivered", bytes_delivered)
            start = float(rec.get("start", t))
            seq = int(rec.get("seq", -1))
            flow_slices.append((_us(start), seq, {
                "ph": "X", "pid": _PID_FLOWS,
                "ts": _us(start), "dur": _us(rec.get("duration", t - start)),
                "name": rec.get("flow", "flow"), "cat": "flow",
                "args": {
                    "seq": seq,
                    "bytes": rec.get("bytes"),
                    "delivered": rec.get("delivered"),
                    "links": rec.get("links"),
                },
            }))
        elif rtype == "core.frequency":
            core_freq[rec["core"]] = rec["new"]
            counter(t, "mean_frequency_ghz",
                    sum(core_freq.values()) / len(core_freq))
        elif rtype == "core.tstate":
            if rec["new"]:
                throttled.add(rec["core"])
            else:
                throttled.discard(rec["core"])
            counter(t, "throttled_cores", len(throttled))
        elif isinstance(rtype, str) and rtype.startswith("fault."):
            events.append({
                "ph": "i", "pid": _PID_POWER, "tid": 0, "ts": _us(t),
                "s": "g", "name": rtype, "cat": "fault",
                "args": {k: v for k, v in rec.items()
                         if k not in ("t", "type")},
            })
        elif rtype == "mark":
            mark_name = rec.get("name")
            if mark_name == "governor.slack":
                ewma = rec.get("ewma_s")
                if ewma is not None:
                    counter(t, "slack_ewma_us", ewma * 1e6)
            elif mark_name == "arbiter.tick":
                budget = rec.get("budget_w")
                if budget is not None:
                    counter(t, "arbiter_budget_w", budget)
                donors = rec.get("donors")
                if donors is not None:
                    counter(t, "arbiter_donors", donors)
            elif mark_name == "job.begin":
                offset = int(rec.get("node_offset", 0))
                job_open[offset] = (t, {
                    k: v for k, v in rec.items() if k not in ("t", "type", "name")
                })
            elif mark_name == "job.end":
                offset = int(rec.get("node_offset", 0))
                begin = job_open.pop(offset, None)
                started, args = begin if begin is not None else (0.0, {})
                args.update({k: v for k, v in rec.items()
                             if k not in ("t", "type", "name")})
                if offset not in job_tids:
                    job_tids[offset] = len(job_tids)
                events.append({
                    "ph": "X", "pid": _PID_JOBS, "tid": job_tids[offset],
                    "ts": _us(started), "dur": _us(t - started),
                    "name": f"job@node{offset}", "cat": "job", "args": args,
                })
            else:
                events.append({
                    "ph": "i", "pid": _PID_POWER, "tid": 0, "ts": _us(t),
                    "s": "g", "name": rec.get("name", "mark"), "cat": "mark",
                    "args": {k: v for k, v in rec.items()
                             if k not in ("t", "type", "name")},
                })

    # A process that never suspended again ran to the end of the trace.
    for name, started in sorted(open_slice.items(), key=lambda kv: kv[1]):
        events.append({
            "ph": "X", "pid": _PID_RANKS, "tid": tid_of(name),
            "ts": _us(started), "dur": _us(max_t - started),
            "name": "run", "cat": "process",
        })

    # Lane-assign flows in admission order so the packing is stable.
    for start_us, _seq, event in sorted(flow_slices, key=lambda e: (e[0], e[1])):
        event["tid"] = flow_lanes.assign(start_us, start_us + event["dur"])
        events.append(event)

    events.sort(key=lambda e: e["ts"])

    meta: List[Dict[str, Any]] = []
    pids = [(_PID_RANKS, "ranks"), (_PID_FLOWS, "flows"), (_PID_POWER, "power")]
    if job_tids:
        pids.append((_PID_JOBS, "jobs"))
    for pid, name in pids:
        meta.append({"ph": "M", "pid": pid, "tid": 0, "ts": 0,
                     "name": "process_name", "args": {"name": name}})
    for process, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        meta.append({"ph": "M", "pid": _PID_RANKS, "tid": tid, "ts": 0,
                     "name": "thread_name", "args": {"name": process}})
    for offset, tid in sorted(job_tids.items(), key=lambda kv: kv[1]):
        meta.append({"ph": "M", "pid": _PID_JOBS, "tid": tid, "ts": 0,
                     "name": "thread_name", "args": {"name": f"job@node{offset}"}})

    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def read_jsonl_records(fh: IO[str]) -> Iterable[Dict[str, Any]]:
    """Parse one trace record per JSONL line (blank lines skipped).

    Raises ``ValueError`` naming the offending line on corrupt input —
    a truncated *final* line (killed writer) is tolerated and dropped.
    """
    lines = fh.read().splitlines()
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            if lineno == len(lines):  # torn tail from a killed writer
                break
            raise ValueError(f"corrupt trace record on line {lineno}")
    return records


def export_chrome_trace(
    source: Union[str, IO[str]],
    out_path: str,
) -> Dict[str, int]:
    """Read a JSONL trace and write a Chrome trace JSON to ``out_path``.

    Returns ``{"records": N, "events": M}`` for reporting.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            records = list(read_jsonl_records(fh))
    else:
        records = list(read_jsonl_records(source))
    trace = chrome_trace(records)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
    return {"records": len(records), "events": len(trace["traceEvents"])}
