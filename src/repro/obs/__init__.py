"""repro.obs — the unified observability layer.

The paper's evaluation lives and dies by fine-grained timelines: which
cores sit in which P/T-state when, where slack accrues, where network
contention bites (PAPER.md §V–VI).  Before this package the
instrumentation was three disconnected fragments (trace bus, governor
telemetry, bench self-profile) whose ambient scopes silently failed
under the parallel sweep runner.  ``repro.obs`` consolidates them:

:mod:`~repro.obs.metrics`
    :class:`MetricsRegistry` — counters, gauges and sim-clock-sampled
    time-series aggregates, fed from the existing SimSession trace-hook
    bus by a :class:`MetricsTracer` tee.  Zero overhead when no
    :func:`use_metrics` scope is active.
:mod:`~repro.obs.chrome`
    A Chrome trace-event (``chrome://tracing`` / Perfetto) exporter that
    turns flow/core/power/fault trace records into per-rank duration
    slices and counter tracks (CLI: ``repro trace-export``).
:mod:`~repro.obs.capture`
    Per-cell capture for the sweep runner: :func:`execute_cell` seals a
    serializable :class:`CellMetrics`, the parent replays payloads in
    submit order, so ``--jobs N`` observability output is byte-identical
    to ``--jobs 1`` — and survives the result cache.

Use::

    from repro.obs import MetricsRegistry, use_metrics

    registry = MetricsRegistry()
    with use_metrics(registry):
        run_collective_once("alltoall", 1 << 20)
    print(registry.snapshot()["counters"]["net.flows_started"])
"""

from .capture import CaptureConfig, CellMetrics, capture_cell, replay_payload
from .chrome import chrome_trace, export_chrome_trace, read_jsonl_records
from .metrics import (
    MetricsRegistry,
    MetricsTracer,
    SeriesStats,
    ambient_metrics_registry,
    use_metrics,
)

__all__ = [
    "CaptureConfig",
    "CellMetrics",
    "MetricsRegistry",
    "MetricsTracer",
    "SeriesStats",
    "ambient_metrics_registry",
    "capture_cell",
    "chrome_trace",
    "export_chrome_trace",
    "read_jsonl_records",
    "replay_payload",
    "use_metrics",
]
