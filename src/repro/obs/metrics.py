"""Metric collection: counters, gauges and sim-clock time-series.

A :class:`MetricsRegistry` is the numeric complement of the record
stream in :mod:`repro.sim.trace`: instead of one JSONL line per event it
keeps bounded aggregates —

* **counters** — monotonically accumulated totals (flows started, DVFS
  transitions, bytes delivered),
* **gauges** — last-written values (most recent simulated end time),
* **series** — time-stamped observations on the *simulation* clock,
  folded into :class:`SeriesStats` (count / min / max / mean /
  time-weighted average / last) so a million samples cost a few floats.

The registry is fed from the existing trace-hook bus: a
:class:`MetricsTracer` subscribes like any tracer and converts typed
records into metric updates (core frequency, T-state duty, link
utilisation, governor slack EWMA, event-loop rate).  When no registry is
installed the simulator pays nothing — sessions only build the tee when
:func:`ambient_metrics_registry` returns one (see
:class:`repro.sim.session.SimSession`), and every emission site already
guards on ``tracer.enabled``.

Everything in a snapshot is derived from *simulated* quantities, never
the host clock, so snapshots are byte-identical across reruns, across
``--jobs 1`` vs ``--jobs N``, and across warm-cache replays.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, Optional, Set

from ..sim.trace import Tracer

__all__ = [
    "MetricsRegistry",
    "MetricsTracer",
    "SeriesStats",
    "ambient_metrics_registry",
    "use_metrics",
]


class SeriesStats:
    """Streaming aggregate of one ``(t, value)`` time-series.

    Keeps exact accumulators (count, min, max, sum, rectangle-rule
    integral over the covered span) so two instances can be merged
    without loss: merging the stats of two record streams equals the
    stats of their concatenation.  A sample with ``t`` earlier than the
    previous one starts a new *segment* (a fresh simulation clock); the
    integral and span accumulate across segments.
    """

    __slots__ = ("n", "vmin", "vmax", "vsum", "last_t", "last_v",
                 "integral", "span")

    def __init__(self) -> None:
        self.n = 0
        self.vmin = 0.0
        self.vmax = 0.0
        self.vsum = 0.0
        self.last_t = 0.0
        self.last_v = 0.0
        self.integral = 0.0  # ∫ value dt over the covered span
        self.span = 0.0      # total seconds covered by observations

    def observe(self, t: float, value: float) -> None:
        value = float(value)
        if self.n == 0:
            self.vmin = self.vmax = value
        else:
            self.vmin = min(self.vmin, value)
            self.vmax = max(self.vmax, value)
            if t >= self.last_t:  # same segment: close the rectangle
                self.integral += self.last_v * (t - self.last_t)
                self.span += t - self.last_t
        self.n += 1
        self.vsum += value
        self.last_t = float(t)
        self.last_v = value

    @property
    def mean(self) -> float:
        """Per-sample mean (each observation weighted equally)."""
        return self.vsum / self.n if self.n else 0.0

    @property
    def time_weighted(self) -> float:
        """Time-weighted average over the covered span (duty cycles)."""
        return self.integral / self.span if self.span > 0 else self.last_v

    def to_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "min": self.vmin,
            "max": self.vmax,
            "sum": self.vsum,
            "mean": self.mean,
            "twa": self.time_weighted,
            "last": self.last_v,
            "last_t": self.last_t,
            "integral": self.integral,
            "span": self.span,
        }

    def merge(self, other: Dict[str, float]) -> None:
        """Fold a serialized :meth:`to_dict` into this aggregate.

        Order matters only for ``last``/``last_t`` (the merged-in stream
        is treated as *later*), which is exactly the submit-order
        contract of the sweep runner.
        """
        if not other.get("n"):
            return
        if self.n == 0:
            self.vmin = float(other["min"])
            self.vmax = float(other["max"])
        else:
            self.vmin = min(self.vmin, float(other["min"]))
            self.vmax = max(self.vmax, float(other["max"]))
        self.n += int(other["n"])
        self.vsum += float(other["sum"])
        self.integral += float(other["integral"])
        self.span += float(other["span"])
        self.last_t = float(other["last_t"])
        self.last_v = float(other["last"])


class MetricsRegistry:
    """Named counters / gauges / series with deterministic snapshots."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.series: Dict[str, SeriesStats] = {}

    # -- feeding ------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Record the most recent value of gauge ``name``."""
        self.gauges[name] = float(value)

    def observe(self, name: str, t: float, value: float) -> None:
        """Fold one ``(t, value)`` sample into series ``name``."""
        stats = self.series.get(name)
        if stats is None:
            stats = self.series[name] = SeriesStats()
        stats.observe(t, value)

    # -- output -------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view (JSON-able, deterministically ordered)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "series": {k: self.series[k].to_dict() for k in sorted(self.series)},
        }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` in: counters add, gauges last-win,
        series merge exactly (see :meth:`SeriesStats.merge`)."""
        for name, value in (snap.get("counters") or {}).items():
            self.inc(name, value)
        for name, value in (snap.get("gauges") or {}).items():
            self.set_gauge(name, value)
        for name, stats in (snap.get("series") or {}).items():
            mine = self.series.get(name)
            if mine is None:
                mine = self.series[name] = SeriesStats()
            mine.merge(stats)


class MetricsTracer(Tracer):
    """Adapts the trace-hook bus onto a :class:`MetricsRegistry`.

    One instance observes one simulation session (its per-run state —
    per-core frequency, throttled set, in-flight flows — assumes a
    single monotone clock); many instances may feed one shared registry.
    Observes only, never steers: timelines are identical with or without
    it.
    """

    #: Emit one event-loop-rate sample per this many process resumes.
    RATE_SAMPLE_EVERY = 256

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self._freq: Dict[int, float] = {}
        self._throttled: Set[int] = set()
        self._active_flows = 0
        self._resumes = 0
        self._rate_t0 = 0.0

    def emit(self, t: float, type: str, **data: Any) -> None:
        reg = self.registry
        reg.inc(f"records.{type}")
        reg.set_gauge("sim.last_t", t)
        if type == "flow.start":
            self._active_flows += 1
            reg.inc("net.flows_started")
            reg.observe("net.active_flows", t, self._active_flows)
        elif type == "flow.finish":
            self._active_flows -= 1
            reg.inc("net.flows_finished")
            reg.inc("net.bytes_delivered", data.get("delivered", 0.0))
            reg.observe("net.active_flows", t, self._active_flows)
            duration = data.get("duration", 0.0)
            reg.observe("net.flow_duration_s", t, duration)
            if duration > 0:
                reg.observe("net.delivery_gbps", t,
                            data.get("delivered", 0.0) / duration / 1e9)
        elif type == "core.frequency":
            reg.inc("power.dvfs_transitions")
            self._freq[data["core"]] = data["new"]
            reg.observe("power.mean_frequency_ghz", t,
                        sum(self._freq.values()) / len(self._freq))
        elif type == "core.tstate":
            reg.inc("power.tstate_transitions")
            if data["new"]:
                self._throttled.add(data["core"])
            else:
                self._throttled.discard(data["core"])
            reg.observe("power.throttled_cores", t, len(self._throttled))
        elif type == "core.activity":
            reg.inc("cores.activity_changes")
        elif type == "process.resume":
            self._resumes += 1
            if self._resumes % self.RATE_SAMPLE_EVERY == 0:
                dt = t - self._rate_t0
                if dt > 0:
                    reg.observe("engine.resumes_per_sim_s", t,
                                self.RATE_SAMPLE_EVERY / dt)
                self._rate_t0 = t
        elif type.startswith("fault."):
            reg.inc("faults.events")
        elif type == "mark" and data.get("name") == "governor.slack":
            ewma = data.get("ewma_s")
            if ewma is not None:
                reg.observe("governor.slack_ewma_s", t, ewma)


# -- ambient default --------------------------------------------------------
# Mirrors use_tracer: sessions built inside the scope tee their trace bus
# into the registry, so CLI --metrics reaches every simulation a command
# runs without any constructor threading.
_DEFAULT: Optional[MetricsRegistry] = None


def ambient_metrics_registry() -> Optional[MetricsRegistry]:
    """The registry new sessions feed, or None (metrics disabled)."""
    return _DEFAULT


@contextlib.contextmanager
def use_metrics(
    registry: Optional[MetricsRegistry],
) -> Iterator[Optional[MetricsRegistry]]:
    """Scope ``registry`` as the ambient metrics sink (None disables,
    shadowing any outer scope; restores on exit)."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    try:
        yield _DEFAULT
    finally:
        _DEFAULT = previous
