"""Hardware specification dataclasses for the simulated cluster.

Defaults replicate the paper's testbed (§VII-A): eight nodes, each with two
Intel "Nehalem" sockets of four cores, core frequencies 1.6–2.4 GHz, eight
CPU throttling levels T0–T7 (T0 = 100 % active, T7 = 12 % active, §II-C),
and P-/T-state transition overheads of 10–15 µs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class ThrottleGranularity(enum.Enum):
    """How fine the architecture can apply T-states.

    The paper's Nehalem testbed only supports SOCKET granularity (§V-B);
    CORE granularity models the "future architectures" the paper argues
    would throttle only non-leader cores.
    """

    SOCKET = "socket"
    CORE = "core"


#: Nehalem-like available core frequencies in GHz (P-states), ascending.
DEFAULT_PSTATES: Tuple[float, ...] = (1.60, 1.73, 1.86, 2.00, 2.13, 2.26, 2.40)

#: Number of throttling levels T0..T7.
NUM_TSTATES = 8

#: Fraction of cycles the CPU is active in T7 (paper §II-C: "only 12 %").
T7_ACTIVITY = 0.12


def tstate_duty(level: int) -> float:
    """Duty cycle (fraction of active cycles) for throttle level ``level``.

    Linear ramp from 1.0 at T0 down to :data:`T7_ACTIVITY` at T7, matching
    the paper's description of the Nehalem T-state ladder.
    """
    if not 0 <= level < NUM_TSTATES:
        raise ValueError(f"T-state must be in [0, {NUM_TSTATES - 1}], got {level}")
    return 1.0 - (1.0 - T7_ACTIVITY) * level / (NUM_TSTATES - 1)


@dataclass(frozen=True)
class CpuSpec:
    """Per-socket CPU capabilities."""

    cores_per_socket: int = 4
    pstates_ghz: Tuple[float, ...] = DEFAULT_PSTATES
    #: Cost of one DVFS (P-state) transition, seconds (paper: 10–15 µs).
    dvfs_latency_s: float = 12e-6
    #: Cost of one T-state transition, seconds.
    throttle_latency_s: float = 12e-6
    throttle_granularity: ThrottleGranularity = ThrottleGranularity.SOCKET

    def __post_init__(self) -> None:
        if self.cores_per_socket < 1:
            raise ValueError("cores_per_socket must be >= 1")
        if not self.pstates_ghz:
            raise ValueError("at least one P-state required")
        if tuple(sorted(self.pstates_ghz)) != tuple(self.pstates_ghz):
            raise ValueError("pstates_ghz must be ascending")
        if any(f <= 0 for f in self.pstates_ghz):
            raise ValueError("frequencies must be positive")

    def to_dict(self) -> dict:
        """Plain-data form (JSON-able, stable key order via dataclass
        fields) — the currency of sweep cells and cache keys."""
        return {
            "cores_per_socket": self.cores_per_socket,
            "pstates_ghz": list(self.pstates_ghz),
            "dvfs_latency_s": self.dvfs_latency_s,
            "throttle_latency_s": self.throttle_latency_s,
            "throttle_granularity": self.throttle_granularity.value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CpuSpec":
        """Inverse of :meth:`to_dict` (omitted keys take defaults)."""
        kwargs = dict(data)
        if "pstates_ghz" in kwargs:
            kwargs["pstates_ghz"] = tuple(kwargs["pstates_ghz"])
        if "throttle_granularity" in kwargs:
            kwargs["throttle_granularity"] = ThrottleGranularity(
                kwargs["throttle_granularity"]
            )
        return cls(**kwargs)

    @property
    def fmin(self) -> float:
        """Lowest available frequency (GHz)."""
        return self.pstates_ghz[0]

    @property
    def fmax(self) -> float:
        """Highest available frequency (GHz)."""
        return self.pstates_ghz[-1]

    def nearest_pstate(self, freq_ghz: float) -> float:
        """Snap ``freq_ghz`` to the closest supported P-state."""
        return min(self.pstates_ghz, key=lambda f: (abs(f - freq_ghz), f))


@dataclass(frozen=True)
class NodeSpec:
    """A compute node: ``sockets`` CPU packages sharing one InfiniBand HCA."""

    sockets: int = 2
    cpu: CpuSpec = field(default_factory=CpuSpec)

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ValueError("sockets must be >= 1")

    def to_dict(self) -> dict:
        return {"sockets": self.sockets, "cpu": self.cpu.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "NodeSpec":
        kwargs = dict(data)
        if "cpu" in kwargs:
            kwargs["cpu"] = CpuSpec.from_dict(kwargs["cpu"])
        return cls(**kwargs)

    @property
    def cores_per_node(self) -> int:
        return self.sockets * self.cpu.cores_per_socket


@dataclass(frozen=True)
class ClusterSpec:
    """The whole machine: ``nodes`` identical nodes.

    With ``racks == 1`` (the paper's testbed) every node hangs off one
    non-blocking QDR switch.  With ``racks > 1`` nodes are block-divided
    across racks, each with a leaf switch whose uplink to the spine is
    usually oversubscribed — the setting of the paper's future-work
    topology-aware extension (§VIII, ref [27])."""

    nodes: int = 8
    node: NodeSpec = field(default_factory=NodeSpec)
    racks: int = 1

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.racks < 1:
            raise ValueError("racks must be >= 1")
        if self.nodes % self.racks != 0:
            raise ValueError("nodes must divide evenly across racks")

    def to_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "racks": self.racks,
            "node": self.node.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterSpec":
        kwargs = dict(data)
        if "node" in kwargs:
            kwargs["node"] = NodeSpec.from_dict(kwargs["node"])
        return cls(**kwargs)

    @property
    def total_cores(self) -> int:
        return self.nodes * self.node.cores_per_node

    @property
    def nodes_per_rack(self) -> int:
        return self.nodes // self.racks

    def rack_of_node(self, node_id: int) -> int:
        if not 0 <= node_id < self.nodes:
            raise ValueError(f"node {node_id} out of range")
        return node_id // self.nodes_per_rack

    @classmethod
    def paper_testbed(cls) -> "ClusterSpec":
        """The exact configuration of the paper's evaluation cluster."""
        return cls()

    @classmethod
    def with_shape(
        cls,
        nodes: int,
        sockets: int = 2,
        cores_per_socket: int = 4,
        granularity: ThrottleGranularity = ThrottleGranularity.SOCKET,
    ) -> "ClusterSpec":
        """Convenience constructor for N-way experiment shapes (Fig 2a)."""
        return cls(
            nodes=nodes,
            node=NodeSpec(
                sockets=sockets,
                cpu=CpuSpec(
                    cores_per_socket=cores_per_socket,
                    throttle_granularity=granularity,
                ),
            ),
        )
