"""Physical cluster construction: nodes → sockets → cores.

Core numbering inside a node follows the Intel Nehalem scheme the paper
shows in Fig 5: OS cores 0 2 4 6 live on socket A and 1 3 5 7 on socket B,
i.e. ``os_id = local_socket + n_sockets * index_within_socket``.
"""

from __future__ import annotations

from typing import Dict, List

from .cpu import Core, Socket, ThrottleDomain
from .specs import ClusterSpec


class Node:
    """One compute node: sockets of cores plus one InfiniBand HCA."""

    __slots__ = ("node_id", "sockets", "cores", "_by_os_id")

    def __init__(self, node_id: int, sockets: List[Socket]):
        self.node_id = node_id
        self.sockets = sockets
        self.cores: List[Core] = [c for s in sockets for c in s.cores]
        self._by_os_id: Dict[int, Core] = {c.os_id: c for c in self.cores}

    def core_by_os_id(self, os_id: int) -> Core:
        """Look up a core by its OS number within this node."""
        return self._by_os_id[os_id]

    def socket_of(self, core: Core) -> Socket:
        for socket in self.sockets:
            if core in socket.cores:
                return socket
        raise ValueError(f"{core!r} is not on node {self.node_id}")

    @property
    def mean_dvfs_ratio(self) -> float:
        """Average f/fmax over the node's cores; drives the uncore/IO
        bandwidth degradation of the NIC links (see network.fabric)."""
        spec = self.cores[0].spec
        return sum(c.frequency_ghz for c in self.cores) / (len(self.cores) * spec.fmax)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id} sockets={len(self.sockets)}>"


class Cluster:
    """The full machine built from a :class:`ClusterSpec`."""

    def __init__(self, spec: ClusterSpec):
        self.spec = spec
        self.nodes: List[Node] = []
        self.cores: List[Core] = []
        self.throttle_domain = ThrottleDomain(spec.node.cpu)
        cpu = spec.node.cpu
        core_id = 0
        for node_id in range(spec.nodes):
            sockets: List[Socket] = []
            for local_socket in range(spec.node.sockets):
                cores: List[Core] = []
                for k in range(cpu.cores_per_socket):
                    os_id = local_socket + spec.node.sockets * k
                    core = Core(
                        core_id=core_id,
                        os_id=os_id,
                        node_id=node_id,
                        socket_id=node_id * spec.node.sockets + local_socket,
                        spec=cpu,
                    )
                    cores.append(core)
                    core_id += 1
                sockets.append(
                    Socket(
                        socket_id=node_id * spec.node.sockets + local_socket,
                        node_id=node_id,
                        local_index=local_socket,
                        cores=cores,
                        spec=cpu,
                    )
                )
            node = Node(node_id, sockets)
            self.nodes.append(node)
            self.cores.extend(node.cores)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def cores_per_node(self) -> int:
        return self.spec.node.cores_per_node

    def socket_of_core(self, core: Core) -> Socket:
        return self.nodes[core.node_id].socket_of(core)

    def add_listener(self, listener) -> None:
        """Attach a state listener (e.g. the energy accountant) to all cores."""
        for core in self.cores:
            core.add_listener(listener)

    def remove_listener(self, listener) -> None:
        """Detach a state listener from every core (inverse of
        :meth:`add_listener`); raises ``ValueError`` if it was never
        attached."""
        for core in self.cores:
            core.remove_listener(listener)

    def attach_tracer(self, tracer) -> None:
        """Point every core's instrumentation hook at ``tracer``."""
        for core in self.cores:
            core.tracer = tracer

    def set_all(self, now: float, frequency_ghz=None, tstate=None, activity=None) -> None:
        """Bulk state change, used for test setup and job teardown."""
        for core in self.cores:
            if frequency_ghz is not None:
                core.set_frequency(frequency_ghz, now)
            if tstate is not None:
                core.set_tstate(tstate, now)
            if activity is not None:
                core.set_activity(activity, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster {self.n_nodes}x{self.cores_per_node}>"
