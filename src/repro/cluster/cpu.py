"""Core / socket state machines: frequency (P-state), throttle (T-state)
and activity, with observer hooks for energy accounting.

A :class:`Core` holds the *current* state; every mutation first notifies the
registered listeners (giving them a chance to integrate power over the
segment that just ended) and then applies the change.  The
:class:`repro.power.accounting.EnergyAccountant` is the canonical listener.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from ..sim.trace import NULL_TRACER, Tracer
from .specs import CpuSpec, NUM_TSTATES, ThrottleGranularity, tstate_duty


class Activity(enum.Enum):
    """What a core is doing; selects the activity factor of the power model."""

    #: Nothing scheduled (deep idle / C-state).
    IDLE = "idle"
    #: Spinning on the MPI progress engine (paper "polling" mode) — fully busy.
    POLLING = "polling"
    #: Application computation — fully busy.
    COMPUTE = "compute"
    #: Sleeping in the kernel waiting for an HCA interrupt ("blocking" mode).
    BLOCKED = "blocked"

    # Members are singletons and compare by identity, so the identity hash
    # is a valid (and C-level) replacement for Enum's per-call
    # ``hash(self._name_)`` — Activity appears in the memoized power-model
    # key, making this hash part of the accounting hot path.
    __hash__ = object.__hash__


#: Listener signature: called *before* a state change with (core, now).
StateListener = Callable[["Core", float], None]


class Core:
    """One physical core with mutable (frequency, tstate, activity) state."""

    __slots__ = (
        "core_id",
        "os_id",
        "node_id",
        "socket_id",
        "spec",
        "frequency_ghz",
        "tstate",
        "activity",
        "_listeners",
        "tracer",
    )

    def __init__(
        self,
        core_id: int,
        os_id: int,
        node_id: int,
        socket_id: int,
        spec: CpuSpec,
    ):
        #: Global sequential id across the cluster.
        self.core_id = core_id
        #: OS core number within the node (Nehalem interleaved numbering).
        self.os_id = os_id
        self.node_id = node_id
        #: Global socket id (node_id * sockets_per_node + local socket index).
        self.socket_id = socket_id
        self.spec = spec
        self.frequency_ghz = spec.fmax
        self.tstate = 0
        self.activity = Activity.IDLE
        self._listeners: List[StateListener] = []
        self.tracer: Tracer = NULL_TRACER

    # -- observation -------------------------------------------------------
    def add_listener(self, listener: StateListener) -> None:
        """Register a callback invoked before every state mutation."""
        self._listeners.append(listener)

    def remove_listener(self, listener: StateListener) -> None:
        self._listeners.remove(listener)

    def _notify(self, now: float) -> None:
        for listener in self._listeners:
            listener(self, now)

    # -- state mutation ----------------------------------------------------
    # The listener loop is inlined in each setter: state changes are the
    # energy-accounting hot path and a `_notify` frame per mutation is
    # measurable on governed runs.

    def set_frequency(self, freq_ghz: float, now: float) -> None:
        """Apply a DVFS change (snapped to the nearest supported P-state).

        The *transition latency* is charged by the caller (see
        :class:`repro.collectives.power_control.PowerControl`); this method
        only flips the state at time ``now``.
        """
        snapped = self.spec.nearest_pstate(freq_ghz)
        if snapped == self.frequency_ghz:
            return
        for listener in self._listeners:
            listener(self, now)
        if self.tracer.enabled:
            self.tracer.power_state(
                now, self.core_id, self.node_id, "frequency",
                self.frequency_ghz, snapped,
            )
        self.frequency_ghz = snapped

    def set_tstate(self, level: int, now: float) -> None:
        """Apply a throttle change (T0..T7)."""
        if not 0 <= level < NUM_TSTATES:
            raise ValueError(f"invalid T-state {level}")
        if level == self.tstate:
            return
        for listener in self._listeners:
            listener(self, now)
        if self.tracer.enabled:
            self.tracer.power_state(
                now, self.core_id, self.node_id, "tstate", self.tstate, level
            )
        self.tstate = level

    def set_activity(self, activity: Activity, now: float) -> None:
        if activity == self.activity:
            return
        for listener in self._listeners:
            listener(self, now)
        if self.tracer.enabled:
            self.tracer.core_activity(
                now, self.core_id, self.node_id,
                self.activity.value, activity.value,
            )
        self.activity = activity

    # -- derived quantities --------------------------------------------------
    @property
    def duty(self) -> float:
        """Fraction of active cycles under the current T-state."""
        return tstate_duty(self.tstate)

    @property
    def speed_factor(self) -> float:
        """Relative instruction throughput vs. an unthrottled core at fmax.

        CPU-bound work (message posting, shared-memory copies) takes
        ``1 / speed_factor`` times longer on a scaled/throttled core.
        """
        return (self.frequency_ghz / self.spec.fmax) * self.duty

    def cpu_time(self, seconds_at_peak: float) -> float:
        """Wall time needed for work that takes ``seconds_at_peak`` at
        fmax/T0 on this core in its current state."""
        return seconds_at_peak / self.speed_factor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Core {self.core_id} node={self.node_id} sock={self.socket_id} "
            f"f={self.frequency_ghz}GHz T{self.tstate} {self.activity.value}>"
        )


class Socket:
    """A CPU package grouping ``cores``; the throttling unit on Nehalem."""

    __slots__ = ("socket_id", "node_id", "local_index", "cores", "spec")

    def __init__(
        self,
        socket_id: int,
        node_id: int,
        local_index: int,
        cores: List[Core],
        spec: CpuSpec,
    ):
        self.socket_id = socket_id
        self.node_id = node_id
        #: 0 for "socket A", 1 for "socket B" (paper Fig 5 terminology).
        self.local_index = local_index
        self.cores = cores
        self.spec = spec

    def set_tstate(self, level: int, now: float) -> None:
        """Throttle the whole package (the only legal unit when the spec says
        SOCKET granularity)."""
        for core in self.cores:
            core.set_tstate(level, now)

    def set_frequency(self, freq_ghz: float, now: float) -> None:
        for core in self.cores:
            core.set_frequency(freq_ghz, now)

    @property
    def tstate(self) -> int:
        """The package T-state (max of core states, i.e. most throttled,
        for reporting; under socket granularity all cores agree)."""
        return max(core.tstate for core in self.cores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        side = "AB"[self.local_index] if self.local_index < 2 else str(self.local_index)
        return f"<Socket {side} node={self.node_id} cores={len(self.cores)}>"


class ThrottleDomain:
    """Resolves the unit at which a T-state request is applied.

    Under :attr:`ThrottleGranularity.SOCKET` (the paper's hardware), asking
    to throttle one core throttles its whole socket.  Under CORE granularity
    (future architectures, §V-B) only that core changes.
    """

    def __init__(self, spec: CpuSpec):
        self.spec = spec

    def apply(self, core: Core, socket: Optional[Socket], level: int, now: float) -> None:
        if self.spec.throttle_granularity is ThrottleGranularity.CORE:
            core.set_tstate(level, now)
        else:
            if socket is None:
                raise ValueError("socket required for socket-granular throttling")
            socket.set_tstate(level, now)
