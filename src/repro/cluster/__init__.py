"""Cluster hardware model: nodes, sockets, cores, P/T-states, affinity."""

from .affinity import AffinityMap, AffinityPolicy
from .cpu import Activity, Core, Socket, ThrottleDomain
from .specs import (
    ClusterSpec,
    CpuSpec,
    DEFAULT_PSTATES,
    NodeSpec,
    NUM_TSTATES,
    T7_ACTIVITY,
    ThrottleGranularity,
    tstate_duty,
)
from .topology import Cluster, Node

__all__ = [
    "Activity",
    "AffinityMap",
    "AffinityPolicy",
    "Cluster",
    "ClusterSpec",
    "Core",
    "CpuSpec",
    "DEFAULT_PSTATES",
    "Node",
    "NodeSpec",
    "NUM_TSTATES",
    "Socket",
    "T7_ACTIVITY",
    "ThrottleDomain",
    "ThrottleGranularity",
    "tstate_duty",
]
