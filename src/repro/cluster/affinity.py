"""Process-to-core affinity policies (paper §V-C).

MVAPICH2's default ("bunch") binding places ranks 0..c/2-1 of a node on
socket A and the rest on socket B, block-distributing ranks across nodes.
The power-aware algorithms rely on this mapping to know which ranks share a
socket; alternative policies are provided to study what happens when the
assumption is violated (the paper notes the algorithms "may need to be
adjusted" then).
"""

from __future__ import annotations

import enum
from typing import Dict, List

from .cpu import Core, Socket
from .topology import Cluster


class AffinityPolicy(enum.Enum):
    """Rank-to-core binding policies (paper §V-C)."""

    #: MVAPICH2 default: block ranks across nodes, fill socket A then B.
    BUNCH = "bunch"
    #: Round-robin ranks across sockets within the node (0→A, 1→B, 2→A, …).
    SCATTER = "scatter"
    #: Bind rank r to OS core (r mod c) directly — interleaves sockets on
    #: Nehalem numbering; deliberately breaks the socket-group assumption.
    SEQUENTIAL = "sequential"


class AffinityMap:
    """Resolved binding of ``n_ranks`` MPI ranks onto a :class:`Cluster`.

    Ranks are block-distributed across nodes: rank r runs on node
    ``node_offset + r // cores_per_node`` (one process per core, fully
    subscribed nodes), which is how all the paper's experiments are laid
    out.  ``node_offset`` lets several co-scheduled jobs occupy disjoint
    contiguous node ranges of one cluster (the multi-job scenario);
    single-job callers leave it at 0 and see the historical mapping.
    """

    def __init__(
        self,
        cluster: Cluster,
        n_ranks: int,
        policy: AffinityPolicy = AffinityPolicy.BUNCH,
        node_offset: int = 0,
    ):
        c = cluster.cores_per_node
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        if node_offset < 0:
            raise ValueError("node_offset must be >= 0")
        if node_offset * c + n_ranks > cluster.n_nodes * c:
            raise ValueError(
                f"{n_ranks} ranks starting at node {node_offset} exceed "
                f"{cluster.n_nodes * c} cores"
            )
        if n_ranks % c != 0:
            raise ValueError(
                f"ranks ({n_ranks}) must fully populate nodes of {c} cores "
                "(the paper always runs fully-subscribed nodes)"
            )
        self.cluster = cluster
        self.n_ranks = n_ranks
        self.policy = policy
        self.cores_per_node = c
        self.node_offset = node_offset
        self.n_nodes_used = n_ranks // c
        self._rank_to_core: List[Core] = []
        self._core_to_rank: Dict[int, int] = {}
        for rank in range(n_ranks):
            node = cluster.nodes[node_offset + rank // c]
            local = rank % c
            os_id = self._local_rank_to_os_id(local, node)
            core = node.core_by_os_id(os_id)
            self._rank_to_core.append(core)
            self._core_to_rank[core.core_id] = rank

    def _local_rank_to_os_id(self, local: int, node) -> int:
        n_sockets = len(node.sockets)
        per_socket = self.cores_per_node // n_sockets
        if self.policy is AffinityPolicy.BUNCH:
            socket = local // per_socket
            within = local % per_socket
            return socket + n_sockets * within
        if self.policy is AffinityPolicy.SCATTER:
            socket = local % n_sockets
            within = local // n_sockets
            return socket + n_sockets * within
        # SEQUENTIAL: take OS ids in numeric order.
        return local

    # -- lookups -------------------------------------------------------------
    def core_of(self, rank: int) -> Core:
        return self._rank_to_core[rank]

    def socket_of(self, rank: int) -> Socket:
        return self.cluster.socket_of_core(self.core_of(rank))

    def rank_of_core(self, core: Core) -> int:
        return self._core_to_rank[core.core_id]

    def node_of(self, rank: int) -> int:
        return self._rank_to_core[rank].node_id

    def local_rank(self, rank: int) -> int:
        """Rank index within its node (0 .. cores_per_node-1)."""
        return rank % self.cores_per_node

    def ranks_on_node(self, node_id: int) -> List[int]:
        base = (node_id - self.node_offset) * self.cores_per_node
        return list(range(base, base + self.cores_per_node))

    def node_leader(self, node_id: int) -> int:
        """The node-leader rank (lowest rank on the node, MVAPICH2 style)."""
        return (node_id - self.node_offset) * self.cores_per_node

    def is_leader(self, rank: int) -> bool:
        return self.local_rank(rank) == 0

    def socket_group(self, rank: int) -> int:
        """0 if the rank's core is on socket A, 1 for socket B, etc."""
        return self.socket_of(rank).local_index

    def socket_peers(self, rank: int) -> List[int]:
        """Ranks on this node bound to the same socket as ``rank``."""
        sock = self.socket_of(rank)
        return [
            r
            for r in self.ranks_on_node(self.node_of(rank))
            if self.socket_of(r) is sock
        ]

    def group_a_ranks(self, node_id: int) -> List[int]:
        """Process group A of the paper's alltoall algorithm (socket A)."""
        return [r for r in self.ranks_on_node(node_id) if self.socket_group(r) == 0]

    def group_b_ranks(self, node_id: int) -> List[int]:
        return [r for r in self.ranks_on_node(node_id) if self.socket_group(r) != 0]

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def socket_leader(self, rank: int) -> int:
        """Lowest rank bound to the same socket (issues socket throttles)."""
        return min(self.socket_peers(rank))

    # -- rack topology (ClusterSpec.racks > 1) ---------------------------------
    @property
    def n_racks_used(self) -> int:
        """Racks touched by this job (nodes are block-assigned to racks)."""
        spec = self.cluster.spec
        first = spec.rack_of_node(self.node_offset)
        last = spec.rack_of_node(self.node_offset + self.n_nodes_used - 1)
        return last - first + 1

    def rack_of(self, rank: int) -> int:
        return self.cluster.spec.rack_of_node(self.node_of(rank))

    def nodes_in_rack(self, rack: int) -> List[int]:
        """Node ids of ``rack`` that this job occupies."""
        per = self.cluster.spec.nodes_per_rack
        lo = self.node_offset
        hi = self.node_offset + self.n_nodes_used
        return [
            n for n in range(rack * per, (rack + 1) * per) if lo <= n < hi
        ]

    def rack_leader(self, rack: int) -> int:
        """The rack-leader rank: the node leader of the rack's first node."""
        nodes = self.nodes_in_rack(rack)
        if not nodes:
            raise ValueError(f"rack {rack} has no ranks in this job")
        return self.node_leader(nodes[0])

    def is_rack_leader(self, rank: int) -> bool:
        return rank == self.rack_leader(self.rack_of(rank))
