"""Topology-aware collectives for multi-rack clusters, and their
power-aware variants — the paper's future work (§VIII):

    "We are interested in extending these power-aware optimizations to the
    topology-aware algorithms [27] to conserve power on large scale
    clusters by throttling down all the processes in a rack during the
    inter-rack communication phases."

Hierarchy (one more level than Fig 1): rack leaders exchange across the
oversubscribed leaf-to-spine uplinks first, then node leaders within each
rack, then the shared-memory fan-out inside each node.  The power-aware
variants run at fmin and keep *entire racks* throttled while only the rack
leaders drive the uplinks.
"""

from __future__ import annotations

from ..cluster.specs import ThrottleGranularity
from .base import tag_for, validate_collective_args
from .bcast import scatter_allgather_bcast, shm_bcast
from .power_control import T_FULL, T_LOW, T_PARTIAL, dvfs_down, dvfs_up
from .reduce import binomial_reduce, shm_reduce


def _require_world_root_leader(ctx, comm, root: int) -> None:
    if comm is not ctx.world:
        raise ValueError("topology-aware collectives require COMM_WORLD")
    if root != 0:
        # The rack hierarchy is rooted at rank 0 (= leader of rack 0); a
        # general root would need an extra forwarding hop.
        raise ValueError("topology-aware collectives currently require root=0")


def topo_bcast(ctx, nbytes: int, root: int, comm, seq: int, record_phase: bool = True):
    """Three-level broadcast: rack leaders → node leaders → shared memory."""
    validate_collective_args(comm.size, nbytes)
    _require_world_root_leader(ctx, comm, root)
    aff = ctx.affinity
    layout = ctx.job.layout
    my_rack = aff.rack_of(ctx.rank)
    # Per-sub-communicator sequence counters (see mc_bcast).
    sseq = ctx.next_seq(ctx.shared_comm)
    rnseq = (
        ctx.next_seq(layout.rack_node_leaders[my_rack])
        if ctx.is_node_leader()
        else 0
    )
    rlseq = ctx.next_seq(layout.rack_leaders) if aff.is_rack_leader(ctx.rank) else 0

    # Stage 1: across racks (the expensive, oversubscribed hop).
    if aff.is_rack_leader(ctx.rank):
        t0 = ctx.env.now
        yield from scatter_allgather_bcast(
            ctx, nbytes, 0, layout.rack_leaders, rlseq
        )
        if record_phase and ctx.rank == 0:
            ctx.job.stats.add_phase("topo_bcast.inter_rack", ctx.env.now - t0)

    # Stage 2: node leaders within each rack (scatter-allgather: the rack's
    # leaf switch is non-blocking, so the ring pipelines at full rate).
    if ctx.is_node_leader():
        rack_comm = layout.rack_node_leaders[my_rack]
        rack_root = rack_comm.rank_of(aff.rack_leader(my_rack))
        yield from scatter_allgather_bcast(ctx, nbytes, rack_root, rack_comm, rnseq)

    # Stage 3: shared-memory fan-out.
    yield from shm_bcast(
        ctx, nbytes, aff.node_leader(ctx.node_id), ctx.shared_comm, sseq
    )


def power_aware_topo_bcast(ctx, nbytes: int, root: int, comm, seq: int):
    """Power-aware rack broadcast: during the inter-rack phase every rank
    of a rack except its rack leader is throttled (whole racks go dark, the
    paper's §VIII vision); node leaders are woken with a zero-byte message,
    then the intra-rack and intra-node phases run unthrottled (at fmin)."""
    validate_collective_args(comm.size, nbytes)
    _require_world_root_leader(ctx, comm, root)
    aff = ctx.affinity
    layout = ctx.job.layout
    my_rack = aff.rack_of(ctx.rank)
    rack_leader = aff.rack_leader(my_rack)
    granularity = ctx.core.spec.throttle_granularity
    # Per-sub-communicator sequence counters (see mc_bcast).
    sseq = ctx.next_seq(ctx.shared_comm)
    rnseq = (
        ctx.next_seq(layout.rack_node_leaders[my_rack])
        if ctx.is_node_leader()
        else 0
    )
    rlseq = ctx.next_seq(layout.rack_leaders) if aff.is_rack_leader(ctx.rank) else 0
    wake_tag = tag_for(rnseq, 60)
    net_done = f"tbc{seq}.rackdone"

    yield from dvfs_down(ctx)

    # -- throttle pattern for the inter-rack phase ----------------------------
    if ctx.rank == rack_leader:
        yield from ctx.throttle(T_PARTIAL)
    elif granularity is ThrottleGranularity.CORE:
        yield from ctx.throttle(T_LOW)
    elif ctx.node_id != aff.node_of(rack_leader):
        # Whole node is dark: every socket leader throttles its package.
        if ctx.rank == aff.socket_leader(ctx.rank):
            yield from ctx.throttle(T_LOW, charge=False)
    elif ctx.socket.local_index != aff.socket_group(rack_leader):
        if ctx.rank == aff.socket_leader(ctx.rank):
            yield from ctx.throttle(T_LOW, charge=False)

    # -- stage 1: rack leaders across the spine -------------------------------
    if ctx.rank == rack_leader:
        t0 = ctx.env.now
        yield from scatter_allgather_bcast(ctx, nbytes, 0, layout.rack_leaders, rlseq)
        if ctx.rank == 0:
            ctx.job.stats.add_phase("topo_bcast.inter_rack", ctx.env.now - t0)
        yield from ctx.throttle(T_FULL)
        # Wake the rack's other node leaders before pushing data at them.
        rack_comm = layout.rack_node_leaders[my_rack]
        for node_id in aff.nodes_in_rack(my_rack):
            leader = aff.node_leader(node_id)
            if leader != ctx.rank:
                yield from ctx.send(
                    dst=rack_comm.rank_of(leader), nbytes=0,
                    tag=wake_tag, comm=rack_comm,
                )
    elif ctx.is_node_leader():
        rack_comm = layout.rack_node_leaders[my_rack]
        yield from ctx.recv(
            src=rack_comm.rank_of(rack_leader), tag=wake_tag, comm=rack_comm
        )
        yield from ctx.throttle(T_FULL)

    # -- stage 2: node leaders within the rack --------------------------------
    if ctx.is_node_leader():
        rack_comm = layout.rack_node_leaders[my_rack]
        yield from scatter_allgather_bcast(
            ctx, nbytes, rack_comm.rank_of(rack_leader), rack_comm, rnseq
        )
        ctx.notify(net_done)
    else:
        yield ctx.flag(net_done)
        yield from ctx.throttle(T_FULL)

    # -- stage 3: shared memory ------------------------------------------------
    yield from shm_bcast(
        ctx, nbytes, aff.node_leader(ctx.node_id), ctx.shared_comm, sseq
    )
    yield from dvfs_up(ctx)


def topo_scatter(ctx, nbytes: int, root: int, comm, seq: int):
    """Topology-aware scatter (the case study of the paper's ref [27]):
    root → rack leaders (rack-sized blocks) → node leaders (node-sized
    blocks) → shared-memory distribution.  Each rank ends with ``nbytes``.
    """
    validate_collective_args(comm.size, nbytes)
    _require_world_root_leader(ctx, comm, root)
    aff = ctx.affinity
    layout = ctx.job.layout
    my_rack = aff.rack_of(ctx.rank)
    c = aff.cores_per_node
    # Per-sub-communicator sequence counters (see mc_bcast).
    sseq = ctx.next_seq(ctx.shared_comm)
    rnseq = (
        ctx.next_seq(layout.rack_node_leaders[my_rack])
        if ctx.is_node_leader()
        else 0
    )
    rlseq = ctx.next_seq(layout.rack_leaders) if aff.is_rack_leader(ctx.rank) else 0

    # Stage 1: root sends each rack leader its rack's block.
    if ctx.rank == 0:
        for rack in range(1, aff.n_racks_used):
            block = nbytes * c * len(aff.nodes_in_rack(rack))
            yield from ctx.send(
                dst=layout.rack_leaders.rank_of(aff.rack_leader(rack)),
                nbytes=block, tag=tag_for(rlseq, 0), comm=layout.rack_leaders,
            )
    elif aff.is_rack_leader(ctx.rank):
        yield from ctx.recv(src=0, tag=tag_for(rlseq, 0), comm=layout.rack_leaders)

    # Stage 2: rack leader scatters node blocks to its node leaders.
    if ctx.is_node_leader():
        rack_comm = layout.rack_node_leaders[my_rack]
        rack_root = rack_comm.rank_of(aff.rack_leader(my_rack))
        me = rack_comm.rank_of(ctx.rank)
        if me == rack_root:
            for dst in range(rack_comm.size):
                if dst != rack_root:
                    yield from ctx.send(
                        dst=dst, nbytes=nbytes * c, tag=tag_for(rnseq, 1),
                        comm=rack_comm,
                    )
        else:
            yield from ctx.recv(src=rack_root, tag=tag_for(rnseq, 1), comm=rack_comm)

    # Stage 3: node leader hands each local rank its block.
    shared = ctx.shared_comm
    leader_local = shared.rank_of(aff.node_leader(ctx.node_id))
    me_local = shared.rank_of(ctx.rank)
    if me_local == leader_local:
        for dst in range(shared.size):
            if dst != leader_local:
                yield from ctx.send(
                    dst=dst, nbytes=nbytes, tag=tag_for(sseq, 2), comm=shared
                )
    else:
        yield from ctx.recv(src=leader_local, tag=tag_for(sseq, 2), comm=shared)


def topo_gather(ctx, nbytes: int, root: int, comm, seq: int):
    """Topology-aware gather — the mirror of :func:`topo_scatter`."""
    validate_collective_args(comm.size, nbytes)
    _require_world_root_leader(ctx, comm, root)
    aff = ctx.affinity
    layout = ctx.job.layout
    my_rack = aff.rack_of(ctx.rank)
    c = aff.cores_per_node
    # Per-sub-communicator sequence counters (see mc_bcast).
    sseq = ctx.next_seq(ctx.shared_comm)
    rnseq = (
        ctx.next_seq(layout.rack_node_leaders[my_rack])
        if ctx.is_node_leader()
        else 0
    )
    rlseq = ctx.next_seq(layout.rack_leaders) if aff.is_rack_leader(ctx.rank) else 0

    # Stage 1: ranks push their blocks to the node leader.
    shared = ctx.shared_comm
    leader_local = shared.rank_of(aff.node_leader(ctx.node_id))
    me_local = shared.rank_of(ctx.rank)
    if me_local == leader_local:
        for _ in range(shared.size - 1):
            yield from ctx.recv(tag=tag_for(sseq, 2), comm=shared)
    else:
        yield from ctx.send(
            dst=leader_local, nbytes=nbytes, tag=tag_for(sseq, 2), comm=shared
        )

    # Stage 2: node leaders push node blocks to the rack leader.
    if ctx.is_node_leader():
        rack_comm = layout.rack_node_leaders[my_rack]
        rack_root = rack_comm.rank_of(aff.rack_leader(my_rack))
        me = rack_comm.rank_of(ctx.rank)
        if me == rack_root:
            for _ in range(rack_comm.size - 1):
                yield from ctx.recv(tag=tag_for(rnseq, 1), comm=rack_comm)
        else:
            yield from ctx.send(
                dst=rack_root, nbytes=nbytes * c, tag=tag_for(rnseq, 1), comm=rack_comm
            )

    # Stage 3: rack leaders push rack blocks to the root.
    if aff.is_rack_leader(ctx.rank) and ctx.rank != 0:
        block = nbytes * c * len(aff.nodes_in_rack(my_rack))
        yield from ctx.send(
            dst=0, nbytes=block, tag=tag_for(rlseq, 0), comm=layout.rack_leaders
        )
    elif ctx.rank == 0:
        for _ in range(aff.n_racks_used - 1):
            yield from ctx.recv(tag=tag_for(rlseq, 0), comm=layout.rack_leaders)


def topo_reduce(ctx, nbytes: int, root: int, comm, seq: int):
    """Three-level reduce: shared memory → node leaders per rack → rack
    leaders across the spine."""
    validate_collective_args(comm.size, nbytes)
    _require_world_root_leader(ctx, comm, root)
    aff = ctx.affinity
    layout = ctx.job.layout
    my_rack = aff.rack_of(ctx.rank)
    # Per-sub-communicator sequence counters (see mc_bcast).
    sseq = ctx.next_seq(ctx.shared_comm)
    rnseq = (
        ctx.next_seq(layout.rack_node_leaders[my_rack])
        if ctx.is_node_leader()
        else 0
    )
    rlseq = ctx.next_seq(layout.rack_leaders) if aff.is_rack_leader(ctx.rank) else 0

    yield from shm_reduce(
        ctx, nbytes, aff.node_leader(ctx.node_id), ctx.shared_comm, sseq
    )
    if ctx.is_node_leader():
        rack_comm = layout.rack_node_leaders[my_rack]
        yield from binomial_reduce(
            ctx, nbytes, rack_comm.rank_of(aff.rack_leader(my_rack)), rack_comm, rnseq
        )
    if aff.is_rack_leader(ctx.rank):
        yield from binomial_reduce(ctx, nbytes, 0, layout.rack_leaders, rlseq)
