"""Power-control building blocks shared by the power-aware algorithms.

The paper's baseline "Freq-Scaling" scheme (§V, also [5], [6]) is the
per-call DVFS wrapper: drop every core to fmin at the start of the
collective, restore fmax at the end.  The proposed algorithms add T-state
choreography on top.
"""

from __future__ import annotations

#: T-state used for "fully throttled" groups (12 % active, §II-C).
T_LOW = 7
#: Partial throttle for the leader's socket in the shared-memory
#: algorithms (§V-B / §VI-B2: "socket A to the T4 state").
T_PARTIAL = 4
#: Unthrottled.
T_FULL = 0


def dvfs_down(ctx, charge: bool = True):
    """Scale this rank's core to fmin (one ``Odvfs``)."""
    yield from ctx.scale_frequency(ctx.core.spec.fmin, charge=charge)


def dvfs_up(ctx, charge: bool = True):
    """Restore this rank's core to fmax (one ``Odvfs``)."""
    yield from ctx.scale_frequency(ctx.core.spec.fmax, charge=charge)


def with_dvfs(ctx, inner):
    """Run ``inner`` (a collective generator) between a DVFS down/up pair —
    the paper's "Freq-Scaling" comparison scheme."""
    tracer = ctx.env.tracer
    if tracer.enabled:
        tracer.mark(ctx.env.now, "power.freq_scaling.begin", rank=ctx.rank)
    yield from dvfs_down(ctx)
    yield from inner
    yield from dvfs_up(ctx)
    if tracer.enabled:
        tracer.mark(ctx.env.now, "power.freq_scaling.end", rank=ctx.rank)
