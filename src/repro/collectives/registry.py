"""Algorithm selection: message-size tuning and power-mode dispatch.

The three schemes of the paper's evaluation map onto :class:`PowerMode`:

* ``NONE``      — "Default (No-Power)": state-of-the-art algorithms, fmax.
* ``DVFS``      — "Freq-Scaling": the same algorithms wrapped in per-call
  DVFS (the prior-work baseline of [5], [6]).
* ``PROPOSED``  — the paper's contribution: DVFS + T-state choreography
  (power-aware alltoall §V-A, shared-memory collectives §V-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .alltoall import bruck_alltoall, pairwise_alltoall, pairwise_alltoallv
from .bcast import binomial_bcast, mc_bcast
from .power_alltoall import power_aware_alltoall, supports_power_alltoall
from .power_control import with_dvfs
from .power_shm import power_aware_mc_bcast, power_aware_mc_reduce
from .reduce import binomial_reduce, mc_reduce
from .smallcolls import (
    binomial_gather,
    binomial_scatter,
    dissemination_barrier,
    linear_scan,
    recursive_doubling_allreduce,
    reduce_scatter_pairwise,
    ring_allgather,
)
from .topo_aware import power_aware_topo_bcast, topo_bcast, topo_reduce


class PowerMode(enum.Enum):
    """The power-management schemes of the paper's evaluation (§VII)."""

    NONE = "none"
    DVFS = "dvfs"
    PROPOSED = "proposed"
    #: Extension beyond the paper: decide per call, from the analytical
    #: models (§VI), whether the predicted collective duration amortises
    #: the DVFS/throttle transitions; engage PROPOSED only then.
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class CollectiveConfig:
    """Tuning knobs for the dispatcher."""

    power_mode: PowerMode = PowerMode.NONE
    #: Below this size MPI_Alltoall uses Bruck; at/above, pairwise (§IV-A).
    alltoall_switch_bytes: int = 8192
    #: Use the multi-core-aware compositions on COMM_WORLD jobs that span
    #: multiple nodes (§II-D); flat algorithms otherwise.
    multicore_aware: bool = True
    #: Power machinery only engages at/above this message size: the
    #: 2·Odvfs + throttle cost would dominate small operations (the paper's
    #: power experiments all start at 16 KB).
    power_min_bytes: int = 8192
    #: ADAPTIVE mode: engage the power machinery when the model-predicted
    #: collective duration exceeds ``adaptive_gain`` x the transition
    #: overhead.  The default is the energy break-even: the proposed
    #: schemes cut system power by ~29 %, so engaging pays off once
    #: 0.29·T_est > overhead, i.e. T_est > ~3.5x overhead.
    adaptive_gain: float = 3.5

    def __post_init__(self) -> None:
        if self.alltoall_switch_bytes < 0:
            raise ValueError("alltoall_switch_bytes must be >= 0")
        if self.power_min_bytes < 0:
            raise ValueError("power_min_bytes must be >= 0")


class CollectiveEngine:
    """Per-job dispatcher from (operation, size, comm, mode) to algorithm."""

    def __init__(self, config: CollectiveConfig | None = None):
        self.config = config or CollectiveConfig()

    # -- helpers -------------------------------------------------------------
    def _mode(self, nbytes: int = None, ctx=None, op: str = "") -> PowerMode:
        """The effective power mode for an operation of ``nbytes`` (power
        machinery is bypassed below ``power_min_bytes``; ADAPTIVE resolves
        to PROPOSED or NONE from the duration estimate)."""
        if nbytes is not None and nbytes < self.config.power_min_bytes:
            return PowerMode.NONE
        mode = self.config.power_mode
        if mode is PowerMode.ADAPTIVE:
            if ctx is None or nbytes is None:
                return PowerMode.NONE
            return self._adaptive_decision(ctx, op, nbytes)
        return mode

    def _adaptive_decision(self, ctx, op: str, nbytes: int) -> PowerMode:
        """Engage PROPOSED when the §VI model predicts the collective lasts
        long enough to amortise the P-/T-state transitions."""
        aff = ctx.affinity
        spec = ctx.core.spec
        net = ctx.spec
        n = max(aff.n_nodes_used, 1)
        c = aff.cores_per_node
        p = aff.n_ranks
        tw = 1.0 / net.nic_bw
        if op == "alltoall":
            est = tw * (p - c) * c * nbytes  # eq (1), Cnet = ranks/HCA
            overhead = 2 * spec.dvfs_latency_s + n * spec.throttle_latency_s
        elif op in ("bcast", "reduce"):
            est = nbytes * (n - 1) * tw * (1 + 1 / n)  # eq (2)
            overhead = 2 * spec.dvfs_latency_s + 2 * spec.throttle_latency_s
        else:
            est = nbytes * max(p - 1, 1) * tw
            overhead = 2 * spec.dvfs_latency_s
        if est > self.config.adaptive_gain * overhead:
            return PowerMode.PROPOSED
        return PowerMode.NONE

    def _mc_eligible(self, ctx, comm) -> bool:
        return (
            self.config.multicore_aware
            and comm is ctx.world
            and ctx.affinity.n_nodes_used > 1
            and ctx.affinity.cores_per_node > 1
        )

    def _topo_eligible(self, ctx, comm, root: int) -> bool:
        """Use the rack-aware compositions on multi-rack jobs (§VIII)."""
        return (
            self._mc_eligible(ctx, comm)
            and ctx.job.cluster.spec.racks > 1
            and ctx.affinity.n_racks_used > 1
            and root == 0
        )

    # -- operations ------------------------------------------------------------
    def alltoall(self, ctx, nbytes: int, comm):
        seq = ctx.next_seq(comm)
        mode = self._mode(nbytes, ctx, "alltoall")
        if mode is PowerMode.PROPOSED and supports_power_alltoall(ctx, comm):
            yield from power_aware_alltoall(ctx, nbytes, comm, seq)
            return
        if nbytes < self.config.alltoall_switch_bytes:
            inner = bruck_alltoall(ctx, nbytes, comm, seq)
        else:
            inner = pairwise_alltoall(ctx, nbytes, comm, seq)
        if mode is PowerMode.NONE:
            yield from inner
        else:  # DVFS, or PROPOSED falling back on unsupported shapes
            yield from with_dvfs(ctx, inner)

    def alltoallv(self, ctx, send_counts, comm):
        seq = ctx.next_seq(comm)
        mode = self._mode(
            max(send_counts) if len(send_counts) else 0, ctx, "alltoall"
        )
        if mode is PowerMode.PROPOSED and supports_power_alltoall(ctx, comm):
            # §VII-D / [26]: the Alltoallv variant runs the same four-phase
            # schedule carrying the native per-peer counts.
            yield from power_aware_alltoall(
                ctx, 0, comm, seq, send_counts=list(send_counts)
            )
            return
        inner = pairwise_alltoallv(ctx, send_counts, comm, seq)
        if mode is PowerMode.NONE:
            yield from inner
        else:
            yield from with_dvfs(ctx, inner)

    def bcast(self, ctx, nbytes: int, root: int, comm):
        seq = ctx.next_seq(comm)
        mode = self._mode(nbytes, ctx, "bcast")
        if self._topo_eligible(ctx, comm, root):
            if mode is PowerMode.PROPOSED:
                yield from power_aware_topo_bcast(ctx, nbytes, root, comm, seq)
                return
            inner = topo_bcast(ctx, nbytes, root, comm, seq)
            if mode is PowerMode.NONE:
                yield from inner
            else:
                yield from with_dvfs(ctx, inner)
            return
        if self._mc_eligible(ctx, comm):
            if mode is PowerMode.PROPOSED:
                yield from power_aware_mc_bcast(ctx, nbytes, root, comm, seq)
                return
            inner = mc_bcast(ctx, nbytes, root, comm, seq)
        else:
            inner = binomial_bcast(ctx, nbytes, root, comm, seq)
        if mode is PowerMode.NONE:
            yield from inner
        else:
            yield from with_dvfs(ctx, inner)

    def reduce(self, ctx, nbytes: int, root: int, comm):
        seq = ctx.next_seq(comm)
        mode = self._mode(nbytes, ctx, "reduce")
        if self._topo_eligible(ctx, comm, root):
            inner = topo_reduce(ctx, nbytes, root, comm, seq)
            if mode is PowerMode.NONE:
                yield from inner
            else:
                # A dedicated throttled variant is future work here too;
                # per-call DVFS is the safe power scheme for topo-reduce.
                yield from with_dvfs(ctx, inner)
            return
        if self._mc_eligible(ctx, comm):
            if mode is PowerMode.PROPOSED:
                yield from power_aware_mc_reduce(ctx, nbytes, root, comm, seq)
                return
            inner = mc_reduce(ctx, nbytes, root, comm, seq)
        else:
            inner = binomial_reduce(ctx, nbytes, root, comm, seq)
        if mode is PowerMode.NONE:
            yield from inner
        else:
            yield from with_dvfs(ctx, inner)

    def allreduce(self, ctx, nbytes: int, comm):
        seq = ctx.next_seq(comm)
        inner = recursive_doubling_allreduce(ctx, nbytes, comm, seq)
        if self._mode(nbytes, ctx, "other") is PowerMode.NONE:
            yield from inner
        else:
            yield from with_dvfs(ctx, inner)

    def allgather(self, ctx, nbytes: int, comm):
        seq = ctx.next_seq(comm)
        inner = ring_allgather(ctx, nbytes, comm, seq)
        if self._mode(nbytes, ctx, "other") is PowerMode.NONE:
            yield from inner
        else:
            yield from with_dvfs(ctx, inner)

    def scatter(self, ctx, nbytes: int, root: int, comm):
        seq = ctx.next_seq(comm)
        inner = binomial_scatter(ctx, nbytes, root, comm, seq)
        if self._mode(nbytes) is PowerMode.NONE:
            yield from inner
        else:
            yield from with_dvfs(ctx, inner)

    def gather(self, ctx, nbytes: int, root: int, comm):
        seq = ctx.next_seq(comm)
        inner = binomial_gather(ctx, nbytes, root, comm, seq)
        if self._mode(nbytes) is PowerMode.NONE:
            yield from inner
        else:
            yield from with_dvfs(ctx, inner)

    def reduce_scatter(self, ctx, nbytes: int, comm):
        seq = ctx.next_seq(comm)
        inner = reduce_scatter_pairwise(ctx, nbytes, comm, seq)
        if self._mode(nbytes) is PowerMode.NONE:
            yield from inner
        else:
            yield from with_dvfs(ctx, inner)

    def scan(self, ctx, nbytes: int, comm):
        seq = ctx.next_seq(comm)
        inner = linear_scan(ctx, nbytes, comm, seq)
        if self._mode(nbytes) is PowerMode.NONE:
            yield from inner
        else:
            yield from with_dvfs(ctx, inner)

    def barrier(self, ctx, comm):
        seq = ctx.next_seq(comm)
        yield from dissemination_barrier(ctx, comm, seq)
