"""MPI_Bcast algorithms: binomial tree, scatter-allgather (medium/large
inter-leader algorithm, §VI-A1) and the multi-core-aware composition of
Fig 1 (leader network phase + shared-memory intra-node phase).
"""

from __future__ import annotations

from .base import is_power_of_two, tag_for, validate_collective_args


def binomial_bcast(ctx, nbytes: int, root: int, comm, seq: int):
    """Classic binomial tree broadcast [23] — every process relays."""
    size = comm.size
    validate_collective_args(size, nbytes)
    if size == 1:
        return
    me = comm.rank_of(ctx.rank)
    relative = (me - root) % size
    # Receive once from the parent.
    mask = 1
    while mask < size:
        if relative & mask:
            parent = (relative - mask + root) % size
            yield from ctx.recv(src=parent, tag=tag_for(seq, 0), comm=comm)
            break
        mask <<= 1
    # Forward to children (highest mask first, like MPICH).
    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            child = (relative + mask + root) % size
            yield from ctx.send(dst=child, nbytes=nbytes, tag=tag_for(seq, 0), comm=comm)
        mask >>= 1


def _scatter_for_bcast(ctx, nbytes: int, root: int, comm, seq: int):
    """Recursive-halving scatter of the root's buffer (power-of-two only)."""
    size = comm.size
    me = comm.rank_of(ctx.rank)
    relative = (me - root) % size
    block = nbytes / size
    mask = size >> 1
    step = 0
    while mask >= 1:
        if relative % (2 * mask) == 0:
            dst = (relative + mask + root) % size
            yield from ctx.send(
                dst=dst, nbytes=block * mask, tag=tag_for(seq, step), comm=comm
            )
        elif relative % (2 * mask) == mask:
            src = (relative - mask + root) % size
            yield from ctx.recv(src=src, tag=tag_for(seq, step), comm=comm)
        mask >>= 1
        step += 1


def _ring_allgather(ctx, block_bytes: float, comm, seq: int, tag_offset: int = 64):
    """Ring allgather: size−1 steps, one block per step."""
    size = comm.size
    me = comm.rank_of(ctx.rank)
    right = (me + 1) % size
    left = (me - 1) % size
    for step in range(size - 1):
        yield from ctx.sendrecv(
            dst=right,
            nbytes=block_bytes,
            src=left,
            tag=tag_for(seq, tag_offset + step),
            comm=comm,
        )


def scatter_allgather_bcast(ctx, nbytes: int, root: int, comm, seq: int):
    """Scatter + allgather broadcast: the MVAPICH2 medium/large-message
    inter-leader algorithm modelled by equation (2) of the paper."""
    size = comm.size
    validate_collective_args(size, nbytes)
    if size == 1:
        return
    me = comm.rank_of(ctx.rank)
    if is_power_of_two(size):
        yield from _scatter_for_bcast(ctx, nbytes, root, comm, seq)
    else:
        # Linear scatter fallback for odd group sizes.
        block = nbytes / size
        if me == root:
            for dst in range(size):
                if dst != root:
                    yield from ctx.send(dst=dst, nbytes=block, tag=tag_for(seq, 0), comm=comm)
        else:
            yield from ctx.recv(src=root, tag=tag_for(seq, 0), comm=comm)
    yield from _ring_allgather(ctx, nbytes / size, comm, seq)


def shm_bcast(ctx, nbytes: int, root_world: int, comm, seq: int):
    """Intra-node phase: the leader writes the buffer to the shared region
    and every other rank copies it out (concurrent reads sharing the node's
    memory bandwidth)."""
    size = comm.size
    if size == 1:
        return
    me = comm.rank_of(ctx.rank)
    root = comm.rank_of(root_world)
    if me == root:
        requests = []
        for dst in range(size):
            if dst != root:
                req = yield from ctx.isend(
                    dst=dst, nbytes=nbytes, tag=tag_for(seq, 1), comm=comm
                )
                requests.append(req)
        yield from ctx._wait(ctx.env.all_of(requests))
    else:
        yield from ctx.recv(src=root, tag=tag_for(seq, 1), comm=comm)


#: Below this size the inter-leader phase uses the binomial tree (the
#: scatter-allgather pays 2·(N−1) startups for little bandwidth gain);
#: §VI-A1 describes scatter-allgather as the "medium and large" algorithm.
SAG_MIN_BYTES = 8192


def _leader_bcast(ctx, nbytes: int, root: int, comm, seq: int):
    """Inter-leader broadcast with MVAPICH2-style size tuning."""
    if nbytes < SAG_MIN_BYTES:
        yield from binomial_bcast(ctx, nbytes, root, comm, seq)
    else:
        yield from scatter_allgather_bcast(ctx, nbytes, root, comm, seq)


def mc_bcast(ctx, nbytes: int, root: int, comm, seq: int, record_phase: bool = True):
    """Multi-core-aware broadcast (Fig 1): network phase among node
    leaders, then the shared-memory intra-node phase.

    Only valid on COMM_WORLD (it needs the node topology).
    """
    validate_collective_args(comm.size, nbytes)
    if comm is not ctx.world:
        raise ValueError("mc_bcast requires COMM_WORLD")
    shared = ctx.shared_comm
    leaders = ctx.leader_comm
    affinity = ctx.affinity
    root_node = affinity.node_of(root)
    root_leader = affinity.node_leader(root_node)
    # Sub-communicators keep their own sequence counters so these internal
    # messages can never cross-match with user collectives on the same
    # sub-communicator.
    sseq = ctx.next_seq(shared)
    lseq = ctx.next_seq(leaders) if ctx.is_node_leader() else 0

    # Stage 0: get the buffer to the root's node leader if needed.
    if root != root_leader:
        if ctx.rank == root:
            yield from ctx.send(
                dst=shared.rank_of(root_leader), nbytes=nbytes,
                tag=tag_for(sseq, 63), comm=shared,
            )
        elif ctx.rank == root_leader:
            yield from ctx.recv(
                src=shared.rank_of(root), tag=tag_for(sseq, 63), comm=shared
            )

    # Stage 1: network phase — only leaders move data; everyone else is
    # already parked in the stage-2 receive, spinning (the power waste the
    # paper targets in §IV-B).
    if ctx.is_node_leader():
        t0 = ctx.env.now
        yield from _leader_bcast(
            ctx, nbytes, leaders.rank_of(root_leader), leaders, lseq
        )
        if record_phase and leaders.rank_of(ctx.rank) == 0:
            ctx.job.stats.add_phase("bcast.network", ctx.env.now - t0)

    # Stage 2: intra-node shared-memory fan-out from each leader.
    yield from shm_bcast(ctx, nbytes, affinity.node_leader(ctx.node_id), shared, sseq)
