"""Power-aware intra-node point-to-point — the paper's last future-work
item (§VIII):

    "since the modern architectures allow for DVFS operations to be
    performed at the core-level granularity, it is necessary to explore
    how intra-node point-to-point operations can be designed to conserve
    power."

A large shared-memory copy is partially memory-bound: at fmin the copy
loses only (1−α)·(1−fmin/fmax) ≈ 13 % of its bandwidth while the two
cores' power drops by ≈37 % — so wrapping big intra-node exchanges in a
per-message DVFS pair is a net energy win.  Both endpoints must call the
same wrapper (it is SPMD, like a collective over a 2-rank group).
"""

from __future__ import annotations

from .power_control import dvfs_down, dvfs_up

#: Below this size the 2·Odvfs cost exceeds any possible copy saving.
DEFAULT_P2P_POWER_THRESHOLD = 256 * 1024


def power_aware_exchange(
    ctx,
    partner: int,
    nbytes: int,
    tag: int = 0,
    threshold: int = DEFAULT_P2P_POWER_THRESHOLD,
):
    """Sendrecv with ``partner`` that drops both cores to fmin for the
    duration of a *large intra-node* transfer.

    Inter-node or small messages pass straight through: the HCA does the
    work there (its power is not CPU-gated), and small copies cannot
    amortise the DVFS transitions.
    """
    same_node = ctx.affinity.same_node(ctx.rank, partner)
    engage = same_node and nbytes >= threshold
    if engage:
        yield from dvfs_down(ctx)
    result = yield from ctx.sendrecv(dst=partner, nbytes=nbytes, tag=tag)
    if engage:
        yield from dvfs_up(ctx)
    return result


def power_aware_send(ctx, dst: int, nbytes: int, tag: int = 0,
                     threshold: int = DEFAULT_P2P_POWER_THRESHOLD):
    """One-sided variant for the sender of a large intra-node message.

    Only this rank's core is scaled (core-granular DVFS); the receiver may
    independently use :func:`power_aware_recv`.
    """
    engage = ctx.affinity.same_node(ctx.rank, dst) and nbytes >= threshold
    if engage:
        yield from dvfs_down(ctx)
    result = yield from ctx.send(dst=dst, nbytes=nbytes, tag=tag)
    if engage:
        yield from dvfs_up(ctx)
    return result


def power_aware_recv(ctx, src: int, nbytes_hint: int, tag: int = 0,
                     threshold: int = DEFAULT_P2P_POWER_THRESHOLD):
    """Receiver-side counterpart of :func:`power_aware_send`.

    ``nbytes_hint`` is the expected size (MPI receives know their buffer
    size); it decides whether scaling is worthwhile.
    """
    engage = (
        ctx.affinity.same_node(ctx.rank, src) and nbytes_hint >= threshold
    )
    if engage:
        yield from dvfs_down(ctx)
    result = yield from ctx.recv(src=src, tag=tag)
    if engage:
        yield from dvfs_up(ctx)
    return result
