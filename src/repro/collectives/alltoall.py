"""MPI_Alltoall algorithms: pairwise exchange (large messages) and the
Bruck/hypercube algorithm (small messages), as used by MVAPICH2 (§IV-A).
"""

from __future__ import annotations

from .base import pairwise_partner, tag_for, validate_collective_args


def pairwise_alltoall(ctx, nbytes: int, comm, seq: int):
    """Pairwise exchange: P−1 sendrecv steps (plus the local copy).

    With block rank placement the first ``c−1`` steps stay inside the node
    (paper §V-A: "the first c steps of this operation will involve
    intra-node message exchanges").
    """
    size = comm.size
    validate_collective_args(size, nbytes)
    me = comm.rank_of(ctx.rank)
    for step in range(1, size):
        send_to, recv_from = pairwise_partner(me, size, step)
        yield from ctx.sendrecv(
            dst=send_to,
            nbytes=nbytes,
            src=recv_from,
            tag=tag_for(seq, step),
            comm=comm,
        )


def bruck_alltoall(ctx, nbytes: int, comm, seq: int):
    """Bruck's algorithm [21]: ⌈log₂ P⌉ rounds moving ≈P/2 blocks each —
    fewer startups, more data; the small-message choice."""
    size = comm.size
    validate_collective_args(size, nbytes)
    me = comm.rank_of(ctx.rank)
    step = 0
    pof2 = 1
    while pof2 < size:
        send_to = (me + pof2) % size
        recv_from = (me - pof2) % size
        # Blocks whose index has this bit set move in this round.
        n_blocks = sum(1 for block in range(size) if block & pof2)
        yield from ctx.sendrecv(
            dst=send_to,
            nbytes=nbytes * n_blocks,
            src=recv_from,
            tag=tag_for(seq, step),
            comm=comm,
        )
        pof2 <<= 1
        step += 1


def pairwise_alltoallv(ctx, send_counts, comm, seq: int):
    """MPI_Alltoallv via pairwise exchange with per-peer sizes.

    ``send_counts[d]`` is the byte count this rank sends to local rank
    ``d``.  The paper reports the Alltoallv results track Alltoall ([26]).
    """
    size = comm.size
    if len(send_counts) != size:
        raise ValueError(f"send_counts must have {size} entries")
    if any(n < 0 for n in send_counts):
        raise ValueError("send counts must be >= 0")
    me = comm.rank_of(ctx.rank)
    for step in range(1, size):
        send_to, recv_from = pairwise_partner(me, size, step)
        yield from ctx.sendrecv(
            dst=send_to,
            nbytes=send_counts[send_to],
            src=recv_from,
            tag=tag_for(seq, step),
            comm=comm,
        )
