"""MPI_Reduce algorithms: binomial tree and the multi-core-aware
shared-memory composition (intra-node combine, then leader network phase).
"""

from __future__ import annotations

from .base import tag_for, validate_collective_args


def _combine(ctx, nbytes: float):
    """CPU cost of folding one incoming buffer into the accumulator."""
    if nbytes > 0:
        yield from ctx._overhead(nbytes / ctx.spec.reduce_bw)


def binomial_reduce(ctx, nbytes: int, root: int, comm, seq: int):
    """Binomial-tree reduction [23] (commutative op assumed)."""
    size = comm.size
    validate_collective_args(size, nbytes)
    if size == 1:
        return
    me = comm.rank_of(ctx.rank)
    relative = (me - root) % size
    mask = 1
    while mask < size:
        if relative & mask:
            parent = (relative - mask + root) % size
            yield from ctx.send(dst=parent, nbytes=nbytes, tag=tag_for(seq, 0), comm=comm)
            break
        else:
            child_rel = relative + mask
            if child_rel < size:
                child = (child_rel + root) % size
                yield from ctx.recv(src=child, tag=tag_for(seq, 0), comm=comm)
                yield from _combine(ctx, nbytes)
        mask <<= 1


def shm_reduce(ctx, nbytes: int, root_world: int, comm, seq: int):
    """Intra-node phase: every rank writes its buffer into the shared
    region; the node leader combines them."""
    size = comm.size
    if size == 1:
        return
    me = comm.rank_of(ctx.rank)
    root = comm.rank_of(root_world)
    if me == root:
        for _ in range(size - 1):
            yield from ctx.recv(tag=tag_for(seq, 1), comm=comm)
            yield from _combine(ctx, nbytes)
    else:
        yield from ctx.send(dst=root, nbytes=nbytes, tag=tag_for(seq, 1), comm=comm)


def mc_reduce(ctx, nbytes: int, root: int, comm, seq: int, record_phase: bool = True):
    """Multi-core-aware reduce (Fig 1, right to left): shared-memory
    combine on each node, binomial reduce across leaders, final hop to the
    root if it is not a leader.  COMM_WORLD only."""
    validate_collective_args(comm.size, nbytes)
    if comm is not ctx.world:
        raise ValueError("mc_reduce requires COMM_WORLD")
    shared = ctx.shared_comm
    leaders = ctx.leader_comm
    affinity = ctx.affinity
    root_node = affinity.node_of(root)
    root_leader = affinity.node_leader(root_node)
    # Sub-communicators use their own sequence counters (see mc_bcast).
    sseq = ctx.next_seq(shared)
    lseq = ctx.next_seq(leaders) if ctx.is_node_leader() else 0

    # Stage 0: combine within each node.
    yield from shm_reduce(ctx, nbytes, affinity.node_leader(ctx.node_id), shared, sseq)

    # Stage 1: network phase across leaders.
    if ctx.is_node_leader():
        t0 = ctx.env.now
        yield from binomial_reduce(
            ctx, nbytes, leaders.rank_of(root_leader), leaders, lseq
        )
        if record_phase and leaders.rank_of(ctx.rank) == 0:
            ctx.job.stats.add_phase("reduce.network", ctx.env.now - t0)

    # Stage 2: deliver to the true root if it is not its node's leader.
    if root != root_leader:
        if ctx.rank == root_leader:
            yield from ctx.send(
                dst=shared.rank_of(root), nbytes=nbytes,
                tag=tag_for(sseq, 62), comm=shared,
            )
        elif ctx.rank == root:
            yield from ctx.recv(
                src=shared.rank_of(root_leader), tag=tag_for(sseq, 62), comm=shared
            )
