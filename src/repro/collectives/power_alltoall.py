"""The proposed power-aware MPI_Alltoall (paper §V-A, Fig 3).

Socket-scheduled pairwise exchange in four phases, all at fmin:

1. intra-node exchanges (everyone);
2. socket-A groups exchange across nodes while socket-B groups sit at T7;
3. roles swap: B↔B exchanges while A sits at T7;
4. a round-robin tournament over node pairs (i,j): first A_i↔B_j while
   B_i/A_j are throttled, then B_i↔A_j while A_i/B_j are throttled.

Only half the node's ranks drive the HCA at any instant, halving NIC
contention for phases 2–3 (the paper's "Cnet/4 per half" in eq. 3) and
keeping half the cores at T7 throughout phases 2–4 (eq. 7).
"""

from __future__ import annotations

from typing import Optional

from .base import is_power_of_two, tag_for
from .power_control import T_FULL, T_LOW, dvfs_down, dvfs_up


def tournament_partner(node: int, rnd: int, n_nodes: int) -> Optional[int]:
    """Circle-method round-robin: the node paired with ``node`` in round
    ``rnd`` (None = bye when ``n_nodes`` is odd)."""
    if n_nodes < 2:
        return None
    m = n_nodes if n_nodes % 2 == 0 else n_nodes + 1
    rounds = m - 1
    if not 0 <= rnd < rounds:
        raise ValueError(f"round {rnd} out of range (0..{rounds - 1})")
    if node == m - 1:
        partner = rnd
    elif node == rnd:
        partner = m - 1
    else:
        partner = (2 * rnd - node) % (m - 1)
    return None if partner >= n_nodes else partner


def supports_power_alltoall(ctx, comm) -> bool:
    """The schedule needs the bunch socket layout and power-of-two group
    shapes (paper §V-C: other mappings require adjusting the algorithm)."""
    aff = ctx.affinity
    if comm is not ctx.world:
        return False
    if ctx.job.cluster.spec.node.sockets != 2:
        return False
    c = aff.cores_per_node
    half = c // 2
    if half < 1 or not is_power_of_two(c):
        return False
    if not is_power_of_two(aff.n_nodes_used * half):
        return False
    for node_id in range(aff.n_nodes_used):
        a = aff.group_a_ranks(node_id)
        b = aff.group_b_ranks(node_id)
        if len(a) != half or len(b) != half:
            return False
        base = node_id * c
        if a != list(range(base, base + half)):
            return False
    return True


def _subgroup_exchange(ctx, size_of, comm, seq, group_index, half, n_nodes, tag_base):
    """Phases 2/3: XOR pairwise exchange within one socket-side subgroup
    (size n_nodes·half), skipping same-node partners (done in phase 1).

    ``size_of(partner)`` gives the bytes this rank sends to ``partner`` —
    a constant for MPI_Alltoall, per-peer counts for MPI_Alltoallv.
    """
    my_node = ctx.node_id
    idx = my_node * half + group_index
    size = n_nodes * half
    for i in range(half, size):
        pidx = idx ^ i
        pnode, plocal = divmod(pidx, half)
        partner = _group_member(ctx, pnode, plocal, same_side=True)
        yield from ctx.sendrecv(
            dst=partner, nbytes=size_of(partner), src=partner,
            tag=tag_for(seq, tag_base + i), comm=comm,
        )


def _group_member(ctx, node_id: int, index: int, same_side: bool, side_a: bool = True):
    """World rank of the ``index``-th member of a node's socket group."""
    aff = ctx.affinity
    if same_side:
        side_a = ctx.affinity.socket_group(ctx.rank) == 0
    group = aff.group_a_ranks(node_id) if side_a else aff.group_b_ranks(node_id)
    return group[index]


def _windowed_exchange(ctx, nbytes, comm, tag, partners):
    """Exchange ``nbytes`` with every rank in ``partners`` at once
    (non-blocking window + waitall).  Distinct sources disambiguate the
    shared tag.  Windowing the per-round exchanges keeps the HCA pipeline
    full even when a peer group is still finishing the previous half."""
    requests = []
    for partner in partners:
        sreq = yield from ctx.isend(partner, nbytes, tag, comm)
        rreq = yield from ctx.irecv(src=partner, tag=tag, comm=comm)
        requests.append(sreq)
        requests.append(rreq)
    yield from ctx._wait(ctx.env.all_of(requests))


def power_aware_alltoall(ctx, nbytes: int, comm, seq: int, send_counts=None):
    """The four-phase socket-scheduled pairwise exchange (Fig 3).

    With ``send_counts`` (one entry per peer) the same schedule carries the
    per-peer sizes of an MPI_Alltoallv — the tech-report extension [26].
    """
    if send_counts is not None and len(send_counts) != comm.size:
        raise ValueError(f"send_counts must have {comm.size} entries")
    if not supports_power_alltoall(ctx, comm):
        raise ValueError(
            "power-aware alltoall needs COMM_WORLD with bunch affinity on "
            "two-socket nodes and power-of-two group shapes"
        )
    aff = ctx.affinity
    c = aff.cores_per_node
    half = c // 2
    n_nodes = aff.n_nodes_used
    me = ctx.rank
    my_node = ctx.node_id
    in_a = aff.socket_group(me) == 0
    my_group = aff.group_a_ranks(my_node) if in_a else aff.group_b_ranks(my_node)
    group_index = my_group.index(me)
    subgroup_size = n_nodes * half

    def size_of(partner: int) -> int:
        return nbytes if send_counts is None else send_counts[partner]

    p2_flag = f"a2a{seq}.p2"
    p3_flag = f"a2a{seq}.p3"

    # All cores to fmin for the whole operation (paper §V).
    yield from dvfs_down(ctx)

    # -- Phase 1: intra-node pairwise exchange (everyone active) -----------
    local = aff.local_rank(me)
    base = my_node * c
    for i in range(1, c):
        partner = base + (local ^ i)
        yield from ctx.sendrecv(
            dst=partner, nbytes=size_of(partner), src=partner,
            tag=tag_for(seq, i), comm=comm,
        )

    if n_nodes > 1:
        if in_a:
            # -- Phase 2: A↔A across nodes; B is parked at T7 --------------
            yield from _subgroup_exchange(
                ctx, size_of, comm, seq, group_index, half, n_nodes, tag_base=c
            )
            ctx.arrive(p2_flag, expected=half)
            # Throttling A down overlaps B's wake-up: cost hidden (§VI-A2).
            yield from ctx.throttle(T_LOW, charge=False)
            yield ctx.flag(p3_flag)
            yield from ctx.throttle(T_FULL)  # paid: start of phase 4
        else:
            # Parked during phase 2 — the down-transition is hidden behind
            # A's ongoing communication (§VI-A2).
            yield from ctx.throttle(T_LOW, charge=False)
            yield ctx.flag(p2_flag)
            # -- Phase 3: B↔B across nodes; A parked -----------------------
            yield from ctx.throttle(T_FULL)  # each process pays Othrottle once
            yield from _subgroup_exchange(
                ctx, size_of, comm, seq, group_index, half, n_nodes,
                tag_base=c + subgroup_size,
            )
            ctx.arrive(p3_flag, expected=half)

        # -- Phase 4: node-pair tournament, halves alternate ---------------
        tag4 = c + 2 * subgroup_size
        rounds = n_nodes - 1 if n_nodes % 2 == 0 else n_nodes
        for rnd in range(rounds):
            peer_node = tournament_partner(my_node, rnd, n_nodes)
            if peer_node is None:
                continue
            lower = my_node < peer_node
            # Half 1 pairs A(lower) with B(higher).
            active_h1 = in_a == lower
            h1_flag = f"a2a{seq}.r{rnd}.h1"
            round_base = tag4 + rnd * 2 * half
            # The lower node's side walks the peer group forwards and the
            # higher node's side walks it backwards so that sub-step s pairs
            # exactly one member of each group with one of the other.
            shift = 1 if lower else -1
            partners = [
                _group_member(
                    ctx,
                    peer_node,
                    (group_index + shift * s) % half,
                    same_side=False,
                    side_a=not in_a,
                )
                for s in range(half)
            ]
            if active_h1:
                yield from ctx.throttle(T_FULL)
                for s, partner in enumerate(partners):
                    yield from ctx.sendrecv(
                        dst=partner, nbytes=size_of(partner), src=partner,
                        tag=tag_for(seq, round_base + s), comm=comm,
                    )
                ctx.arrive(h1_flag, expected=half)
                # Down-transition hidden behind the other half starting up.
                yield from ctx.throttle(T_LOW, charge=False)
            else:
                yield from ctx.throttle(T_LOW, charge=False)
                yield ctx.flag(h1_flag)
                yield from ctx.throttle(T_FULL)
                for s, partner in enumerate(partners):
                    yield from ctx.sendrecv(
                        dst=partner, nbytes=size_of(partner), src=partner,
                        tag=tag_for(seq, round_base + half + s), comm=comm,
                    )

    # Restore full throttle state and peak frequency.
    yield from ctx.throttle(T_FULL)
    yield from dvfs_up(ctx)
