"""Power-aware shared-memory collectives (paper §V-B, Fig 4).

During the network (inter-leader) phase only one rank per node moves data;
everyone else spins.  The proposed algorithms drop all cores to fmin for
the call and, for the network phase, throttle:

* **socket granularity** (the paper's Nehalem): socket B — where no rank
  communicates — to T7; socket A — which hosts the leader — only to T4, to
  avoid crippling the leader (the ``Cthrottle`` trade-off of §VI-A3);
* **core granularity** (the paper's "future architectures"): every
  non-leader core to T7, the leader core untouched — more savings, no
  slowdown (§VI-B2).
"""

from __future__ import annotations

from ..cluster.specs import ThrottleGranularity
from .bcast import _leader_bcast, shm_bcast
from .power_control import T_FULL, T_LOW, T_PARTIAL, dvfs_down, dvfs_up
from .reduce import binomial_reduce, shm_reduce
from .base import tag_for, validate_collective_args


def _network_phase_throttle(ctx):
    """Apply the §V-B throttle pattern for the network phase (generator)."""
    granularity = ctx.core.spec.throttle_granularity
    if granularity is ThrottleGranularity.CORE:
        if not ctx.is_node_leader():
            yield from ctx.throttle(T_LOW)
        return
    # Socket granularity: the leader throttles its own socket partially;
    # ranks on the other socket throttle it fully.  Non-leader ranks that
    # share the leader's socket issue nothing (their package is handled by
    # the leader's T4).
    if ctx.is_node_leader():
        yield from ctx.throttle(T_PARTIAL)
    elif ctx.socket.local_index != ctx.affinity.socket_group(
        ctx.affinity.node_leader(ctx.node_id)
    ):
        yield from ctx.throttle(T_LOW)


def power_aware_mc_bcast(ctx, nbytes: int, root: int, comm, seq: int):
    """Proposed power-aware broadcast: mc-bcast + DVFS + network-phase
    throttling (modelled by eq. 4 / eq. 8)."""
    validate_collective_args(comm.size, nbytes)
    if comm is not ctx.world:
        raise ValueError("power-aware mc_bcast requires COMM_WORLD")
    shared = ctx.shared_comm
    leaders = ctx.leader_comm
    affinity = ctx.affinity
    root_node = affinity.node_of(root)
    root_leader = affinity.node_leader(root_node)
    # Sub-communicators use their own sequence counters (see mc_bcast).
    sseq = ctx.next_seq(shared)
    lseq = ctx.next_seq(leaders) if ctx.is_node_leader() else 0
    net_done = f"bc{seq}.netdone"

    yield from dvfs_down(ctx)

    # Stage 0: hop to the root's node leader if needed (before throttling).
    if root != root_leader:
        if ctx.rank == root:
            yield from ctx.send(
                dst=shared.rank_of(root_leader), nbytes=nbytes,
                tag=tag_for(sseq, 63), comm=shared,
            )
        elif ctx.rank == root_leader:
            yield from ctx.recv(
                src=shared.rank_of(root), tag=tag_for(sseq, 63), comm=shared
            )

    # Network phase under throttle.
    yield from _network_phase_throttle(ctx)
    if ctx.is_node_leader():
        t0 = ctx.env.now
        yield from _leader_bcast(
            ctx, nbytes, leaders.rank_of(root_leader), leaders, lseq
        )
        if leaders.rank_of(ctx.rank) == 0:
            ctx.job.stats.add_phase("bcast.network", ctx.env.now - t0)
        ctx.notify(net_done)
        yield from ctx.throttle(T_FULL)
    else:
        yield ctx.flag(net_done)
        yield from ctx.throttle(T_FULL)

    # Intra-node fan-out at full throttle (still fmin).
    yield from shm_bcast(ctx, nbytes, affinity.node_leader(ctx.node_id), shared, sseq)
    yield from dvfs_up(ctx)


def power_aware_mc_reduce(ctx, nbytes: int, root: int, comm, seq: int):
    """Proposed power-aware reduce: shared-memory combine first, then the
    throttled leader network phase."""
    validate_collective_args(comm.size, nbytes)
    if comm is not ctx.world:
        raise ValueError("power-aware mc_reduce requires COMM_WORLD")
    shared = ctx.shared_comm
    leaders = ctx.leader_comm
    affinity = ctx.affinity
    root_node = affinity.node_of(root)
    root_leader = affinity.node_leader(root_node)
    # Sub-communicators use their own sequence counters (see mc_bcast).
    sseq = ctx.next_seq(shared)
    lseq = ctx.next_seq(leaders) if ctx.is_node_leader() else 0
    net_done = f"rd{seq}.netdone"

    yield from dvfs_down(ctx)

    # Stage 0: intra-node combine (everyone active).
    yield from shm_reduce(ctx, nbytes, affinity.node_leader(ctx.node_id), shared, sseq)

    # Stage 1: throttled network phase.
    yield from _network_phase_throttle(ctx)
    if ctx.is_node_leader():
        t0 = ctx.env.now
        yield from binomial_reduce(
            ctx, nbytes, leaders.rank_of(root_leader), leaders, lseq
        )
        if leaders.rank_of(ctx.rank) == 0:
            ctx.job.stats.add_phase("reduce.network", ctx.env.now - t0)
        ctx.notify(net_done)
        yield from ctx.throttle(T_FULL)
    else:
        yield ctx.flag(net_done)
        yield from ctx.throttle(T_FULL)

    # Stage 2: deliver to the true root if it is not a leader.
    if root != root_leader:
        if ctx.rank == root_leader:
            yield from ctx.send(
                dst=shared.rank_of(root), nbytes=nbytes,
                tag=tag_for(sseq, 62), comm=shared,
            )
        elif ctx.rank == root:
            yield from ctx.recv(
                src=shared.rank_of(root_leader), tag=tag_for(sseq, 62), comm=shared
            )
    yield from dvfs_up(ctx)
