"""The remaining default collectives: allgather, allreduce, scatter,
gather, barrier.  These round out the substrate (the applications and the
multi-core-aware compositions use them)."""

from __future__ import annotations

from .base import is_power_of_two, tag_for, validate_collective_args
from .bcast import binomial_bcast, _ring_allgather
from .reduce import _combine, binomial_reduce


def ring_allgather(ctx, nbytes: int, comm, seq: int):
    """Ring allgather: every rank contributes ``nbytes``; size−1 steps."""
    validate_collective_args(comm.size, nbytes)
    if comm.size == 1:
        return
    yield from _ring_allgather(ctx, nbytes, comm, seq, tag_offset=0)


def recursive_doubling_allreduce(ctx, nbytes: int, comm, seq: int):
    """Recursive-doubling allreduce (power-of-two groups); falls back to
    reduce + bcast otherwise."""
    size = comm.size
    validate_collective_args(size, nbytes)
    if size == 1:
        return
    me = comm.rank_of(ctx.rank)
    if not is_power_of_two(size):
        yield from binomial_reduce(ctx, nbytes, 0, comm, seq)
        yield from binomial_bcast(ctx, nbytes, 0, comm, seq)
        return
    mask = 1
    step = 0
    while mask < size:
        partner = me ^ mask
        yield from ctx.sendrecv(
            dst=partner, nbytes=nbytes, src=partner,
            tag=tag_for(seq, step), comm=comm,
        )
        yield from _combine(ctx, nbytes)
        mask <<= 1
        step += 1


def binomial_scatter(ctx, nbytes: int, root: int, comm, seq: int):
    """Binomial scatter: each rank ends with ``nbytes``; internal messages
    carry whole subtrees."""
    size = comm.size
    validate_collective_args(size, nbytes)
    if size == 1:
        return
    me = comm.rank_of(ctx.rank)
    relative = (me - root) % size
    # Receive my subtree's data from the parent.
    mask = 1
    recv_mask = 0
    while mask < size:
        if relative & mask:
            parent = (relative - mask + root) % size
            yield from ctx.recv(src=parent, tag=tag_for(seq, 0), comm=comm)
            recv_mask = mask
            break
        mask <<= 1
    # Forward sub-subtrees.
    mask = (recv_mask or size) >> 1
    while mask > 0:
        if relative + mask < size:
            child = (relative + mask + root) % size
            subtree = min(mask, size - (relative + mask))
            yield from ctx.send(
                dst=child, nbytes=nbytes * subtree, tag=tag_for(seq, 0), comm=comm
            )
        mask >>= 1


def binomial_gather(ctx, nbytes: int, root: int, comm, seq: int):
    """Binomial gather — the mirror image of :func:`binomial_scatter`."""
    size = comm.size
    validate_collective_args(size, nbytes)
    if size == 1:
        return
    me = comm.rank_of(ctx.rank)
    relative = (me - root) % size
    mask = 1
    while mask < size:
        if relative & mask:
            parent = (relative - mask + root) % size
            subtree = min(mask, size - relative)
            yield from ctx.send(
                dst=parent, nbytes=nbytes * subtree, tag=tag_for(seq, 0), comm=comm
            )
            break
        else:
            child_rel = relative + mask
            if child_rel < size:
                child = (child_rel + root) % size
                yield from ctx.recv(src=child, tag=tag_for(seq, 0), comm=comm)
        mask <<= 1


def reduce_scatter_pairwise(ctx, nbytes: int, comm, seq: int):
    """Pairwise-exchange reduce-scatter: every rank ends with its ``nbytes``
    block of the element-wise reduction.  P−1 steps of block exchange plus
    a combine per step (the MPICH algorithm for commutative ops)."""
    size = comm.size
    validate_collective_args(size, nbytes)
    if size == 1:
        return
    me = comm.rank_of(ctx.rank)
    for step in range(1, size):
        dst = (me + step) % size
        src = (me - step) % size
        yield from ctx.sendrecv(
            dst=dst, nbytes=nbytes, src=src, tag=tag_for(seq, step), comm=comm
        )
        yield from _combine(ctx, nbytes)


def linear_scan(ctx, nbytes: int, comm, seq: int):
    """MPI_Scan via the sequential chain: rank r receives the prefix from
    r−1, folds its contribution, and forwards to r+1."""
    size = comm.size
    validate_collective_args(size, nbytes)
    if size == 1:
        return
    me = comm.rank_of(ctx.rank)
    if me > 0:
        yield from ctx.recv(src=me - 1, tag=tag_for(seq, 0), comm=comm)
        yield from _combine(ctx, nbytes)
    if me < size - 1:
        yield from ctx.send(dst=me + 1, nbytes=nbytes, tag=tag_for(seq, 0), comm=comm)


def dissemination_barrier(ctx, comm, seq: int):
    """Dissemination barrier: ⌈log₂ P⌉ rounds of zero-byte messages."""
    size = comm.size
    if size == 1:
        return
    me = comm.rank_of(ctx.rank)
    mask = 1
    step = 0
    while mask < size:
        dst = (me + mask) % size
        src = (me - mask) % size
        yield from ctx.sendrecv(
            dst=dst, nbytes=0, src=src, tag=tag_for(seq, step), comm=comm
        )
        mask <<= 1
        step += 1
