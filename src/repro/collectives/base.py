"""Shared helpers for collective algorithms.

All algorithms are generator functions over a
:class:`~repro.mpi.context.RankContext` and a communicator; they are SPMD:
every member rank runs the same function and the message pattern emerges
from rank-dependent control flow, exactly as in a real MPI library.

Tag discipline: each collective invocation owns the tag block
``seq << TAG_SHIFT``; steps within the algorithm add their step index, so
messages from different invocations/steps can never cross-match.
"""

from __future__ import annotations

TAG_SHIFT = 16


def is_power_of_two(n: int) -> bool:
    """True for 1, 2, 4, 8, ... (the shapes the XOR schedules need)."""
    return n > 0 and (n & (n - 1)) == 0


def tag_for(seq: int, step: int) -> int:
    """Tag for ``step`` of the ``seq``-th collective on a communicator."""
    if step < 0 or step >= (1 << TAG_SHIFT):
        raise ValueError(f"step {step} out of tag range")
    return (seq << TAG_SHIFT) | step


def pairwise_partner(rank: int, size: int, step: int) -> tuple[int, int]:
    """(send_to, recv_from) local ranks for step ``step`` of a pairwise
    exchange.  With a power-of-two group the XOR schedule pairs processes
    symmetrically; otherwise the shifted ring schedule is used."""
    if is_power_of_two(size):
        partner = rank ^ step
        return partner, partner
    return (rank + step) % size, (rank - step) % size


def validate_collective_args(size: int, nbytes: int) -> None:
    if nbytes < 0:
        raise ValueError("message size must be >= 0")
    if size < 1:
        raise ValueError("communicator must have at least one rank")
