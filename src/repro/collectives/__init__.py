"""Collective communication algorithms — default and power-aware."""

from .alltoall import bruck_alltoall, pairwise_alltoall, pairwise_alltoallv
from .base import is_power_of_two, pairwise_partner, tag_for
from .bcast import (
    binomial_bcast,
    mc_bcast,
    scatter_allgather_bcast,
    shm_bcast,
)
from .power_alltoall import (
    power_aware_alltoall,
    supports_power_alltoall,
    tournament_partner,
)
from .power_control import T_FULL, T_LOW, T_PARTIAL, dvfs_down, dvfs_up, with_dvfs
from .power_p2p import (
    DEFAULT_P2P_POWER_THRESHOLD,
    power_aware_exchange,
    power_aware_recv,
    power_aware_send,
)
from .power_shm import power_aware_mc_bcast, power_aware_mc_reduce
from .reduce import binomial_reduce, mc_reduce, shm_reduce
from .registry import CollectiveConfig, CollectiveEngine, PowerMode
from .topo_aware import (
    power_aware_topo_bcast,
    topo_bcast,
    topo_gather,
    topo_reduce,
    topo_scatter,
)
from .smallcolls import (
    binomial_gather,
    binomial_scatter,
    dissemination_barrier,
    linear_scan,
    recursive_doubling_allreduce,
    reduce_scatter_pairwise,
    ring_allgather,
)

__all__ = [
    "CollectiveConfig",
    "CollectiveEngine",
    "PowerMode",
    "T_FULL",
    "T_LOW",
    "T_PARTIAL",
    "binomial_bcast",
    "binomial_gather",
    "binomial_reduce",
    "binomial_scatter",
    "bruck_alltoall",
    "dissemination_barrier",
    "dvfs_down",
    "dvfs_up",
    "is_power_of_two",
    "linear_scan",
    "mc_bcast",
    "mc_reduce",
    "pairwise_alltoall",
    "pairwise_alltoallv",
    "pairwise_partner",
    "DEFAULT_P2P_POWER_THRESHOLD",
    "power_aware_alltoall",
    "power_aware_exchange",
    "power_aware_mc_bcast",
    "power_aware_mc_reduce",
    "power_aware_recv",
    "power_aware_send",
    "power_aware_topo_bcast",
    "topo_bcast",
    "topo_gather",
    "topo_reduce",
    "topo_scatter",
    "recursive_doubling_allreduce",
    "reduce_scatter_pairwise",
    "ring_allgather",
    "scatter_allgather_bcast",
    "shm_bcast",
    "shm_reduce",
    "supports_power_alltoall",
    "tag_for",
    "tournament_partner",
    "with_dvfs",
]
