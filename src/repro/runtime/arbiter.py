"""Cluster-wide power-budget arbiter (Medhat et al., arXiv:1410.6824).

The governor (:mod:`.governor`) saves power *per rank* inside one
collective; the arbiter is the cluster-scale dual: a global power cap is
split into per-node budgets, and every node is held to its budget by
clamping its DVFS point — the highest P-state whose *modeled* node draw
(node base + all cores polling at T0) fits the budget.  Two policies:

``uniform``
    Static equal split: every node gets ``cap / n_nodes`` forever.  This
    is the RAPL-style baseline redistribution is measured against.

``redistribute``
    Slack-driven budget shifting.  The arbiter keeps its own
    :class:`~repro.runtime.slack.SlackMonitor`, fed by the MPI layer's
    wait sites (see ``RankContext._wait``).  On every tick, nodes whose
    mean per-core wait EWMA exceeds ``slack_threshold_s`` — and nodes
    hosting no ranks at all — become *donors*: their budget falls to
    their fmin demand, and the freed headroom is split equally among the
    remaining (critical-path) nodes.  Slack-rich communication-bound
    jobs therefore release power that compute-bound co-scheduled jobs
    spend on higher frequencies, exactly the Medhat et al. mechanism.

Actuation is out-of-band (firmware power-controller style): budget
enforcement flips node frequency at tick time without charging a rank
Odvfs — the performance cost reaches the workload through
``Core.speed_factor`` and the NIC rating, which follows the node's mean
core frequency (``IBNetwork.dvfs_changed``).  When a governor runs under
an arbiter, the governor's own actuations still pay their transition
penalties; the arbiter only moves the ceiling.

Termination contract: ``Environment.run()`` drains the queue completely,
so a naively self-re-arming periodic timer would never let a simulation
end.  The tick timer arms only while launched jobs still have unfinished
ranks (:meth:`PowerArbiter.job_started` / :meth:`rank_finished`) and the
pending timer is cancelled when the last rank finishes.
"""

from __future__ import annotations

import contextlib
import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from ..cluster.cpu import Activity
from .slack import SlackMonitor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.events import Timer
    from ..sim.session import SimSession

__all__ = [
    "ArbiterConfig",
    "ArbiterPolicy",
    "ArbiterReport",
    "ArbiterScope",
    "PowerArbiter",
    "ambient_arbiter_scope",
    "use_arbiter",
]


class ArbiterPolicy(enum.Enum):
    """How the global cap is split into per-node budgets."""

    UNIFORM = "uniform"
    REDISTRIBUTE = "redistribute"


@dataclass(frozen=True)
class ArbiterConfig:
    """Tunables of the cluster power arbiter (plain-data round-trippable,
    so a sweep cell can carry it across a process boundary and into a
    cache key, like :class:`~repro.runtime.governor.GovernorConfig`)."""

    policy: ArbiterPolicy = ArbiterPolicy.UNIFORM
    #: Cluster-wide cap in watts (modeled draw; must be > 0).
    power_cap_w: float = 0.0
    #: Budget re-evaluation period for the redistribute policy.
    interval_s: float = 500e-6
    #: Mean per-core wait EWMA above which a node donates headroom.
    slack_threshold_s: float = 200e-6
    #: EWMA smoothing for the arbiter's own slack monitor.
    ewma_alpha: float = 0.25

    def __post_init__(self) -> None:
        if self.power_cap_w <= 0:
            raise ValueError("power_cap_w must be > 0 (watts)")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if self.slack_threshold_s <= 0:
            raise ValueError("slack_threshold_s must be > 0")

    def to_dict(self) -> dict:
        return {
            "policy": self.policy.value,
            "power_cap_w": self.power_cap_w,
            "interval_s": self.interval_s,
            "slack_threshold_s": self.slack_threshold_s,
            "ewma_alpha": self.ewma_alpha,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ArbiterConfig":
        kwargs = dict(data)
        if "policy" in kwargs:
            kwargs["policy"] = ArbiterPolicy(kwargs["policy"])
        return cls(**kwargs)


@dataclass
class ArbiterReport:
    """Per-run arbiter telemetry (plain counters; JSON-able)."""

    policy: str = "uniform"
    power_cap_w: float = 0.0
    ticks: int = 0
    #: Ticks whose budget vector differed from the previous one.
    rebalances: int = 0
    #: Node-level frequency clamps actually applied (state changes).
    freq_changes: int = 0
    #: Peak number of simultaneous donor nodes seen on any tick.
    donors_peak: int = 0
    #: Time-integral of headroom moved from donors to critical nodes (J):
    #: ``sum over ticks of donated_w * interval``.
    donated_j: float = 0.0
    #: Smallest / largest per-node budget ever assigned (W).
    min_budget_w: float = 0.0
    max_budget_w: float = 0.0

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "power_cap_w": self.power_cap_w,
            "ticks": self.ticks,
            "rebalances": self.rebalances,
            "freq_changes": self.freq_changes,
            "donors_peak": self.donors_peak,
            "donated_j": self.donated_j,
            "min_budget_w": self.min_budget_w,
            "max_budget_w": self.max_budget_w,
        }

    def one_line(self) -> str:
        """Terse summary for CLI output."""
        return (
            f"arbiter[{self.policy} @ {self.power_cap_w:g} W]: "
            f"{self.ticks} ticks, {self.rebalances} rebalances, "
            f"{self.freq_changes} node freq changes, "
            f"{self.donated_j:.1f} J donated"
        )


class PowerArbiter:
    """Session-wide budget enforcement over the per-core power model.

    Lifecycle mirrors the governor: construct with an
    :class:`ArbiterConfig`, :meth:`bind` to a session (the session does
    this when it owns the arbiter), then jobs notify
    :meth:`job_started` / :meth:`rank_finished` and the MPI wait sites
    feed :meth:`record_wait`.  :meth:`finish_run` seals the report.
    """

    def __init__(
        self,
        config: ArbiterConfig,
        scope: Optional["ArbiterScope"] = None,
    ):
        self.config = config
        self.scope = scope
        self.monitor = SlackMonitor(alpha=config.ewma_alpha)
        self.session: Optional["SimSession"] = None
        self._timer: Optional["Timer"] = None
        self._active_ranks = 0
        #: node_id -> number of ranks placed there (by job_started).
        self._node_ranks: Dict[int, int] = {}
        #: node_id -> core ids on that node (for the slack mean).
        self._node_cores: Dict[int, List[int]] = {}
        #: node_id -> last enforced budget (W); None before first tick.
        self._budgets: Optional[List[float]] = None
        # Telemetry.
        self.ticks = 0
        self.rebalances = 0
        self.freq_changes = 0
        self.donors_peak = 0
        self.donated_j = 0.0
        self.min_budget_w = float("inf")
        self.max_budget_w = 0.0

    # -- wiring -------------------------------------------------------------
    def bind(self, session: "SimSession") -> None:
        """Attach to a session's substrate (idempotent for the same one)."""
        if self.session is session:
            return
        if self.session is not None:
            raise ValueError("a PowerArbiter can only bind to one SimSession")
        self.session = session
        self.env = session.env
        self.net = session.net
        self.power_model = session.power_model
        self.cluster = session.cluster
        for node in self.cluster.nodes:
            self._node_ranks.setdefault(node.node_id, 0)
            self._node_cores[node.node_id] = [
                core.core_id for socket in node.sockets for core in socket.cores
            ]
        # Precompute the node demand curve: modeled draw of one node with
        # every core polling at T0, per P-state (ascending).  The polling
        # bound is deliberately conservative — budgets never oscillate
        # with activity, which keeps enforcement deterministic and stable.
        cpu = self.cluster.spec.node.cpu
        cores = self.cluster.cores_per_node
        base = self.power_model.params.node_base_w
        self._pstates = list(cpu.pstates_ghz)
        self._demand_w = [
            base
            + cores
            * self.power_model.core_power_for(f, 0, Activity.POLLING)
            for f in self._pstates
        ]

    # -- notification hooks (jobs + MPI wait sites) -------------------------
    def job_started(self, job) -> None:
        """A co-scheduled job launched: register its placement and make
        sure the tick timer runs while anything is active."""
        if self.session is None:  # pragma: no cover - defensive
            raise RuntimeError("bind() the arbiter to a session first")
        self._active_ranks += job.n_ranks
        for rank in range(job.n_ranks):
            node_id = job.affinity.node_of(rank)
            self._node_ranks[node_id] = self._node_ranks.get(node_id, 0) + 1
        # Enforce the cap from t=0 (nodes boot at fmax) and start ticking.
        # A second job launching at the same instant re-kicks: cancel any
        # pending tick first so exactly one timer chain ever runs.
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._tick(kick=True)

    def rank_finished(self) -> None:
        """One rank's program completed; the last one stops the ticks."""
        self._active_ranks -= 1
        if self._active_ranks <= 0 and self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def record_wait(self, core_id: int, seconds: float) -> None:
        """One completed MPI wait (the redistribute policy's slack feed)."""
        self.monitor.record_wait(core_id, seconds)

    # -- budget math --------------------------------------------------------
    def _node_slack_s(self, node_id: int) -> float:
        """Mean wait EWMA over the node's cores (0.0 while unobserved)."""
        total = 0.0
        cores = self._node_cores[node_id]
        for core_id in cores:
            ewma = self.monitor.mean_wait_s(core_id)
            if ewma is not None:
                total += ewma
        return total / len(cores) if cores else 0.0

    def _compute_budgets(self) -> tuple:
        """Per-node budget vector (W) under the configured policy.

        Returns ``(budgets, donors)``.  The invariant both policies keep:
        ``sum(budgets) <= power_cap_w`` whenever the cap is feasible at
        all (a cap below ``n_nodes * fmin demand`` is clamped to fmin
        everywhere — the hardware floor).
        """
        n = self.cluster.n_nodes
        share = self.config.power_cap_w / n
        if self.config.policy is ArbiterPolicy.UNIFORM:
            return [share] * n, []
        floor = self._demand_w[0]  # fmin demand: what a donor keeps
        donors = [
            node_id
            for node_id in range(n)
            if self._node_ranks.get(node_id, 0) == 0
            or self._node_slack_s(node_id) >= self.config.slack_threshold_s
        ]
        if not donors or len(donors) == n:
            # Nothing to shift (no slack signal yet, or everyone idles):
            # fall back to the uniform split.
            return [share] * n, donors if len(donors) == n else []
        donated = max(0.0, share - floor) * len(donors)
        bonus = donated / (n - len(donors))
        donor_set = set(donors)
        budgets = [
            floor if node_id in donor_set else share + bonus
            for node_id in range(n)
        ]
        return budgets, donors

    def _clamp_freq(self, budget_w: float) -> float:
        """Highest P-state whose modeled node demand fits ``budget_w``
        (fmin when even the floor exceeds the budget — hardware floor)."""
        best = self._pstates[0]
        for freq, demand in zip(self._pstates, self._demand_w):
            if demand <= budget_w:
                best = freq
        return best

    # -- the tick -----------------------------------------------------------
    def _tick(self, kick: bool = False) -> None:
        """Recompute budgets, enforce them, and re-arm while active."""
        self._timer = None
        now = self.env.now
        budgets, donors = self._compute_budgets()
        self.ticks += 1
        changed = budgets != self._budgets
        if changed:
            if self._budgets is not None:
                self.rebalances += 1
            self.min_budget_w = min(self.min_budget_w, min(budgets))
            self.max_budget_w = max(self.max_budget_w, max(budgets))
        self.donors_peak = max(self.donors_peak, len(donors))
        if donors:
            share = self.config.power_cap_w / self.cluster.n_nodes
            donated_w = sum(max(0.0, share - budgets[d]) for d in donors)
            self.donated_j += donated_w * self.config.interval_s
        if changed:
            for node in self.cluster.nodes:
                target = self._clamp_freq(budgets[node.node_id])
                if node.sockets[0].cores[0].frequency_ghz != target:
                    for socket in node.sockets:
                        socket.set_frequency(target, now)
                    self.net.dvfs_changed(node.node_id)
                    self.freq_changes += 1
            self._budgets = budgets
        tracer = self.session.tracer if self.session is not None else None
        if tracer is not None and tracer.enabled:
            # Observes only (marks never steer): timelines stay identical
            # with tracing on or off.
            tracer.mark(
                now, "arbiter.tick",
                cap_w=self.config.power_cap_w,
                budget_w=sum(budgets),
                donors=len(donors),
            )
        if self._active_ranks > 0 or kick:
            # Uniform budgets are static: enforcing once at kick time is
            # enough, so only the redistribute policy keeps ticking.
            if self.config.policy is ArbiterPolicy.REDISTRIBUTE:
                self._timer = self.env.call_at(
                    now + self.config.interval_s, lambda t: self._tick()
                )

    # -- reporting ----------------------------------------------------------
    def finish_run(self) -> ArbiterReport:
        """Seal the run: stop the tick timer and emit the report (also
        collected by the ambient scope, if one owns this arbiter)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        report = self.report()
        if self.scope is not None:
            self.scope.collect(report)
        return report

    def report(self) -> ArbiterReport:
        return ArbiterReport(
            policy=self.config.policy.value,
            power_cap_w=self.config.power_cap_w,
            ticks=self.ticks,
            rebalances=self.rebalances,
            freq_changes=self.freq_changes,
            donors_peak=self.donors_peak,
            donated_j=self.donated_j,
            min_budget_w=0.0 if self.min_budget_w == float("inf")
            else self.min_budget_w,
            max_budget_w=self.max_budget_w,
        )


class ArbiterScope:
    """Ambient arbiter configuration (mirrors :class:`GovernorScope`).

    While a scope is active, every :class:`~repro.sim.session.SimSession`
    built without an explicit arbiter constructs one from the scope's
    config, and per-run reports accumulate on the scope."""

    def __init__(self, config: ArbiterConfig):
        self.config = config
        self.reports: List[ArbiterReport] = []

    def collect(self, report: ArbiterReport) -> None:
        self.reports.append(report)

    def make_arbiter(self) -> PowerArbiter:
        return PowerArbiter(self.config, scope=self)


_AMBIENT: List[Optional[ArbiterScope]] = []


def ambient_arbiter_scope() -> Optional[ArbiterScope]:
    """The innermost active :func:`use_arbiter` scope, if any.  A
    ``use_arbiter(None)`` shadow entry hides any outer scope (the
    hermetic cell executor installs one)."""
    return _AMBIENT[-1] if _AMBIENT else None


@contextlib.contextmanager
def use_arbiter(config: Optional[ArbiterConfig]):
    """Install ``config`` as the ambient arbiter for the ``with`` body;
    ``config=None`` installs a shadow (mirroring :func:`use_governor`)."""
    scope = ArbiterScope(config) if config is not None else None
    _AMBIENT.append(scope)
    try:
        yield scope
    finally:
        _AMBIENT.pop()
