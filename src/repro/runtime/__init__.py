"""repro.runtime — the online slack-driven power-governor runtime.

The paper's power-aware schemes (§V) bake transitions into each
collective's schedule.  This subsystem is the complementary *control
plane*: a per-core policy engine that observes MPI slack online (through
the same notification sites the tracer uses) and drives DVFS/T-state
actuation itself, in the style of the COUNTDOWN runtime
(arXiv:1806.07258).

Layers
------
:mod:`~repro.runtime.slack`
    The sensor: EWMA + histogram slack estimates per core and a
    per-(collective, message-size) call-duration history.
:mod:`~repro.runtime.governor`
    The policy FSMs (``none`` / ``countdown`` / ``predictive``) and the
    ambient :func:`use_governor` scope the CLI installs.
:mod:`~repro.runtime.telemetry`
    The per-run :class:`GovernorReport` exported through
    :mod:`repro.bench.export`.
:mod:`~repro.runtime.arbiter`
    The cluster-scale dual: a global power cap arbitrated into per-node
    budgets (``uniform`` / ``redistribute``) across co-scheduled jobs,
    with its own :func:`use_arbiter` ambient scope.

Use::

    from repro.runtime import Governor, GovernorConfig, GovernorPolicy

    gov = Governor(GovernorConfig(policy=GovernorPolicy.COUNTDOWN))
    job = MpiJob(64, governor=gov)
    result = job.run(program)
    print(gov.finish_run().one_line())
"""

from .arbiter import (
    ArbiterConfig,
    ArbiterPolicy,
    ArbiterReport,
    ArbiterScope,
    PowerArbiter,
    ambient_arbiter_scope,
    use_arbiter,
)
from .governor import (
    Governor,
    GovernorConfig,
    GovernorPolicy,
    GovernorScope,
    ambient_governor_scope,
    use_governor,
)
from .slack import EwmaEstimator, Log2Histogram, SlackMonitor
from .telemetry import GovernorReport, merge_reports

__all__ = [
    "ArbiterConfig",
    "ArbiterPolicy",
    "ArbiterReport",
    "ArbiterScope",
    "EwmaEstimator",
    "Governor",
    "GovernorConfig",
    "GovernorPolicy",
    "GovernorReport",
    "GovernorScope",
    "Log2Histogram",
    "PowerArbiter",
    "SlackMonitor",
    "ambient_arbiter_scope",
    "ambient_governor_scope",
    "merge_reports",
    "use_arbiter",
    "use_governor",
]
