"""Per-run governor telemetry.

A :class:`GovernorReport` is the governor's flight recorder: every
actuation (drop, restore, socket throttle, pre-scale), every armed and
cancelled θ timer, the prediction quality of the ``predictive`` policy,
and an estimate of the energy the actuations saved relative to running
the same timeline with no governor.  Reports are JSON-able and exported
through :func:`repro.bench.export.save_governor_json` (the CLI writes
``results/governor.json`` when ``--profile`` is active).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

__all__ = ["GovernorReport", "NON_SUMMABLE_FIELDS", "merge_reports"]

#: Fields that do not sum across runs: configuration (first run's values
#: are kept — one CLI scope uses one config) and the per-run monitor
#: detail (replaced by a merge marker).  Every OTHER field is summed by
#: :func:`merge_reports` automatically — adding a counter to
#: :class:`GovernorReport` cannot silently drop it from merged output.
NON_SUMMABLE_FIELDS = frozenset({"policy", "theta_us", "monitor"})


@dataclass
class GovernorReport:
    """Counters and estimates for one governed job run."""

    policy: str = "none"
    theta_us: float = 0.0
    #: Top-level MPI calls and waits the monitor observed.
    calls_observed: int = 0
    waits_observed: int = 0
    total_wait_s: float = 0.0
    #: θ timers armed at wait entry / cancelled because the wait ended first.
    timers_armed: int = 0
    timers_cancelled: int = 0
    #: Cores dropped to the low-power state after θ of continuous wait.
    drops: int = 0
    #: Drops undone at wait exit (paying the transition penalty).
    restores: int = 0
    #: Drops undone *early* because a transfer started toward/from the core
    #: (RDMA needs the endpoint's feed path; see MessageEngine hook).
    traffic_restores: int = 0
    #: Whole-socket T-state actuations (socket-granular hardware).
    socket_throttles: int = 0
    #: Predictive policy: calls pre-scaled to fmin before entry.
    prescales: int = 0
    #: Predictive decisions taken from the analytic model (cold history).
    cold_decisions: int = 0
    #: Pre-scaled calls that turned out too short to amortise transitions.
    mispredictions: int = 0
    #: Calls skipped by the predictor that turned out long enough.
    missed_engagements: int = 0
    #: Simulated seconds spent in restore transitions (the governor's cost).
    penalty_s: float = 0.0
    #: Integrated (power-before − power-during) over every drop interval.
    estimated_saving_j: float = 0.0
    #: Slack monitor snapshot (histogram + per-(op,size) call history).
    monitor: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        # Derived from fields() so a new counter can never be forgotten
        # here (field order == declaration order == export order).
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def one_line(self) -> str:
        """Terse summary for CLI output."""
        return (
            f"governor[{self.policy}]: {self.drops} drops "
            f"({self.traffic_restores} traffic-restored, "
            f"{self.socket_throttles} socket throttles), "
            f"{self.prescales} pre-scales, "
            f"~{self.estimated_saving_j:.1f} J saved, "
            f"{self.penalty_s * 1e6:.0f} us transition penalty"
        )


def merge_reports(reports: List[GovernorReport]) -> Optional[GovernorReport]:
    """Sum counter fields across runs (a CLI experiment runs many jobs).

    The summed set is *derived* from ``dataclasses.fields()`` minus the
    explicit :data:`NON_SUMMABLE_FIELDS` exclusion list — the previous
    hand-maintained sum silently dropped any counter added after it was
    written (``prescales``, ``estimated_saving_j`` and ``penalty_s`` all
    drifted that way at one point or another).  The merged report keeps
    the first run's policy/θ (one CLI scope uses one config) and drops
    the per-run monitor detail, which does not merge meaningfully;
    per-run monitors stay available on the individual reports.
    """
    if not reports:
        return None
    merged = GovernorReport(policy=reports[0].policy, theta_us=reports[0].theta_us)
    for f in fields(GovernorReport):
        if f.name in NON_SUMMABLE_FIELDS:
            continue
        setattr(merged, f.name, sum(getattr(r, f.name) for r in reports))
    merged.monitor = {"runs_merged": len(reports)}
    return merged
