"""Per-run governor telemetry.

A :class:`GovernorReport` is the governor's flight recorder: every
actuation (drop, restore, socket throttle, pre-scale), every armed and
cancelled θ timer, the prediction quality of the ``predictive`` policy,
and an estimate of the energy the actuations saved relative to running
the same timeline with no governor.  Reports are JSON-able and exported
through :func:`repro.bench.export.save_governor_json` (the CLI writes
``results/governor.json`` when ``--profile`` is active).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["GovernorReport", "merge_reports"]


@dataclass
class GovernorReport:
    """Counters and estimates for one governed job run."""

    policy: str = "none"
    theta_us: float = 0.0
    #: Top-level MPI calls and waits the monitor observed.
    calls_observed: int = 0
    waits_observed: int = 0
    total_wait_s: float = 0.0
    #: θ timers armed at wait entry / cancelled because the wait ended first.
    timers_armed: int = 0
    timers_cancelled: int = 0
    #: Cores dropped to the low-power state after θ of continuous wait.
    drops: int = 0
    #: Drops undone at wait exit (paying the transition penalty).
    restores: int = 0
    #: Drops undone *early* because a transfer started toward/from the core
    #: (RDMA needs the endpoint's feed path; see MessageEngine hook).
    traffic_restores: int = 0
    #: Whole-socket T-state actuations (socket-granular hardware).
    socket_throttles: int = 0
    #: Predictive policy: calls pre-scaled to fmin before entry.
    prescales: int = 0
    #: Predictive decisions taken from the analytic model (cold history).
    cold_decisions: int = 0
    #: Pre-scaled calls that turned out too short to amortise transitions.
    mispredictions: int = 0
    #: Calls skipped by the predictor that turned out long enough.
    missed_engagements: int = 0
    #: Simulated seconds spent in restore transitions (the governor's cost).
    penalty_s: float = 0.0
    #: Integrated (power-before − power-during) over every drop interval.
    estimated_saving_j: float = 0.0
    #: Slack monitor snapshot (histogram + per-(op,size) call history).
    monitor: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "policy": self.policy,
            "theta_us": self.theta_us,
            "calls_observed": self.calls_observed,
            "waits_observed": self.waits_observed,
            "total_wait_s": self.total_wait_s,
            "timers_armed": self.timers_armed,
            "timers_cancelled": self.timers_cancelled,
            "drops": self.drops,
            "restores": self.restores,
            "traffic_restores": self.traffic_restores,
            "socket_throttles": self.socket_throttles,
            "prescales": self.prescales,
            "cold_decisions": self.cold_decisions,
            "mispredictions": self.mispredictions,
            "missed_engagements": self.missed_engagements,
            "penalty_s": self.penalty_s,
            "estimated_saving_j": self.estimated_saving_j,
            "monitor": self.monitor,
        }

    def one_line(self) -> str:
        """Terse summary for CLI output."""
        return (
            f"governor[{self.policy}]: {self.drops} drops "
            f"({self.traffic_restores} traffic-restored, "
            f"{self.socket_throttles} socket throttles), "
            f"{self.prescales} pre-scales, "
            f"~{self.estimated_saving_j:.1f} J saved, "
            f"{self.penalty_s * 1e6:.0f} us transition penalty"
        )


def merge_reports(reports: List[GovernorReport]) -> Optional[GovernorReport]:
    """Sum counter fields across runs (a CLI experiment runs many jobs).

    The merged report keeps the first run's policy/θ (one CLI scope uses
    one config) and drops the per-run monitor detail, which does not merge
    meaningfully; per-run monitors stay available on the individual
    reports.
    """
    if not reports:
        return None
    merged = GovernorReport(policy=reports[0].policy, theta_us=reports[0].theta_us)
    for r in reports:
        merged.calls_observed += r.calls_observed
        merged.waits_observed += r.waits_observed
        merged.total_wait_s += r.total_wait_s
        merged.timers_armed += r.timers_armed
        merged.timers_cancelled += r.timers_cancelled
        merged.drops += r.drops
        merged.restores += r.restores
        merged.traffic_restores += r.traffic_restores
        merged.socket_throttles += r.socket_throttles
        merged.prescales += r.prescales
        merged.cold_decisions += r.cold_decisions
        merged.mispredictions += r.mispredictions
        merged.missed_engagements += r.missed_engagements
        merged.penalty_s += r.penalty_s
        merged.estimated_saving_j += r.estimated_saving_j
    merged.monitor = {"runs_merged": len(reports)}
    return merged
