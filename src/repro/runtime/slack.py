"""Online slack estimation for the power governor.

The :class:`SlackMonitor` is the governor's sensor layer: it is fed by the
MPI-side notifications (collective/p2p entry and exit, wait begin/end —
the same sites the tracer observes) and maintains

* a per-core EWMA of wait ("slack") durations,
* a per-core log2 histogram of wait durations (the distribution matters
  for choosing the countdown threshold θ — a fat right tail means long
  throttleable waits), and
* a per-(operation, log2-size-bucket) EWMA of *call* durations, which the
  ``predictive`` policy uses to decide whether a collective is long
  enough to amortise its power transitions before the call even starts.

The monitor is pure bookkeeping: it never touches the simulation clock or
core state, so an observe-only governor (policy ``none``) perturbs
nothing.  When no governor is installed at all, none of this code runs
(the MPI layer guards every notification with one ``is None`` check).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

__all__ = ["EwmaEstimator", "Log2Histogram", "SlackMonitor"]


class EwmaEstimator:
    """Exponentially weighted moving average with a sample counter."""

    __slots__ = ("alpha", "value", "count")

    def __init__(self, alpha: float = 0.25):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        #: Current estimate (None until the first sample).
        self.value: Optional[float] = None
        self.count = 0

    def update(self, sample: float) -> Optional[float]:
        """Fold in ``sample``; returns the (possibly unchanged) estimate.

        Defensive against clock skew in the duration sources: NaN samples
        are ignored outright, negative ones clamp to 0.0 — a single bad
        reading must not poison the whole history.
        """
        sample = float(sample)
        if math.isnan(sample):
            return self.value
        if sample < 0.0:
            sample = 0.0
        if self.value is None:
            self.value = sample
        else:
            self.value += self.alpha * (sample - self.value)
        self.count += 1
        return self.value


class Log2Histogram:
    """Histogram over power-of-two microsecond buckets.

    Bucket ``k`` counts durations in ``[2^k, 2^(k+1))`` µs; bucket ``-1``
    collects sub-microsecond samples.  Sparse (a dict), since a run
    typically populates only a handful of decades.
    """

    __slots__ = ("bins", "total_s", "count")

    def __init__(self) -> None:
        self.bins: Dict[int, int] = {}
        self.total_s = 0.0
        self.count = 0

    def record(self, seconds: float) -> None:
        seconds = float(seconds)
        if math.isnan(seconds):  # clock-skew defensive: drop, don't poison
            return
        if seconds < 0.0:
            seconds = 0.0
        us = seconds * 1e6
        bucket = int(us).bit_length() - 1 if us >= 1.0 else -1
        self.bins[bucket] = self.bins.get(bucket, 0) + 1
        self.total_s += seconds
        self.count += 1

    def summary(self) -> Dict[str, int]:
        """Bucket counts keyed by a human-readable lower bound ("<1us",
        "1us", "2us", ... "1024us", ...)."""
        out: Dict[str, int] = {}
        for bucket in sorted(self.bins):
            key = "<1us" if bucket < 0 else f"{1 << bucket}us"
            out[key] = self.bins[bucket]
        return out


def size_bucket(nbytes: int) -> int:
    """Collapse message sizes into log2 buckets so history generalises
    across runs that vary sizes slightly (64K and 65K share a bucket)."""
    return int(nbytes).bit_length()


class SlackMonitor:
    """Aggregates wait/call observations for one simulation session."""

    def __init__(self, alpha: float = 0.25, warm_calls: int = 2):
        self.alpha = alpha
        #: Samples of a (op, size-bucket) key needed before its history is
        #: considered warm enough to predict from.
        self.warm_calls = warm_calls
        self._wait_ewma: Dict[int, EwmaEstimator] = {}
        self._wait_hist: Dict[int, Log2Histogram] = {}
        self._calls: Dict[Tuple[str, int], EwmaEstimator] = {}
        self.waits_observed = 0
        self.calls_observed = 0
        self.total_wait_s = 0.0

    # -- feeding ------------------------------------------------------------
    def record_wait(self, core_id: int, seconds: float) -> None:
        """One completed MPI wait of ``seconds`` on ``core_id``."""
        ewma = self._wait_ewma.get(core_id)
        if ewma is None:
            ewma = self._wait_ewma[core_id] = EwmaEstimator(self.alpha)
            self._wait_hist[core_id] = Log2Histogram()
        ewma.update(seconds)
        self._wait_hist[core_id].record(seconds)
        self.waits_observed += 1
        self.total_wait_s += seconds

    def record_call(self, op: str, nbytes: int, seconds: float) -> None:
        """One completed top-level MPI call (collective or blocking p2p)."""
        key = (op, size_bucket(nbytes))
        ewma = self._calls.get(key)
        if ewma is None:
            ewma = self._calls[key] = EwmaEstimator(self.alpha)
        ewma.update(seconds)
        self.calls_observed += 1

    # -- querying -----------------------------------------------------------
    def predicted_call_seconds(self, op: str, nbytes: int) -> Optional[float]:
        """EWMA duration for (op, size) — None while the history is cold."""
        ewma = self._calls.get((op, size_bucket(nbytes)))
        if ewma is None or ewma.count < self.warm_calls:
            return None
        return ewma.value

    def mean_wait_s(self, core_id: int) -> Optional[float]:
        ewma = self._wait_ewma.get(core_id)
        return None if ewma is None else ewma.value

    def slack_histogram(self) -> Dict[str, int]:
        """Cluster-wide wait-duration histogram (merged over cores)."""
        merged: Dict[int, int] = {}
        for hist in self._wait_hist.values():
            for bucket, n in hist.bins.items():
                merged[bucket] = merged.get(bucket, 0) + n
        out: Dict[str, int] = {}
        for bucket in sorted(merged):
            key = "<1us" if bucket < 0 else f"{1 << bucket}us"
            out[key] = merged[bucket]
        return out

    def summary(self) -> Dict:
        """JSON-able snapshot for the governor report."""
        return {
            "waits_observed": self.waits_observed,
            "calls_observed": self.calls_observed,
            "total_wait_s": self.total_wait_s,
            "slack_histogram": self.slack_histogram(),
            "call_history": {
                f"{op}/2^{bucket}B": {
                    "mean_s": ewma.value,
                    "samples": ewma.count,
                }
                for (op, bucket), ewma in sorted(self._calls.items())
            },
        }
