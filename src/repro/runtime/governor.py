"""The online power governor: per-core policy state machines.

The paper's schemes (§V) hard-code power transitions into each
collective's schedule; the governor instead *observes* MPI behaviour at
runtime — through the same entry/exit and wait begin/end sites the tracer
sees — and drives DVFS/T-state actuation itself, COUNTDOWN-style
(Cesarini et al., arXiv:1806.07258).  Three policies:

``none``
    Observe-only passthrough.  The slack monitor records, nothing is
    actuated, no timers are armed: the event timeline and energy totals
    are bit-identical to a session with no governor at all (the
    determinism guard in ``tests/runtime`` asserts exactly this).

``countdown``
    The timeout-θ rule: once a core has been inside one continuous MPI
    wait for θ µs, drop it to the low-power state; restore (paying the
    transition latency) when the wait completes.  The drop is T-state
    only by default: T-states gate the power of a *polling* core by ~2×
    without touching its DVFS point, so the node's NIC rating — which
    follows the mean core frequency — is unaffected, keeping the added
    communication latency within the paper's tolerance.

``predictive``
    Uses the slack monitor's per-(collective, size) duration history to
    pre-scale the core to fmin *before* a call predicted to amortise the
    transitions, falling back to the paper's analytic model (eq. 1/2,
    the same rule the static ADAPTIVE scheme uses) while the history is
    cold.  Waits inside an engaged call throttle on a shorter countdown.

Actuation respects the hardware throttle granularity: on the paper's
Nehalem (socket-granular) a socket is throttled only once *every* core
on it is past θ in a wait, and restored as soon as any of them wakes.
A core whose drop would starve an incoming RDMA transfer is restored by
the message engine the moment the transfer starts (see
:meth:`Governor.transfer_starting`).
"""

from __future__ import annotations

import contextlib
import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from ..cluster.specs import ThrottleGranularity
from ..collectives.power_control import T_FULL, T_LOW
from ..sim.engine import CoalescedTimers
from .slack import SlackMonitor
from .telemetry import GovernorReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cpu import Core
    from ..sim.events import Timer
    from ..sim.session import SimSession

__all__ = [
    "Governor",
    "GovernorConfig",
    "GovernorPolicy",
    "GovernorScope",
    "ambient_governor_scope",
    "use_governor",
]

#: Operations the predictive policy may pre-scale (collectives; blocking
#: p2p is observed for slack but never pre-scaled — fmin would slow the
#: sender's own feed path for no amortisable gain).
_PRESCALABLE_OPS = frozenset(
    {
        "alltoall",
        "alltoallv",
        "bcast",
        "reduce",
        "allreduce",
        "allgather",
        "reduce_scatter",
        "scatter",
        "gather",
        "scan",
    }
)


class GovernorPolicy(enum.Enum):
    """Which policy state machine drives each core."""

    NONE = "none"
    COUNTDOWN = "countdown"
    PREDICTIVE = "predictive"


@dataclass(frozen=True)
class GovernorConfig:
    """Tunables for the governor (defaults follow the paper's testbed)."""

    policy: GovernorPolicy = GovernorPolicy.NONE
    #: Countdown threshold θ: continuous wait time before a core drops.
    theta_s: float = 200e-6
    #: Countdown inside a predictively engaged call (the call is already
    #: known to be long, so throttle its waits more eagerly).
    predictive_theta_s: float = 50e-6
    #: T-state applied on drop (T7 = 12% duty on the paper's Nehalem).
    drop_tstate: int = T_LOW
    #: Also DVFS a countdown-dropped core to fmin.  Off by default: the
    #: node NIC rating follows mean core frequency, so frequency drops in
    #: waits would tax in-flight neighbours' bandwidth; T-states do not.
    drop_to_fmin: bool = False
    #: Minimum per-call payload for predictive engagement (paper §VI-C
    #: gates power-aware schedules at 8 KB as well).
    min_bytes: int = 8192
    #: Predicted duration must exceed ``gain ×`` transition overhead.
    predictive_gain: float = 3.5
    #: EWMA smoothing for the slack monitor.
    ewma_alpha: float = 0.25
    #: Samples before a (collective, size) history entry is warm.
    warm_calls: int = 2

    def __post_init__(self) -> None:
        if self.theta_s <= 0 or self.predictive_theta_s <= 0:
            raise ValueError("countdown thresholds must be > 0")
        if self.predictive_gain <= 0:
            raise ValueError("predictive_gain must be > 0")

    def to_dict(self) -> dict:
        """Plain-data form (JSON-able) — lets a sweep cell carry its
        governor across a process boundary and into a cache key."""
        return {
            "policy": self.policy.value,
            "theta_s": self.theta_s,
            "predictive_theta_s": self.predictive_theta_s,
            "drop_tstate": self.drop_tstate,
            "drop_to_fmin": self.drop_to_fmin,
            "min_bytes": self.min_bytes,
            "predictive_gain": self.predictive_gain,
            "ewma_alpha": self.ewma_alpha,
            "warm_calls": self.warm_calls,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GovernorConfig":
        """Inverse of :meth:`to_dict` (omitted keys take defaults)."""
        kwargs = dict(data)
        if "policy" in kwargs:
            kwargs["policy"] = GovernorPolicy(kwargs["policy"])
        return cls(**kwargs)


class _CoreFsm:
    """Per-core governor state (one FSM instance per physical core)."""

    __slots__ = (
        "core",
        "socket",
        "depth",
        "engaged",
        "predropped",
        "waiting",
        "wait_t0",
        "timer",
        "dropped",
        "drop_t0",
        "p_before",
        "call_op",
        "call_nbytes",
        "call_t0",
        "freq_dropped",
    )

    def __init__(self, core: "Core", socket) -> None:
        self.core = core
        self.socket = socket
        #: Nesting depth of MPI calls (collectives issue p2p internally).
        self.depth = 0
        #: Current top-level call is governed (predictive engagement).
        self.engaged = False
        #: Core pre-scaled to fmin for the current call (predictive).
        self.predropped = False
        self.waiting = False
        self.wait_t0 = 0.0
        self.timer: Optional["Timer"] = None
        #: θ fired during the current wait: the core is (marked) dropped.
        self.dropped = False
        self.drop_t0 = 0.0
        self.p_before = 0.0
        self.call_op = ""
        self.call_nbytes = 0
        self.call_t0 = 0.0
        #: Countdown also dropped the frequency (drop_to_fmin).
        self.freq_dropped = False


class _SocketFsm:
    """Per-socket aggregate: throttle only when all cores are dropped."""

    __slots__ = ("socket", "n_cores", "dropped_waiting", "throttled")

    def __init__(self, socket) -> None:
        self.socket = socket
        self.n_cores = len(socket.cores)
        self.dropped_waiting = 0
        self.throttled = False


class Governor:
    """Session-wide policy engine; owns one :class:`_CoreFsm` per core.

    Lifecycle: construct with a :class:`GovernorConfig`, then
    :meth:`bind` to a :class:`~repro.sim.session.SimSession` (the session
    does this automatically when it owns the governor).  The MPI layer
    calls the notification hooks; :meth:`finish_run` seals the report.
    """

    def __init__(
        self,
        config: Optional[GovernorConfig] = None,
        scope: Optional["GovernorScope"] = None,
    ):
        self.config = config or GovernorConfig()
        self.scope = scope
        self.monitor = SlackMonitor(
            alpha=self.config.ewma_alpha, warm_calls=self.config.warm_calls
        )
        self.session: Optional["SimSession"] = None
        self._cores: Dict[int, _CoreFsm] = {}
        self._sockets: Dict[int, _SocketFsm] = {}
        self._granularity = ThrottleGranularity.SOCKET
        # Telemetry counters (folded into the report).
        self.timers_armed = 0
        self.timers_cancelled = 0
        self.drops = 0
        self.restores = 0
        self.traffic_restores = 0
        self.socket_throttles = 0
        self.prescales = 0
        self.cold_decisions = 0
        self.mispredictions = 0
        self.missed_engagements = 0
        self.penalty_s = 0.0
        self.estimated_saving_j = 0.0

    # -- wiring -------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when the policy actuates (``none`` only observes)."""
        return self.config.policy is not GovernorPolicy.NONE

    def bind(self, session: "SimSession") -> None:
        """Attach to a session's substrate (idempotent for the same one)."""
        if self.session is session:
            return
        if self.session is not None:
            raise ValueError("a Governor can only bind to one SimSession")
        self.session = session
        self.env = session.env
        self.net = session.net
        self.power_model = session.power_model
        # θ-countdowns arm through a coalescing bank: a wave of ranks
        # entering waits at one timestamp shares heap entries per deadline
        # (one Environment.defer flush — the fabric kernel's re-rate
        # batching primitive) instead of pushing one Timer per rank.
        self._timers = CoalescedTimers(self.env)
        cluster = session.cluster
        self._granularity = cluster.spec.node.cpu.throttle_granularity
        for node in cluster.nodes:
            for socket in node.sockets:
                self._sockets[socket.socket_id] = _SocketFsm(socket)
                for core in socket.cores:
                    self._cores[core.core_id] = _CoreFsm(core, socket)

    def _fsm(self, ctx) -> _CoreFsm:
        return self._cores[ctx.core.core_id]

    def _dvfs_s(self, core: "Core") -> float:
        """Odvfs for this actuation (jittered under an active fault plan)."""
        faults = self.session.faults if self.session is not None else None
        return (core.spec.dvfs_latency_s if faults is None
                else faults.dvfs_latency_s(core))

    def _throttle_s(self, core: "Core") -> float:
        """Othrottle for this actuation (jittered under an active fault plan)."""
        faults = self.session.faults if self.session is not None else None
        return (core.spec.throttle_latency_s if faults is None
                else faults.throttle_latency_s(core))

    # -- call entry/exit ----------------------------------------------------
    def call_begin(self, ctx, op: str, nbytes: int):
        """Notification generator: a rank enters a top-level MPI call."""
        st = self._fsm(ctx)
        st.depth += 1
        if st.depth > 1:
            return
        st.call_op = op
        st.call_nbytes = nbytes
        st.call_t0 = self.env.now
        st.engaged = False
        if (
            self.config.policy is GovernorPolicy.PREDICTIVE
            and op in _PRESCALABLE_OPS
            and nbytes >= self.config.min_bytes
        ):
            if self._predict_engage(ctx, op, nbytes):
                st.engaged = True
                st.predropped = True
                self.prescales += 1
                spec = ctx.core.spec
                latency = self._dvfs_s(ctx.core)
                self.penalty_s += latency
                yield self.env.timeout(latency)
                ctx.core.set_frequency(spec.fmin, self.env.now)
                self.net.dvfs_changed(ctx.core.node_id)
        return

    def call_end(self, ctx, op: str, nbytes: int):
        """Notification generator: the matching call exit."""
        st = self._fsm(ctx)
        st.depth -= 1
        if st.depth > 0:
            return
        duration = self.env.now - st.call_t0
        self.monitor.record_call(op, nbytes, duration)
        if self.config.policy is GovernorPolicy.PREDICTIVE:
            self._grade_prediction(ctx, st, op, duration)
        if st.predropped:
            st.predropped = False
            spec = ctx.core.spec
            latency = self._dvfs_s(ctx.core)
            self.penalty_s += latency
            yield self.env.timeout(latency)
            ctx.core.set_frequency(spec.fmax, self.env.now)
            self.net.dvfs_changed(ctx.core.node_id)
        st.engaged = False
        return

    # -- wait entry/exit ----------------------------------------------------
    def wait_begin(self, ctx) -> None:
        """A rank starts blocking/polling inside ``RankContext._wait``."""
        st = self._fsm(ctx)
        st.waiting = True
        st.wait_t0 = self.env.now
        policy = self.config.policy
        if policy is GovernorPolicy.COUNTDOWN:
            theta = self.config.theta_s
        elif policy is GovernorPolicy.PREDICTIVE and st.engaged:
            theta = self.config.predictive_theta_s
        else:
            return
        self.timers_armed += 1
        st.timer = self._timers.call_after(
            theta, lambda t, ctx=ctx: self._theta_fired(ctx))

    def wait_end(self, ctx) -> float:
        """The wait completed; returns the restore penalty in seconds.

        A non-zero penalty means the caller must sleep that long and then
        call :meth:`wait_restored` — the power state flips only after the
        transition completes, exactly like the static schemes charge
        Odvfs/Othrottle.
        """
        st = self._fsm(ctx)
        st.waiting = False
        wait_s = self.env.now - st.wait_t0
        self.monitor.record_wait(ctx.core.core_id, wait_s)
        tracer = self.session.tracer if self.session is not None else None
        if tracer is not None and tracer.enabled:
            # Publish the slack estimate on the trace bus so repro.obs
            # can chart governor behaviour without coupling to it.
            # Observes only (marks never steer): timelines stay
            # byte-identical with tracing on or off.
            tracer.mark(
                self.env.now, "governor.slack",
                core=ctx.core.core_id, wait_s=wait_s,
                ewma_s=self.monitor.mean_wait_s(ctx.core.core_id),
            )
        if st.timer is not None:
            st.timer.cancel()
            st.timer = None
            self.timers_cancelled += 1
        if not st.dropped:
            return 0.0
        penalty = 0.0
        sock = self._sockets[st.core.socket_id]
        if self._granularity is ThrottleGranularity.SOCKET:
            if sock.throttled:
                sock.throttled = False  # claim the restore for this core
                penalty += self._throttle_s(ctx.core)
        elif st.core.tstate != T_FULL:
            penalty += self._throttle_s(ctx.core)
        if st.freq_dropped:
            penalty += self._dvfs_s(ctx.core)
        if penalty == 0.0:
            # Nothing was actually actuated (e.g. the socket never filled
            # up, or a sibling already restored it): bookkeeping only.
            self._finish_restore(st, unthrottle_socket=False)
        else:
            self.penalty_s += penalty
        return penalty

    def wait_restored(self, ctx) -> None:
        """Called after the restore penalty elapsed: flip the state back."""
        st = self._fsm(ctx)
        self._finish_restore(st, unthrottle_socket=True)

    # -- message-engine hook ------------------------------------------------
    def transfer_starting(self, src_core: "Core", dst_core: "Core") -> float:
        """A transfer is about to sample its endpoints' CPU feed rates.

        RDMA needs both endpoints' feed paths un-throttled at flow start
        (the engine fixes ``cpu_cap`` then); a dropped endpoint is woken
        here.  Returns the transition seconds the transfer must absorb
        before starting (0.0 when neither endpoint was dropped).
        """
        delay = 0.0
        for core in (src_core, dst_core):
            st = self._cores.get(core.core_id)
            if st is None or not st.dropped:
                continue
            sock = self._sockets[core.socket_id]
            if self._granularity is ThrottleGranularity.SOCKET:
                if sock.throttled:
                    sock.throttled = False
                    delay += self._throttle_s(core)
            elif core.tstate != T_FULL:
                delay += self._throttle_s(core)
            if st.freq_dropped:
                delay += self._dvfs_s(core)
            self._finish_restore(st, unthrottle_socket=True)
            self.traffic_restores += 1
        if delay:
            self.penalty_s += delay
        return delay

    # -- internals ----------------------------------------------------------
    def _theta_fired(self, ctx) -> None:
        """θ of continuous wait elapsed: drop the core."""
        st = self._fsm(ctx)
        st.timer = None
        if not st.waiting or st.dropped:  # pragma: no cover - defensive
            return
        now = self.env.now
        st.dropped = True
        st.drop_t0 = now
        st.p_before = self.power_model.core_power(st.core)
        self.drops += 1
        if self.config.drop_to_fmin and not st.predropped:
            st.freq_dropped = True
            st.core.set_frequency(st.core.spec.fmin, now)
            self.net.dvfs_changed(st.core.node_id)
        if self._granularity is ThrottleGranularity.SOCKET:
            sock = self._sockets[st.core.socket_id]
            sock.dropped_waiting += 1
            if sock.dropped_waiting == sock.n_cores and not sock.throttled:
                sock.socket.set_tstate(self.config.drop_tstate, now)
                sock.throttled = True
                self.socket_throttles += 1
        else:
            st.core.set_tstate(self.config.drop_tstate, now)

    def _finish_restore(self, st: _CoreFsm, unthrottle_socket: bool) -> None:
        """Undo a drop's actuation and bookkeeping for one core."""
        if not st.dropped:
            # Already restored — e.g. a traffic restore fired during the
            # penalty sleep between wait_end and wait_restored.
            return
        now = self.env.now
        p_during = self.power_model.core_power(st.core)
        self.estimated_saving_j += max(0.0, st.p_before - p_during) * (
            now - st.drop_t0
        )
        st.dropped = False
        self.restores += 1
        if self._granularity is ThrottleGranularity.SOCKET:
            sock = self._sockets[st.core.socket_id]
            sock.dropped_waiting -= 1
            if unthrottle_socket and st.core.tstate != T_FULL:
                sock.socket.set_tstate(T_FULL, now)
                sock.throttled = False
        elif st.core.tstate != T_FULL:
            st.core.set_tstate(T_FULL, now)
        if st.freq_dropped:
            st.freq_dropped = False
            st.core.set_frequency(st.core.spec.fmax, now)
            self.net.dvfs_changed(st.core.node_id)

    def _predict_engage(self, ctx, op: str, nbytes: int) -> bool:
        """Predictive decision: is this call long enough to pre-scale?"""
        predicted = self.monitor.predicted_call_seconds(op, nbytes)
        if predicted is None:
            # Cold history: fall back to the paper's analytic estimate —
            # the same eq (1)/(2) rule the static ADAPTIVE scheme applies.
            predicted = self._analytic_call_seconds(ctx, op, nbytes)
            self.cold_decisions += 1
        spec = ctx.core.spec
        overhead = 2 * spec.dvfs_latency_s + 2 * spec.throttle_latency_s
        return predicted > self.config.predictive_gain * overhead

    def _grade_prediction(self, ctx, st: _CoreFsm, op: str, duration: float) -> None:
        if op not in _PRESCALABLE_OPS or st.call_nbytes < self.config.min_bytes:
            return
        spec = ctx.core.spec
        overhead = 2 * spec.dvfs_latency_s + 2 * spec.throttle_latency_s
        worth_it = duration > self.config.predictive_gain * overhead
        if st.engaged and not worth_it:
            self.mispredictions += 1
        elif not st.engaged and worth_it:
            self.missed_engagements += 1

    @staticmethod
    def _analytic_call_seconds(ctx, op: str, nbytes: int) -> float:
        """Paper §VI estimates (eq. 1/2 shapes) of a collective's duration."""
        aff = ctx.affinity
        net = ctx.spec
        n = max(aff.n_nodes_used, 1)
        c = aff.cores_per_node
        p = aff.n_ranks
        tw = 1.0 / net.nic_bw
        if op in ("alltoall", "alltoallv"):
            return tw * (p - c) * c * nbytes  # eq (1), Cnet = ranks/HCA
        if op in ("bcast", "reduce"):
            return nbytes * (n - 1) * tw * (1 + 1 / n)  # eq (2)
        return nbytes * max(p - 1, 1) * tw

    # -- reporting ----------------------------------------------------------
    def finish_run(self) -> GovernorReport:
        """Seal the run: force-restore any leftover drops (a program that
        ends mid-wait) and emit the report (also collected by the ambient
        scope, if one owns this governor)."""
        for st in self._cores.values():
            if st.timer is not None:
                st.timer.cancel()
                st.timer = None
                self.timers_cancelled += 1
            if st.dropped:
                # End-of-run restores pay the same Odvfs/Othrottle the
                # wait_end / transfer_starting paths charge — a program
                # ending mid-drop must not under-report penalty seconds.
                # Socket granularity charges once per still-throttled
                # socket (claimed by clearing the flag, like wait_end).
                penalty = 0.0
                sock = self._sockets[st.core.socket_id]
                if self._granularity is ThrottleGranularity.SOCKET:
                    if sock.throttled:
                        sock.throttled = False
                        penalty += self._throttle_s(st.core)
                elif st.core.tstate != T_FULL:
                    penalty += self._throttle_s(st.core)
                if st.freq_dropped:
                    penalty += self._dvfs_s(st.core)
                self.penalty_s += penalty
                self._finish_restore(st, unthrottle_socket=True)
        report = self.report()
        if self.scope is not None:
            self.scope.collect(report)
        return report

    def report(self) -> GovernorReport:
        """Snapshot of the governor's telemetry."""
        return GovernorReport(
            policy=self.config.policy.value,
            theta_us=self.config.theta_s * 1e6,
            calls_observed=self.monitor.calls_observed,
            waits_observed=self.monitor.waits_observed,
            total_wait_s=self.monitor.total_wait_s,
            timers_armed=self.timers_armed,
            timers_cancelled=self.timers_cancelled,
            drops=self.drops,
            restores=self.restores,
            traffic_restores=self.traffic_restores,
            socket_throttles=self.socket_throttles,
            prescales=self.prescales,
            cold_decisions=self.cold_decisions,
            mispredictions=self.mispredictions,
            missed_engagements=self.missed_engagements,
            penalty_s=self.penalty_s,
            estimated_saving_j=self.estimated_saving_j,
            monitor=self.monitor.summary(),
        )


class GovernorScope:
    """Ambient governor configuration (mirrors ``use_tracer``).

    While a scope is active, every :class:`~repro.sim.session.SimSession`
    built without an explicit governor constructs one from the scope's
    config, and the per-run reports accumulate on the scope — the CLI
    uses this to govern whole experiments without threading a parameter
    through every benchmark function.
    """

    def __init__(self, config: GovernorConfig):
        self.config = config
        self.reports: List[GovernorReport] = []

    def collect(self, report: GovernorReport) -> None:
        self.reports.append(report)

    def make_governor(self) -> Governor:
        return Governor(self.config, scope=self)


_AMBIENT: List[Optional[GovernorScope]] = []


def ambient_governor_scope() -> Optional[GovernorScope]:
    """The innermost active :func:`use_governor` scope, if any.

    A ``use_governor(None)`` shadow entry hides any outer scope: the
    hermetic cell executor installs one so a cell sees no ambient
    governor no matter what the calling process has active."""
    return _AMBIENT[-1] if _AMBIENT else None


@contextlib.contextmanager
def use_governor(config: Optional[GovernorConfig]):
    """Install ``config`` as the ambient governor for the ``with`` body.

    ``config=None`` installs a *shadow* instead (mirroring
    ``use_tracer(None)`` / ``use_metrics(None)``): inside the body,
    :func:`ambient_governor_scope` returns None even when an outer scope
    is active.

    Yields the :class:`GovernorScope` (None for a shadow); after the
    body ran, ``scope.reports`` holds one :class:`GovernorReport` per
    governed job.
    """
    scope = GovernorScope(config) if config is not None else None
    _AMBIENT.append(scope)
    try:
        yield scope
    finally:
        _AMBIENT.pop()
