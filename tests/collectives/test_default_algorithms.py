"""Correctness/behaviour tests for the default collective algorithms."""

import pytest

from repro.collectives import CollectiveConfig, CollectiveEngine
from repro.mpi import MpiJob
from repro.network import NetworkSpec

IDEAL_NET = NetworkSpec(flow_congestion=0.0)


def run_collective(op, nbytes, n_ranks=16, config=None, **kw):
    kw.setdefault("network_spec", IDEAL_NET)
    job = MpiJob(n_ranks, collectives=CollectiveEngine(config), **kw)

    def program(ctx):
        yield from getattr(ctx, op)(nbytes)

    return job.run(program)


# ------------------------------------------------------------------- alltoall
def test_alltoall_message_count_pairwise():
    """Pairwise exchange: every rank sends P−1 messages."""
    n = 16
    result = run_collective("alltoall", 1 << 16, n)
    assert result.job.engine.messages_sent == n * (n - 1)


def test_alltoall_small_uses_bruck():
    """Bruck: log2(P) sendrecvs per rank instead of P−1."""
    n = 16
    result = run_collective("alltoall", 64, n)
    assert result.job.engine.messages_sent == n * 4  # log2(16) rounds


def test_alltoall_switch_threshold_respected():
    cfg = CollectiveConfig(alltoall_switch_bytes=1 << 30)
    result = run_collective("alltoall", 1 << 16, 16, config=cfg)
    assert result.job.engine.messages_sent == 16 * 4  # still Bruck


def test_alltoall_completes_on_non_power_of_two_nodes():
    # 24 ranks = 3 nodes of 8: ring-shifted pairwise.
    result = run_collective("alltoall", 1 << 14, 24)
    assert result.job.engine.messages_sent == 24 * 23
    assert result.duration_s > 0


def test_alltoall_scales_with_message_size():
    t1 = run_collective("alltoall", 1 << 16, 16).duration_s
    t2 = run_collective("alltoall", 1 << 18, 16).duration_s
    assert 3.0 < t2 / t1 < 4.5  # near-linear in M for large messages


def test_alltoallv_uniform_matches_alltoall_shape():
    n = 16
    job = MpiJob(n, network_spec=IDEAL_NET)

    def program(ctx):
        yield from ctx.alltoallv([1 << 14] * n)

    r = job.run(program)
    assert r.job.engine.messages_sent == n * (n - 1)


def test_alltoallv_validates_counts():
    job = MpiJob(16, network_spec=IDEAL_NET)

    def program(ctx):
        yield from ctx.alltoallv([1, 2, 3])  # wrong length

    with pytest.raises(ValueError):
        job.run(program)


def test_alltoallv_skewed_finishes():
    n = 16
    job = MpiJob(n, network_spec=IDEAL_NET)

    def program(ctx):
        counts = [((ctx.rank + d) % n) * 512 for d in range(n)]
        yield from ctx.alltoallv(counts)

    r = job.run(program)
    assert r.duration_s > 0


# ------------------------------------------------------------------- bcast
def test_bcast_completes_all_roots():
    for root in (0, 5, 15):
        job = MpiJob(16, network_spec=IDEAL_NET)

        def program(ctx, root=root):
            yield from ctx.bcast(1 << 16, root=root)

        r = job.run(program)
        assert r.duration_s > 0
        assert job.engine.quiescent()


def test_mc_bcast_network_phase_recorded():
    r = run_collective("bcast", 1 << 18, 16)
    assert "bcast.network" in r.job.stats.phase_times
    assert 0 < r.job.stats.phase_times["bcast.network"] <= r.duration_s


def test_bcast_network_phase_dominates_total():
    """Fig 2(b): the network phase accounts for most of the bcast time."""
    r = run_collective("bcast", 1 << 20, 64)
    net = r.job.stats.phase_times["bcast.network"]
    assert net / r.duration_s > 0.5


def test_bcast_single_node_skips_network():
    r = run_collective("bcast", 1 << 16, 8)  # one node
    assert "bcast.network" not in r.job.stats.phase_times


def test_bcast_larger_messages_slower():
    t1 = run_collective("bcast", 1 << 16, 16).duration_s
    t2 = run_collective("bcast", 1 << 20, 16).duration_s
    assert t2 > t1


# ------------------------------------------------------------------- reduce
def test_reduce_completes_and_records_phase():
    r = run_collective("reduce", 1 << 12, 16)
    assert "reduce.network" in r.job.stats.phase_times


def test_reduce_non_leader_root():
    job = MpiJob(16, network_spec=IDEAL_NET)

    def program(ctx):
        yield from ctx.reduce(4096, root=5)

    job.run(program)
    assert job.engine.quiescent()


# -------------------------------------------------------------- other colls
def test_allgather_completes():
    r = run_collective("allgather", 1 << 12, 16)
    # Ring: P−1 messages per rank.
    assert r.job.engine.messages_sent == 16 * 15


def test_allreduce_power_of_two():
    r = run_collective("allreduce", 1 << 12, 16)
    assert r.job.engine.messages_sent == 16 * 4  # recursive doubling


def test_allreduce_non_power_of_two_falls_back():
    r = run_collective("allreduce", 1 << 12, 24)
    assert r.duration_s > 0


def test_scatter_and_gather_complete():
    for op in ("scatter", "gather"):
        r = run_collective(op, 1 << 12, 16)
        assert r.duration_s > 0
        assert r.job.engine.quiescent()


def test_barrier_synchronises():
    job = MpiJob(16, network_spec=IDEAL_NET)
    after = {}

    def program(ctx):
        if ctx.rank == 3:
            yield from ctx.compute(1e-3)  # straggler
        yield from ctx.barrier()
        after[ctx.rank] = ctx.env.now

    job.run(program)
    assert min(after.values()) >= 1e-3  # nobody leaves before the straggler


def test_successive_collectives_do_not_cross_match():
    job = MpiJob(16, network_spec=IDEAL_NET)

    def program(ctx):
        yield from ctx.alltoall(1 << 14)
        yield from ctx.alltoall(1 << 15)
        yield from ctx.bcast(1 << 14)
        yield from ctx.reduce(1 << 14)
        yield from ctx.barrier()

    job.run(program)
    assert job.engine.quiescent()


def test_collective_on_subcommunicator():
    """Flat algorithms run on an arbitrary communicator (here: leaders)."""
    job = MpiJob(16, network_spec=IDEAL_NET)

    def program(ctx):
        if ctx.is_node_leader():
            yield from ctx.bcast(1 << 14, root=0, comm=ctx.leader_comm)

    job.run(program)
    assert job.engine.quiescent()


def test_zero_byte_collectives():
    for op in ("alltoall", "bcast", "reduce", "allgather"):
        r = run_collective(op, 0, 16)
        assert r.duration_s >= 0
