"""Tests for the rack/topology-aware collectives (paper §VIII extension)."""

import pytest

from repro.cluster import ClusterSpec
from repro.collectives import (
    CollectiveConfig,
    CollectiveEngine,
    PowerMode,
    topo_gather,
    topo_scatter,
)
from repro.mpi import MpiJob

#: 4 racks x 4 nodes x 8 cores = 128 ranks.
RACKED = ClusterSpec(nodes=16, racks=4)


def rack_job(mode=PowerMode.NONE, n_ranks=128, **kw):
    return MpiJob(
        n_ranks,
        cluster_spec=RACKED,
        collectives=CollectiveEngine(CollectiveConfig(power_mode=mode)),
        **kw,
    )


def test_cluster_spec_rack_validation():
    with pytest.raises(ValueError):
        ClusterSpec(nodes=8, racks=3)  # not divisible
    with pytest.raises(ValueError):
        ClusterSpec(nodes=8, racks=0)
    spec = ClusterSpec(nodes=16, racks=4)
    assert spec.nodes_per_rack == 4
    assert spec.rack_of_node(0) == 0
    assert spec.rack_of_node(15) == 3
    with pytest.raises(ValueError):
        spec.rack_of_node(16)


def test_affinity_rack_lookups():
    job = rack_job()
    aff = job.affinity
    assert aff.n_racks_used == 4
    assert aff.rack_of(0) == 0
    assert aff.rack_of(127) == 3
    assert aff.rack_leader(0) == 0
    assert aff.rack_leader(1) == 32  # node 4's leader
    assert aff.is_rack_leader(32)
    assert not aff.is_rack_leader(33)
    assert aff.nodes_in_rack(2) == [8, 9, 10, 11]


def test_layout_has_rack_communicators():
    job = rack_job()
    layout = job.layout
    assert layout.rack_leaders.group == (0, 32, 64, 96)
    assert len(layout.rack_node_leaders) == 4
    assert layout.rack_node_leaders[0].group == (0, 8, 16, 24)


def test_single_rack_layout_is_trivial():
    job = MpiJob(64)
    assert job.layout.rack_leaders.group == (0,)
    assert job.layout.rack_node_leaders[0].group == job.layout.leaders.group


def test_cross_rack_path_traverses_uplinks():
    job = rack_job()
    path = [lk.name for lk in job.net.inter_node_path(0, 5)]
    assert path == ["nic_up:0", "rack_up:0", "rack_dn:1", "nic_dn:5"]
    # Same-rack stays on the leaf switch.
    path2 = [lk.name for lk in job.net.inter_node_path(0, 3)]
    assert path2 == ["nic_up:0", "nic_dn:3"]


def test_rack_uplink_capacity():
    job = rack_job()
    assert job.net.rack_up(0).capacity == pytest.approx(
        job.net.spec.nic_bw * job.net.spec.rack_uplink_factor
    )


def test_topo_bcast_completes_and_records_phase():
    job = rack_job()

    def program(ctx):
        yield from ctx.bcast(1 << 18)

    r = job.run(program)
    assert job.engine.quiescent()
    assert "topo_bcast.inter_rack" in r.stats.phase_times


def test_topo_bcast_starts_fewer_flows_on_uplinks_at_similar_cost():
    """The rack hierarchy crosses the spine with one stream per rack pair
    instead of per node pair (fewer, larger flows — a non-blocking ring
    moves the same bytes, so latency stays comparable), and only rack
    leaders touch the uplinks."""

    def run(rack_aware: bool):
        job = MpiJob(128, cluster_spec=RACKED, collectives=CollectiveEngine())

        def program(ctx):
            if rack_aware:
                yield from ctx.bcast(1 << 20)
            else:
                from repro.collectives import mc_bcast
                yield from mc_bcast(ctx, 1 << 20, 0, ctx.world, 0)

        result = job.run(program)
        uplink_flows = sum(
            n for name, n in job.net.fabric.link_flows.items()
            if name.startswith("rack_up")
        )
        return result.duration_s, uplink_flows

    t_topo, flows_topo = run(True)
    t_flat, flows_flat = run(False)
    assert flows_topo < flows_flat
    assert t_topo < t_flat * 1.5  # same byte volume over the spine


def test_power_topo_bcast_saves_power():
    results = {}
    for mode in PowerMode:
        job = rack_job(mode)

        def program(ctx):
            yield from ctx.bcast(1 << 20)

        results[mode] = job.run(program)
    assert (
        results[PowerMode.PROPOSED].average_power_w
        < results[PowerMode.DVFS].average_power_w
        < results[PowerMode.NONE].average_power_w
    )
    # Overhead bounded.
    assert (
        results[PowerMode.PROPOSED].duration_s
        < results[PowerMode.NONE].duration_s * 1.4
    )


def test_power_topo_bcast_restores_state():
    job = rack_job(PowerMode.PROPOSED)

    def program(ctx):
        yield from ctx.bcast(1 << 20)

    job.run(program)
    for core in job.cluster.cores:
        assert core.tstate == 0
        assert core.frequency_ghz == pytest.approx(2.4)


def test_topo_reduce_through_registry():
    for mode in PowerMode:
        job = rack_job(mode)

        def program(ctx):
            yield from ctx.reduce(1 << 18)

        job.run(program)
        assert job.engine.quiescent()


def test_topo_scatter_gather_roundtrip():
    job = rack_job()

    def program(ctx):
        seq = ctx.next_seq(ctx.world)
        yield from topo_scatter(ctx, 4096, 0, ctx.world, seq)
        seq = ctx.next_seq(ctx.world)
        yield from topo_gather(ctx, 4096, 0, ctx.world, seq)

    job.run(program)
    assert job.engine.quiescent()


def test_topo_requires_root_zero():
    job = rack_job()

    def program(ctx):
        seq = ctx.next_seq(ctx.world)
        yield from topo_scatter(ctx, 4096, 5, ctx.world, seq)

    with pytest.raises(ValueError):
        job.run(program)


def test_registry_falls_back_for_nonzero_root_on_racks():
    """bcast(root=5) on a racked cluster uses the mc path, still correct."""
    job = rack_job()

    def program(ctx):
        yield from ctx.bcast(1 << 16, root=5)

    job.run(program)
    assert job.engine.quiescent()
