"""Tests for the ADAPTIVE power policy (extension beyond the paper)."""

import pytest

from repro.collectives import CollectiveConfig, CollectiveEngine, PowerMode
from repro.mpi import MpiJob, run_collective_once


def run_adaptive(op, nbytes, **cfg_kw):
    engine = CollectiveEngine(
        CollectiveConfig(power_mode=PowerMode.ADAPTIVE, **cfg_kw)
    )
    return run_collective_once(op, nbytes, 64, collectives=engine)


def test_adaptive_skips_small_alltoall():
    r = run_adaptive("alltoall", 16 << 10, adaptive_gain=1e6)
    assert r.stats.dvfs_transitions == 0
    assert r.stats.throttle_transitions == 0


def test_adaptive_engages_large_alltoall():
    r = run_adaptive("alltoall", 1 << 20)
    assert r.stats.throttle_transitions > 0  # PROPOSED path taken


def test_adaptive_matches_none_at_small_sizes():
    r_none = run_collective_once("alltoall", 16 << 10, 64)
    r_adaptive = run_adaptive("alltoall", 16 << 10, adaptive_gain=1e6)
    assert r_adaptive.duration_s == pytest.approx(r_none.duration_s)


def test_adaptive_matches_proposed_at_large_sizes():
    from repro.collectives import CollectiveConfig as CC

    r_prop = run_collective_once(
        "alltoall", 1 << 20, 64,
        collectives=CollectiveEngine(CC(power_mode=PowerMode.PROPOSED)),
    )
    r_adaptive = run_adaptive("alltoall", 1 << 20)
    assert r_adaptive.duration_s == pytest.approx(r_prop.duration_s)
    assert r_adaptive.energy_j == pytest.approx(r_prop.energy_j)


def test_adaptive_bcast_threshold_behaviour():
    small = run_adaptive("bcast", 16 << 10)
    large = run_adaptive("bcast", 1 << 20)
    assert small.stats.throttle_transitions == 0
    assert large.stats.throttle_transitions > 0


def test_adaptive_gain_knob():
    eager = run_adaptive("bcast", 64 << 10, adaptive_gain=1.0)
    conservative = run_adaptive("bcast", 64 << 10, adaptive_gain=1e6)
    assert eager.stats.throttle_transitions > 0
    assert conservative.stats.throttle_transitions == 0


def test_adaptive_never_loses_energy_across_sizes():
    """The point of the policy: at every size, adaptive energy is within a
    hair of min(none, proposed)."""
    for nbytes in (16 << 10, 256 << 10, 1 << 20):
        e_none = run_collective_once("alltoall", nbytes, 64).energy_j
        e_prop = run_collective_once(
            "alltoall", nbytes, 64,
            collectives=CollectiveEngine(
                CollectiveConfig(power_mode=PowerMode.PROPOSED)
            ),
        ).energy_j
        e_adap = run_adaptive("alltoall", nbytes).energy_j
        assert e_adap <= min(e_none, e_prop) * 1.02


def test_adaptive_in_app_context():
    """Mixed-size programs: small collectives run clean, big ones powered."""
    engine = CollectiveEngine(CollectiveConfig(power_mode=PowerMode.ADAPTIVE))
    job = MpiJob(64, collectives=engine)

    def program(ctx):
        yield from ctx.allreduce(2048)     # below power_min_bytes
        yield from ctx.alltoall(512 << 10) # engages
        yield from ctx.bcast(16 << 10)     # predicted too short

    r = job.run(program)
    assert r.stats.throttle_transitions > 0
    assert job.engine.quiescent()
