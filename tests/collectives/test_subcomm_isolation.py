"""Regression tests: composed collectives draw sequence numbers from each
sub-communicator's own counter, so their internal messages can never
cross-match with user-level collectives issued directly on the same
sub-communicator."""

from repro.mpi import MpiJob
from repro.network import NetworkSpec

IDEAL_NET = NetworkSpec(flow_congestion=0.0)


def test_world_bcast_interleaved_with_leader_comm_bcast():
    job = MpiJob(16, network_spec=IDEAL_NET)

    def program(ctx):
        # mc_bcast internally runs a scatter-allgather on the leader comm.
        yield from ctx.bcast(64 << 10)
        # Direct user collective on the same leader comm right after.
        if ctx.is_node_leader():
            yield from ctx.bcast(32 << 10, root=0, comm=ctx.leader_comm)
        # And another composed one.
        yield from ctx.bcast(64 << 10)

    job.run(program)
    assert job.engine.quiescent()


def test_world_reduce_interleaved_with_shared_comm_traffic():
    job = MpiJob(16, network_spec=IDEAL_NET)

    def program(ctx):
        yield from ctx.reduce(16 << 10)
        # User messages on the shared-memory communicator.
        shared = ctx.shared_comm
        me = shared.rank_of(ctx.rank)
        partner = me ^ 1
        yield from ctx.sendrecv(
            dst=partner, nbytes=4096, tag=500, comm=shared
        )
        yield from ctx.reduce(16 << 10)

    job.run(program)
    assert job.engine.quiescent()


def test_unbalanced_leader_comm_usage_stays_consistent():
    """Leaders advance the leader-comm counter inside composed collectives;
    repeated composed + direct usage must stay aligned."""
    job = MpiJob(16, network_spec=IDEAL_NET)

    def program(ctx):
        for _ in range(3):
            yield from ctx.bcast(32 << 10)
            if ctx.is_node_leader():
                yield from ctx.allgather(8 << 10, comm=ctx.leader_comm)

    job.run(program)
    assert job.engine.quiescent()
