"""Cross-product sanity matrix: every collective x every power mode must
complete, leave the engine quiescent, and restore all core state."""

import pytest

from repro.collectives import CollectiveConfig, CollectiveEngine, PowerMode
from repro.mpi import MpiJob

OPS = [
    ("alltoall", (64 << 10,)),
    ("alltoallv", ([64 << 10] * 16,)),
    ("bcast", (64 << 10,)),
    ("reduce", (64 << 10,)),
    ("allreduce", (64 << 10,)),
    ("allgather", (64 << 10,)),
    ("scatter", (64 << 10,)),
    ("gather", (64 << 10,)),
    ("reduce_scatter", (64 << 10,)),
    ("scan", (64 << 10,)),
    ("barrier", ()),
]


@pytest.mark.parametrize("op,args", OPS, ids=[o for o, _ in OPS])
@pytest.mark.parametrize("mode", list(PowerMode), ids=[m.value for m in PowerMode])
def test_collective_mode_matrix(op, args, mode):
    job = MpiJob(16, collectives=CollectiveEngine(CollectiveConfig(power_mode=mode)))

    def program(ctx):
        a = args
        if op == "alltoallv":
            a = ([64 << 10] * ctx.size,)
        yield from getattr(ctx, op)(*a)

    result = job.run(program)
    assert job.engine.quiescent()
    assert result.duration_s > 0
    for rank in range(16):
        core = job.affinity.core_of(rank)
        assert core.tstate == 0, f"{op}/{mode.value} left T{core.tstate}"
        assert core.frequency_ghz == pytest.approx(2.4), f"{op}/{mode.value}"
