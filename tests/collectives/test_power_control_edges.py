"""Edge cases of the T-state choreography (ISSUE 2, satellite 3).

Covers overlapping DVFS down/up pairs (transitions are absolute state
writes, not reference counts) and the T_PARTIAL -> T_FULL restore
ordering of the shared-memory power-aware algorithms.
"""

import pytest

from repro.cluster import ClusterSpec, ThrottleGranularity
from repro.collectives import CollectiveConfig, CollectiveEngine, PowerMode
from repro.collectives.power_control import (
    T_FULL,
    T_LOW,
    T_PARTIAL,
    dvfs_down,
    dvfs_up,
)
from repro.mpi import MpiJob
from repro.sim import RecordingTracer, SimSession

PAPER_RANKS = 64


def _traced_job(n_ranks=PAPER_RANKS, mode=PowerMode.PROPOSED):
    tracer = RecordingTracer()
    session = SimSession(tracer=tracer)
    job = MpiJob(
        n_ranks,
        session=session,
        collectives=CollectiveEngine(CollectiveConfig(power_mode=mode)),
    )
    return job, tracer


def _per_core_chains(tracer, record_type):
    """Group power-state records by core and return their (old, new) chains."""
    chains = {}
    for r in tracer.of_type(record_type):
        chains.setdefault(r.data["core"], []).append((r.data["old"], r.data["new"]))
    return chains


def _assert_chains_consistent(chains):
    """Each core's old value must match the previous record's new value —
    an absolute-state audit trail with no lost updates."""
    for core_id, chain in chains.items():
        for prev, cur in zip(chain, chain[1:]):
            assert prev[1] == cur[0], f"core {core_id}: broken chain {chain}"


def _leader_socket_ids(job):
    """Socket ids that host a node leader rank."""
    aff = job.affinity
    return {
        aff.core_of(aff.node_leader(node_id)).socket_id
        for node_id in range(aff.n_nodes_used)
    }


# -- overlapping DVFS pairs --------------------------------------------------
def test_overlapping_dvfs_pairs_are_absolute():
    """Two nested downs + one up must land at fmax: DVFS writes absolute
    P-states, not a depth counter, so an overlap cannot strand fmin."""
    job, _ = _traced_job(n_ranks=8)

    def program(ctx):
        yield from dvfs_down(ctx)
        yield from dvfs_down(ctx)  # overlap: already at fmin
        yield from dvfs_up(ctx)

    job.run(program)
    for core in job.cluster.cores:
        assert core.frequency_ghz == core.spec.fmax


def test_redundant_dvfs_emits_no_state_change():
    """The second down of an overlapping pair is a silent no-op at the
    state layer: exactly one fmax->fmin and one fmin->fmax per core."""
    job, tracer = _traced_job(n_ranks=8)

    def program(ctx):
        yield from dvfs_down(ctx)
        yield from dvfs_down(ctx)
        yield from dvfs_up(ctx)
        yield from dvfs_up(ctx)

    job.run(program)
    chains = _per_core_chains(tracer, "core.frequency")
    _assert_chains_consistent(chains)
    spec = job.cluster.cores[0].spec
    for chain in chains.values():
        assert chain == [(spec.fmax, spec.fmin), (spec.fmin, spec.fmax)]


def test_reasserting_throttle_level_is_free():
    """ctx.throttle is idempotent: re-asserting the current level costs
    neither time nor a transition (power_shm relies on this when several
    ranks of one socket all issue the same level)."""
    job, _ = _traced_job(n_ranks=8)
    times = []

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.throttle(T_LOW)
            times.append(ctx.env.now)
            yield from ctx.throttle(T_LOW)  # no-op: same level
            times.append(ctx.env.now)
            yield from ctx.throttle(T_FULL)

    job.run(program)
    assert times[0] == times[1]
    assert job.stats.throttle_transitions == 2  # down + restore only


# -- shared-memory choreography (T_PARTIAL vs T_LOW) -------------------------
@pytest.mark.parametrize("op", ["bcast", "reduce"])
def test_shm_network_phase_partial_vs_full_throttle(op):
    """§V-B: during the network phase the leader's socket sits at T_PARTIAL
    (never deeper — the leader is moving data) while the other socket
    drops to T_LOW; both restore to T_FULL afterwards."""
    job, tracer = _traced_job()

    def program(ctx):
        yield from getattr(ctx, op)(256 << 10)

    job.run(program)
    chains = _per_core_chains(tracer, "core.tstate")
    _assert_chains_consistent(chains)
    assert chains, "proposed shm collective must throttle"
    leader_sockets = _leader_socket_ids(job)
    core_by_id = {c.core_id: c for c in job.cluster.cores}
    saw_partial = saw_low = False
    for core_id, chain in chains.items():
        levels = {new for _, new in chain}
        if core_by_id[core_id].socket_id in leader_sockets:
            # The leader's package: partial throttle only.
            assert levels <= {T_PARTIAL, T_FULL}, (core_id, chain)
            saw_partial = saw_partial or T_PARTIAL in levels
        else:
            assert levels <= {T_LOW, T_FULL}, (core_id, chain)
            saw_low = saw_low or T_LOW in levels
        # Restore ordering: the last write returns the core to T_FULL.
        assert chain[-1][1] == T_FULL
    assert saw_partial and saw_low
    for core in job.cluster.cores:
        assert core.tstate == T_FULL
        assert core.frequency_ghz == core.spec.fmax


@pytest.mark.parametrize("op", ["bcast", "reduce"])
def test_shm_restore_happens_before_intra_node_phase_ends(op):
    """T_PARTIAL -> T_FULL must precede the final DVFS restore: the
    intra-node fan-out runs unthrottled (still at fmin), so per core the
    last tstate record is older than the last frequency record."""
    job, tracer = _traced_job()

    def program(ctx):
        yield from getattr(ctx, op)(256 << 10)

    job.run(program)
    last_tstate = {}
    for r in tracer.of_type("core.tstate"):
        last_tstate[r.data["core"]] = r.t
    last_freq = {}
    for r in tracer.of_type("core.frequency"):
        last_freq[r.data["core"]] = r.t
    assert last_tstate
    for core_id, t_restore in last_tstate.items():
        assert t_restore <= last_freq[core_id], (
            f"core {core_id}: unthrottle at {t_restore} after "
            f"final DVFS restore at {last_freq[core_id]}"
        )


def test_back_to_back_proposed_collectives_restore_cleanly():
    """Consecutive shared-memory collectives re-enter the choreography
    immediately after a restore; every overlap must still resolve to a
    clean T_FULL/fmax end state with consistent per-core audit chains."""
    job, tracer = _traced_job()

    def program(ctx):
        yield from ctx.bcast(128 << 10)
        yield from ctx.reduce(128 << 10)
        yield from ctx.bcast(64 << 10)

    job.run(program)
    for record_type in ("core.tstate", "core.frequency"):
        chains = _per_core_chains(tracer, record_type)
        _assert_chains_consistent(chains)
    for core in job.cluster.cores:
        assert core.tstate == T_FULL
        assert core.frequency_ghz == core.spec.fmax


def test_core_granular_shm_leaves_leader_untouched():
    """On core-granular hardware (§VI-B2) the leader core itself is never
    throttled; every non-leader core drops to T_LOW."""
    spec = ClusterSpec.with_shape(
        nodes=8, sockets=2, cores_per_socket=4,
        granularity=ThrottleGranularity.CORE,
    )
    tracer = RecordingTracer()
    session = SimSession(cluster_spec=spec, tracer=tracer)
    job = MpiJob(
        PAPER_RANKS,
        session=session,
        collectives=CollectiveEngine(CollectiveConfig(power_mode=PowerMode.PROPOSED)),
    )

    def program(ctx):
        yield from ctx.bcast(256 << 10)

    job.run(program)
    aff = job.affinity
    leader_cores = {
        aff.core_of(aff.node_leader(node_id)).core_id
        for node_id in range(aff.n_nodes_used)
    }
    chains = _per_core_chains(tracer, "core.tstate")
    assert chains
    assert not leader_cores & set(chains), "leader cores must stay at T0"
    for chain in chains.values():
        assert chain[-1][1] == T_FULL
