"""Tests for the power-aware algorithms (§V-A, §V-B)."""

import pytest

from repro.cluster import AffinityPolicy, ClusterSpec, ThrottleGranularity
from repro.collectives import (
    CollectiveConfig,
    CollectiveEngine,
    PowerMode,
    supports_power_alltoall,
)
from repro.mpi import MpiJob


def run_mode(op, nbytes, mode, n_ranks=64, **kw):
    job = MpiJob(
        n_ranks,
        collectives=CollectiveEngine(CollectiveConfig(power_mode=mode)),
        **kw,
    )

    def program(ctx):
        yield from getattr(ctx, op)(nbytes)

    return job.run(program)


# ------------------------------------------------------------ eligibility
def test_supports_power_alltoall_on_paper_shape():
    job = MpiJob(64)
    assert supports_power_alltoall(job.contexts[0], job.layout.world)


def test_power_alltoall_unsupported_on_scatter_affinity():
    job = MpiJob(64, affinity=AffinityPolicy.SCATTER)
    assert not supports_power_alltoall(job.contexts[0], job.layout.world)


def test_power_alltoall_unsupported_on_leader_comm():
    job = MpiJob(64)
    assert not supports_power_alltoall(job.contexts[0], job.layout.leaders)


def test_proposed_falls_back_gracefully_on_scatter_affinity():
    r = run_mode("alltoall", 1 << 16, PowerMode.PROPOSED, affinity=AffinityPolicy.SCATTER)
    # Fallback = DVFS wrap: frequency transitions happened, no throttles.
    assert r.stats.dvfs_transitions > 0
    assert r.stats.throttle_transitions == 0


# ------------------------------------------------------ alltoall behaviour
def test_proposed_alltoall_message_count_preserved():
    """The 4-phase schedule still exchanges with every peer exactly once."""
    n = 64
    r_default = run_mode("alltoall", 1 << 16, PowerMode.NONE, n)
    r_proposed = run_mode("alltoall", 1 << 16, PowerMode.PROPOSED, n)
    assert r_proposed.job.engine.messages_sent == r_default.job.engine.messages_sent


def test_proposed_alltoall_uses_throttling():
    r = run_mode("alltoall", 1 << 16, PowerMode.PROPOSED)
    assert r.stats.throttle_transitions > 0
    assert r.stats.dvfs_transitions == 128  # down + up on 64 cores


def test_alltoall_power_ordering_matches_fig7b():
    """Average power: default > freq-scaling > proposed (Fig 7b)."""
    p = {}
    for mode in PowerMode:
        r = run_mode("alltoall", 1 << 20, mode)
        p[mode] = r.average_power_w
    assert p[PowerMode.NONE] > p[PowerMode.DVFS] > p[PowerMode.PROPOSED]
    assert p[PowerMode.NONE] == pytest.approx(2300.0, rel=0.02)
    assert p[PowerMode.DVFS] == pytest.approx(1800.0, rel=0.02)
    assert p[PowerMode.PROPOSED] == pytest.approx(1630.0, rel=0.03)


def test_alltoall_performance_overhead_matches_fig7a():
    """Latency: power-aware within ~15 % of default; proposed ≈ DVFS."""
    t = {}
    for mode in PowerMode:
        t[mode] = run_mode("alltoall", 1 << 20, mode).duration_s
    assert t[PowerMode.DVFS] / t[PowerMode.NONE] < 1.15
    assert t[PowerMode.PROPOSED] / t[PowerMode.DVFS] < 1.10
    assert t[PowerMode.NONE] < t[PowerMode.DVFS]


def test_proposed_alltoall_restores_state():
    r = run_mode("alltoall", 1 << 16, PowerMode.PROPOSED)
    for core in r.job.cluster.cores:
        assert core.frequency_ghz == pytest.approx(2.4)
        assert core.tstate == 0


def test_proposed_alltoall_32_ranks():
    r = run_mode("alltoall", 1 << 16, PowerMode.PROPOSED, n_ranks=32)
    assert r.job.engine.messages_sent == 32 * 31
    assert r.job.engine.quiescent()


def test_proposed_alltoall_repeated_calls():
    job = MpiJob(
        64, collectives=CollectiveEngine(CollectiveConfig(power_mode=PowerMode.PROPOSED))
    )

    def program(ctx):
        for _ in range(3):
            yield from ctx.alltoall(1 << 16)

    r = job.run(program)
    assert r.job.engine.messages_sent == 3 * 64 * 63
    assert job.engine.quiescent()


def test_small_messages_bypass_power_machinery():
    r = run_mode("alltoall", 256, PowerMode.PROPOSED)
    assert r.stats.dvfs_transitions == 0
    assert r.stats.throttle_transitions == 0


# ------------------------------------------------------ bcast / reduce
def test_bcast_power_ordering_matches_fig8b():
    p = {}
    for mode in PowerMode:
        r = run_mode("bcast", 1 << 20, mode)
        p[mode] = r.average_power_w
    assert p[PowerMode.NONE] > p[PowerMode.DVFS] > p[PowerMode.PROPOSED]


def test_bcast_overhead_matches_fig8a():
    """~15 % overhead at 1 MB; power variants close to each other."""
    t = {}
    for mode in PowerMode:
        t[mode] = run_mode("bcast", 1 << 20, mode).duration_s
    assert t[PowerMode.DVFS] / t[PowerMode.NONE] < 1.20
    assert t[PowerMode.PROPOSED] / t[PowerMode.NONE] < 1.20
    assert abs(t[PowerMode.PROPOSED] - t[PowerMode.DVFS]) / t[PowerMode.DVFS] < 0.08


def test_proposed_bcast_throttles_socket_b_fully():
    """During the network phase socket B reaches T7, socket A T4 (Fig 4)."""
    job = MpiJob(
        64, collectives=CollectiveEngine(CollectiveConfig(power_mode=PowerMode.PROPOSED))
    )
    core_b = job.affinity.core_of(4)  # socket B, node 0
    core_a = job.affinity.core_of(1)  # socket A non-leader
    leader = job.affinity.core_of(0)
    def program(ctx):
        if ctx.rank == 0:
            # Sample states mid-network-phase from the leader's perspective.
            pass
        yield from ctx.bcast(1 << 20)

    # Track max throttle level reached on each of the three cores.
    peaks = {"a": 0, "b": 0, "leader": 0}
    for name, core in (("a", core_a), ("b", core_b), ("leader", leader)):
        def listener(c, now, name=name):
            peaks[name] = max(peaks[name], c.tstate)
        core.add_listener(listener)

    job.run(program)
    # Listener sees pre-change state; also check final transitions happened.
    assert peaks["b"] >= 7 or core_b.tstate == 0  # reached T7 at some point
    r = job.stats
    assert r.throttle_transitions > 0


def test_proposed_reduce_completes_and_saves_power():
    t_none = run_mode("reduce", 1 << 20, PowerMode.NONE)
    t_prop = run_mode("reduce", 1 << 20, PowerMode.PROPOSED)
    assert t_prop.average_power_w < t_none.average_power_w
    assert t_prop.job.engine.quiescent()


def test_core_granularity_saves_more_than_socket():
    """§V-B: core-level throttling ⇒ more savings, less overhead."""
    results = {}
    for gran in (ThrottleGranularity.SOCKET, ThrottleGranularity.CORE):
        spec = ClusterSpec.with_shape(nodes=8, granularity=gran)
        r = run_mode("bcast", 1 << 20, PowerMode.PROPOSED, cluster_spec=spec)
        results[gran] = r
    sock = results[ThrottleGranularity.SOCKET]
    core = results[ThrottleGranularity.CORE]
    assert core.average_power_w < sock.average_power_w
    assert core.duration_s <= sock.duration_s * 1.02


def test_dvfs_wrap_restores_frequency():
    r = run_mode("bcast", 1 << 20, PowerMode.DVFS)
    for c in r.job.cluster.cores:
        assert c.frequency_ghz == pytest.approx(2.4)
