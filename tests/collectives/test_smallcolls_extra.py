"""Tests for reduce_scatter and scan."""

import pytest

from repro.mpi import MpiJob
from repro.network import NetworkSpec

IDEAL_NET = NetworkSpec(flow_congestion=0.0)


def run_op(op, nbytes, n=16):
    job = MpiJob(n, network_spec=IDEAL_NET)

    def program(ctx):
        yield from getattr(ctx, op)(nbytes)

    return job.run(program)


def test_reduce_scatter_message_count():
    r = run_op("reduce_scatter", 1 << 12)
    # Pairwise: P−1 sends per rank.
    assert r.job.engine.messages_sent == 16 * 15
    assert r.job.engine.quiescent()


def test_reduce_scatter_includes_combine_cost():
    fast = run_op("reduce_scatter", 1 << 10).duration_s
    slow = run_op("reduce_scatter", 1 << 16).duration_s
    assert slow > fast


def test_scan_chain_latency_proportional_to_ranks():
    t16 = run_op("scan", 4096, 16).duration_s
    t32 = run_op("scan", 4096, 32).duration_s
    # The chain serialises: doubling ranks roughly doubles the time.
    assert 1.6 < t32 / t16 < 2.6


def test_scan_single_rank_noop():
    r = run_op("scan", 4096, 8)  # one node, comm world of 8 → still chain
    assert r.duration_s > 0


def test_reduce_scatter_with_dvfs_mode():
    from repro.collectives import CollectiveConfig, CollectiveEngine, PowerMode

    job = MpiJob(
        16,
        network_spec=IDEAL_NET,
        collectives=CollectiveEngine(CollectiveConfig(power_mode=PowerMode.DVFS)),
    )

    def program(ctx):
        yield from ctx.reduce_scatter(1 << 16)

    r = job.run(program)
    assert r.stats.dvfs_transitions == 32
    for core in job.cluster.cores[:16]:
        assert core.frequency_ghz == pytest.approx(2.4)
