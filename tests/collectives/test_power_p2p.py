"""Tests for power-aware intra-node point-to-point (§VIII extension)."""

import pytest

from repro.collectives import (
    DEFAULT_P2P_POWER_THRESHOLD,
    power_aware_exchange,
    power_aware_recv,
    power_aware_send,
)
from repro.mpi import MpiJob


def run_pair(nbytes, use_power, partner=1):
    """Ranks 0 and `partner` exchange nbytes; returns JobResult."""
    job = MpiJob(16)

    def program(ctx):
        if ctx.rank == 0:
            if use_power:
                yield from power_aware_exchange(ctx, partner, nbytes)
            else:
                yield from ctx.sendrecv(dst=partner, nbytes=nbytes)
        elif ctx.rank == partner:
            if use_power:
                yield from power_aware_exchange(ctx, 0, nbytes)
            else:
                yield from ctx.sendrecv(dst=0, nbytes=nbytes)

    return job.run(program)


def test_large_intra_node_exchange_saves_energy():
    base = run_pair(4 << 20, use_power=False)
    power = run_pair(4 << 20, use_power=True)
    # The two active cores burn less energy...
    core_ids = [base.job.affinity.core_of(r).core_id for r in (0, 1)]
    base_e = sum(base.accountant.core_energy_j(c) for c in core_ids)
    power_e = sum(power.accountant.core_energy_j(c) for c in core_ids)
    assert power_e < base_e
    # ...at a modest slowdown (memcpy is partially memory-bound).
    assert power.duration_s / base.duration_s < 1.20


def test_small_messages_bypass_dvfs():
    r = run_pair(1024, use_power=True)
    assert r.stats.dvfs_transitions == 0


def test_inter_node_bypasses_dvfs():
    r = run_pair(4 << 20, use_power=True, partner=8)
    assert r.stats.dvfs_transitions == 0


def test_large_intra_engages_dvfs_and_restores():
    r = run_pair(4 << 20, use_power=True)
    assert r.stats.dvfs_transitions == 4  # down+up on both endpoints
    for rank in (0, 1):
        assert r.job.affinity.core_of(rank).frequency_ghz == pytest.approx(2.4)


def test_one_sided_send_recv_pair():
    job = MpiJob(16)
    got = {}

    def program(ctx):
        if ctx.rank == 0:
            yield from power_aware_send(ctx, dst=1, nbytes=1 << 20)
        elif ctx.rank == 1:
            got["msg"] = yield from power_aware_recv(ctx, src=0, nbytes_hint=1 << 20)

    r = job.run(program)
    assert got["msg"][2] == 1 << 20
    assert r.stats.dvfs_transitions == 4


def test_threshold_boundary():
    r_below = run_pair(DEFAULT_P2P_POWER_THRESHOLD - 1, use_power=True)
    r_at = run_pair(DEFAULT_P2P_POWER_THRESHOLD, use_power=True)
    assert r_below.stats.dvfs_transitions == 0
    assert r_at.stats.dvfs_transitions == 4


def test_shm_copy_factor_model():
    """Copy bandwidth degrades sub-linearly with frequency, linearly with
    duty cycle."""
    from repro.network import NetworkSpec

    spec = NetworkSpec()
    full = spec.shm_copy_factor(1.0, 1.0)
    at_fmin = spec.shm_copy_factor(1.6 / 2.4, 1.0)
    throttled = spec.shm_copy_factor(1.0, 0.12)
    assert full == pytest.approx(1.0)
    assert at_fmin > 1.6 / 2.4  # softer than linear in f
    assert throttled == pytest.approx(0.12)
