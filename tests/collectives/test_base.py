"""Property tests for scheduling helpers (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import is_power_of_two, pairwise_partner, tag_for
from repro.collectives.power_alltoall import tournament_partner


# ----------------------------------------------------------- pairwise_partner
@given(
    size=st.integers(min_value=2, max_value=128),
    step=st.integers(min_value=1, max_value=127),
)
def test_pairwise_partner_is_symmetric(size, step):
    """If a sends to b at step i, then b receives from a at step i."""
    if step >= size:
        step = step % size
        if step == 0:
            step = 1
    for rank in range(size):
        send_to, _ = pairwise_partner(rank, size, step)
        _, recv_from = pairwise_partner(send_to, size, step)
        assert recv_from == rank


@given(size=st.sampled_from([2, 4, 8, 16, 32, 64]))
def test_pairwise_covers_all_peers_exactly_once(size):
    for rank in range(size):
        sends = set()
        for step in range(1, size):
            send_to, _ = pairwise_partner(rank, size, step)
            sends.add(send_to)
        assert sends == set(range(size)) - {rank}


@given(size=st.integers(min_value=3, max_value=65).filter(lambda n: n & (n - 1)))
def test_pairwise_non_pof2_covers_all_peers(size):
    for rank in (0, size // 2, size - 1):
        sends = {pairwise_partner(rank, size, s)[0] for s in range(1, size)}
        recvs = {pairwise_partner(rank, size, s)[1] for s in range(1, size)}
        assert sends == set(range(size)) - {rank}
        assert recvs == set(range(size)) - {rank}


def test_is_power_of_two():
    assert all(is_power_of_two(1 << k) for k in range(10))
    assert not any(is_power_of_two(n) for n in (0, 3, 5, 6, 7, 12, -4))


# ----------------------------------------------------------------- tag_for
def test_tag_for_disjoint_across_seq():
    assert tag_for(0, 100) != tag_for(1, 100)
    assert tag_for(1, 0) > tag_for(0, 65535)


def test_tag_for_rejects_out_of_range_step():
    with pytest.raises(ValueError):
        tag_for(0, -1)
    with pytest.raises(ValueError):
        tag_for(0, 1 << 16)


# -------------------------------------------------------- tournament_partner
@given(
    n_nodes=st.integers(min_value=2, max_value=33),
    rnd=st.integers(min_value=0, max_value=32),
)
@settings(max_examples=200)
def test_tournament_round_is_perfect_matching(n_nodes, rnd):
    rounds = n_nodes - 1 if n_nodes % 2 == 0 else n_nodes
    rnd = rnd % rounds
    partners = {}
    for node in range(n_nodes):
        partners[node] = tournament_partner(node, rnd, n_nodes)
    for node, p in partners.items():
        if p is None:
            continue
        assert p != node
        assert partners[p] == node  # symmetric pairing
    byes = sum(1 for p in partners.values() if p is None)
    assert byes == (0 if n_nodes % 2 == 0 else 1)


@given(n_nodes=st.integers(min_value=2, max_value=24))
def test_tournament_covers_every_pair_once(n_nodes):
    rounds = n_nodes - 1 if n_nodes % 2 == 0 else n_nodes
    seen = set()
    for rnd in range(rounds):
        for node in range(n_nodes):
            p = tournament_partner(node, rnd, n_nodes)
            if p is not None and node < p:
                pair = (node, p)
                assert pair not in seen
                seen.add(pair)
    assert len(seen) == n_nodes * (n_nodes - 1) // 2


def test_tournament_validation():
    with pytest.raises(ValueError):
        tournament_partner(0, 99, 8)
    assert tournament_partner(0, 0, 1) is None
