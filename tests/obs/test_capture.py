"""Per-cell capture/replay: hermeticity, serializability, fidelity."""

import json

from repro.bench.profile import ACTIVE_PROFILES, SelfProfile
from repro.mpi.job import JOB_OBSERVERS, MpiJob
from repro.obs.capture import CaptureConfig, CellMetrics, capture_cell, replay_payload
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.sim.session import SimSession
from repro.sim.trace import RecordingTracer, default_tracer, use_tracer


def _run_once():
    def program(ctx):
        yield from ctx.alltoall(16 << 10)

    MpiJob(8, session=SimSession()).run(program)


class TestCaptureConfig:
    def test_falsy_when_everything_off(self):
        assert not CaptureConfig()
        assert CaptureConfig(trace=True)
        assert CaptureConfig(metrics=True)
        assert CaptureConfig(profile=True)

    def test_round_trip(self):
        cfg = CaptureConfig(trace=True, profile=True)
        assert CaptureConfig.from_dict(cfg.to_dict()) == cfg

    def test_from_ambient_defaults_off(self):
        assert not CaptureConfig.from_ambient()

    def test_from_ambient_sees_scopes(self):
        with use_tracer(RecordingTracer()):
            assert CaptureConfig.from_ambient().trace
        reg = MetricsRegistry()
        with use_metrics(reg):
            assert CaptureConfig.from_ambient().metrics
        with SelfProfile():
            assert CaptureConfig.from_ambient().profile
        assert not CaptureConfig.from_ambient()


class TestCaptureCell:
    def test_captures_records_and_metrics(self):
        cfg = CaptureConfig(trace=True, metrics=True)
        with capture_cell(cfg) as cap:
            _run_once()
        payload = cap.seal()
        assert payload["records"], "trace records must be captured"
        assert all({"t", "type"} <= set(r) for r in payload["records"])
        assert payload["metrics"]["counters"]["net.flows_started"] > 0
        assert payload["profile"] is None
        json.dumps(payload)  # plain data end to end

    def test_captures_profile_samples(self):
        with capture_cell(CaptureConfig(profile=True)) as cap:
            _run_once()
        payload = cap.seal()
        assert payload["records"] is None
        samples = payload["profile"]
        assert len(samples) == 1
        assert samples[0]["n_ranks"] == 8
        assert samples[0]["events_processed"] > 0

    def test_shadows_ambient_scopes(self):
        # An outer tracer/profile must see NOTHING from inside the
        # capture (the payload is replayed instead — otherwise inline
        # runs double-collect).
        outer_tracer = RecordingTracer()
        outer_profile = SelfProfile()
        with use_tracer(outer_tracer), outer_profile:
            with capture_cell(CaptureConfig(trace=True, profile=True)) as cap:
                _run_once()
        assert len(outer_tracer.records) == 0
        assert outer_profile.samples == []
        assert cap.seal()["records"]

    def test_restores_ambient_state(self):
        tracer = RecordingTracer()
        with use_tracer(tracer), SelfProfile():
            observers_before = JOB_OBSERVERS[:]
            with capture_cell(CaptureConfig(trace=True)):
                assert default_tracer() is not tracer
                assert JOB_OBSERVERS == []
            assert default_tracer() is tracer
            assert JOB_OBSERVERS == observers_before

    def test_cell_metrics_round_trip(self):
        cm = CellMetrics(records=[{"t": 0.0, "type": "mark", "name": "x"}],
                         metrics={"counters": {"a": 1}},
                         profile=None)
        assert CellMetrics.from_dict(cm.to_dict()) == cm


class TestReplay:
    def test_replay_none_is_noop(self):
        replay_payload(None)
        replay_payload({})

    def test_replay_records_into_ambient_tracer(self):
        tracer = RecordingTracer()
        payload = {"records": [
            {"t": 0.5, "type": "mark", "name": "x", "extra": 1},
            {"t": 1.0, "type": "flow.start", "flow": "f", "bytes": 2,
             "links": [], "seq": 0},
        ]}
        with use_tracer(tracer):
            replay_payload(payload)
        assert len(tracer.records) == 2
        assert tracer.records[0].t == 0.5
        assert tracer.records[0].data == {"name": "x", "extra": 1}
        assert tracer.records[1].type == "flow.start"

    def test_replay_skips_disabled_tracer(self):
        replay_payload({"records": [{"t": 0.0, "type": "mark", "name": "x"}]})

    def test_replay_metrics_into_ambient_registry(self):
        reg = MetricsRegistry()
        payload = {"metrics": {"counters": {"c": 2.0}, "gauges": {"g": 1.0},
                               "series": {}}}
        with use_metrics(reg):
            replay_payload(payload)
        assert reg.snapshot()["counters"]["c"] == 2.0

    def test_replay_profile_into_active_profiles(self):
        payload = {"profile": [{
            "n_ranks": 4, "sim_time_s": 1.0, "wall_time_s": 0.5,
            "events_processed": 10, "rerate_calls": 1, "flows_rerated": 2,
        }]}
        with SelfProfile() as prof:
            replay_payload(payload)
        assert len(prof.samples) == 1
        assert prof.samples[0].n_ranks == 4
        assert not ACTIVE_PROFILES

    def test_capture_then_replay_equals_direct_observation(self):
        # The whole point: capture+replay reproduces what a direct run
        # under the scope would have recorded.
        direct = RecordingTracer()
        with use_tracer(direct):
            _run_once()

        with capture_cell(CaptureConfig(trace=True)) as cap:
            _run_once()
        replayed = RecordingTracer()
        with use_tracer(replayed):
            replay_payload(cap.seal())

        assert len(direct.records) == len(replayed.records)
        assert [(r.t, r.type, r.data) for r in direct.records] == \
               [(r.t, r.type, r.data) for r in replayed.records]
