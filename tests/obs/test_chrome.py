"""Chrome trace-event exporter: structure, pairing, round-trip."""

import io
import json

import pytest

from repro.mpi.job import MpiJob
from repro.obs.chrome import chrome_trace, export_chrome_trace, read_jsonl_records
from repro.sim.session import SimSession
from repro.sim.trace import JsonlTracer


def _traced_run(n_ranks=8, nbytes=16 << 10):
    """Run one collective under a JSONL tracer; return the record dicts."""
    buf = io.StringIO()
    tracer = JsonlTracer(buf, flush_every=1)

    def program(ctx):
        yield from ctx.alltoall(nbytes)

    session = SimSession(tracer=tracer)
    MpiJob(n_ranks, session=session).run(program)
    tracer.close()
    buf.seek(0)
    return list(read_jsonl_records(buf))


def test_empty_trace():
    trace = chrome_trace([])
    # Metadata only; still a loadable document.
    assert all(e["ph"] == "M" for e in trace["traceEvents"])
    json.dumps(trace)


def test_round_trip_structure():
    records = _traced_run()
    assert records, "the traced run must produce records"

    # Satellite check: every flow.start pairs 1:1 with a flow.finish by seq.
    start_seqs = [r["seq"] for r in records if r["type"] == "flow.start"]
    finish_seqs = [r["seq"] for r in records if r["type"] == "flow.finish"]
    assert start_seqs, "alltoall must start flows"
    assert sorted(start_seqs) == sorted(finish_seqs)
    assert len(set(start_seqs)) == len(start_seqs)

    trace = chrome_trace(records)
    events = trace["traceEvents"]
    json.dumps(trace)  # serializable document

    # Every non-metadata event must carry the mandatory TEF keys.
    body = [e for e in events if e["ph"] != "M"]
    assert body
    for e in body:
        assert {"ph", "pid", "tid", "ts", "name"} <= set(e)
        assert e["ts"] >= 0

    # Chrome timestamps come out monotonically non-decreasing.
    ts = [e["ts"] for e in body]
    assert ts == sorted(ts)

    # One complete flow slice per flow.finish record.
    flow_slices = [e for e in body if e.get("cat") == "flow"]
    assert len(flow_slices) == len(finish_seqs)
    assert sorted(e["args"]["seq"] for e in flow_slices) == sorted(finish_seqs)

    # Durations in the slices equal the simulated durations (in us).
    by_seq = {r["seq"]: r for r in records if r["type"] == "flow.finish"}
    for e in flow_slices:
        assert e["dur"] == pytest.approx(by_seq[e["args"]["seq"]]["duration"] * 1e6)

    # Rank tracks exist and are named via metadata.
    thread_names = [
        e["args"]["name"] for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    assert any(name.startswith("rank") for name in thread_names)


def test_overlapping_flows_get_distinct_lanes():
    records = [
        {"t": 0.0, "type": "flow.start", "flow": "a", "bytes": 10, "links": [], "seq": 0},
        {"t": 0.0, "type": "flow.start", "flow": "b", "bytes": 10, "links": [], "seq": 1},
        {"t": 1.0, "type": "flow.finish", "flow": "a", "bytes": 10, "start": 0.0,
         "links": [], "seq": 0, "delivered": 10, "duration": 1.0},
        {"t": 1.0, "type": "flow.finish", "flow": "b", "bytes": 10, "start": 0.0,
         "links": [], "seq": 1, "delivered": 10, "duration": 1.0},
    ]
    trace = chrome_trace(records)
    lanes = {e["args"]["seq"]: e["tid"] for e in trace["traceEvents"]
             if e.get("cat") == "flow"}
    assert lanes[0] != lanes[1]


def test_sequential_flows_share_a_lane():
    records = [
        {"t": 1.0, "type": "flow.finish", "flow": "a", "bytes": 10, "start": 0.0,
         "links": [], "seq": 0, "delivered": 10, "duration": 1.0},
        {"t": 3.0, "type": "flow.finish", "flow": "b", "bytes": 10, "start": 2.0,
         "links": [], "seq": 1, "delivered": 10, "duration": 1.0},
    ]
    trace = chrome_trace(records)
    lanes = {e["args"]["seq"]: e["tid"] for e in trace["traceEvents"]
             if e.get("cat") == "flow"}
    assert lanes[0] == lanes[1] == 0


def test_counters_and_instants():
    records = [
        {"t": 0.0, "type": "core.frequency", "core": 0, "node": 0,
         "old": 2.4, "new": 0.8},
        {"t": 0.1, "type": "core.tstate", "core": 0, "node": 0, "old": 0, "new": 7},
        {"t": 0.2, "type": "fault.link", "links": ["x"], "factor": 0.5},
        {"t": 0.3, "type": "mark", "name": "governor.slack", "core": 0,
         "wait_s": 1e-4, "ewma_s": 2e-4},
    ]
    trace = chrome_trace(records)
    body = [e for e in trace["traceEvents"] if e["ph"] != "M"]
    names = {e["name"] for e in body}
    assert "mean_frequency_ghz" in names
    assert "throttled_cores" in names
    assert "fault.link" in names
    assert "slack_ewma_us" in names
    slack = next(e for e in body if e["name"] == "slack_ewma_us")
    assert slack["args"]["value"] == pytest.approx(200.0)


def test_read_jsonl_tolerates_torn_tail():
    fh = io.StringIO('{"t": 0.0, "type": "mark", "name": "a"}\n{"t": 1.0, "ty')
    records = list(read_jsonl_records(fh))
    assert len(records) == 1


def test_read_jsonl_rejects_mid_file_corruption():
    fh = io.StringIO('not json\n{"t": 0.0, "type": "mark", "name": "a"}\n')
    with pytest.raises(ValueError, match="line 1"):
        read_jsonl_records(fh)


def test_export_chrome_trace(tmp_path):
    src = tmp_path / "run.jsonl"
    with JsonlTracer(str(src), flush_every=1) as tracer:
        tracer.mark(0.0, "begin")
        tracer.flow_start(0.0, "f", 10.0, ["l"], seq=0)
        tracer.flow_finish(1.0, "f", 10.0, 0.0, ["l"], seq=0)
    dst = tmp_path / "run.chrome.json"
    info = export_chrome_trace(str(src), str(dst))
    assert info["records"] == 3
    doc = json.loads(dst.read_text())
    assert "traceEvents" in doc
    assert info["events"] == len(doc["traceEvents"])


def test_job_lanes_and_arbiter_counters():
    records = [
        {"t": 0.0, "type": "mark", "name": "job.begin", "job": 0,
         "node_offset": 0, "nodes": 2, "ranks": 16},
        {"t": 0.0, "type": "mark", "name": "job.begin", "job": 1,
         "node_offset": 2, "nodes": 2, "ranks": 16},
        {"t": 0.001, "type": "mark", "name": "arbiter.tick",
         "cap_w": 1000.0, "budget_w": 250.0, "donors": 1},
        {"t": 0.002, "type": "mark", "name": "job.end", "job": 0,
         "node_offset": 0, "energy_j": 12.5},
        {"t": 0.003, "type": "mark", "name": "job.end", "job": 1,
         "node_offset": 2, "energy_j": 30.0},
    ]
    trace = chrome_trace(records)
    events = trace["traceEvents"]
    jobs = [e for e in events if e.get("cat") == "job"]
    assert [e["name"] for e in jobs] == ["job@node0", "job@node2"]
    # Distinct lanes, begin args merged with end args.
    assert {e["tid"] for e in jobs} == {0, 1}
    assert jobs[0]["dur"] == pytest.approx(2000.0)  # 2 ms in us
    assert jobs[0]["args"]["ranks"] == 16
    assert jobs[0]["args"]["energy_j"] == 12.5
    counters = {e["name"] for e in events if e["ph"] == "C"}
    assert {"arbiter_budget_w", "arbiter_donors"} <= counters
    # The jobs process is named only when job lanes exist.
    meta = [e for e in events if e["ph"] == "M" and e["pid"] == 4]
    names = {e["args"]["name"] for e in meta}
    assert {"jobs", "job@node0", "job@node2"} <= names
