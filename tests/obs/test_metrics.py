"""MetricsRegistry / SeriesStats / MetricsTracer behaviour."""

import json

import pytest

from repro.mpi.job import MpiJob
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsTracer,
    SeriesStats,
    ambient_metrics_registry,
    use_metrics,
)
from repro.sim.session import SimSession
from repro.sim.trace import NULL_TRACER, TeeTracer


def _program(ctx):
    yield from ctx.alltoall(16 << 10)


def _run_once():
    session = SimSession()
    job = MpiJob(8, session=session)
    job.run(_program)
    return session


class TestSeriesStats:
    def test_empty(self):
        s = SeriesStats()
        assert s.n == 0
        assert s.mean == 0.0
        assert s.time_weighted == 0.0

    def test_single_sample(self):
        s = SeriesStats()
        s.observe(1.0, 5.0)
        assert s.n == 1
        assert s.vmin == s.vmax == 5.0
        assert s.mean == 5.0
        # No span covered yet: twa falls back to the last value.
        assert s.time_weighted == 5.0

    def test_time_weighted_average(self):
        s = SeriesStats()
        # value 2 for 1s, then value 4 for 3s => twa = (2*1 + 4*3)/4 = 3.5
        s.observe(0.0, 2.0)
        s.observe(1.0, 4.0)
        s.observe(4.0, 0.0)
        assert s.span == pytest.approx(4.0)
        assert s.time_weighted == pytest.approx(3.5)
        assert s.mean == pytest.approx(2.0)

    def test_merge_equals_concatenation(self):
        samples = [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0), (3.5, 5.0), (4.0, 0.5)]
        whole = SeriesStats()
        for t, v in samples:
            whole.observe(t, v)

        first, second = SeriesStats(), SeriesStats()
        for t, v in samples[:2]:
            first.observe(t, v)
        for t, v in samples[2:]:
            second.observe(t, v)
        # Merging loses the inter-chunk rectangle (each cell is its own
        # clock segment), so compare the merge-stable accumulators.
        first.merge(second.to_dict())
        assert first.n == whole.n
        assert first.vmin == whole.vmin
        assert first.vmax == whole.vmax
        assert first.vsum == pytest.approx(whole.vsum)
        assert first.last_v == whole.last_v
        assert first.last_t == whole.last_t

    def test_merge_is_exact_for_serialized_chunks(self):
        # The runner contract: fold(snapshots) must not depend on how the
        # stream was chunked, only on chunk order.
        chunks = [[(0.0, 1.0), (0.5, 2.0)], [(0.0, 4.0)], [(0.0, 3.0), (2.0, 1.0)]]
        one = SeriesStats()
        for chunk in chunks:
            part = SeriesStats()
            for t, v in chunk:
                part.observe(t, v)
            one.merge(part.to_dict())

        two = SeriesStats()
        for chunk in chunks:
            part = SeriesStats()
            for t, v in chunk:
                part.observe(t, v)
            two.merge(part.to_dict())
        assert one.to_dict() == two.to_dict()

    def test_new_segment_on_clock_reset(self):
        s = SeriesStats()
        s.observe(0.0, 1.0)
        s.observe(2.0, 1.0)  # 2s span at value 1
        s.observe(0.5, 7.0)  # fresh simulation clock: no negative rectangle
        assert s.span == pytest.approx(2.0)
        assert s.integral == pytest.approx(2.0)
        assert s.vmax == 7.0


class TestRegistry:
    def test_counters_gauges_series(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2.5)
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", 3.0)
        reg.observe("s", 0.0, 1.0)
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 3.5
        assert snap["gauges"]["g"] == 3.0
        assert snap["series"]["s"]["n"] == 1

    def test_snapshot_is_json_able_and_sorted(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap["counters"]) == ["a", "z"]

    def test_merge_snapshot(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        b.set_gauge("g", 9.0)
        b.observe("s", 0.0, 4.0)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 9.0
        assert snap["series"]["s"]["mean"] == 4.0


class TestMetricsTracer:
    def test_flow_accounting(self):
        reg = MetricsRegistry()
        tr = MetricsTracer(reg)
        tr.flow_start(0.0, "f", 100.0, ["l"], seq=1)
        tr.flow_finish(2.0, "f", 100.0, 0.0, ["l"], seq=1)
        snap = reg.snapshot()
        assert snap["counters"]["net.flows_started"] == 1
        assert snap["counters"]["net.flows_finished"] == 1
        assert snap["counters"]["net.bytes_delivered"] == 100.0
        assert snap["series"]["net.active_flows"]["max"] == 1
        assert snap["series"]["net.flow_duration_s"]["mean"] == 2.0

    def test_power_state_tracking(self):
        reg = MetricsRegistry()
        tr = MetricsTracer(reg)
        tr.power_state(0.0, 0, 0, "frequency", 2.4, 0.8)
        tr.power_state(0.1, 1, 0, "frequency", 2.4, 2.4)
        tr.power_state(0.2, 0, 0, "tstate", 0, 7)
        tr.power_state(0.3, 0, 0, "tstate", 7, 0)
        snap = reg.snapshot()
        assert snap["counters"]["power.dvfs_transitions"] == 2
        assert snap["counters"]["power.tstate_transitions"] == 2
        assert snap["series"]["power.mean_frequency_ghz"]["last"] == 1.6
        assert snap["series"]["power.throttled_cores"]["max"] == 1
        assert snap["series"]["power.throttled_cores"]["last"] == 0

    def test_governor_slack_mark(self):
        reg = MetricsRegistry()
        tr = MetricsTracer(reg)
        tr.mark(1.0, "governor.slack", core=0, wait_s=1e-4, ewma_s=2e-4)
        tr.mark(1.0, "unrelated")
        snap = reg.snapshot()
        assert snap["series"]["governor.slack_ewma_s"]["last"] == 2e-4


class TestAmbientScope:
    def test_default_is_none(self):
        assert ambient_metrics_registry() is None

    def test_scope_installs_and_restores(self):
        reg = MetricsRegistry()
        with use_metrics(reg):
            assert ambient_metrics_registry() is reg
            with use_metrics(None):  # inner shadow disables
                assert ambient_metrics_registry() is None
            assert ambient_metrics_registry() is reg
        assert ambient_metrics_registry() is None

    def test_session_tees_into_registry(self):
        reg = MetricsRegistry()
        with use_metrics(reg):
            _run_once()
        snap = reg.snapshot()
        assert snap["counters"]["net.flows_started"] > 0
        assert snap["counters"]["records.process.resume"] > 0
        assert snap["gauges"]["sim.last_t"] > 0

    def test_no_scope_no_tee(self):
        session = SimSession()
        assert session.tracer is NULL_TRACER
        assert not isinstance(session.tracer, TeeTracer)

    def test_metrics_do_not_perturb_timeline(self):
        session = _run_once()
        bare_t = session.now
        reg = MetricsRegistry()
        with use_metrics(reg):
            session2 = _run_once()
        assert session2.now == bare_t

    def test_snapshot_contains_no_wall_clock(self):
        # Two separate runs of the same workload must snapshot
        # identically: everything derives from the simulated clock.
        snaps = []
        for _ in range(2):
            reg = MetricsRegistry()
            with use_metrics(reg):
                _run_once()
            snaps.append(json.dumps(reg.snapshot(), sort_keys=True))
        assert snaps[0] == snaps[1]
