"""End-to-end determinism and cross-layer integration properties.

The DESIGN.md guarantee: identical configurations produce identical
timelines — durations, energies, per-rank finish times, power traces.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import CollectiveConfig, CollectiveEngine, PowerMode
from repro.mpi import MpiJob


def _mixed_program(ops):
    def program(ctx):
        for op, nbytes in ops:
            yield from getattr(ctx, op)(nbytes)

    return program


OPS = st.lists(
    st.tuples(
        st.sampled_from(["alltoall", "bcast", "reduce", "allreduce", "allgather"]),
        st.sampled_from([256, 4 << 10, 64 << 10]),
    ),
    min_size=1,
    max_size=3,
)


@given(ops=OPS, mode=st.sampled_from(list(PowerMode)))
@settings(max_examples=10, deadline=None)
def test_job_runs_are_bit_identical(ops, mode):
    def run_once():
        job = MpiJob(
            16, collectives=CollectiveEngine(CollectiveConfig(power_mode=mode))
        )
        result = job.run(_mixed_program(ops))
        return (
            result.duration_s,
            result.energy_j,
            tuple(result.rank_finish_times),
            result.stats.dvfs_transitions,
            result.stats.throttle_transitions,
        )

    assert run_once() == run_once()


@given(ops=OPS)
@settings(max_examples=10, deadline=None)
def test_all_collectives_leave_engine_quiescent(ops):
    job = MpiJob(16)
    job.run(_mixed_program(ops))
    assert job.engine.quiescent()


def test_power_trace_deterministic():
    def run_once():
        job = MpiJob(
            64,
            collectives=CollectiveEngine(
                CollectiveConfig(power_mode=PowerMode.PROPOSED)
            ),
        )

        def program(ctx):
            yield from ctx.alltoall(256 << 10)

        result = job.run(program)
        trace = result.power_trace(interval_s=0.01)
        return trace.power_w.tolist()

    assert run_once() == run_once()


def test_energy_additive_across_iterations():
    """Energy of n identical collectives ≈ n x energy of one (steady
    state; the basis for app-profile extrapolation)."""

    def run(iterations):
        job = MpiJob(16)

        def program(ctx):
            for _ in range(iterations):
                yield from ctx.alltoall(64 << 10)

        return job.run(program)

    one = run(1)
    three = run(3)
    assert three.energy_j == pytest.approx(3 * one.energy_j, rel=0.02)
    assert three.duration_s == pytest.approx(3 * one.duration_s, rel=0.02)


def test_energy_time_power_consistency():
    """E = ∫P dt: total energy equals mean trace power x duration."""
    job = MpiJob(64)

    def program(ctx):
        yield from ctx.compute(0.2)
        yield from ctx.alltoall(1 << 20)

    result = job.run(program)
    trace = result.power_trace(interval_s=0.01)
    integrated = sum(
        p * w
        for p, w in zip(
            trace.power_w,
            [trace.times_s[0]] + list(trace.times_s[1:] - trace.times_s[:-1]),
        )
    )
    assert integrated == pytest.approx(result.energy_j, rel=1e-6)
