"""FaultPlan construction, validation, and the --faults spec grammar."""

import math

import pytest

from repro.faults import (
    FaultPlan,
    FaultSpecError,
    LinkDegrade,
    LinkFlap,
    OsNoise,
    Straggler,
    TransitionJitter,
    parse_fault_spec,
)


class TestInjectorValidation:
    def test_degrade_rejects_bad_factor(self):
        with pytest.raises(FaultSpecError):
            LinkDegrade(factor=0.0)
        with pytest.raises(FaultSpecError):
            LinkDegrade(factor=1.5)

    def test_degrade_rejects_negative_start(self):
        with pytest.raises(FaultSpecError):
            LinkDegrade(start_s=-1.0)

    def test_flap_requires_finite_window(self):
        with pytest.raises(FaultSpecError):
            LinkFlap(duration_s=math.inf)

    def test_straggler_rejects_speedup(self):
        with pytest.raises(FaultSpecError):
            Straggler(multiplier=0.9)

    def test_straggler_scope_names(self):
        with pytest.raises(FaultSpecError):
            Straggler(scope="rack")
        assert Straggler(scope="node").scope == "node"

    def test_noise_rejects_zero_period(self):
        with pytest.raises(FaultSpecError):
            OsNoise(period_s=0.0)

    def test_jitter_ordering(self):
        with pytest.raises(FaultSpecError):
            TransitionJitter(lo=2.0, hi=0.5)
        with pytest.raises(FaultSpecError):
            TransitionJitter(lo=-0.1)

    def test_plan_rejects_negative_seed(self):
        with pytest.raises(FaultSpecError):
            FaultPlan(seed=-1)

    def test_plan_rejects_two_jitters(self):
        with pytest.raises(FaultSpecError):
            FaultPlan(injectors=(TransitionJitter(), TransitionJitter()))


class TestRngSubstreams:
    def test_same_tags_same_stream(self):
        plan = FaultPlan(seed=42)
        assert plan.rng("a", 1).random() == plan.rng("a", 1).random()

    def test_different_tags_differ(self):
        plan = FaultPlan(seed=42)
        assert plan.rng("a").random() != plan.rng("b").random()

    def test_different_seeds_differ(self):
        assert (FaultPlan(seed=1).rng("x").random()
                != FaultPlan(seed=2).rng("x").random())


class TestSpecGrammar:
    def test_full_spec_round_trip(self):
        plan = parse_fault_spec(
            "degrade:factor=0.5,start=1ms,duration=50ms,frac=0.5;"
            "flap:factor=0.2,period=2ms,down=200us,duration=20ms;"
            "straggler:mult=1.3,frac=0.25,scope=node;"
            "noise:period=500us,pulse=20us;jitter:lo=0.8,hi=1.2",
            seed=9,
        )
        assert plan.seed == 9
        degrade = plan.of_type(LinkDegrade)[0]
        assert degrade.factor == 0.5
        assert degrade.start_s == pytest.approx(1e-3)
        assert degrade.duration_s == pytest.approx(50e-3)
        flap = plan.of_type(LinkFlap)[0]
        assert flap.down_s == pytest.approx(200e-6)
        straggler = plan.of_type(Straggler)[0]
        assert straggler.scope == "node"
        assert plan.of_type(OsNoise)[0].period_s == pytest.approx(500e-6)
        jitter = plan.of_type(TransitionJitter)[0]
        assert (jitter.lo, jitter.hi) == (0.8, 1.2)

    def test_defaults_when_keys_omitted(self):
        plan = parse_fault_spec("noise")
        assert plan.of_type(OsNoise)[0] == OsNoise()

    def test_unknown_injector_is_named(self):
        with pytest.raises(FaultSpecError, match="cosmic"):
            parse_fault_spec("cosmic:rays=1")

    def test_unknown_key_is_named(self):
        with pytest.raises(FaultSpecError, match="wobble"):
            parse_fault_spec("degrade:wobble=2")

    def test_negative_value_rejected(self):
        with pytest.raises(FaultSpecError, match="non-negative"):
            parse_fault_spec("noise:period=-1ms")

    def test_unparseable_time_rejected(self):
        with pytest.raises(FaultSpecError, match="period"):
            parse_fault_spec("noise:period=fast")

    def test_empty_spec_rejected(self):
        with pytest.raises(FaultSpecError, match="no injectors"):
            parse_fault_spec(" ; ")

    def test_bare_seconds_accepted(self):
        plan = parse_fault_spec("degrade:duration=2")
        assert plan.of_type(LinkDegrade)[0].duration_s == 2.0
