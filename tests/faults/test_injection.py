"""End-to-end fault injection: victim determinism, injector effects,
bit-identical reruns, and zero impact when disabled."""

import pytest

from repro import (
    FaultPlan,
    LinkDegrade,
    LinkFlap,
    MpiJob,
    OsNoise,
    SimSession,
    Straggler,
    TransitionJitter,
    use_faults,
)
from repro.mpi.job import run_collective_once
from repro.sim import RecordingTracer


def _compute_program(seconds):
    def program(ctx):
        yield from ctx.compute(seconds)

    return program


class TestComputePerturbation:
    def test_straggler_scales_compute_exactly(self):
        plan = FaultPlan(seed=1, injectors=(
            Straggler(multiplier=2.0, fraction=1.0),
        ))
        job = MpiJob(8, faults=plan)
        result = job.run(_compute_program(1e-3))
        assert result.duration_s == pytest.approx(2e-3)
        assert job.faults.report().straggler_cores == len(job.cluster.cores)

    def test_noise_accrues_one_pulse_per_period(self):
        plan = FaultPlan(seed=1, injectors=(
            OsNoise(period_s=100e-6, pulse_s=10e-6, core_fraction=1.0),
        ))
        job = MpiJob(8, faults=plan)
        result = job.run(_compute_program(1e-3))
        pulses_per_rank = job.faults.report().noise_pulses // 8
        assert pulses_per_rank == 10
        assert result.duration_s == pytest.approx(1e-3 + pulses_per_rank * 10e-6)

    def test_noise_credit_carries_across_fragments(self):
        plan = FaultPlan(seed=1, injectors=(
            OsNoise(period_s=100e-6, pulse_s=10e-6, core_fraction=1.0),
        ))
        job = MpiJob(8, faults=plan)

        def program(ctx):
            for _ in range(4):  # 4 x 50us accrues 2 pulses per rank, not 0
                yield from ctx.compute(50e-6)

        job.run(program)
        assert job.faults.report().noise_pulses == 2 * 8

    def test_node_scope_straggles_whole_nodes(self):
        plan = FaultPlan(seed=3, injectors=(
            Straggler(multiplier=1.5, fraction=0.25, scope="node"),
        ))
        session = SimSession(faults=plan)
        victims = set(plan.rng("straggler", 0).sample(
            [n.node_id for n in session.cluster.nodes], 2))
        expected = {c.core_id for c in session.cluster.cores
                    if c.node_id in victims}
        assert set(session.faults.compute_scale) == expected


class TestLinkFaults:
    def test_degraded_links_slow_collectives(self):
        quiet = run_collective_once("alltoall", 256 << 10, n_ranks=64)
        plan = FaultPlan(seed=2, injectors=(
            LinkDegrade(factor=0.5, node_fraction=1.0),
        ))
        degraded = run_collective_once(
            "alltoall", 256 << 10, n_ranks=64, faults=plan
        )
        assert degraded.duration_s > quiet.duration_s * 1.3

    def test_flap_windows_restore_exactly(self):
        plan = FaultPlan(seed=2, injectors=(
            LinkFlap(factor=0.1, period_s=1e-3, down_s=200e-6,
                     duration_s=20e-3, node_fraction=1.0),
        ))
        job = MpiJob(64, faults=plan)
        job.run(_compute_program(1e-3))
        # env.run() drains every flap boundary; factors must stack back
        # to exactly 1.0 (no float drift) on every link.
        for link in job.net.fabric._links.values():
            assert link.fault_factor == 1.0
        assert job.faults.report().link_events > 0

    def test_degrade_without_end_keeps_factor(self):
        plan = FaultPlan(seed=2, injectors=(
            LinkDegrade(factor=0.25, node_fraction=1.0),
        ))
        job = MpiJob(8, faults=plan)
        job.run(_compute_program(1e-4))
        assert job.net.fabric.link("nic_up:0").fault_factor == 0.25


class TestTransitionJitter:
    def test_jitter_scales_charged_transitions(self):
        def transitions(ctx):
            yield from ctx.scale_frequency(1.6)
            yield from ctx.scale_frequency(2.4)

        quiet = MpiJob(8).run(transitions).duration_s
        plan = FaultPlan(seed=4, injectors=(TransitionJitter(lo=2.0, hi=2.0),))
        job = MpiJob(8, faults=plan)
        jittered = job.run(transitions).duration_s
        assert jittered == pytest.approx(2.0 * quiet)
        assert job.faults.report().jittered_transitions == 2 * 8

    def test_governor_actuation_is_jittered(self):
        from repro.runtime import Governor, GovernorConfig, GovernorPolicy

        plan = FaultPlan(seed=4, injectors=(TransitionJitter(lo=1.5, hi=1.5),))
        gov = Governor(GovernorConfig(policy=GovernorPolicy.COUNTDOWN))
        job = MpiJob(64, governor=gov, faults=plan)

        def program(ctx):
            yield from ctx.alltoall(256 << 10)

        job.run(program)
        assert gov.drops > 0
        assert job.faults.report().jittered_transitions > 0


class TestDeterminismAndIsolation:
    def _traced_run(self, plan):
        tracer = RecordingTracer()
        session = SimSession(tracer=tracer, faults=plan)
        from repro.runtime import Governor, GovernorConfig, GovernorPolicy

        gov = Governor(GovernorConfig(policy=GovernorPolicy.COUNTDOWN))
        gov.bind(session)
        session.governor = gov
        job = MpiJob(64, session=session)

        def program(ctx):
            yield from ctx.compute(200e-6)
            yield from ctx.alltoall(128 << 10)

        result = job.run(program)
        return tracer.records, result.duration_s, result.energy_j

    def _plan(self):
        return FaultPlan(seed=13, injectors=(
            LinkDegrade(factor=0.6, node_fraction=0.5),
            Straggler(multiplier=1.2, fraction=0.25),
            OsNoise(period_s=100e-6, pulse_s=10e-6, core_fraction=0.5),
            TransitionJitter(lo=0.5, hi=2.0),
        ))

    def test_same_seed_bit_identical(self):
        a = self._traced_run(self._plan())
        b = self._traced_run(self._plan())
        assert a == b  # every trace record, the duration, and the energy

    def test_different_seed_diverges(self):
        base = self._plan()
        _, dur_a, _ = self._traced_run(base)
        _, dur_b, _ = self._traced_run(
            FaultPlan(seed=14, injectors=base.injectors)
        )
        assert dur_a != dur_b

    def test_no_faults_means_no_state(self):
        session = SimSession()
        assert session.faults is None
        assert session.net.fabric.link("nic_up:0").fault_factor == 1.0

    def test_ambient_scope_reaches_inner_jobs(self):
        plan = FaultPlan(seed=5, injectors=(
            Straggler(multiplier=1.5, fraction=1.0),
        ))
        with use_faults(plan) as scope:
            job = MpiJob(8)
            assert job.faults is not None
            job.run(_compute_program(1e-4))
        assert len(scope.reports) == 1
        assert scope.reports[0].straggled_calls == 8
        assert MpiJob(8).faults is None  # scope closed

    def test_adopted_session_rejects_job_level_plan(self):
        session = SimSession()
        plan = FaultPlan(seed=5, injectors=(Straggler(),))
        with pytest.raises(ValueError, match="session owns"):
            MpiJob(8, session=session, faults=plan)

    def test_fault_trace_records_emitted(self):
        tracer = RecordingTracer()
        plan = FaultPlan(seed=6, injectors=(
            LinkDegrade(factor=0.5, duration_s=1e-3, node_fraction=1.0),
            OsNoise(period_s=50e-6, pulse_s=5e-6, core_fraction=1.0),
        ))
        session = SimSession(tracer=tracer, faults=plan)
        job = MpiJob(8, session=session)
        job.run(_compute_program(1e-3))
        assert len(tracer.of_type("fault.plan")) == 1
        assert tracer.of_type("fault.link")  # begin + end events
        assert tracer.of_type("fault.noise")
