"""Tests for rank→core affinity policies (paper §V-C)."""

import pytest

from repro.cluster import (
    AffinityMap,
    AffinityPolicy,
    Cluster,
    ClusterSpec,
)


@pytest.fixture
def cluster():
    return Cluster(ClusterSpec.paper_testbed())


@pytest.fixture
def amap(cluster):
    return AffinityMap(cluster, 64)


def test_bunch_mapping_matches_paper(amap):
    """MVAPICH2 binds local ranks 0-3 to socket A, 4-7 to socket B (§V-C)."""
    for rank in range(8):  # node 0
        expected_socket = 0 if rank < 4 else 1
        assert amap.socket_group(rank) == expected_socket
    # Local ranks 0..3 must land on OS cores 0,2,4,6 in order.
    assert [amap.core_of(r).os_id for r in range(4)] == [0, 2, 4, 6]
    assert [amap.core_of(r).os_id for r in range(4, 8)] == [1, 3, 5, 7]


def test_block_distribution_across_nodes(amap):
    for rank in range(64):
        assert amap.node_of(rank) == rank // 8
        assert amap.local_rank(rank) == rank % 8


def test_scatter_policy_alternates_sockets(cluster):
    amap = AffinityMap(cluster, 64, policy=AffinityPolicy.SCATTER)
    groups = [amap.socket_group(r) for r in range(8)]
    assert groups == [0, 1, 0, 1, 0, 1, 0, 1]


def test_sequential_policy_follows_os_ids(cluster):
    amap = AffinityMap(cluster, 64, policy=AffinityPolicy.SEQUENTIAL)
    assert [amap.core_of(r).os_id for r in range(8)] == list(range(8))
    # On Nehalem numbering sequential OS ids alternate sockets.
    assert [amap.socket_group(r) for r in range(8)] == [0, 1, 0, 1, 0, 1, 0, 1]


def test_rank_core_bijection(amap):
    seen = set()
    for rank in range(64):
        core = amap.core_of(rank)
        assert core.core_id not in seen
        seen.add(core.core_id)
        assert amap.rank_of_core(core) == rank


def test_leaders(amap):
    assert [amap.node_leader(n) for n in range(8)] == [0, 8, 16, 24, 32, 40, 48, 56]
    assert amap.is_leader(0)
    assert amap.is_leader(8)
    assert not amap.is_leader(1)


def test_group_a_b_partition(amap):
    for node_id in range(8):
        a = amap.group_a_ranks(node_id)
        b = amap.group_b_ranks(node_id)
        assert sorted(a + b) == amap.ranks_on_node(node_id)
        assert len(a) == len(b) == 4
    assert amap.group_a_ranks(0) == [0, 1, 2, 3]
    assert amap.group_b_ranks(0) == [4, 5, 6, 7]


def test_socket_peers_and_leader(amap):
    assert amap.socket_peers(2) == [0, 1, 2, 3]
    assert amap.socket_peers(13) == [12, 13, 14, 15]
    assert amap.socket_leader(6) == 4
    assert amap.socket_leader(0) == 0


def test_same_node(amap):
    assert amap.same_node(0, 7)
    assert not amap.same_node(7, 8)


def test_partial_cluster_use(cluster):
    amap = AffinityMap(cluster, 32)
    assert amap.n_nodes_used == 4
    assert amap.node_of(31) == 3


def test_node_offset_places_job_on_upper_nodes(cluster):
    """Co-scheduled jobs occupy disjoint node windows: a 32-rank map at
    node_offset=4 mirrors the offset-0 map shifted by four nodes."""
    lower = AffinityMap(cluster, 32)
    upper = AffinityMap(cluster, 32, node_offset=4)
    assert upper.n_nodes_used == 4
    for rank in range(32):
        assert upper.node_of(rank) == lower.node_of(rank) + 4
        assert upper.local_rank(rank) == lower.local_rank(rank)
        assert upper.socket_group(rank) == lower.socket_group(rank)
        assert upper.core_of(rank).os_id == lower.core_of(rank).os_id
    # Leaders/rank lists are node-id keyed, so they follow the window.
    assert upper.node_leader(4) == 0
    assert upper.ranks_on_node(4) == list(range(8))
    assert upper.group_a_ranks(4) == [0, 1, 2, 3]
    # The two maps claim disjoint physical cores.
    lower_cores = {lower.core_of(r).core_id for r in range(32)}
    upper_cores = {upper.core_of(r).core_id for r in range(32)}
    assert not (lower_cores & upper_cores)


def test_validation(cluster):
    with pytest.raises(ValueError):
        AffinityMap(cluster, 0)
    with pytest.raises(ValueError):
        AffinityMap(cluster, 65)
    with pytest.raises(ValueError):
        AffinityMap(cluster, 12)  # not a multiple of cores/node
    with pytest.raises(ValueError):
        AffinityMap(cluster, 8, node_offset=-1)
    with pytest.raises(ValueError):
        AffinityMap(cluster, 32, node_offset=5)  # falls off the cluster


def test_4way_8way_shapes():
    """The Fig 2(a) configurations: 32 ranks as 8x4 and 4x8."""
    c4 = Cluster(ClusterSpec.with_shape(nodes=8, sockets=2, cores_per_socket=2))
    m4 = AffinityMap(c4, 32)
    assert m4.cores_per_node == 4
    assert m4.n_nodes_used == 8

    c8 = Cluster(ClusterSpec.with_shape(nodes=4, sockets=2, cores_per_socket=4))
    m8 = AffinityMap(c8, 32)
    assert m8.cores_per_node == 8
    assert m8.n_nodes_used == 4
