"""Tests for hardware specification dataclasses."""

import pytest

from repro.cluster import (
    ClusterSpec,
    CpuSpec,
    NodeSpec,
    NUM_TSTATES,
    T7_ACTIVITY,
    ThrottleGranularity,
    tstate_duty,
)


def test_default_spec_matches_paper_testbed():
    spec = ClusterSpec.paper_testbed()
    assert spec.nodes == 8
    assert spec.node.sockets == 2
    assert spec.node.cpu.cores_per_socket == 4
    assert spec.node.cores_per_node == 8
    assert spec.total_cores == 64
    assert spec.node.cpu.fmin == pytest.approx(1.6)
    assert spec.node.cpu.fmax == pytest.approx(2.4)


def test_tstate_duty_endpoints():
    assert tstate_duty(0) == pytest.approx(1.0)
    assert tstate_duty(NUM_TSTATES - 1) == pytest.approx(T7_ACTIVITY)


def test_tstate_duty_monotonically_decreasing():
    duties = [tstate_duty(j) for j in range(NUM_TSTATES)]
    assert all(a > b for a, b in zip(duties, duties[1:]))


@pytest.mark.parametrize("level", [-1, NUM_TSTATES, 100])
def test_tstate_duty_rejects_out_of_range(level):
    with pytest.raises(ValueError):
        tstate_duty(level)


def test_nearest_pstate_snaps():
    cpu = CpuSpec()
    assert cpu.nearest_pstate(1.6) == pytest.approx(1.6)
    assert cpu.nearest_pstate(2.4) == pytest.approx(2.4)
    assert cpu.nearest_pstate(0.5) == pytest.approx(1.6)
    assert cpu.nearest_pstate(9.9) == pytest.approx(2.4)
    assert cpu.nearest_pstate(1.95) == pytest.approx(2.0)


def test_cpu_spec_validation():
    with pytest.raises(ValueError):
        CpuSpec(cores_per_socket=0)
    with pytest.raises(ValueError):
        CpuSpec(pstates_ghz=())
    with pytest.raises(ValueError):
        CpuSpec(pstates_ghz=(2.4, 1.6))  # not ascending
    with pytest.raises(ValueError):
        CpuSpec(pstates_ghz=(-1.0, 2.4))


def test_node_and_cluster_validation():
    with pytest.raises(ValueError):
        NodeSpec(sockets=0)
    with pytest.raises(ValueError):
        ClusterSpec(nodes=0)


def test_with_shape_constructor():
    spec = ClusterSpec.with_shape(nodes=4, sockets=2, cores_per_socket=4)
    assert spec.nodes == 4
    assert spec.total_cores == 32
    spec2 = ClusterSpec.with_shape(
        nodes=2, granularity=ThrottleGranularity.CORE
    )
    assert spec2.node.cpu.throttle_granularity is ThrottleGranularity.CORE
