"""Tests for cluster construction and Nehalem core numbering."""

import pytest

from repro.cluster import (
    Activity,
    Cluster,
    ClusterSpec,
    ThrottleGranularity,
)


@pytest.fixture
def cluster():
    return Cluster(ClusterSpec.paper_testbed())


def test_counts(cluster):
    assert cluster.n_nodes == 8
    assert cluster.cores_per_node == 8
    assert len(cluster.cores) == 64
    for node in cluster.nodes:
        assert len(node.sockets) == 2
        assert len(node.cores) == 8


def test_nehalem_os_numbering(cluster):
    """Paper Fig 5: cores 0 2 4 6 on socket A; 1 3 5 7 on socket B."""
    node = cluster.nodes[0]
    socket_a, socket_b = node.sockets
    assert sorted(c.os_id for c in socket_a.cores) == [0, 2, 4, 6]
    assert sorted(c.os_id for c in socket_b.cores) == [1, 3, 5, 7]


def test_global_core_ids_unique(cluster):
    ids = [c.core_id for c in cluster.cores]
    assert ids == sorted(set(ids))
    assert len(ids) == 64


def test_socket_ids_global(cluster):
    assert cluster.nodes[0].sockets[0].socket_id == 0
    assert cluster.nodes[0].sockets[1].socket_id == 1
    assert cluster.nodes[3].sockets[0].socket_id == 6
    assert cluster.nodes[3].sockets[1].socket_id == 7


def test_core_by_os_id(cluster):
    node = cluster.nodes[2]
    for os_id in range(8):
        assert node.core_by_os_id(os_id).os_id == os_id
        assert node.core_by_os_id(os_id).node_id == 2


def test_socket_of_lookup(cluster):
    node = cluster.nodes[0]
    core = node.core_by_os_id(4)
    assert node.socket_of(core).local_index == 0
    core_b = node.core_by_os_id(3)
    assert node.socket_of(core_b).local_index == 1
    with pytest.raises(ValueError):
        cluster.nodes[1].socket_of(core)


def test_cores_start_at_fmax_t0_idle(cluster):
    for core in cluster.cores:
        assert core.frequency_ghz == pytest.approx(2.4)
        assert core.tstate == 0
        assert core.activity is Activity.IDLE


def test_mean_dvfs_ratio(cluster):
    node = cluster.nodes[0]
    assert node.mean_dvfs_ratio == pytest.approx(1.0)
    for core in node.cores[:4]:
        core.set_frequency(1.6, now=0.0)
    assert node.mean_dvfs_ratio == pytest.approx((4 * 1.6 / 2.4 + 4) / 8)


def test_set_all_bulk(cluster):
    cluster.set_all(0.0, frequency_ghz=1.6, tstate=7, activity=Activity.POLLING)
    for core in cluster.cores:
        assert core.frequency_ghz == pytest.approx(1.6)
        assert core.tstate == 7
        assert core.activity is Activity.POLLING


def test_socket_throttle_sets_all_cores(cluster):
    socket = cluster.nodes[0].sockets[1]
    socket.set_tstate(7, now=1.0)
    for core in socket.cores:
        assert core.tstate == 7
    # Socket A untouched.
    for core in cluster.nodes[0].sockets[0].cores:
        assert core.tstate == 0
    assert socket.tstate == 7


def test_throttle_domain_socket_vs_core():
    spec_sock = ClusterSpec.with_shape(nodes=1)
    c1 = Cluster(spec_sock)
    core = c1.nodes[0].cores[0]
    socket = c1.nodes[0].sockets[0]
    c1.throttle_domain.apply(core, socket, 7, now=0.0)
    assert all(c.tstate == 7 for c in socket.cores)

    spec_core = ClusterSpec.with_shape(nodes=1, granularity=ThrottleGranularity.CORE)
    c2 = Cluster(spec_core)
    core2 = c2.nodes[0].cores[0]
    socket2 = c2.nodes[0].sockets[0]
    c2.throttle_domain.apply(core2, socket2, 7, now=0.0)
    assert core2.tstate == 7
    assert sum(c.tstate == 7 for c in socket2.cores) == 1


def test_core_speed_factor():
    cluster = Cluster(ClusterSpec.paper_testbed())
    core = cluster.cores[0]
    assert core.speed_factor == pytest.approx(1.0)
    core.set_frequency(1.6, 0.0)
    assert core.speed_factor == pytest.approx(1.6 / 2.4)
    core.set_tstate(7, 0.0)
    assert core.speed_factor == pytest.approx(0.12 * 1.6 / 2.4)
    assert core.cpu_time(1.0) == pytest.approx(1.0 / (0.12 * 1.6 / 2.4))


def test_core_state_listener_called_before_change():
    cluster = Cluster(ClusterSpec.paper_testbed())
    core = cluster.cores[0]
    seen = []
    core.add_listener(lambda c, now: seen.append((now, c.frequency_ghz, c.tstate)))
    core.set_frequency(1.6, now=2.0)
    core.set_tstate(3, now=5.0)
    assert seen == [(2.0, 2.4, 0), (5.0, 1.6, 0)]
    # No-op changes do not notify.
    core.set_tstate(3, now=6.0)
    core.set_frequency(1.6, now=7.0)
    assert len(seen) == 2


def test_invalid_tstate_rejected():
    cluster = Cluster(ClusterSpec.paper_testbed())
    with pytest.raises(ValueError):
        cluster.cores[0].set_tstate(8, now=0.0)
