"""Tests for the cluster-shaped InfiniBand network."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.network import IBNetwork, NetworkSpec
from repro.sim import Environment


@pytest.fixture
def setup():
    env = Environment()
    cluster = Cluster(ClusterSpec.paper_testbed())
    # Ideal fabric (no congestion penalty) for exact timing assertions.
    net = IBNetwork(env, cluster, NetworkSpec(flow_congestion=0.0))
    return env, cluster, net


def test_links_built_per_node(setup):
    env, cluster, net = setup
    for n in range(8):
        assert net.nic_up(n).name == f"nic_up:{n}"
        assert net.nic_dn(n).name == f"nic_dn:{n}"
        assert net.mem(n).name == f"mem:{n}"


def test_inter_node_path_uses_both_nics(setup):
    env, cluster, net = setup
    path = net.inter_node_path(0, 3)
    assert [lk.name for lk in path] == ["nic_up:0", "nic_dn:3"]


def test_switch_link_when_oversubscribed():
    env = Environment()
    cluster = Cluster(ClusterSpec.paper_testbed())
    net = IBNetwork(env, cluster, NetworkSpec(switch_oversubscription=4.0))
    path = net.inter_node_path(0, 1)
    assert [lk.name for lk in path] == ["nic_up:0", "switch", "nic_dn:1"]
    assert net.fabric.link("switch").capacity == pytest.approx(4.0 * 3.0e9)


def test_single_inter_node_transfer_rate(setup):
    env, cluster, net = setup
    out = []

    def proc(env):
        t = yield net.transfer_inter(0, 1, 3e6)
        out.append(t)

    env.process(proc(env))
    env.run()
    assert out == [pytest.approx(1e-3)]  # 3 MB at 3 GB/s


def test_nic_contention_between_senders(setup):
    """Two ranks on node 0 sending to different nodes share the uplink."""
    env, cluster, net = setup
    out = []

    def proc(env, dst):
        t = yield net.transfer_inter(0, dst, 3e6)
        out.append(t)

    env.process(proc(env, 1))
    env.process(proc(env, 2))
    env.run()
    for t in out:
        assert t == pytest.approx(2e-3)


def test_dvfs_slows_nic(setup):
    """A node at fmin feeds its HCA at ~85 % of line rate (uncore model)."""
    env, cluster, net = setup
    cluster.set_all(0.0, frequency_ghz=1.6)
    alpha = net.spec.dvfs_io_alpha
    expected_factor = net.spec.nic_dvfs_factor(1.6 / 2.4)
    assert expected_factor == pytest.approx(alpha + (1 - alpha) * (1.6 / 2.4))
    out = []

    def proc(env):
        t = yield net.transfer_inter(0, 1, 3e6)
        out.append(t)

    env.process(proc(env))
    env.run()
    assert out == [pytest.approx(1e-3 / expected_factor)]


def test_dvfs_changed_mid_transfer(setup):
    env, cluster, net = setup
    out = []

    def proc(env):
        t = yield net.transfer_inter(0, 1, 6e6)
        out.append(t)

    def scaler(env):
        yield env.timeout(1e-3)  # 3 MB moved at full rate
        cluster.set_all(env.now, frequency_ghz=1.6)
        net.dvfs_changed()

    env.process(proc(env))
    env.process(scaler(env))
    env.run()
    factor = net.spec.nic_dvfs_factor(1.6 / 2.4)
    assert out == [pytest.approx(1e-3 + 1e-3 / factor)]


def test_loopback_used_for_same_node(setup):
    env, cluster, net = setup
    out = []

    def proc(env):
        t = yield net.transfer_inter(0, 0, 3e6)
        out.append(t)

    env.process(proc(env))
    env.run()
    # Loopback crosses nic_up:0 and nic_dn:0, full rate.
    assert out == [pytest.approx(1e-3)]


def test_shm_transfer_capped_by_pair_bandwidth(setup):
    env, cluster, net = setup
    out = []

    def proc(env):
        t = yield net.transfer_shm(0, 2.5e6, pair_cap=2.5e9)
        out.append(t)

    env.process(proc(env))
    env.run()
    assert out == [pytest.approx(1e-3)]


def test_shm_copies_share_node_memory_bandwidth(setup):
    """Many concurrent pair copies saturate the node memory link rather
    than each getting its full pair bandwidth."""
    env, cluster, net = setup
    mem_bw = net.spec.mem_bw_node
    pair_cap = mem_bw / 4  # with 8 copies, fair share < pair_cap
    out = []

    def proc(env):
        t = yield net.transfer_shm(0, 2.5e6, pair_cap=pair_cap)
        out.append(t)

    for _ in range(8):
        env.process(proc(env))
    env.run()
    expected = 2.5e6 / (mem_bw / 8)
    for t in out:
        assert t == pytest.approx(expected)


def test_mem_link_isolated_between_nodes(setup):
    env, cluster, net = setup
    out = []

    def proc(env, node):
        t = yield net.transfer_shm(node, 2.5e6, pair_cap=2.5e9)
        out.append(t)

    env.process(proc(env, 0))
    env.process(proc(env, 1))
    env.run()
    for t in out:
        assert t == pytest.approx(1e-3)
