"""Property-based tests (hypothesis) for the fabric's fairness and
conservation invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import NetworkSpec
from repro.network.fabric import Fabric, Flow, Link, maxmin_rates
from repro.sim import Environment


class _Ev:
    pass


@st.composite
def allocation_problems(draw):
    """Random links + flows with random paths and caps."""
    n_links = draw(st.integers(min_value=1, max_value=5))
    links = [
        Link(f"l{i}", draw(st.floats(min_value=0.1, max_value=100.0)))
        for i in range(n_links)
    ]
    n_flows = draw(st.integers(min_value=1, max_value=12))
    flows = []
    for _ in range(n_flows):
        path_ids = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_links - 1),
                min_size=1,
                max_size=n_links,
                unique=True,
            )
        )
        cap = draw(
            st.one_of(
                st.just(math.inf), st.floats(min_value=0.01, max_value=50.0)
            )
        )
        flows.append(Flow(tuple(links[i] for i in path_ids), 1.0, cap, _Ev()))
    capacities = {l: l.capacity for l in links}
    return flows, capacities


@given(allocation_problems())
@settings(max_examples=200)
def test_maxmin_respects_capacities_and_caps(problem):
    flows, capacities = problem
    rates = maxmin_rates(flows, capacities)
    # Every flow got a rate; rates are positive and within its cap.
    for flow in flows:
        assert flow in rates
        assert rates[flow] > 0
        assert rates[flow] <= flow.cap * (1 + 1e-9)
    # No link is oversubscribed.
    for link, cap in capacities.items():
        used = sum(rates[f] for f in flows if link in f.links)
        assert used <= cap * (1 + 1e-9)


@given(allocation_problems())
@settings(max_examples=200)
def test_maxmin_is_pareto_maximal(problem):
    """No flow could be given more bandwidth without violating a
    constraint: every flow is either at its cap or crosses a saturated
    link."""
    flows, capacities = problem
    rates = maxmin_rates(flows, capacities)
    for flow in flows:
        if flow.cap is not math.inf and rates[flow] >= flow.cap * (1 - 1e-9):
            continue
        saturated = False
        for link in flow.links:
            used = sum(rates[f] for f in flows if link in f.links)
            if used >= capacities[link] * (1 - 1e-9):
                saturated = True
                break
        assert saturated, f"flow {flow} is not bottlenecked anywhere"


@given(allocation_problems())
@settings(max_examples=100)
def test_maxmin_fairness_on_shared_bottleneck(problem):
    """Two uncapped flows with identical paths get identical rates."""
    flows, capacities = problem
    rates = maxmin_rates(flows, capacities)
    by_path = {}
    for flow in flows:
        if math.isinf(flow.cap):
            by_path.setdefault(flow.links, []).append(rates[flow])
    for path_rates in by_path.values():
        assert max(path_rates) == pytest.approx(min(path_rates))


@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=10_000_000), min_size=1, max_size=20
    ),
    stagger_us=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=50, deadline=None)
def test_fabric_conserves_bytes(sizes, stagger_us):
    env = Environment()
    fabric = Fabric(env, NetworkSpec())
    link = fabric.add_link("l", 1e9)

    def proc(env, i, nbytes):
        yield env.timeout(i * stagger_us * 1e-6)
        yield fabric.transfer([link], nbytes)

    for i, nbytes in enumerate(sizes):
        env.process(proc(env, i, nbytes))
    env.run()
    assert fabric.bytes_delivered == pytest.approx(sum(sizes), rel=1e-9)
    assert not fabric.active_flows


@given(
    seeds=st.lists(st.integers(min_value=0, max_value=10_000), min_size=4, max_size=4)
)
@settings(max_examples=20, deadline=None)
def test_fabric_schedule_deterministic(seeds):
    """Identical transfer schedules produce identical completion times."""

    def run_once():
        env = Environment()
        fabric = Fabric(env, NetworkSpec())
        links = [fabric.add_link(f"l{i}", 1e9) for i in range(2)]
        times = []

        def proc(env, seed):
            yield env.timeout((seed % 97) * 1e-6)
            t = yield fabric.transfer(
                [links[seed % 2]], 1000 + (seed * 131) % 100_000
            )
            times.append(t)

        for seed in seeds:
            env.process(proc(env, seed))
        env.run()
        return times

    assert run_once() == run_once()
