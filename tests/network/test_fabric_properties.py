"""Property-based tests (hypothesis) for the fabric's fairness and
conservation invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import NetworkSpec
from repro.network.fabric import Fabric, Flow, Link, maxmin_rates
from repro.sim import Environment


class _Ev:
    pass


@st.composite
def allocation_problems(draw):
    """Random links + flows with random paths and caps."""
    n_links = draw(st.integers(min_value=1, max_value=5))
    links = [
        Link(f"l{i}", draw(st.floats(min_value=0.1, max_value=100.0)))
        for i in range(n_links)
    ]
    n_flows = draw(st.integers(min_value=1, max_value=12))
    flows = []
    for _ in range(n_flows):
        path_ids = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_links - 1),
                min_size=1,
                max_size=n_links,
                unique=True,
            )
        )
        cap = draw(
            st.one_of(
                st.just(math.inf), st.floats(min_value=0.01, max_value=50.0)
            )
        )
        flows.append(Flow(tuple(links[i] for i in path_ids), 1.0, cap, _Ev()))
    capacities = {lk: lk.capacity for lk in links}
    return flows, capacities


@given(allocation_problems())
@settings(max_examples=200)
def test_maxmin_respects_capacities_and_caps(problem):
    flows, capacities = problem
    rates = maxmin_rates(flows, capacities)
    # Every flow got a rate; rates are positive and within its cap.
    for flow in flows:
        assert flow in rates
        assert rates[flow] > 0
        assert rates[flow] <= flow.cap * (1 + 1e-9)
    # No link is oversubscribed.
    for link, cap in capacities.items():
        used = sum(rates[f] for f in flows if link in f.links)
        assert used <= cap * (1 + 1e-9)


@given(allocation_problems())
@settings(max_examples=200)
def test_maxmin_is_pareto_maximal(problem):
    """No flow could be given more bandwidth without violating a
    constraint: every flow is either at its cap or crosses a saturated
    link."""
    flows, capacities = problem
    rates = maxmin_rates(flows, capacities)
    for flow in flows:
        if flow.cap is not math.inf and rates[flow] >= flow.cap * (1 - 1e-9):
            continue
        saturated = False
        for link in flow.links:
            used = sum(rates[f] for f in flows if link in f.links)
            if used >= capacities[link] * (1 - 1e-9):
                saturated = True
                break
        assert saturated, f"flow {flow} is not bottlenecked anywhere"


@given(allocation_problems())
@settings(max_examples=100)
def test_maxmin_fairness_on_shared_bottleneck(problem):
    """Two uncapped flows with identical paths get identical rates."""
    flows, capacities = problem
    rates = maxmin_rates(flows, capacities)
    by_path = {}
    for flow in flows:
        if math.isinf(flow.cap):
            by_path.setdefault(flow.links, []).append(rates[flow])
    for path_rates in by_path.values():
        assert max(path_rates) == pytest.approx(min(path_rates))


@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=10_000_000), min_size=1, max_size=20
    ),
    stagger_us=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=50, deadline=None)
def test_fabric_conserves_bytes(sizes, stagger_us):
    env = Environment()
    fabric = Fabric(env, NetworkSpec())
    link = fabric.add_link("l", 1e9)

    def proc(env, i, nbytes):
        yield env.timeout(i * stagger_us * 1e-6)
        yield fabric.transfer([link], nbytes)

    for i, nbytes in enumerate(sizes):
        env.process(proc(env, i, nbytes))
    env.run()
    assert fabric.bytes_delivered == pytest.approx(sum(sizes), rel=1e-9)
    assert not fabric.active_flows


@given(
    seeds=st.lists(st.integers(min_value=0, max_value=10_000), min_size=4, max_size=4)
)
@settings(max_examples=20, deadline=None)
def test_fabric_schedule_deterministic(seeds):
    """Identical transfer schedules produce identical completion times."""

    def run_once():
        env = Environment()
        fabric = Fabric(env, NetworkSpec())
        links = [fabric.add_link(f"l{i}", 1e9) for i in range(2)]
        times = []

        def proc(env, seed):
            yield env.timeout((seed % 97) * 1e-6)
            t = yield fabric.transfer(
                [links[seed % 2]], 1000 + (seed * 131) % 100_000
            )
            times.append(t)

        for seed in seeds:
            env.process(proc(env, seed))
        env.run()
        return times

    assert run_once() == run_once()


def _schedule_times(seeds, n_links=4, *, incremental=True, tracer=None):
    """Run a fixed multi-link transfer schedule; return completion times."""
    env = Environment(tracer=tracer)
    fabric = Fabric(env, NetworkSpec(incremental_rerate=incremental))
    links = [fabric.add_link(f"l{i}", 1e9) for i in range(n_links)]
    times = []

    def proc(env, i, seed):
        yield env.timeout((seed % 53) * 1e-6)
        path = [links[seed % n_links], links[(seed + 1 + i % 2) % n_links]]
        t = yield fabric.transfer(
            path, 1000 + (seed * 131) % 500_000,
            cpu_cap=(0.4e9 if seed % 3 == 0 else math.inf),
        )
        times.append((i, t))

    for i, seed in enumerate(seeds):
        env.process(proc(env, i, seed))
    env.run()
    return times, fabric


@given(
    seeds=st.lists(
        st.integers(min_value=0, max_value=10_000), min_size=1, max_size=24
    )
)
@settings(max_examples=40, deadline=None)
def test_incremental_rerate_matches_full_recompute(seeds):
    """The component-local incremental re-rater is exact: completion times
    match whole-fabric recomputation on every schedule."""
    inc, fab_inc = _schedule_times(seeds, incremental=True)
    full, fab_full = _schedule_times(seeds, incremental=False)
    assert len(inc) == len(full)
    for (i, t_inc), (j, t_full) in zip(sorted(inc), sorted(full)):
        assert i == j
        assert t_inc == pytest.approx(t_full, rel=1e-9, abs=1e-15)
    assert fab_inc.bytes_delivered == pytest.approx(fab_full.bytes_delivered)


@given(
    seeds=st.lists(
        st.integers(min_value=0, max_value=10_000), min_size=1, max_size=16
    )
)
@settings(max_examples=30, deadline=None)
def test_tracer_does_not_perturb_timeline(seeds):
    """Observing a run (tracer enabled) must leave every completion time
    byte-identical to the unobserved run — tracers observe, never steer."""
    from repro.sim.trace import RecordingTracer

    tracer = RecordingTracer()
    observed, fab_obs = _schedule_times(seeds, tracer=tracer)
    silent, fab_sil = _schedule_times(seeds, tracer=None)
    assert observed == silent
    assert fab_obs.bytes_delivered == fab_sil.bytes_delivered
    # And the trace itself is complete: one start + one finish per flow.
    assert len(tracer.of_type("flow.start")) == len(seeds)
    assert len(tracer.of_type("flow.finish")) == len(seeds)


@given(
    seeds=st.lists(
        st.integers(min_value=0, max_value=10_000), min_size=2, max_size=16
    )
)
@settings(max_examples=30, deadline=None)
def test_no_flow_ever_exceeds_cap_or_capacity(seeds):
    """Runtime invariant: at every re-rating instant, each in-flight flow's
    rate respects its cpu cap and no link is oversubscribed."""
    env = Environment()
    fabric = Fabric(env, NetworkSpec())
    links = [fabric.add_link(f"l{i}", 1e9) for i in range(3)]

    def check(timer):
        usage = {}
        for flow in fabric.active_flows:
            if flow.cap != math.inf:
                assert flow.rate <= flow.cap * (1 + 1e-9)
            for link in flow.links:
                usage[link] = usage.get(link, 0.0) + flow.rate
        for link, used in usage.items():
            assert used <= link.capacity * (1 + 1e-9)
        if fabric.active_flows or env.now < 30e-6:
            env.call_after(37e-6, check)

    def proc(env, seed):
        yield env.timeout((seed % 29) * 1e-6)
        yield fabric.transfer(
            [links[seed % 3]], 1000 + (seed * 131) % 300_000,
            cpu_cap=(0.3e9 if seed % 2 else math.inf),
        )

    for seed in seeds:
        env.process(proc(env, seed))
    env.call_after(1e-6, check)
    env.run()
    assert not fabric.active_flows
