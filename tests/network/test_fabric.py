"""Tests for the flow-level fabric and max-min fair sharing."""

import math

import pytest

from repro.network import Fabric, NetworkSpec
from repro.network.fabric import Flow, Link, maxmin_rates
from repro.sim import Environment


def make_fabric(congestion: float = 0.0):
    env = Environment()
    fabric = Fabric(env, NetworkSpec(flow_congestion=congestion))
    return env, fabric


# -------------------------------------------------------------- maxmin unit
def _flow(links, cap=math.inf):
    class _Ev:  # stand-in, never triggered
        pass

    return Flow(tuple(links), 1.0, cap, _Ev())


def test_maxmin_single_flow_gets_full_capacity():
    lk = Link("l", 10.0)
    f = _flow([lk])
    rates = maxmin_rates([f], {lk: 10.0})
    assert rates[f] == pytest.approx(10.0)


def test_maxmin_equal_split():
    lk = Link("l", 9.0)
    flows = [_flow([lk]) for _ in range(3)]
    rates = maxmin_rates(flows, {lk: 9.0})
    for f in flows:
        assert rates[f] == pytest.approx(3.0)


def test_maxmin_cap_redistributes_surplus():
    lk = Link("l", 9.0)
    capped = _flow([lk], cap=1.0)
    free1, free2 = _flow([lk]), _flow([lk])
    rates = maxmin_rates([capped, free1, free2], {lk: 9.0})
    assert rates[capped] == pytest.approx(1.0)
    assert rates[free1] == pytest.approx(4.0)
    assert rates[free2] == pytest.approx(4.0)


def test_maxmin_multi_link_bottleneck():
    a, b = Link("a", 10.0), Link("b", 2.0)
    through = _flow([a, b])  # bottlenecked at b
    only_a = _flow([a])
    rates = maxmin_rates([through, only_a], {a: 10.0, b: 2.0})
    assert rates[through] == pytest.approx(2.0)
    assert rates[only_a] == pytest.approx(8.0)


def test_maxmin_classic_three_flow_example():
    """Textbook: two links cap 1; f1 uses both, f2 uses l1, f3 uses l2.
    Max-min gives everyone 0.5."""
    l1, l2 = Link("l1", 1.0), Link("l2", 1.0)
    f1, f2, f3 = _flow([l1, l2]), _flow([l1]), _flow([l2])
    rates = maxmin_rates([f1, f2, f3], {l1: 1.0, l2: 1.0})
    assert rates[f1] == pytest.approx(0.5)
    assert rates[f2] == pytest.approx(0.5)
    assert rates[f3] == pytest.approx(0.5)


# ------------------------------------------------------------ fabric in sim
def test_single_transfer_time():
    env, fabric = make_fabric()
    link = fabric.add_link("l", 1e9)
    done = []

    def proc(env):
        t = yield fabric.transfer([link], 1e6)
        done.append(t)

    env.process(proc(env))
    env.run()
    assert done == [pytest.approx(1e-3)]


def test_two_transfers_share_link():
    env, fabric = make_fabric()
    link = fabric.add_link("l", 1e9)
    done = []

    def proc(env, tag):
        t = yield fabric.transfer([link], 1e6)
        done.append((tag, t))

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    # Both share 1 GB/s: each sees 0.5 GB/s, finishing at 2 ms.
    assert done[0][1] == pytest.approx(2e-3)
    assert done[1][1] == pytest.approx(2e-3)


def test_late_joiner_slows_first_flow():
    env, fabric = make_fabric()
    link = fabric.add_link("l", 1e9)
    done = {}

    def first(env):
        t = yield fabric.transfer([link], 2e6)
        done["first"] = t

    def second(env):
        yield env.timeout(1e-3)  # first flow has moved 1 MB already
        t = yield fabric.transfer([link], 1e6)
        done["second"] = t

    env.process(first(env))
    env.process(second(env))
    env.run()
    # After 1 ms the first flow has 1 MB left; both then run at 0.5 GB/s
    # and finish together at 1 ms + 2 ms = 3 ms.
    assert done["first"] == pytest.approx(3e-3)
    assert done["second"] == pytest.approx(3e-3)


def test_completion_releases_bandwidth():
    env, fabric = make_fabric()
    link = fabric.add_link("l", 1e9)
    done = {}

    def small(env):
        t = yield fabric.transfer([link], 0.5e6)
        done["small"] = t

    def large(env):
        t = yield fabric.transfer([link], 2e6)
        done["large"] = t

    env.process(small(env))
    env.process(large(env))
    env.run()
    # Shared until small finishes at 1 ms (0.5 MB at 0.5 GB/s); large then
    # has 1.5 MB left at full rate → 1 ms + 1.5 ms = 2.5 ms.
    assert done["small"] == pytest.approx(1e-3)
    assert done["large"] == pytest.approx(2.5e-3)


def test_zero_byte_transfer_completes_immediately():
    env, fabric = make_fabric()
    link = fabric.add_link("l", 1e9)
    out = []

    def proc(env):
        t = yield fabric.transfer([link], 0)
        out.append(t)

    env.process(proc(env))
    env.run()
    assert out == [0.0]


def test_cpu_cap_limits_single_flow():
    env, fabric = make_fabric()
    link = fabric.add_link("l", 3e9)
    out = []

    def proc(env):
        t = yield fabric.transfer([link], 3e6, cpu_cap=1e9)
        out.append(t)

    env.process(proc(env))
    env.run()
    assert out == [pytest.approx(3e-3)]


def test_capacity_fn_change_mid_flight():
    env, fabric = make_fabric()
    state = {"factor": 1.0}
    link = fabric.add_link("l", 1e9, capacity_fn=lambda: 1e9 * state["factor"])
    out = []

    def proc(env):
        t = yield fabric.transfer([link], 2e6)
        out.append(t)

    def degrade(env):
        yield env.timeout(1e-3)  # 1 MB moved
        state["factor"] = 0.5
        fabric.capacities_changed()

    env.process(proc(env))
    env.process(degrade(env))
    env.run()
    # Remaining 1 MB at 0.5 GB/s takes 2 ms → total 3 ms.
    assert out == [pytest.approx(3e-3)]


def test_bytes_delivered_accounting():
    env, fabric = make_fabric()
    link = fabric.add_link("l", 1e9)

    def proc(env):
        yield fabric.transfer([link], 1e6)

    env.process(proc(env))
    env.process(proc(env))
    env.run()
    assert fabric.bytes_delivered == pytest.approx(2e6)


def test_transfer_without_links_rejected():
    env, fabric = make_fabric()
    with pytest.raises(ValueError):
        fabric.transfer([], 100)


def test_duplicate_link_rejected():
    env, fabric = make_fabric()
    fabric.add_link("l", 1e9)
    with pytest.raises(ValueError):
        fabric.add_link("l", 1e9)


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        Link("bad", 0.0)


def test_congestion_penalty_slows_shared_link():
    env, fabric = make_fabric(congestion=0.02)
    link = fabric.add_link("l", 1e9)
    done = []

    def proc(env):
        t = yield fabric.transfer([link], 1e6)
        done.append(t)

    env.process(proc(env))
    env.process(proc(env))
    env.run()
    # Two flows: capacity degraded to 1/1.02 GB/s, shared → 2.04 ms each.
    for t in done:
        assert t == pytest.approx(2e-3 * 1.02)


def test_congestion_penalty_single_flow_unaffected():
    env, fabric = make_fabric(congestion=0.02)
    link = fabric.add_link("l", 1e9)
    done = []

    def proc(env):
        t = yield fabric.transfer([link], 1e6)
        done.append(t)

    env.process(proc(env))
    env.run()
    assert done == [pytest.approx(1e-3)]


def test_congestion_aggregate_throughput_decreases_with_flows():
    """n flows move n MB slower than serially proportional — the superlinear
    contention the paper exploits."""

    def total_time(n):
        env, fabric = make_fabric(congestion=0.05)
        link = fabric.add_link("l", 1e9)
        end = []

        def proc(env):
            t = yield fabric.transfer([link], 1e6)
            end.append(t)

        for _ in range(n):
            env.process(proc(env))
        env.run()
        return max(end)

    # Per-MB time grows with concurrency.
    assert total_time(8) / 8 > total_time(4) / 4 > total_time(1)


def test_many_flows_deterministic():
    def run_once():
        env, fabric = make_fabric()
        links = [fabric.add_link(f"l{i}", 1e9) for i in range(4)]
        times = []

        def proc(env, i):
            yield env.timeout(i * 1e-5)
            t = yield fabric.transfer(
                [links[i % 4], links[(i + 1) % 4]], 1e5 * (1 + i % 3)
            )
            times.append((i, t))

        for i in range(20):
            env.process(proc(env, i))
        env.run()
        return times

    assert run_once() == run_once()
