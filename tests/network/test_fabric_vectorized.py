"""Differential tests: vector kernel vs scalar oracle, plus regressions
for the bugs the vectorization PR fixed (zero-rate stall, tight-link
tolerance at tiny capacities, link_bytes settled at delivery)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import NetworkSpec
from repro.network.fabric import (
    Fabric,
    Flow,
    Link,
    ScalarFabric,
    maxmin_rates,
    vector_kernel_available,
)
from repro.network.kernel import VectorFabric, maxmin_rates_vectorized
from repro.sim import Environment


class _Ev:
    pass


def _close(a, b, rel=1e-9):
    return math.isclose(a, b, rel_tol=rel, abs_tol=1e-12)


# ------------------------------------------------------- factory / fallback
def test_factory_selects_kernel_by_spec():
    env = Environment()
    assert isinstance(Fabric(env, NetworkSpec()), VectorFabric)
    assert isinstance(Fabric(env, NetworkSpec(vectorized=True)), VectorFabric)
    assert isinstance(
        Fabric(env, NetworkSpec(vectorized=False)), ScalarFabric
    )


def test_factory_falls_back_to_scalar_without_numpy(monkeypatch):
    import repro.network.fabric as fabric_mod

    monkeypatch.setattr(fabric_mod, "vector_kernel_available", lambda: False)
    env = Environment()
    assert isinstance(
        fabric_mod.Fabric(env, NetworkSpec(vectorized=True)), ScalarFabric
    )


def test_vector_kernel_is_available_here():
    assert vector_kernel_available()


def test_vectorized_flag_stays_out_of_cache_keys():
    # Kernel selection is an execution detail: both kernels produce
    # identical results, so sweep cells and cache keys must not depend
    # on it (a warm store primed under either kernel stays valid).
    d = NetworkSpec(vectorized=False).to_dict()
    assert "vectorized" not in d
    assert d == NetworkSpec(vectorized=True).to_dict()
    assert NetworkSpec.from_dict(d).vectorized is True


# ------------------------------------------- maxmin differential (unit-ish)
@st.composite
def allocation_problems(draw, cap_min=0.1, cap_max=100.0):
    n_links = draw(st.integers(min_value=1, max_value=5))
    links = [
        Link(f"l{i}", draw(st.floats(min_value=cap_min, max_value=cap_max)))
        for i in range(n_links)
    ]
    n_flows = draw(st.integers(min_value=1, max_value=12))
    flows = []
    for _ in range(n_flows):
        path_ids = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_links - 1),
                min_size=1,
                max_size=n_links,
                unique=True,
            )
        )
        cap = draw(
            st.one_of(
                st.just(math.inf), st.floats(min_value=0.01, max_value=50.0)
            )
        )
        flows.append(Flow(tuple(links[i] for i in path_ids), 1.0, cap, _Ev()))
    capacities = {lk: lk.capacity for lk in links}
    congestion = draw(st.sampled_from([0.0, 0.05, 0.3]))
    saturation = draw(st.sampled_from([1, 7]))
    return flows, capacities, congestion, saturation


@given(allocation_problems())
@settings(max_examples=200)
def test_vectorized_maxmin_matches_scalar_exactly(problem):
    flows, capacities, congestion, saturation = problem
    scalar = maxmin_rates(flows, capacities, congestion, saturation)
    vector = maxmin_rates_vectorized(flows, capacities, congestion, saturation)
    assert set(scalar) == set(vector)
    for flow in flows:
        # Bit-identical, not approximately equal: the two kernels use the
        # same fold orders by construction.
        assert scalar[flow] == vector[flow], (scalar[flow], vector[flow])


@given(allocation_problems(cap_min=1e-30, cap_max=1e-18))
@settings(max_examples=100)
def test_vectorized_maxmin_matches_scalar_at_tiny_capacities(problem):
    """The abs+rel tight tolerance keeps ~0-level rounds consistent."""
    flows, capacities, congestion, saturation = problem
    scalar = maxmin_rates(flows, capacities, congestion, saturation)
    vector = maxmin_rates_vectorized(flows, capacities, congestion, saturation)
    for flow in flows:
        assert scalar[flow] == vector[flow]
        assert scalar[flow] >= 0.0
    # No link oversubscribed (tolerance-scaled).
    for link, cap in capacities.items():
        used = sum(scalar[f] for f in flows if link in f.links)
        assert used <= cap * (1 + 1e-9) + 1e-22


def test_tiny_capacity_near_ties_freeze_together():
    """Links whose shares differ by less than the absolute tolerance
    tie-break as one tight set; a purely relative tolerance would give
    the marginally-larger link a second round and a different rate."""
    a = Link("a", 1e-25)
    b = Link("b", 1e-25 * (1.0 + 1e-7))  # within 1e-24 abs of the level
    fa = Flow((a,), 1.0, math.inf, _Ev())
    fb = Flow((b,), 1.0, math.inf, _Ev())
    rates = maxmin_rates([fa, fb], {a: a.capacity, b: b.capacity})
    assert rates[fa] == rates[fb] == 1e-25
    vec = maxmin_rates_vectorized([fa, fb], {a: a.capacity, b: b.capacity})
    assert vec[fa] == rates[fa] and vec[fb] == rates[fb]


# --------------------------------------------------- full-fabric differential
@st.composite
def fabric_scenarios(draw):
    """A randomized schedule: links, flows with start times, optional
    congestion and a mid-run capacity degradation."""
    n_links = draw(st.integers(min_value=2, max_value=5))
    link_caps = [
        draw(st.floats(min_value=0.5, max_value=8.0)) for _ in range(n_links)
    ]
    n_flows = draw(st.integers(min_value=1, max_value=10))
    flows = []
    for _ in range(n_flows):
        path = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_links - 1),
                min_size=1,
                max_size=min(3, n_links),
                unique=True,
            )
        )
        nbytes = draw(st.floats(min_value=1.0, max_value=64.0))
        start = draw(st.sampled_from([0.0, 0.0, 0.5, 1.25]))
        cap = draw(st.one_of(st.just(math.inf), st.floats(0.2, 4.0)))
        flows.append((path, nbytes, start, cap))
    congestion = draw(st.sampled_from([0.0, 0.05]))
    fault = draw(
        st.one_of(
            st.none(),
            st.tuples(
                st.integers(min_value=0, max_value=n_links - 1),
                st.sampled_from([0.35, 0.0]),  # degrade or kill outright
                st.sampled_from([0.25, 0.75]),
            ),
        )
    )
    return link_caps, flows, congestion, fault


def _run_scenario(vectorized, link_caps, flows, congestion, fault):
    env = Environment()
    fabric = Fabric(
        env,
        NetworkSpec(flow_congestion=congestion, vectorized=vectorized),
    )
    links = [fabric.add_link(f"l{i}", cap) for i, cap in enumerate(link_caps)]
    done = {}

    def sender(env, label, path, nbytes, start, cap):
        if start > 0.0:
            yield env.timeout(start)
        finished = yield fabric.transfer(
            [links[i] for i in path], nbytes, cpu_cap=cap, label=label
        )
        done[label] = finished

    for k, (path, nbytes, start, cap) in enumerate(flows):
        env.process(sender(env, f"f{k}", path, nbytes, start, cap))

    if fault is not None:
        li, factor, at = fault

        def degrade(_timer):
            links[li].fault_factor = factor
            fabric.capacities_changed([links[li]])

        def restore(_timer):
            links[li].fault_factor = 1.0
            fabric.capacities_changed([links[li]])

        env.call_after(at, degrade)
        # Always restore so killed links cannot strand flows forever.
        env.call_after(at + 1.5, restore)

    env.run()
    return done, fabric.bytes_delivered, fabric.link_bytes


@given(fabric_scenarios())
@settings(max_examples=60, deadline=None)
def test_full_fabric_runs_identical_across_kernels(scenario):
    s_done, s_bytes, s_link = _run_scenario(False, *scenario)
    v_done, v_bytes, v_link = _run_scenario(True, *scenario)
    # Per-flow completion times are bit-identical across kernels.
    assert s_done == v_done
    # Aggregate byte counters may differ only by fold-order ulps.
    assert _close(s_bytes, v_bytes, rel=1e-12)
    assert set(s_link) == set(v_link)
    for name in s_link:
        assert _close(s_link[name], v_link[name], rel=1e-12), name


# --------------------------------------------------------- zero-rate stall
@pytest.mark.parametrize("vectorized", [False, True])
def test_starved_flow_survives_and_resumes(vectorized):
    """A flow re-rated to zero while a component peer progresses must not
    be dropped (or deadlock the fabric): it parks, survives its peer's
    completion re-rate, and resumes when capacity returns."""
    env = Environment()
    fabric = Fabric(
        env, NetworkSpec(flow_congestion=0.0, vectorized=vectorized)
    )
    a = fabric.add_link("a", 1000.0)
    b = fabric.add_link("b", 1000.0)
    done = {}

    def sender(env, label, links, nbytes):
        done[label] = yield fabric.transfer(links, nbytes, label=label)

    # f1 rides link a alone; f2 needs both a and b.
    env.process(sender(env, "f1", [a], 1000.0))
    env.process(sender(env, "f2", [a, b], 500.0))

    def kill_b(_timer):
        b.fault_factor = 0.0
        fabric.capacities_changed([b])

    def restore_b(_timer):
        b.fault_factor = 1.0
        fabric.capacities_changed([b])

    env.call_after(0.0, kill_b)  # starve f2 from the start
    env.call_after(2.0, restore_b)
    env.run()

    # f1 progressed at full rate the whole time (f2 was frozen at zero,
    # not competing): 1000 B at 1000 B/s.
    assert done["f1"] == pytest.approx(1.0)
    # f2 parked for 2 s — surviving f1's completion re-rate at t=1, which
    # re-seeds stalled flows but finds b still dead — then delivered
    # 500 B at full rate.
    assert done["f2"] == pytest.approx(2.5)
    assert fabric.bytes_delivered == pytest.approx(1500.0)
    assert fabric.link_bytes["a"] == pytest.approx(1500.0)
    assert fabric.link_bytes["b"] == pytest.approx(500.0)
    assert not fabric.active_flows


@pytest.mark.parametrize("vectorized", [False, True])
def test_all_flows_zero_rated_is_not_a_deadlock(vectorized):
    """Historically the scalar kernel raised 'fabric deadlock' when a
    re-rate left every component flow at zero rate."""
    env = Environment()
    fabric = Fabric(
        env, NetworkSpec(flow_congestion=0.0, vectorized=vectorized)
    )
    lk = fabric.add_link("l", 100.0)
    done = {}

    def sender(env):
        done["f"] = yield fabric.transfer([lk], 100.0, label="f")

    env.process(sender(env))

    def kill(_timer):
        lk.fault_factor = 0.0
        fabric.capacities_changed([lk])

    def restore(_timer):
        lk.fault_factor = 1.0
        fabric.capacities_changed([lk])

    env.call_after(0.25, kill)
    env.call_after(1.25, restore)
    env.run()
    # 25 B moved before the outage; the remaining 75 B after restore.
    assert done["f"] == pytest.approx(2.0)
    assert fabric.bytes_delivered == pytest.approx(100.0)


# ------------------------------------------------ link_bytes at delivery
@pytest.mark.parametrize("vectorized", [False, True])
def test_link_bytes_settle_at_delivery_not_at_start(vectorized):
    env = Environment()
    fabric = Fabric(
        env, NetworkSpec(flow_congestion=0.0, vectorized=vectorized)
    )
    lk = fabric.add_link("l", 1000.0)

    def sender(env, start, nbytes):
        if start:
            yield env.timeout(start)
        yield fabric.transfer([lk], nbytes, label=f"s{start}")

    env.process(sender(env, 0.0, 1000.0))
    env.process(sender(env, 0.4, 1000.0))

    env.run(until=0.2)
    # In flight: nothing delivered yet (the old kernel credited the full
    # 1000 B at transfer start).  link_flows keeps start-count semantics.
    assert fabric.link_bytes["l"] == 0.0
    assert fabric.link_flows["l"] == 1

    env.run(until=0.45)
    # The second admission at t=0.4 settles the first flow: 400 B done.
    assert fabric.link_bytes["l"] == pytest.approx(400.0)
    assert fabric.link_bytes["l"] == pytest.approx(fabric.bytes_delivered)
    assert fabric.link_flows["l"] == 2

    env.run()
    assert fabric.link_bytes["l"] == pytest.approx(2000.0)
    assert fabric.bytes_delivered == pytest.approx(2000.0)
